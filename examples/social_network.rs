//! Social-network scenario: partition a Pokec-like friendship graph with
//! several methods, then run PageRank on the resulting deployments to see
//! how partition quality converts into application communication cost —
//! the paper's §7.6 story in one runnable program.
//!
//! Run with: `cargo run --release --example social_network`

use distributed_ne::apps::Engine;
use distributed_ne::graph::gen::{rmat, RmatConfig};
use distributed_ne::partition::hash_based::{GridPartitioner, RandomPartitioner};
use distributed_ne::partition::streaming::HdrfPartitioner;
use distributed_ne::prelude::*;

fn main() {
    // A scaled Pokec-like social graph (paper Table 2: |E|/|V| ≈ 19).
    let graph = rmat(&RmatConfig::social(13, 19, 7));
    println!("social graph: |V| = {}, |E| = {}", graph.num_vertices(), graph.num_edges());
    let k = 8;
    let methods: Vec<(String, EdgeAssignment)> = vec![
        ("Random".into(), RandomPartitioner::new(7).partition(&graph, k)),
        ("2D-Random".into(), GridPartitioner::new(7).partition(&graph, k)),
        ("HDRF".into(), HdrfPartitioner::new(7).partition(&graph, k)),
        (
            "DistributedNE".into(),
            DistributedNe::new(NeConfig::default().with_seed(7)).partition(&graph, k),
        ),
    ];
    println!("\n{:<14} {:>6} {:>6} {:>12} {:>10}", "method", "RF", "EB", "PR comm MB", "PR time s");
    for (name, assignment) in &methods {
        let q = PartitionQuality::measure(&graph, assignment);
        let engine = Engine::new(&graph, assignment);
        let pr = engine.pagerank(20);
        println!(
            "{:<14} {:>6.2} {:>6.2} {:>12.2} {:>10.3}",
            name,
            q.replication_factor,
            q.edge_balance,
            pr.comm_bytes as f64 / 1e6,
            pr.elapsed.as_secs_f64()
        );
    }
    println!(
        "\nLower replication factor ⇒ fewer mirror syncs ⇒ less PageRank\n\
         communication — the paper's Table 5 effect."
    );
}
