//! Graphalytics-style application-suite benchmark: the six kernels (BFS,
//! SSSP, WCC, PageRank, LCC, Triangles) over the Table 2 dataset stand-ins,
//! partitioned by Distributed NE.
//!
//! One TSV row per (dataset, kernel) in the shape LDBC Graphalytics
//! reports use: graph size, machine count, partition quality (RF / EB as
//! measured by `PartitionQuality`), then the run metrics — iterations
//! (supersteps for the value-propagation kernels, exchange rounds for the
//! adjacency kernels), exact communicated bytes, and the wall time of the
//! parallel section.
//!
//! `DNE_TRANSPORT` / `DNE_COLLECTIVES` / `DNE_GRAPH_STORAGE` select the
//! runtime cell exactly as everywhere else; kernel results are
//! reference-checked across that whole matrix by `tests/app_suite.rs`, so
//! this binary reports timings only.

use dne_apps::verify::Kernel;
use dne_apps::Engine;
use dne_bench::datasets::{self, DATASETS};
use dne_bench::table::{f2, parse_mode, secs, Table};
use dne_core::{DistributedNe, NeConfig};
use dne_partition::{EdgePartitioner, PartitionQuality};

fn main() {
    let quick = parse_mode();
    let k = if quick { 8 } else { 64 };
    let pr_iters = if quick { 10 } else { 100 };
    let sets: Vec<&datasets::Dataset> =
        if quick { datasets::midsize() } else { DATASETS.iter().collect() };
    let kernels = [
        Kernel::Bfs { source: 0 },
        Kernel::Sssp { source: 0 },
        Kernel::Wcc,
        Kernel::PageRank { iters: pr_iters },
        Kernel::Lcc,
        Kernel::Triangles,
    ];
    let mut t =
        Table::new(&["dataset", "kernel", "V", "E", "P", "RF", "EB", "iters", "comm_B", "ET_s"]);
    for d in sets {
        let g = if quick { d.build_quick() } else { d.build() };
        eprintln!("{}: |V|={} |E|={}", d.name, g.num_vertices(), g.num_edges());
        let a = DistributedNe::new(NeConfig::default().with_seed(17)).partition(&g, k);
        let q = PartitionQuality::measure(&g, &a);
        let engine = Engine::new(&g, &a);
        for kernel in kernels {
            let run = kernel.run(&engine);
            t.row(vec![
                d.name.into(),
                run.name.clone(),
                g.num_vertices().to_string(),
                g.num_edges().to_string(),
                k.to_string(),
                f2(q.replication_factor),
                f2(q.edge_balance),
                run.supersteps.to_string(),
                run.comm_bytes.to_string(),
                secs(run.elapsed),
            ]);
        }
    }
    println!("\n=== Application suite (Graphalytics-style): |P| = {k}, PageRank({pr_iters}) ===");
    t.print();
    if let Ok(p) = t.write_tsv("app_suite") {
        eprintln!("wrote {}", p.display());
    }
}
