//! `DNESNAP1` — per-round checkpoints of a Distributed NE machine.
//!
//! Elastic fault tolerance for the bulk-synchronous round loop: every
//! `DNE_CHECKPOINT_EVERY` completed rounds each rank serializes the
//! *mutable* half of its machine state into a compact tagged wire format
//! (the same [`WireEncode`]/[`WireDecode`] machinery every `NeMsg`
//! envelope travels through) and atomically replaces a per-rank file.
//! The structural half — the allocator's CSR subgraph, global↔local id
//! maps, shuffled scan order — is *not* stored: it is rebuilt bit-
//! identically from `(graph, rank, seed)` by
//! [`AllocatorPart::from_owned_edges`], which keeps snapshots a small
//! multiple of the partition's edge set rather than of the subgraph.
//!
//! A restarted rank (`dne-tcp-worker --rejoin`) loads its newest
//! snapshot, the re-rendezvoused cluster agrees on the newest round
//! *every* rank completed (an all-gather of snapshot rounds, taking the
//! minimum — snapshots are written at the same post-barrier loop point on
//! all ranks, so equal rounds mean equal global state), and the loop
//! resumes from that round. Because the round loop is deterministic, a
//! resumed run reproduces the uninterrupted run's assignment
//! bit-identically — asserted by the `recovery_smoke` bench bin and the
//! kill-and-restart integration test.
//!
//! ## File format
//!
//! | field | bytes | notes |
//! |---|---|---|
//! | magic | 8 | `"DNESNAP1"` |
//! | rank, nprocs | 4 + 4 | little-endian `u32` |
//! | run fingerprint | 8 | `mix2`-fold of `(edges, parts, seed)` |
//! | round | 8 | completed rounds at capture time |
//! | loop state | var | `prev_total`, `stall`, `free_hints`, `global_sizes`, speculated `next_select` |
//! | expansion | var | `E_p` edge ids + boundary heap/expanded/enqueued |
//! | allocator | var | `edge_part`, `rest`, `vparts`, `part_edges`, `free_edges`, `scan_cursor` |
//! | checksum | 8 | `mix2`-fold over everything above |
//!
//! Files are named `rank<r>-round<n>.dnesnap`; writes go through a unique
//! temporary then `rename(2)`, so readers never observe a torn file, and
//! the trailing checksum rejects any that slipped through. The two newest
//! rounds are retained per rank (older ones pruned on write) so the
//! minimum-round agreement after a crash always lands on a file every
//! rank still has.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use dne_graph::hash::mix2;
use dne_graph::EdgeId;
use dne_runtime::{WireDecode, WireEncode, WireError, WireReader, WireSize};

use crate::boundary::{Boundary, BoundaryExport};
use crate::dist::AllocatorPart;
use crate::expansion::{ExpansionState, SelectAction};
use crate::messages::Part;

/// File magic: the first eight bytes of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"DNESNAP1";

/// How many checkpoint generations [`RankSnapshot::write_atomic`] retains
/// per rank. Two: after a crash the newest rounds across ranks differ by
/// at most one checkpoint generation (writes happen at the same
/// post-barrier point), so the agreed minimum is always still on disk.
pub const RETAINED_GENERATIONS: usize = 2;

/// Identity of a run for snapshot validation: a snapshot resumes only the
/// exact `(|E|, |P|, seed)` run that wrote it.
pub fn run_fingerprint(num_edges: u64, nprocs: u32, seed: u64) -> u64 {
    mix2(mix2(mix2(0x444E_4553_4E41_5031, num_edges), nprocs as u64), seed)
}

/// Everything wrong a snapshot load can go: the caller (worker `--rejoin`
/// path, migration coordinator) turns these into a nonzero exit naming
/// the file.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure reading or writing a snapshot.
    Io(io::Error),
    /// The byte stream failed wire decoding.
    Wire(WireError),
    /// The file is torn or tampered: bad magic, short file, or a checksum
    /// mismatch.
    Corrupt {
        /// Human-readable description of the corruption.
        detail: String,
    },
    /// The snapshot is intact but belongs to a different run, rank, or
    /// graph than the one resuming.
    Mismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::Wire(e) => write!(f, "snapshot decode: {e}"),
            SnapshotError::Corrupt { detail } => write!(f, "corrupt snapshot: {detail}"),
            SnapshotError::Mismatch { detail } => write!(f, "snapshot mismatch: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        SnapshotError::Wire(e)
    }
}

/// The mutable words of an [`AllocatorPart`] (the structural CSR half is
/// rebuilt from `(graph, rank, seed)` on resume).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AllocState {
    /// Allocation word per local edge slot.
    pub edge_part: Vec<Part>,
    /// Remaining (unallocated) local degree per local vertex.
    pub rest: Vec<u64>,
    /// Partition memberships per local vertex.
    pub vparts: Vec<Vec<Part>>,
    /// Locally allocated edge count per partition.
    pub part_edges: Vec<u64>,
    /// Still-unallocated local edge count.
    pub free_edges: u64,
    /// Random-restart scan cursor.
    pub scan_cursor: u64,
}

impl AllocState {
    /// Capture the mutable state of `alloc`.
    pub fn capture(alloc: &AllocatorPart) -> Self {
        Self {
            edge_part: alloc.edge_part.clone(),
            rest: alloc.rest.clone(),
            vparts: alloc.vparts.clone(),
            part_edges: alloc.part_edges.clone(),
            free_edges: alloc.free_edges,
            scan_cursor: alloc.scan_cursor() as u64,
        }
    }

    /// Overwrite the mutable state of a freshly rebuilt `alloc`. The
    /// structural dimensions must agree — a snapshot from a different
    /// graph or bucketing is a [`SnapshotError::Mismatch`].
    pub fn restore(self, alloc: &mut AllocatorPart) -> Result<(), SnapshotError> {
        let ne = alloc.num_local_edges();
        let nv = alloc.num_local_vertices();
        if self.edge_part.len() != ne || self.rest.len() != nv || self.vparts.len() != nv {
            return Err(SnapshotError::Mismatch {
                detail: format!(
                    "allocator shape: snapshot has {} edges / {} vertices, rebuilt subgraph has \
                     {ne} / {nv}",
                    self.edge_part.len(),
                    self.rest.len()
                ),
            });
        }
        if self.scan_cursor as usize > nv {
            return Err(SnapshotError::Mismatch {
                detail: format!("scan cursor {} beyond {nv} local vertices", self.scan_cursor),
            });
        }
        alloc.edge_part = self.edge_part;
        alloc.rest = self.rest;
        alloc.vparts = self.vparts;
        alloc.part_edges = self.part_edges;
        alloc.free_edges = self.free_edges;
        alloc.set_scan_cursor(self.scan_cursor as usize);
        Ok(())
    }
}

/// One rank's complete per-round checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct RankSnapshot {
    /// The rank (== partition) this snapshot belongs to.
    pub rank: u32,
    /// Cluster size the run was started with.
    pub nprocs: u32,
    /// [`run_fingerprint`] of the writing run.
    pub fingerprint: u64,
    /// Completed rounds at capture time.
    pub round: u64,
    /// Previous round's global allocated-edge total (stall detection).
    pub prev_total: u64,
    /// Consecutive no-progress rounds so far.
    pub stall: u32,
    /// Last-known free-edge counts of all allocators (gossip).
    pub free_hints: Vec<u64>,
    /// Previous round's `|E_p|` per partition (capacity gate).
    pub global_sizes: Vec<u64>,
    /// The next round's speculated vertex selection, if the overlap path
    /// had already computed it when the checkpoint was taken. Restoring it
    /// keeps the resumed loop bit-identical to the uninterrupted one.
    pub next_select: Option<SelectAction>,
    /// `E_p`: edge ids allocated to this rank's partition so far.
    pub edges: Vec<EdgeId>,
    /// Boundary queue state (heap + expanded + enqueued, sorted).
    pub boundary: BoundaryExport,
    /// Mutable allocator words.
    pub alloc: AllocState,
}

const TAG_NONE: u8 = 0;
const TAG_VERTICES: u8 = 1;
const TAG_RANDOM: u8 = 2;
const TAG_NOTHING: u8 = 3;

impl WireSize for SelectAction {
    fn wire_bytes(&self) -> usize {
        1 + match self {
            SelectAction::Vertices(vs) => vs.wire_bytes(),
            SelectAction::Random { target, budget } => target.wire_bytes() + budget.wire_bytes(),
            SelectAction::Nothing => 0,
        }
    }
}

impl WireEncode for SelectAction {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            SelectAction::Vertices(vs) => {
                buf.push(TAG_VERTICES);
                vs.encode(buf);
            }
            SelectAction::Random { target, budget } => {
                buf.push(TAG_RANDOM);
                target.encode(buf);
                budget.encode(buf);
            }
            SelectAction::Nothing => buf.push(TAG_NOTHING),
        }
    }
}

impl WireDecode for SelectAction {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.read_array::<1>()?[0] {
            TAG_VERTICES => Ok(SelectAction::Vertices(Vec::decode(r)?)),
            TAG_RANDOM => {
                Ok(SelectAction::Random { target: usize::decode(r)?, budget: u64::decode(r)? })
            }
            TAG_NOTHING => Ok(SelectAction::Nothing),
            tag => Err(WireError::BadTag { tag }),
        }
    }
}

/// `Option<SelectAction>` travels as its own tag byte so the `None` case
/// is one byte, mirroring the generic `Option` codec but keeping every
/// snapshot field behind an explicit tag.
fn encode_next_select(v: &Option<SelectAction>, buf: &mut Vec<u8>) {
    match v {
        None => buf.push(TAG_NONE),
        Some(a) => a.encode(buf),
    }
}

fn next_select_bytes(v: &Option<SelectAction>) -> usize {
    match v {
        None => 1,
        Some(a) => a.wire_bytes(),
    }
}

fn decode_next_select(r: &mut WireReader<'_>) -> Result<Option<SelectAction>, WireError> {
    // Peek the tag: TAG_NONE consumes one byte, anything else re-parses as
    // a SelectAction (whose tags are disjoint from TAG_NONE).
    let tag = r.read_array::<1>()?[0];
    if tag == TAG_NONE {
        return Ok(None);
    }
    match tag {
        TAG_VERTICES => Ok(Some(SelectAction::Vertices(Vec::decode(r)?))),
        TAG_RANDOM => {
            Ok(Some(SelectAction::Random { target: usize::decode(r)?, budget: u64::decode(r)? }))
        }
        TAG_NOTHING => Ok(Some(SelectAction::Nothing)),
        tag => Err(WireError::BadTag { tag }),
    }
}

impl WireSize for RankSnapshot {
    fn wire_bytes(&self) -> usize {
        SNAPSHOT_MAGIC.len()
            + self.rank.wire_bytes()
            + self.nprocs.wire_bytes()
            + self.fingerprint.wire_bytes()
            + self.round.wire_bytes()
            + self.prev_total.wire_bytes()
            + self.stall.wire_bytes()
            + self.free_hints.wire_bytes()
            + self.global_sizes.wire_bytes()
            + next_select_bytes(&self.next_select)
            + self.edges.wire_bytes()
            + self.boundary.heap.wire_bytes()
            + self.boundary.expanded.wire_bytes()
            + self.boundary.enqueued.wire_bytes()
            + self.alloc.edge_part.wire_bytes()
            + self.alloc.rest.wire_bytes()
            + self.alloc.vparts.wire_bytes()
            + self.alloc.part_edges.wire_bytes()
            + self.alloc.free_edges.wire_bytes()
            + self.alloc.scan_cursor.wire_bytes()
    }
}

impl WireEncode for RankSnapshot {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        self.rank.encode(buf);
        self.nprocs.encode(buf);
        self.fingerprint.encode(buf);
        self.round.encode(buf);
        self.prev_total.encode(buf);
        self.stall.encode(buf);
        self.free_hints.encode(buf);
        self.global_sizes.encode(buf);
        encode_next_select(&self.next_select, buf);
        self.edges.encode(buf);
        self.boundary.heap.encode(buf);
        self.boundary.expanded.encode(buf);
        self.boundary.enqueued.encode(buf);
        self.alloc.edge_part.encode(buf);
        self.alloc.rest.encode(buf);
        self.alloc.vparts.encode(buf);
        self.alloc.part_edges.encode(buf);
        self.alloc.free_edges.encode(buf);
        self.alloc.scan_cursor.encode(buf);
    }
}

impl WireDecode for RankSnapshot {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let magic = r.read_array::<8>()?;
        if magic != SNAPSHOT_MAGIC {
            return Err(WireError::BadTag { tag: magic[0] });
        }
        Ok(Self {
            rank: u32::decode(r)?,
            nprocs: u32::decode(r)?,
            fingerprint: u64::decode(r)?,
            round: u64::decode(r)?,
            prev_total: u64::decode(r)?,
            stall: u32::decode(r)?,
            free_hints: Vec::decode(r)?,
            global_sizes: Vec::decode(r)?,
            next_select: decode_next_select(r)?,
            edges: Vec::decode(r)?,
            boundary: BoundaryExport {
                heap: Vec::decode(r)?,
                expanded: Vec::decode(r)?,
                enqueued: Vec::decode(r)?,
            },
            alloc: AllocState {
                edge_part: Vec::decode(r)?,
                rest: Vec::decode(r)?,
                vparts: Vec::decode(r)?,
                part_edges: Vec::decode(r)?,
                free_edges: u64::decode(r)?,
                scan_cursor: u64::decode(r)?,
            },
        })
    }
}

/// `mix2`-fold checksum over a byte stream (8-byte chunks, zero-padded
/// tail, length folded last so trailing zeros are not free).
fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0x534E_4150_5355_4D00; // "SNAPSUM"
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = mix2(h, u64::from_le_bytes(c.try_into().expect("exact chunk")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = mix2(h, u64::from_le_bytes(tail));
    }
    mix2(h, bytes.len() as u64)
}

/// Unique temp-file suffix counter (concurrent writers within a process
/// never collide; cross-process uniqueness comes from the pid).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl RankSnapshot {
    /// Capture a checkpoint of one machine at the end of a round.
    #[allow(clippy::too_many_arguments)] // mirrors the loop state one-to-one
    pub fn capture(
        rank: u32,
        nprocs: u32,
        fingerprint: u64,
        round: u64,
        prev_total: u64,
        stall: u32,
        free_hints: &[u64],
        global_sizes: &[u64],
        next_select: &Option<SelectAction>,
        exp: &ExpansionState,
        alloc: &AllocatorPart,
    ) -> Self {
        Self {
            rank,
            nprocs,
            fingerprint,
            round,
            prev_total,
            stall,
            free_hints: free_hints.to_vec(),
            global_sizes: global_sizes.to_vec(),
            next_select: next_select.clone(),
            edges: exp.edges.clone(),
            boundary: exp.boundary.export(),
            alloc: AllocState::capture(alloc),
        }
    }

    /// Restore the expansion + allocator state this snapshot captured.
    /// `exp` and `alloc` must be freshly built for the same `(graph, rank,
    /// seed, k)` — the structural half the snapshot deliberately omits.
    pub fn restore_into(
        self,
        exp: &mut ExpansionState,
        alloc: &mut AllocatorPart,
    ) -> Result<(), SnapshotError> {
        self.alloc.restore(alloc)?;
        exp.edges = self.edges;
        exp.boundary = Boundary::from_export(self.boundary);
        Ok(())
    }

    /// Reject a snapshot that does not belong to this exact run position.
    pub fn validate(&self, rank: u32, nprocs: u32, fingerprint: u64) -> Result<(), SnapshotError> {
        if self.rank != rank || self.nprocs != nprocs {
            return Err(SnapshotError::Mismatch {
                detail: format!(
                    "snapshot is for rank {}/{} but this machine is rank {rank}/{nprocs}",
                    self.rank, self.nprocs
                ),
            });
        }
        if self.fingerprint != fingerprint {
            return Err(SnapshotError::Mismatch {
                detail: format!(
                    "run fingerprint {:016x} != expected {fingerprint:016x} (different graph, \
                     partition count, or seed)",
                    self.fingerprint
                ),
            });
        }
        Ok(())
    }

    /// Canonical file name of rank `rank`'s round-`round` snapshot.
    pub fn file_name(rank: u32, round: u64) -> String {
        format!("rank{rank}-round{round}.dnesnap")
    }

    /// Parse a [`file_name`](RankSnapshot::file_name) back into
    /// `(rank, round)`.
    pub fn parse_file_name(name: &str) -> Option<(u32, u64)> {
        let rest = name.strip_prefix("rank")?.strip_suffix(".dnesnap")?;
        let (rank, round) = rest.split_once("-round")?;
        Some((rank.parse().ok()?, round.parse().ok()?))
    }

    /// Atomically write this snapshot into `dir` (created on demand):
    /// encode + checksum into a unique temporary, `rename(2)` into place,
    /// then prune this rank's generations beyond
    /// [`RETAINED_GENERATIONS`]. Returns the final path.
    pub fn write_atomic(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let mut bytes = self.to_wire();
        let sum = checksum(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        let tmp = dir.join(format!(
            ".rank{}-{}-{}.tmp",
            self.rank,
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &bytes)?;
        let path = dir.join(Self::file_name(self.rank, self.round));
        std::fs::rename(&tmp, &path)?;
        // Prune old generations; best-effort (a leftover file is harmless,
        // the min-round agreement only ever looks backwards one step).
        let mut rounds = list_rounds(dir, self.rank).unwrap_or_default();
        while rounds.len() > RETAINED_GENERATIONS {
            let (round, stale) = rounds.remove(0);
            if round < self.round {
                let _ = std::fs::remove_file(stale);
            }
        }
        Ok(path)
    }

    /// Read and verify (checksum + magic) one snapshot file.
    pub fn read(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < SNAPSHOT_MAGIC.len() + 8 {
            return Err(SnapshotError::Corrupt {
                detail: format!("{}: {} bytes is too short", path.display(), bytes.len()),
            });
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let expect = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if checksum(body) != expect {
            return Err(SnapshotError::Corrupt {
                detail: format!("{}: checksum mismatch", path.display()),
            });
        }
        Self::from_wire(body).map_err(SnapshotError::Wire)
    }

    /// The newest snapshot of `rank` in `dir`, with its round. `None` when
    /// the rank has no snapshot yet.
    pub fn latest(dir: &Path, rank: u32) -> Result<Option<(u64, PathBuf)>, SnapshotError> {
        Ok(list_rounds(dir, rank)?.pop())
    }

    /// Load rank `rank`'s snapshot for exactly `round` from `dir`.
    pub fn load_round(dir: &Path, rank: u32, round: u64) -> Result<Self, SnapshotError> {
        Self::read(&dir.join(Self::file_name(rank, round)))
    }
}

/// All snapshot rounds of `rank` present in `dir`, sorted ascending.
/// An absent directory is simply "no snapshots".
pub fn list_rounds(dir: &Path, rank: u32) -> Result<Vec<(u64, PathBuf)>, io::Error> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some((r, round)) = RankSnapshot::parse_file_name(name) {
                if r == rank {
                    out.push((round, entry.path()));
                }
            }
        }
    }
    out.sort_unstable_by_key(|&(round, _)| round);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Grid2D;
    use dne_graph::gen;

    fn sample_snapshot() -> RankSnapshot {
        RankSnapshot {
            rank: 1,
            nprocs: 4,
            fingerprint: run_fingerprint(1000, 4, 42),
            round: 7,
            prev_total: 900,
            stall: 1,
            free_hints: vec![3, 0, 25, 7],
            global_sizes: vec![250, 230, 210, 210],
            next_select: Some(SelectAction::Vertices(vec![5, 9, 12])),
            edges: vec![10, 11, 900],
            boundary: BoundaryExport {
                heap: vec![(1, 44), (3, 2)],
                expanded: vec![5, 9],
                enqueued: vec![2, 5, 9, 44],
            },
            alloc: AllocState {
                edge_part: vec![0, 3, u32::MAX],
                rest: vec![1, 0, 2],
                vparts: vec![vec![0], vec![], vec![1, 3]],
                part_edges: vec![1, 1, 0, 1],
                free_edges: 1,
                scan_cursor: 2,
            },
        }
    }

    #[test]
    fn codec_roundtrips_at_exact_size() {
        for snap in [
            sample_snapshot(),
            RankSnapshot { next_select: None, ..sample_snapshot() },
            RankSnapshot {
                next_select: Some(SelectAction::Random { target: 3, budget: 17 }),
                ..sample_snapshot()
            },
            RankSnapshot { next_select: Some(SelectAction::Nothing), ..sample_snapshot() },
        ] {
            let bytes = snap.to_wire();
            assert_eq!(bytes.len(), snap.wire_bytes(), "estimate != actual");
            assert_eq!(RankSnapshot::from_wire(&bytes).unwrap(), snap);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// `DNESNAP1` round-trips *arbitrary* machine states
            /// bit-identically: every `next_select` variant, empty-through-
            /// large vectors, FREE and allocated words alike. Beyond value
            /// equality, a decode-then-re-encode must reproduce the exact
            /// byte stream, so nothing in the format is ambiguous.
            #[test]
            fn dnesnap1_roundtrips_arbitrary_states(
                identity in (0u32..8, 2u32..9, 0u64..u64::MAX, 0u64..100_000),
                loop_state in (0u64..1_000_000, 0u32..64),
                free_hints in prop::collection::vec(0u64..1_000_000, 0..9),
                global_sizes in prop::collection::vec(0u64..1_000_000, 0..9),
                select in (0u8..4, prop::collection::vec(0u64..100_000, 0..32), 0usize..64, 0u64..1_000),
                edges in prop::collection::vec(0u64..1_000_000, 0..64),
                heap in prop::collection::vec((0u64..100_000, 0u64..100_000), 0..32),
                expanded in prop::collection::vec(0u64..100_000, 0..32),
                enqueued in prop::collection::vec(0u64..100_000, 0..32),
                words in prop::collection::vec(0u32..9, 0..64),
                rest in prop::collection::vec(0u64..100, 0..32),
                vparts in prop::collection::vec(prop::collection::vec(0u32..8, 0..4), 0..32),
                part_edges in prop::collection::vec(0u64..1_000, 0..9),
                alloc_tail in (0u64..1_000, 0u64..64),
            ) {
                let (rank, nprocs, fingerprint, round) = identity;
                let (prev_total, stall) = loop_state;
                let (tag, vertices, target, budget) = select;
                let next_select = match tag {
                    0 => None,
                    1 => Some(SelectAction::Vertices(vertices)),
                    2 => Some(SelectAction::Random { target, budget }),
                    _ => Some(SelectAction::Nothing),
                };
                let (free_edges, scan_cursor) = alloc_tail;
                let snap = RankSnapshot {
                    rank,
                    nprocs,
                    fingerprint,
                    round,
                    prev_total,
                    stall,
                    free_hints,
                    global_sizes,
                    next_select,
                    edges,
                    boundary: BoundaryExport { heap, expanded, enqueued },
                    alloc: AllocState {
                        // Word 8 stands in for a FREE (unallocated) slot.
                        edge_part: words
                            .into_iter()
                            .map(|w| if w == 8 { Part::MAX } else { w })
                            .collect(),
                        rest,
                        vparts,
                        part_edges,
                        free_edges,
                        scan_cursor,
                    },
                };
                let bytes = snap.to_wire();
                prop_assert_eq!(bytes.len(), snap.wire_bytes(), "size estimate != actual");
                let decoded = RankSnapshot::from_wire(&bytes).expect("wire round-trip");
                prop_assert_eq!(&decoded, &snap);
                prop_assert_eq!(decoded.to_wire(), bytes, "re-encode not bit-identical");
            }
        }
    }

    #[test]
    fn truncated_snapshots_error_not_panic() {
        let bytes = sample_snapshot().to_wire();
        for cut in 0..bytes.len() {
            assert!(RankSnapshot::from_wire(&bytes[..cut]).is_err(), "{cut}-byte prefix");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_snapshot().to_wire();
        bytes[0] ^= 0xFF;
        assert!(RankSnapshot::from_wire(&bytes).is_err());
    }

    #[test]
    fn file_roundtrip_checksum_and_retention() {
        let dir = std::env::temp_dir().join(format!("dnesnap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut snap = sample_snapshot();
        for round in [7u64, 8, 9, 10] {
            snap.round = round;
            snap.write_atomic(&dir).unwrap();
        }
        let rounds = list_rounds(&dir, 1).unwrap();
        assert_eq!(
            rounds.iter().map(|&(r, _)| r).collect::<Vec<_>>(),
            vec![9, 10],
            "only the two newest generations are retained"
        );
        let (latest_round, path) = RankSnapshot::latest(&dir, 1).unwrap().unwrap();
        assert_eq!(latest_round, 10);
        let loaded = RankSnapshot::read(&path).unwrap();
        assert_eq!(loaded, snap);
        // A flipped byte anywhere must be caught by the checksum.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            RankSnapshot::read(&path),
            Err(SnapshotError::Corrupt { .. }) | Err(SnapshotError::Wire(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_rejects_foreign_snapshots() {
        let snap = sample_snapshot();
        assert!(snap.validate(1, 4, snap.fingerprint).is_ok());
        assert!(matches!(
            snap.validate(2, 4, snap.fingerprint),
            Err(SnapshotError::Mismatch { .. })
        ));
        assert!(matches!(snap.validate(1, 4, 999), Err(SnapshotError::Mismatch { .. })));
    }

    #[test]
    fn file_name_roundtrip() {
        assert_eq!(RankSnapshot::file_name(3, 12), "rank3-round12.dnesnap");
        assert_eq!(RankSnapshot::parse_file_name("rank3-round12.dnesnap"), Some((3, 12)));
        assert_eq!(RankSnapshot::parse_file_name("rank3.dnesnap"), None);
        assert_eq!(RankSnapshot::parse_file_name(".rank3-99-0.tmp"), None);
    }

    #[test]
    fn boundary_export_rebuild_pops_identically() {
        let mut b = Boundary::new();
        for v in 0..50u64 {
            b.insert(v * 3 % 47, v % 7);
        }
        b.mark_expanded(1000);
        let _ = b.pop_k_min(5);
        let rebuilt = Boundary::from_export(b.export());
        let mut a = b;
        let mut c = rebuilt;
        // Interleave the capped and plain pops: sequences must agree step
        // by step until both run dry.
        loop {
            let pa = a.pop_lambda_capped(0.3, 100, 4);
            let pc = c.pop_lambda_capped(0.3, 100, 4);
            assert_eq!(pa, pc);
            if pa.is_empty() {
                break;
            }
        }
        assert_eq!(a.len(), c.len());
    }

    #[test]
    fn alloc_state_restore_roundtrips() {
        let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 3));
        let grid = Grid2D::new(4, 3);
        let mut a = AllocatorPart::build(&g, &grid, 1, 3);
        a.ensure_parts(4);
        // Mutate: claim a few edges and advance the cursor.
        for le in 0..a.num_local_edges().min(5) as u32 {
            let _ = a.claim_edge(le, (le % 4) as Part);
        }
        let _ = a.random_free_vertex();
        let state = AllocState::capture(&a);
        let mut b = AllocatorPart::build(&g, &grid, 1, 3);
        b.ensure_parts(4);
        state.clone().restore(&mut b).unwrap();
        assert_eq!(AllocState::capture(&b), state);
        // Restoring into the wrong rank's subgraph must fail shape checks
        // (rank 0 and 1 own different edge sets for this graph).
        let mut wrong = AllocatorPart::build(&g, &grid, 0, 3);
        wrong.ensure_parts(4);
        assert!(matches!(state.restore(&mut wrong), Err(SnapshotError::Mismatch { .. })));
    }
}
