//! MPI-style collectives: barrier, all-gather, all-reduce.
//!
//! Algorithm 1 of the paper uses `Barrier()` (line 9) and
//! `AllGatherSum(|Ep|)` (line 14) every iteration; the application engine
//! uses all-reduce for convergence/frontier checks. Collectives are built
//! as *real traffic* over the same [`Transport`]
//! fabric as point-to-point messages: a flat all-gather in which every rank
//! sends its one-word contribution to every peer and collects one word from
//! each (the self-send is free and keeps indexing uniform). On the bytes
//! and tcp backends those words are genuinely serialized and decoded like
//! any other envelope.
//!
//! Round alignment comes from the same argument as
//! [`crate::Ctx::exchange`]: per-link FIFO order plus one-message-per-rank
//! collection keeps back-to-back collectives race-free even when peers run
//! ahead.
//!
//! Byte accounting: each collective charges `8·(P−1)` bytes to every
//! participant — on the loopback backend as `P−1` estimated 8-byte sends,
//! on the bytes/tcp backends as `P−1` actually-encoded 8-byte frames. The
//! total matches what a flat MPI all-gather of one word would move.
//!
//! Transport failures surface as a [`TransportError`] from the collective
//! call rather than a panic inside the runtime. On the tcp backend that
//! includes a peer dying mid-collective (its socket closes without the
//! goodbye frame); on the in-process channel backends a vanished peer can
//! only be a sibling thread already unwinding the whole run, and is
//! reported once the fabric is torn down.

use std::sync::Arc;

use crate::comm::CommEndpoint;
use crate::stats::CommStats;
use crate::transport::{Transport, TransportError, TransportKind};

/// Per-rank collective-communication endpoint for one cluster run.
pub struct Collectives {
    comm: CommEndpoint<u64>,
}

impl Collectives {
    /// Build the `n` connected collective endpoints of a run at once,
    /// sharing the run's byte accounting.
    pub fn fabric(kind: TransportKind, n: usize, stats: Arc<CommStats>) -> Vec<Collectives> {
        CommEndpoint::fabric(kind, n, stats).into_iter().map(|comm| Collectives { comm }).collect()
    }

    /// Wrap a single already-connected transport endpoint — how a worker
    /// process in a real multi-process cluster (see [`crate::tcp`])
    /// builds its collectives handle.
    pub fn from_transport(link: Box<dyn Transport<u64>>, stats: Arc<CommStats>) -> Collectives {
        Collectives { comm: CommEndpoint::from_transport(link, stats) }
    }

    /// This endpoint's rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Number of participants.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.comm.nprocs()
    }

    /// Flat all-gather: contribute `value`, receive the full vector of
    /// contributions indexed by rank.
    pub fn all_gather_u64(&mut self, value: u64) -> Result<Vec<u64>, TransportError> {
        for dst in 0..self.nprocs() {
            self.comm.send(dst, value)?;
        }
        self.comm.recv_one_from_each()
    }

    /// Barrier: returns once every participant has arrived.
    pub fn barrier(&mut self) -> Result<(), TransportError> {
        self.all_gather_u64(0).map(|_| ())
    }

    /// Sum-reduce a `u64` across all participants.
    pub fn all_reduce_sum_u64(&mut self, value: u64) -> Result<u64, TransportError> {
        Ok(self.all_gather_u64(value)?.iter().sum())
    }

    /// Max-reduce a `u64` across all participants.
    pub fn all_reduce_max_u64(&mut self, value: u64) -> Result<u64, TransportError> {
        Ok(self.all_gather_u64(value)?.into_iter().max().unwrap_or(0))
    }

    /// Sum-reduce an `f64` (transported via bit pattern, summed at reader).
    pub fn all_reduce_sum_f64(&mut self, value: f64) -> Result<f64, TransportError> {
        Ok(self.all_gather_u64(value.to_bits())?.iter().map(|&b| f64::from_bits(b)).sum())
    }

    /// Logical OR across participants (any participant true ⇒ all see true).
    pub fn all_reduce_any(&mut self, value: bool) -> Result<bool, TransportError> {
        Ok(self.all_reduce_sum_u64(value as u64)? > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [TransportKind; 3] = TransportKind::ALL;

    fn run_on(kind: TransportKind, n: usize, f: impl Fn(usize, &mut Collectives) + Sync) {
        let stats = CommStats::new(n);
        let fabric = Collectives::fabric(kind, n, stats);
        std::thread::scope(|s| {
            for mut coll in fabric {
                let f = &f;
                s.spawn(move || f(coll.rank(), &mut coll));
            }
        });
    }

    fn all(n: usize, f: impl Fn(usize, &mut Collectives) + Sync) {
        for kind in ALL {
            run_on(kind, n, &f);
        }
    }

    #[test]
    fn all_gather_returns_rank_indexed_values() {
        all(4, |rank, coll| {
            let got = coll.all_gather_u64((rank * 10) as u64).unwrap();
            assert_eq!(got, vec![0, 10, 20, 30]);
        });
    }

    #[test]
    fn repeated_rounds_do_not_mix() {
        all(3, |rank, coll| {
            for round in 0..50u64 {
                let got = coll.all_gather_u64(round * 100 + rank as u64).unwrap();
                assert_eq!(got, vec![round * 100, round * 100 + 1, round * 100 + 2]);
            }
        });
    }

    #[test]
    fn reductions() {
        all(4, |rank, coll| {
            assert_eq!(coll.all_reduce_sum_u64(2).unwrap(), 8);
            assert_eq!(coll.all_reduce_max_u64(rank as u64).unwrap(), 3);
            let s = coll.all_reduce_sum_f64(0.5).unwrap();
            assert!((s - 2.0).abs() < 1e-12);
            assert!(coll.all_reduce_any(rank == 2).unwrap());
            assert!(!coll.all_reduce_any(false).unwrap());
        });
    }

    #[test]
    fn single_process_collectives_are_identity() {
        all(1, |_rank, coll| {
            assert_eq!(coll.all_gather_u64(9).unwrap(), vec![9]);
            assert_eq!(coll.all_reduce_sum_u64(9).unwrap(), 9);
            coll.barrier().unwrap();
        });
    }

    #[test]
    fn collectives_charge_bytes() {
        for kind in ALL {
            let stats = CommStats::new(2);
            let fabric = Collectives::fabric(kind, 2, stats.clone());
            std::thread::scope(|s| {
                for mut coll in fabric {
                    s.spawn(move || coll.barrier().unwrap());
                }
            });
            // Each participant charges 8·(P−1) = 8 bytes.
            assert_eq!(stats.total_bytes(), 2 * 8, "{kind}");
        }
    }

    #[test]
    fn single_process_collectives_are_free() {
        for kind in [TransportKind::Bytes, TransportKind::Tcp] {
            let stats = CommStats::new(1);
            let fabric = Collectives::fabric(kind, 1, stats.clone());
            let mut coll = fabric.into_iter().next().unwrap();
            coll.barrier().unwrap();
            assert_eq!(coll.all_gather_u64(3).unwrap(), vec![3]);
            assert_eq!(stats.total_bytes(), 0, "{kind}: nprocs = 1 moves nothing over the wire");
        }
    }

    #[test]
    fn departed_peer_mid_collective_is_an_error_not_a_hang() {
        // Rank 1 goes away before contributing its word: rank 0's
        // all-gather must surface a typed transport error instead of
        // blocking forever or panicking mid-collective.
        let stats = CommStats::new(2);
        let mut fabric = Collectives::fabric(TransportKind::Tcp, 2, stats);
        let one = fabric.pop().expect("rank 1");
        let mut zero = fabric.pop().expect("rank 0");
        drop(one);
        let err = zero.all_gather_u64(1).unwrap_err();
        assert!(matches!(err, TransportError::Disconnected { .. }), "{err}");
    }
}
