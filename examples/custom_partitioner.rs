//! Extending the library: implement your own `EdgePartitioner` and compare
//! it against the built-in roster with the shared quality metrics and the
//! analytic communication model.
//!
//! Run with: `cargo run --release --example custom_partitioner`

use distributed_ne::graph::gen::{rmat, RmatConfig};
use distributed_ne::partition::hash_based::RandomPartitioner;
use distributed_ne::partition::{estimate_comm, PartitionId};
use distributed_ne::prelude::*;

/// A deliberately simple custom method: round-robin over sorted edges.
/// Perfect edge balance, no locality — a useful foil for the metrics.
struct RoundRobin;

impl EdgePartitioner for RoundRobin {
    fn name(&self) -> String {
        "RoundRobin".into()
    }

    fn partition(&self, g: &Graph, k: PartitionId) -> EdgeAssignment {
        EdgeAssignment::from_fn(g, k, |e| (e % k as u64) as PartitionId)
    }
}

fn main() {
    let graph = rmat(&RmatConfig::graph500(12, 8, 21));
    let k = 8;
    println!(
        "graph: |V| = {}, |E| = {}; comparing on {k} partitions\n",
        graph.num_vertices(),
        graph.num_edges()
    );
    let methods: Vec<Box<dyn EdgePartitioner>> = vec![
        Box::new(RoundRobin),
        Box::new(RandomPartitioner::new(21)),
        Box::new(DistributedNe::new(NeConfig::default().with_seed(21))),
    ];
    println!(
        "{:<14} {:>7} {:>7} {:>14} {:>18}",
        "method", "RF", "EB", "mirrors", "est. KB/superstep"
    );
    for m in methods {
        let a = m.partition(&graph, k);
        let q = PartitionQuality::measure(&graph, &a);
        let est = estimate_comm(&graph, &a);
        println!(
            "{:<14} {:>7.2} {:>7.2} {:>14} {:>18.1}",
            m.name(),
            q.replication_factor,
            q.edge_balance,
            est.mirrors,
            est.bytes_per_superstep as f64 / 1e3,
        );
    }
    println!(
        "\nRound-robin balances edges perfectly but replicates heavily;\n\
         the analytic model translates that into superstep traffic before\n\
         any application runs."
    );
}
