//! Peak-memory accounting reproducing the paper's "mem score" (§7.3).
//!
//! The paper snapshots the memory usage of all distributed processes every
//! 0.5 s and scores the snapshot `s_max` at which the *total* usage peaks,
//! normalized by `|E|`:
//!
//! ```text
//! MemScore = (1/|E|) * Σ_{pr} pr's memory usage (bytes) at s_max
//! ```
//!
//! Here processes report their live heap bytes explicitly at phase
//! boundaries ([`MemoryTracker::report`]) — a *logical* snapshot instead of
//! an OS timer, which is more reproducible and measures the same quantity
//! (bytes of partitioning state held at the worst moment).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared tracker of per-process live bytes and the global peak total.
#[derive(Debug)]
pub struct MemoryTracker {
    current: Vec<AtomicU64>,
    peak_total: AtomicU64,
}

/// Immutable summary extracted after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryReport {
    /// Highest total-across-processes live bytes observed at any report.
    pub peak_total_bytes: u64,
    /// Final per-process live bytes.
    pub final_per_process: Vec<u64>,
}

impl MemoryTracker {
    /// Tracker for `nprocs` processes, all zero.
    pub fn new(nprocs: usize) -> Arc<Self> {
        Arc::new(Self {
            current: (0..nprocs).map(|_| AtomicU64::new(0)).collect(),
            peak_total: AtomicU64::new(0),
        })
    }

    /// Report the live heap bytes of `rank`'s partitioning state. Updates
    /// the global peak if the new total is the highest seen.
    pub fn report(&self, rank: usize, live_bytes: usize) {
        self.current[rank].store(live_bytes as u64, Ordering::Relaxed);
        let total: u64 = self.current.iter().map(|a| a.load(Ordering::Relaxed)).sum();
        self.peak_total.fetch_max(total, Ordering::Relaxed);
    }

    /// Highest total observed so far.
    pub fn peak_total_bytes(&self) -> u64 {
        self.peak_total.load(Ordering::Relaxed)
    }

    /// Build the final report.
    pub fn report_summary(&self) -> MemoryReport {
        MemoryReport {
            peak_total_bytes: self.peak_total_bytes(),
            final_per_process: self.current.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
        }
    }

    /// The paper's mem score: peak total bytes normalized by edge count.
    pub fn mem_score(&self, num_edges: u64) -> f64 {
        if num_edges == 0 {
            0.0
        } else {
            self.peak_total_bytes() as f64 / num_edges as f64
        }
    }
}

/// True peak resident set size of the *whole process* in bytes (`VmHWM`
/// from `/proc/self/status`), as an external cross-check of the logical
/// accounting above: the logical tracker counts partitioning state only,
/// while the kernel's high-water mark also sees allocator slack, code,
/// and whatever else the process touched. Returns `None` where procfs is
/// unavailable (non-Linux).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Reset the kernel's resident-set high-water mark (write `5` to
/// `/proc/self/clear_refs`), so a following [`peak_rss_bytes`] reflects
/// only allocations made *after* the reset. `VmHWM` is monotonic over a
/// process's lifetime; without this reset, back-to-back measurements of
/// several runs would all report the largest one. Returns `false` where
/// the reset is unsupported.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", b"5").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_total_across_processes() {
        let t = MemoryTracker::new(2);
        t.report(0, 100);
        t.report(1, 200); // total 300
        t.report(0, 50); // total 250
        assert_eq!(t.peak_total_bytes(), 300);
        let r = t.report_summary();
        assert_eq!(r.final_per_process, vec![50, 200]);
    }

    #[test]
    fn mem_score_normalizes_by_edges() {
        let t = MemoryTracker::new(1);
        t.report(0, 64_000);
        assert_eq!(t.mem_score(1000), 64.0);
        assert_eq!(t.mem_score(0), 0.0);
    }

    #[test]
    fn zero_reports_keep_zero_peak() {
        let t = MemoryTracker::new(3);
        assert_eq!(t.peak_total_bytes(), 0);
        assert_eq!(t.report_summary().peak_total_bytes, 0);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_reads_vm_hwm() {
        // Any live Linux process has touched at least a page.
        let peak = peak_rss_bytes().expect("procfs should be readable on Linux");
        assert!(peak > 0);
        // After a reset the high-water mark restarts from the *current*
        // RSS, which can only be <= the old peak.
        if reset_peak_rss() {
            assert!(peak_rss_bytes().expect("still readable") <= peak);
        }
    }
}
