//! Figure 8 reproduction: replication factor of the real-world stand-ins
//! (a–g, |P| ∈ {4..64}) and of RMAT graphs across edge factors (h–j,
//! |P| = 64).
//!
//! Paper findings to reproduce:
//! * Distributed NE gives the lowest RF nearly everywhere, with the margin
//!   growing for more partitions and denser graphs;
//! * hash-family methods (Random, 2D, Oblivious, Ginger, Spinner) trail;
//! * indirect methods (Sheep, XtraPuLP) are strong only on some graphs;
//! * RF grows with the edge factor but is insensitive to the RMAT scale at
//!   a fixed edge factor (Fig 8h–j).

use dne_bench::datasets::{self, DATASETS};
use dne_bench::suite::figure8_roster;
use dne_bench::table::{f2, parse_mode, Table};
use dne_graph::gen::{rmat_parallel, RmatConfig};
use dne_graph::parallel::default_ingest_threads;
use dne_partition::PartitionQuality;

fn main() {
    let quick = parse_mode();
    let seed = 7;
    // --- Fig 8(a–g): real-world stand-ins across partition counts.
    let ks: &[u32] = if quick { &[4, 16, 64] } else { &[4, 8, 16, 32, 64] };
    let sets: Vec<&datasets::Dataset> =
        if quick { datasets::midsize() } else { DATASETS.iter().collect() };
    let mut table = Table::new(&["dataset", "|P|", "method", "RF", "EB"]);
    for d in sets {
        let g = if quick { d.build_quick() } else { d.build() };
        eprintln!("{}: |V|={} |E|={}", d.name, g.num_vertices(), g.num_edges());
        for &k in ks {
            for m in figure8_roster(seed) {
                let a = m.partition(&g, k);
                let q = PartitionQuality::measure(&g, &a);
                table.row(vec![
                    d.name.into(),
                    k.to_string(),
                    m.name(),
                    f2(q.replication_factor),
                    f2(q.edge_balance),
                ]);
            }
        }
    }
    println!("\n=== Figure 8(a-g): RF of real-world stand-ins ===");
    table.print();
    if let Ok(p) = table.write_tsv("fig8_real") {
        eprintln!("wrote {}", p.display());
    }

    // --- Fig 8(h–j): RMAT scales × edge factors at fixed |P| = 64.
    let scales: &[u32] = if quick { &[12, 13] } else { &[12, 13, 14] };
    let efs: &[u64] = if quick { &[4, 16, 64] } else { &[4, 16, 64, 256] };
    let k = 64;
    let mut table2 = Table::new(&["scale", "EF", "method", "RF"]);
    for &scale in scales {
        for &ef in efs {
            let g = rmat_parallel(&RmatConfig::graph500(scale, ef, seed), default_ingest_threads());
            eprintln!("RMAT s{scale} ef{ef}: |V|={} |E|={}", g.num_vertices(), g.num_edges());
            for m in figure8_roster(seed) {
                let a = m.partition(&g, k);
                let q = PartitionQuality::measure(&g, &a);
                table2.row(vec![
                    scale.to_string(),
                    ef.to_string(),
                    m.name(),
                    f2(q.replication_factor),
                ]);
            }
        }
    }
    println!("\n=== Figure 8(h-j): RF of RMAT graphs (|P| = {k}) ===");
    table2.print();
    if let Ok(p) = table2.write_tsv("fig8_rmat") {
        eprintln!("wrote {}", p.display());
    }
}
