//! `dne-tcp-worker` — run Distributed NE across *real OS processes* over
//! the TCP transport, and prove the result identical to the in-process
//! backends.
//!
//! Every process builds the same RMAT graph deterministically from the
//! generator spec, connects a `TcpProcessCluster` session (rank 0 hosts
//! the rendezvous, the others dial it), runs its rank via
//! `DistributedNe::run_rank`, then aggregates the non-timing metrics with
//! post-run collectives (charged *after* the accounting snapshot, so the
//! reported `COMM_*` columns cover exactly the algorithm's traffic).
//!
//! Modes:
//!
//! ```text
//! dne-tcp-worker [quick|full]                    # compare (default; used by run_all)
//! dne-tcp-worker compare [quick|full]            # loopback vs bytes vs multi-process tcp
//! dne-tcp-worker launch <nprocs> <scale> <degree> <seed>
//! dne-tcp-worker reference <transport> <nprocs> <scale> <degree> <seed>
//! dne-tcp-worker worker <rank> <nprocs> <addr> <scale> <degree> <seed> [--rejoin]
//! ```
//!
//! `compare` runs the loopback and bytes references in-process, launches
//! a real `<nprocs>`-process TCP partition of the same graph, prints all
//! three rows, writes `bench_results/tcp_compare.tsv`, and exits non-zero
//! unless every non-timing column (iterations, comm bytes/messages, RF,
//! EB, assignment fingerprint) is identical.
//!
//! `worker` additionally accepts `--bind <addr>` anywhere on the command
//! line: the local address this rank binds its mesh listener to (the
//! rendezvous itself listens at `<addr>`). The default binds loopback;
//! on a real cluster pass the NIC address (e.g. `--bind 10.0.0.7:0`) —
//! the rendezvous roster carries each rank's advertised `ip:port`, so
//! peers across machines dial the right interface.
//!
//! With `DNE_CHECKPOINT_EVERY` set, workers are *elastic*: a rank that
//! dies mid-run is detected by its peers as a broken socket, the
//! survivors re-rendezvous under the next bootstrap epoch, and the job
//! resumes from the newest commonly checkpointed round once the dead
//! rank is relaunched with `--rejoin` (same arguments plus the flag).
//! The resumed run's result row is bit-identical to an uninterrupted
//! run's in every column except the comm/timing ones (replayed rounds
//! re-send their traffic). The `recovery_smoke` binary drives this
//! end-to-end with an injected crash (`DNE_FAULT_ROUND`).
//!
//! A manual 4-process run on localhost (any fixed port works):
//!
//! ```text
//! dne-tcp-worker worker 0 4 127.0.0.1:7571 9 8 42   # prints DNE_TCP_ADDR, then the row
//! dne-tcp-worker worker 1 4 127.0.0.1:7571 9 8 42   # three more shells / machines
//! dne-tcp-worker worker 2 4 127.0.0.1:7571 9 8 42
//! dne-tcp-worker worker 3 4 127.0.0.1:7571 9 8 42
//! ```

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};
use std::time::Instant;

use dne_bench::table::Table;
use dne_core::{CheckpointPolicy, DistributedNe, NeConfig, NeMsg, RankSnapshot};
use dne_graph::hash::mix2;
use dne_graph::{gen, EdgeId, Graph};
use dne_runtime::{Ctx, TcpProcessCluster, TransportError, TransportKind, EPOCH_ANY};

/// Stdout marker carrying rank 0's bound rendezvous address.
const ADDR_TAG: &str = "DNE_TCP_ADDR";

/// Stdout marker carrying the finished run's TSV row.
const ROW_TAG: &str = "DNE_TCP_ROW";

/// Graph + run parameters shared by every mode.
#[derive(Clone, Copy)]
struct Spec {
    nprocs: usize,
    scale: u32,
    degree: u32,
    seed: u64,
}

impl Spec {
    fn quick() -> Self {
        Spec { nprocs: 4, scale: 8, degree: 4, seed: 42 }
    }

    fn full() -> Self {
        Spec { nprocs: 8, scale: 10, degree: 8, seed: 42 }
    }

    fn graph(&self) -> Graph {
        gen::rmat(&gen::RmatConfig::graph500(self.scale, self.degree as u64, self.seed))
    }

    fn partitioner(&self) -> DistributedNe {
        DistributedNe::new(NeConfig::default().with_seed(self.seed))
    }
}

/// One result row. Every column except `transport` is non-timing and must
/// be identical across backends; wall-clock goes to stderr only.
struct Row {
    transport: String,
    spec: Spec,
    iterations: u64,
    comm_bytes: u64,
    comm_msgs: u64,
    rf: f64,
    eb: f64,
    fingerprint: u64,
}

const HEADER: [&str; 11] = [
    "TRANSPORT",
    "NPROCS",
    "SCALE",
    "DEGREE",
    "SEED",
    "ITER",
    "COMM_BYTES",
    "COMM_MSGS",
    "RF",
    "EB",
    "FPRINT",
];

impl Row {
    fn cells(&self) -> Vec<String> {
        vec![
            self.transport.clone(),
            self.spec.nprocs.to_string(),
            self.spec.scale.to_string(),
            self.spec.degree.to_string(),
            self.spec.seed.to_string(),
            self.iterations.to_string(),
            self.comm_bytes.to_string(),
            self.comm_msgs.to_string(),
            format!("{:.6}", self.rf),
            format!("{:.6}", self.eb),
            format!("{:016x}", self.fingerprint),
        ]
    }

    /// The equality key: every column except the transport name.
    fn non_timing_key(&self) -> Vec<String> {
        self.cells()[1..].to_vec()
    }

    fn parse(line: &str) -> Option<Row> {
        let mut it = line.split('\t');
        let transport = it.next()?.to_string();
        let next_u64 = |it: &mut std::str::Split<'_, char>| it.next()?.parse::<u64>().ok();
        let nprocs = next_u64(&mut it)? as usize;
        let scale = next_u64(&mut it)? as u32;
        let degree = next_u64(&mut it)? as u32;
        let seed = next_u64(&mut it)?;
        let iterations = next_u64(&mut it)?;
        let comm_bytes = next_u64(&mut it)?;
        let comm_msgs = next_u64(&mut it)?;
        let rf = it.next()?.parse::<f64>().ok()?;
        let eb = it.next()?.parse::<f64>().ok()?;
        let fingerprint = u64::from_str_radix(it.next()?, 16).ok()?;
        Some(Row {
            transport,
            spec: Spec { nprocs, scale, degree, seed },
            iterations,
            comm_bytes,
            comm_msgs,
            rf,
            eb,
            fingerprint,
        })
    }
}

/// Hash of one partition's (sorted) edge-id set.
fn partition_fingerprint(edges: &mut [EdgeId]) -> u64 {
    edges.sort_unstable();
    edges.iter().fold(0x444E_4531u64, |h, &e| mix2(h, e))
}

/// Distinct endpoint count of an edge set — the partition's `|V(Ep)|`.
fn distinct_endpoints(g: &Graph, edges: &[EdgeId]) -> u64 {
    let mut verts: Vec<u64> = Vec::with_capacity(edges.len() * 2);
    for &e in edges {
        let (u, v) = g.edge(e);
        verts.push(u);
        verts.push(v);
    }
    verts.sort_unstable();
    verts.dedup();
    verts.len() as u64
}

/// Raw per-run quantities gathered identically by the reference path
/// (from the full assignment) and the worker path (via post-run
/// collectives).
struct Metrics {
    iterations: u64,
    comm_bytes: u64,
    comm_msgs: u64,
    /// Per-partition edge counts, indexed by rank.
    sizes: Vec<u64>,
    /// Total `Σ_p |V(Ep)|` across partitions.
    replicas: u64,
    /// Per-partition edge-set hashes, indexed by rank.
    fingerprints: Vec<u64>,
}

/// Fold the gathered quantities into the row. All arithmetic here is
/// shared by the reference and worker paths, so the two compute
/// byte-identical strings.
fn assemble_row(transport: String, spec: Spec, g: &Graph, metrics: Metrics) -> Row {
    let m = g.num_edges();
    let k = spec.nprocs as u64;
    let max_size = metrics.sizes.iter().copied().max().unwrap_or(0);
    let fingerprint = metrics.fingerprints.iter().fold(0x4D45_5348u64, |h, &f| mix2(h, f));
    Row {
        transport,
        spec,
        iterations: metrics.iterations,
        comm_bytes: metrics.comm_bytes,
        comm_msgs: metrics.comm_msgs,
        rf: metrics.replicas as f64 / g.num_vertices() as f64,
        eb: max_size as f64 * k as f64 / m as f64,
        fingerprint,
    }
}

/// In-process reference run on an explicit backend.
fn reference_row(kind: TransportKind, spec: Spec) -> Row {
    let g = spec.graph();
    let ne = DistributedNe::new(NeConfig::default().with_seed(spec.seed).with_transport(kind));
    let (assignment, stats) = ne.partition_with_stats(&g, spec.nprocs as u32);
    let mut sizes = Vec::with_capacity(spec.nprocs);
    let mut fingerprints = Vec::with_capacity(spec.nprocs);
    let mut replicas = 0;
    for mut edges in assignment.edges_by_partition() {
        sizes.push(edges.len() as u64);
        replicas += distinct_endpoints(&g, &edges);
        fingerprints.push(partition_fingerprint(&mut edges));
    }
    eprintln!("[reference {kind}: ET {:.3}s]", stats.elapsed.as_secs_f64());
    let metrics = Metrics {
        iterations: stats.iterations,
        comm_bytes: stats.comm_bytes,
        comm_msgs: stats.comm_msgs,
        sizes,
        replicas,
        fingerprints,
    };
    assemble_row(kind.to_string(), spec, &g, metrics)
}

/// Agree on the round every rank resumes from — the *minimum* of the
/// per-rank newest checkpoints (every rank is guaranteed to hold it:
/// snapshots retain two generations and rounds advance in lock-step) —
/// and load this rank's snapshot of that round.
fn agree_and_load(
    ctx: &mut Ctx<NeMsg>,
    cp: &CheckpointPolicy,
    rank: usize,
) -> Result<RankSnapshot, String> {
    let mine = RankSnapshot::latest(&cp.dir, rank as u32)
        .map_err(|e| format!("rank {rank}: listing snapshots in {}: {e}", cp.dir.display()))?
        .map(|(round, _)| round)
        .ok_or_else(|| format!("rank {rank}: no snapshot to resume in {}", cp.dir.display()))?;
    let rounds = ctx
        .try_all_gather_u64(mine)
        .map_err(|e| format!("rank {rank}: checkpoint-round agreement failed: {e}"))?;
    let round = rounds.iter().copied().min().expect("at least one rank");
    eprintln!("[rank {rank}: resuming from checkpoint round {round}]");
    RankSnapshot::load_round(&cp.dir, rank as u32, round)
        .map_err(|e| format!("rank {rank}: loading round-{round} snapshot: {e}"))
}

/// One rank of the real multi-process run. Rank 0 prints the rendezvous
/// address, then (once every rank finished) the result row. `bind`, when
/// given, is the local address for this rank's mesh listener.
///
/// With checkpointing enabled (`DNE_CHECKPOINT_EVERY`), a peer death
/// surfacing as [`TransportError::Disconnected`] triggers recovery instead
/// of failure: the survivors re-rendezvous under the next bootstrap epoch
/// (rank 0 bumps the counter; everyone else rejoins with [`EPOCH_ANY`]),
/// agree on the newest commonly checkpointed round, and resume from their
/// snapshots. A `--rejoin` worker is the restarted incarnation of a dead
/// rank: it skips the fresh start and enters directly through that same
/// resume path.
fn worker(
    rank: usize,
    nprocs: usize,
    addr: &str,
    bind: Option<&str>,
    rejoin: bool,
    spec: Spec,
) -> Result<(), String> {
    let g = spec.graph();
    let part = spec.partitioner();
    let checkpoint = part.config().resolved_checkpoint();
    if rejoin {
        if rank == 0 {
            return Err("rank 0 owns the rendezvous and cannot --rejoin; \
                        restart the whole job instead"
                .into());
        }
        if checkpoint.is_none() {
            return Err(format!(
                "--rejoin needs checkpointing (set {})",
                CheckpointPolicy::EVERY_ENV_VAR
            ));
        }
    }
    let mut cluster = if rank == 0 {
        let host = TcpProcessCluster::host(nprocs, addr).map_err(|e| e.to_string())?;
        println!("{ADDR_TAG} {}", host.addr());
        std::io::stdout().flush().ok();
        host
    } else {
        TcpProcessCluster::join(rank, nprocs, addr).map_err(|e| e.to_string())?
    };
    if let Some(b) = bind {
        cluster = cluster.with_bind(b);
    }
    let first_epoch = if rejoin { EPOCH_ANY } else { 0 };
    let mut session = cluster.connect_epoch::<NeMsg>(first_epoch).map_err(|e| e.to_string())?;
    let mut resume = match (&checkpoint, rejoin) {
        (Some(cp), true) => Some(agree_and_load(&mut session.ctx, cp, rank)?),
        _ => None,
    };
    let started = Instant::now();
    let mut run = loop {
        match part.run_rank_from(&mut session.ctx, &g, nprocs as u32, resume.take()) {
            Ok(run) => break run,
            Err(TransportError::Disconnected { peer }) if checkpoint.is_some() => {
                let cp = checkpoint.as_ref().expect("guarded by the match arm");
                let dead = peer.map_or("a peer".to_string(), |p| format!("rank {p}"));
                let next = if rank == 0 { session.epoch + 1 } else { EPOCH_ANY };
                eprintln!(
                    "[rank {rank}: {dead} died (epoch {}); re-rendezvousing for recovery]",
                    session.epoch
                );
                drop(session);
                session = cluster
                    .connect_epoch::<NeMsg>(next)
                    .map_err(|e| format!("rank {rank}: recovery bootstrap failed: {e}"))?;
                resume = Some(agree_and_load(&mut session.ctx, cp, rank)?);
            }
            Err(e) => {
                return Err(format!("rank {rank}: transport failure during Distributed NE: {e}"))
            }
        }
    };
    let elapsed = started.elapsed();
    // Snapshot the algorithm's accounting *before* the metric collectives
    // below add their own traffic.
    let my_bytes = session.comm.bytes_sent_by(rank);
    let my_msgs = session.comm.msgs_sent_by(rank);
    let ctx = &mut session.ctx;
    let gather = |e: dne_runtime::TransportError| format!("rank {rank}: metric gather failed: {e}");
    let metrics = Metrics {
        iterations: ctx.try_all_reduce_max_u64(run.iterations).map_err(gather)?,
        comm_bytes: ctx.try_all_reduce_sum_u64(my_bytes).map_err(gather)?,
        comm_msgs: ctx.try_all_reduce_sum_u64(my_msgs).map_err(gather)?,
        sizes: ctx.try_all_gather_u64(run.edges.len() as u64).map_err(gather)?,
        replicas: ctx.try_all_reduce_sum_u64(distinct_endpoints(&g, &run.edges)).map_err(gather)?,
        fingerprints: ctx
            .try_all_gather_u64(partition_fingerprint(&mut run.edges))
            .map_err(gather)?,
    };
    eprintln!("[worker rank {rank}/{nprocs}: ET {:.3}s]", elapsed.as_secs_f64());
    if rank == 0 {
        let row = assemble_row("tcp".into(), spec, &g, metrics);
        println!("{ROW_TAG}\t{}", row.cells().join("\t"));
        std::io::stdout().flush().ok();
    }
    Ok(())
}

/// Spawn `nprocs` worker processes of this same binary and collect rank
/// 0's result row.
fn launch_row(spec: Spec) -> Result<Row, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let spec_args = [spec.scale.to_string(), spec.degree.to_string(), spec.seed.to_string()];
    let mut rank0 = Command::new(&exe)
        .args(["worker", "0", &spec.nprocs.to_string(), "127.0.0.1:0"])
        .args(&spec_args)
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawning rank 0: {e}"))?;
    let mut lines = BufReader::new(rank0.stdout.take().expect("piped stdout")).lines();
    // Every spawned worker lives in this reaper: any early error return
    // kills and reaps the whole fleet instead of leaking orphans (which
    // could otherwise linger in bootstrap accept loops).
    let mut fleet = Fleet(vec![rank0]);
    let addr = loop {
        let line = lines
            .next()
            .ok_or("rank 0 exited before advertising its rendezvous address")?
            .map_err(|e| format!("reading rank 0 stdout: {e}"))?;
        if let Some(addr) = line.strip_prefix(ADDR_TAG) {
            break addr.trim().to_string();
        }
    };
    for rank in 1..spec.nprocs {
        let peer = Command::new(&exe)
            .args(["worker", &rank.to_string(), &spec.nprocs.to_string(), &addr])
            .args(&spec_args)
            .stdout(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawning rank {rank}: {e}"))?;
        fleet.0.push(peer);
    }
    let row = loop {
        let line = lines
            .next()
            .ok_or("rank 0 exited without printing a result row")?
            .map_err(|e| format!("reading rank 0 stdout: {e}"))?;
        if let Some(cells) = line.strip_prefix(ROW_TAG) {
            break Row::parse(cells.trim_start_matches('\t'))
                .ok_or_else(|| format!("malformed result row {line:?}"))?;
        }
    };
    // Reap every rank before judging statuses so a failure mid-loop
    // cannot leave un-waited children behind.
    let mut failure = None;
    for (rank, child) in fleet.0.iter_mut().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                failure.get_or_insert(format!("rank {rank} exited with {status}"));
            }
            Err(e) => {
                failure.get_or_insert(format!("waiting for rank {rank}: {e}"));
            }
        }
    }
    fleet.0.clear(); // all reaped; nothing left for the drop guard
    match failure {
        None => Ok(row),
        Some(f) => Err(f),
    }
}

/// Drop guard over the spawned worker fleet: on an early error return,
/// kill and reap whatever is still running.
struct Fleet(Vec<std::process::Child>);

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// The acceptance gate: loopback vs bytes (in-process) vs tcp (real
/// processes) must agree on every non-timing column.
fn compare(spec: Spec) -> Result<(), String> {
    let rows = vec![
        reference_row(TransportKind::Loopback, spec),
        reference_row(TransportKind::Bytes, spec),
        launch_row(spec)?,
    ];
    let mut table = Table::new(&HEADER);
    for row in &rows {
        table.row(row.cells());
    }
    table.print();
    if let Ok(path) = table.write_tsv("tcp_compare") {
        println!("wrote {}", path.display());
    }
    let reference = rows[0].non_timing_key();
    for row in &rows[1..] {
        if row.non_timing_key() != reference {
            return Err(format!(
                "transport {} diverges from loopback:\n  loopback: {:?}\n  {}: {:?}",
                row.transport,
                reference,
                row.transport,
                row.non_timing_key()
            ));
        }
    }
    println!(
        "OK: {} backends agree on all non-timing columns ({} processes, scale {})",
        rows.len(),
        spec.nprocs,
        spec.scale
    );
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "usage: dne-tcp-worker [quick|full]\n\
         \x20      dne-tcp-worker compare [quick|full]\n\
         \x20      dne-tcp-worker launch <nprocs> <scale> <degree> <seed>\n\
         \x20      dne-tcp-worker reference <loopback|bytes|tcp> <nprocs> <scale> <degree> <seed>\n\
         \x20      dne-tcp-worker worker <rank> <nprocs> <addr> <scale> <degree> <seed> \
         [--bind <addr>] [--rejoin]"
    );
    std::process::exit(2);
}

fn arg<T: std::str::FromStr>(args: &[String], i: usize, what: &str) -> T {
    args.get(i).and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        eprintln!("missing or invalid <{what}> argument");
        usage()
    })
}

fn spec_from(args: &[String], from: usize, nprocs: usize) -> Spec {
    Spec {
        nprocs,
        scale: arg(args, from, "scale"),
        degree: arg(args, from + 1, "degree"),
        seed: arg(args, from + 2, "seed"),
    }
}

fn preset(args: &[String], i: usize) -> Spec {
    match args.get(i).map(String::as_str) {
        Some("full") => Spec::full(),
        Some("quick") | None => Spec::quick(),
        Some(other) => {
            eprintln!("unknown mode {other:?}");
            usage()
        }
    }
}

/// Remove `--bind <addr>` (both tokens) from `args`, returning the addr.
/// A trailing `--bind` with no value is a usage error.
fn take_bind(args: &mut Vec<String>) -> Option<String> {
    let i = args.iter().position(|a| a == "--bind")?;
    if i + 1 >= args.len() {
        eprintln!("--bind requires an <addr> value");
        usage();
    }
    let addr = args.remove(i + 1);
    args.remove(i);
    Some(addr)
}

/// Remove `--rejoin` from `args`, returning whether it was present.
fn take_rejoin(args: &mut Vec<String>) -> bool {
    match args.iter().position(|a| a == "--rejoin") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let bind = take_bind(&mut args);
    let rejoin = take_rejoin(&mut args);
    let result = match args.get(1).map(String::as_str) {
        None | Some("quick") | Some("full") => compare(preset(&args, 1)),
        Some("compare") => compare(preset(&args, 2)),
        Some("launch") => {
            let nprocs: usize = arg(&args, 2, "nprocs");
            launch_row(spec_from(&args, 3, nprocs)).map(|row| {
                let mut table = Table::new(&HEADER);
                table.row(row.cells());
                table.print();
            })
        }
        Some("reference") => {
            let kind: TransportKind = arg(&args, 2, "transport");
            let nprocs: usize = arg(&args, 3, "nprocs");
            let row = reference_row(kind, spec_from(&args, 4, nprocs));
            let mut table = Table::new(&HEADER);
            table.row(row.cells());
            table.print();
            Ok(())
        }
        Some("worker") => {
            let rank: usize = arg(&args, 2, "rank");
            let nprocs: usize = arg(&args, 3, "nprocs");
            let addr: String = arg(&args, 4, "addr");
            worker(rank, nprocs, &addr, bind.as_deref(), rejoin, spec_from(&args, 5, nprocs))
        }
        Some(_) => usage(),
    };
    if let Err(e) = result {
        eprintln!("dne-tcp-worker: {e}");
        std::process::exit(1);
    }
}
