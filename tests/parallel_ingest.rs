//! Property tests for the parallel ingestion subsystem: every parallel
//! path must be byte-identical to its sequential counterpart for every
//! thread count, and the parallel generators must be seed-deterministic
//! regardless of how many threads sample the stream.

use distributed_ne::graph::gen::{
    barabasi_albert, barabasi_albert_parallel, chung_lu, chung_lu_parallel, erdos_renyi,
    erdos_renyi_parallel, rmat, rmat_parallel, RmatConfig,
};
use distributed_ne::graph::{io, EdgeListBuilder, Graph};
use proptest::prelude::*;

const THREADS: &[usize] = &[1, 2, 8];

fn build_serial(pairs: &[(u64, u64)], n: u64) -> Graph {
    let mut b = EdgeListBuilder::with_capacity(pairs.len());
    b.extend_edges(pairs.iter().copied());
    b.into_graph(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `build_parallel(t)` produces a byte-identical `Graph` for t ∈
    /// {1, 2, 8}. Edge counts straddle the parallel cutover so both the
    /// sequential fallback and the chunk/merge/parallel-CSR path run.
    #[test]
    fn build_parallel_is_byte_identical(
        pairs in prop::collection::vec((0u64..600, 0u64..600), 0..12_000),
        extra_vertices in 0u64..4,
    ) {
        let n = 600 + extra_vertices;
        let serial = build_serial(&pairs, n);
        for &t in THREADS {
            let mut b = EdgeListBuilder::with_capacity(pairs.len());
            b.extend_edges(pairs.iter().copied());
            prop_assert_eq!(&serial, &b.build_parallel(n, t), "threads {}", t);
        }
    }

    /// `finish_parallel` matches `finish` exactly (same sorted dedup list).
    #[test]
    fn finish_parallel_matches_finish(
        pairs in prop::collection::vec((0u64..300, 0u64..300), 0..10_000),
        threads in 1usize..9,
    ) {
        let mut a = EdgeListBuilder::new();
        a.extend_edges(pairs.iter().copied());
        let mut b = EdgeListBuilder::new();
        b.extend_edges(pairs.iter().copied());
        prop_assert_eq!(a.finish(), b.finish_parallel(threads));
    }

    /// The parallel RMAT generator is seed-deterministic across thread
    /// counts and equals the serial stream. Scale 11 × EF 16 spans
    /// multiple sample chunks.
    #[test]
    fn rmat_parallel_seed_deterministic(seed in 0u64..1000) {
        let cfg = RmatConfig::graph500(11, 16, seed);
        let serial = rmat(&cfg);
        for &t in THREADS {
            prop_assert_eq!(&serial, &rmat_parallel(&cfg, t), "threads {}", t);
        }
    }

    /// Same for Erdős–Rényi (including its bounded-attempts semantics)
    /// and Chung–Lu.
    #[test]
    fn random_generators_parallel_seed_deterministic(seed in 0u64..500) {
        let er = erdos_renyi(400, 9000, seed);
        let cl = chung_lu(500, 20_000, 2.4, seed);
        for &t in THREADS {
            prop_assert_eq!(&er, &erdos_renyi_parallel(400, 9000, seed, t), "threads {}", t);
            prop_assert_eq!(&cl, &chung_lu_parallel(500, 20_000, 2.4, seed, t), "threads {}", t);
        }
    }

    /// Barabási–Albert: sequential growth, parallel finalization.
    #[test]
    fn barabasi_parallel_seed_deterministic(seed in 0u64..200) {
        let serial = barabasi_albert(2000, 3, seed);
        for &t in THREADS {
            prop_assert_eq!(&serial, &barabasi_albert_parallel(2000, 3, seed, t), "threads {}", t);
        }
    }

    /// The chunk-framed on-disk format round-trips exactly through both
    /// the serial and the parallel reader, for any frame size.
    #[test]
    fn chunked_io_roundtrips(seed in 0u64..50, chunk in 1usize..5000) {
        let g = rmat(&RmatConfig::graph500(10, 8, seed));
        let dir = std::env::temp_dir().join("dne_parallel_ingest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("g_{seed}_{chunk}.chunked"));
        io::write_chunked(&g, &p, chunk).unwrap();
        prop_assert_eq!(&g, &io::read_chunked(&p).unwrap());
        prop_assert_eq!(&g, &io::read_chunked_parallel(&p, 4).unwrap());
        std::fs::remove_file(&p).ok();
    }
}
