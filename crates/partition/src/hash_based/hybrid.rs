//! Hybrid hashing (PowerLyra's hybrid-cut, Chen et al., EuroSys 2015).
//!
//! PowerLyra differentiates low-degree from high-degree vertices: edges of a
//! low-degree vertex are co-located by hashing that vertex (edge-cut-like
//! treatment, zero replication for the low-degree side), while edges whose
//! relevant endpoint is high-degree are hashed by the *other* endpoint
//! (vertex-cut treatment for hubs). The degree threshold θ separates the
//! two regimes.
//!
//! Adaptation note: PowerLyra defines hybrid-cut on *directed* graphs
//! (anchored at the in-edge destination). The paper's graphs are undirected
//! (§2.1), so we anchor at the lower-degree endpoint, falling back to the
//! higher-degree endpoint's hash when the low side exceeds θ — the same
//! low-cut/high-cut split in undirected form.

use crate::assignment::{EdgeAssignment, PartitionId};
use crate::traits::EdgePartitioner;
use dne_graph::hash::mix2;
use dne_graph::Graph;

/// PowerLyra-style hybrid hash partitioner.
#[derive(Debug, Clone)]
pub struct HybridHashPartitioner {
    seed: u64,
    /// Degree threshold θ separating low-degree (edge-cut treatment) from
    /// high-degree (vertex-cut treatment) vertices. PowerLyra's default 100.
    pub threshold: u64,
}

impl HybridHashPartitioner {
    /// Seeded constructor with PowerLyra's default θ = 100.
    pub fn new(seed: u64) -> Self {
        Self { seed, threshold: 100 }
    }

    /// Override the degree threshold.
    pub fn with_threshold(mut self, theta: u64) -> Self {
        self.threshold = theta;
        self
    }
}

impl EdgePartitioner for HybridHashPartitioner {
    fn name(&self) -> String {
        "HybridHash".into()
    }

    fn partition(&self, g: &Graph, k: PartitionId) -> EdgeAssignment {
        EdgeAssignment::from_fn(g, k, |e| {
            let (u, v) = g.edge(e);
            let (lo, hi) = if g.degree(u) <= g.degree(v) { (u, v) } else { (v, u) };
            let anchor = if g.degree(lo) <= self.threshold { lo } else { hi };
            (mix2(self.seed, anchor) % k as u64) as PartitionId
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::PartitionQuality;
    use dne_graph::gen;

    #[test]
    fn low_degree_vertices_not_replicated() {
        let g = gen::star(500);
        let a = HybridHashPartitioner::new(1).partition(&g, 4);
        let q = PartitionQuality::measure(&g, &a);
        // Spokes are low-degree → anchored by themselves → one replica.
        assert!(q.total_replicas <= 499 + 4);
    }

    #[test]
    fn threshold_zero_degenerates_to_high_anchor() {
        let g = gen::cycle(20);
        let a = HybridHashPartitioner::new(1).with_threshold(0).partition(&g, 4);
        assert!(a.is_valid_for(&g));
    }

    #[test]
    fn valid_on_skewed_graph() {
        let g = gen::rmat(&gen::RmatConfig::graph500(9, 8, 7));
        let a = HybridHashPartitioner::new(2).partition(&g, 16);
        assert!(a.is_valid_for(&g));
        let q = PartitionQuality::measure(&g, &a);
        assert!(q.replication_factor >= 1.0 - 1e-9 || g.vertices().any(|v| g.degree(v) == 0));
    }
}
