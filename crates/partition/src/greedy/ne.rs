//! Sequential NE — neighbor-expansion edge partitioning (Zhang et al.,
//! KDD 2017), exactly the expansion scheme of the paper's §3.1:
//!
//! 1. each partition starts from a random vertex with an empty edge set;
//! 2. it repeatedly selects the boundary vertex with minimal `D_rest`
//!    (degree among still-unallocated edges — Equation 4) and allocates all
//!    its unallocated one-hop edges;
//! 3. it then allocates two-hop edges that cannot increase replication,
//!    i.e. edges whose both endpoints are already in `V(E_p)`
//!    (Condition 5);
//! 4. a partition stops when it reaches `α·|E|/|P|`; the next partition
//!    starts on the remaining edges; the last one absorbs the remainder.
//!
//! Unlike the distributed variant, the sequential algorithm maintains
//! *exact* `D_rest` scores (lazy heap re-insertion on staleness), which is
//! why it achieves the best RF of all methods in Table 4.

use crate::assignment::{EdgeAssignment, PartitionId, UNASSIGNED};
use crate::traits::EdgePartitioner;
use dne_graph::hash::SplitMix64;
use dne_graph::{EdgeId, Graph, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sequential neighbor-expansion partitioner (offline, single-threaded).
#[derive(Debug, Clone)]
pub struct NePartitioner {
    seed: u64,
    /// Imbalance factor α in the capacity `α·|E|/|P|` (paper uses 1.1).
    pub alpha: f64,
}

impl NePartitioner {
    /// Seeded constructor with the paper's α = 1.1.
    pub fn new(seed: u64) -> Self {
        Self { seed, alpha: 1.1 }
    }

    /// Override the imbalance factor.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha >= 1.0, "alpha must be >= 1");
        self.alpha = alpha;
        self
    }
}

struct NeState<'g> {
    g: &'g Graph,
    /// Edge → partition (UNASSIGNED until allocated).
    parts: Vec<PartitionId>,
    /// Exact remaining degree per vertex.
    rest: Vec<u64>,
    /// `stamp[v] == current partition + 1` ⇔ v ∈ V(E_p) of the partition
    /// currently expanding.
    stamp: Vec<u32>,
    /// Lazy min-heap of (D_rest, vertex) for the current partition.
    heap: BinaryHeap<Reverse<(u64, VertexId)>>,
    /// Scan cursor over the shuffled vertex order for random restarts.
    shuffled: Vec<VertexId>,
    cursor: usize,
    allocated: u64,
}

impl<'g> NeState<'g> {
    fn new(g: &'g Graph, seed: u64) -> Self {
        let n = g.num_vertices() as usize;
        let mut shuffled: Vec<VertexId> = (0..g.num_vertices()).collect();
        let mut rng = SplitMix64::new(seed ^ 0x4E45_5345_4544); // "NESEED"
        for i in (1..shuffled.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            shuffled.swap(i, j);
        }
        Self {
            g,
            parts: vec![UNASSIGNED; g.num_edges() as usize],
            rest: (0..g.num_vertices()).map(|v| g.degree(v)).collect(),
            stamp: vec![0; n],
            heap: BinaryHeap::new(),
            shuffled,
            cursor: 0,
            allocated: 0,
        }
    }

    #[inline]
    fn in_part(&self, v: VertexId, p: PartitionId) -> bool {
        self.stamp[v as usize] == p + 1
    }

    #[inline]
    fn allocate(&mut self, e: EdgeId, p: PartitionId) {
        debug_assert_eq!(self.parts[e as usize], UNASSIGNED);
        self.parts[e as usize] = p;
        let (u, v) = self.g.edge(e);
        self.rest[u as usize] -= 1;
        self.rest[v as usize] -= 1;
        self.allocated += 1;
    }

    /// Add `v` to V(E_p) and to the boundary heap.
    fn join(&mut self, v: VertexId, p: PartitionId) {
        if !self.in_part(v, p) {
            self.stamp[v as usize] = p + 1;
            self.heap.push(Reverse((self.rest[v as usize], v)));
        }
    }

    /// Next vertex with unallocated edges, scanning the shuffled order.
    fn random_free_vertex(&mut self) -> Option<VertexId> {
        while self.cursor < self.shuffled.len() {
            let v = self.shuffled[self.cursor];
            if self.rest[v as usize] > 0 {
                return Some(v);
            }
            self.cursor += 1;
        }
        None
    }

    /// Expand vertex `v` for partition `p`: one-hop allocation plus the
    /// replication-free two-hop closure (Condition 5).
    fn expand(&mut self, v: VertexId, p: PartitionId) {
        self.join(v, p);
        let mut new_boundary: Vec<VertexId> = Vec::new();
        for i in 0..self.g.incident_edges(v).len() {
            let e = self.g.incident_edges(v)[i];
            if self.parts[e as usize] == UNASSIGNED {
                let u = self.g.opposite(e, v);
                self.allocate(e, p);
                if !self.in_part(u, p) {
                    self.join(u, p);
                    new_boundary.push(u);
                }
            }
        }
        // Two-hop: edges between new boundary vertices and any vertex
        // already in V(E_p) never increase replication.
        for u in new_boundary {
            for i in 0..self.g.incident_edges(u).len() {
                let e = self.g.incident_edges(u)[i];
                if self.parts[e as usize] == UNASSIGNED {
                    let w = self.g.opposite(e, u);
                    if self.in_part(w, p) {
                        self.allocate(e, p);
                    }
                }
            }
        }
    }
}

impl EdgePartitioner for NePartitioner {
    fn name(&self) -> String {
        "NE".into()
    }

    fn partition(&self, g: &Graph, k: PartitionId) -> EdgeAssignment {
        assert!(k >= 1);
        let m = g.num_edges();
        if m == 0 {
            return EdgeAssignment::new(vec![], k);
        }
        let mut st = NeState::new(g, self.seed);
        let limit = (self.alpha * m as f64 / k as f64).ceil() as u64;
        for p in 0..k {
            st.heap.clear();
            let mut psize = 0u64;
            let last = p == k - 1;
            while (last || psize < limit) && st.allocated < m {
                // Pop the freshest minimal-D_rest boundary vertex; stale
                // entries are re-pushed with their exact current score.
                let v = loop {
                    match st.heap.pop() {
                        Some(Reverse((score, v))) => {
                            if !st.in_part(v, p) {
                                continue; // stamp overwritten by later partition logic
                            }
                            let cur = st.rest[v as usize];
                            if cur == 0 {
                                continue; // fully allocated, no longer boundary
                            }
                            if cur != score {
                                st.heap.push(Reverse((cur, v)));
                                continue;
                            }
                            break Some(v);
                        }
                        None => break None,
                    }
                };
                let v = match v {
                    Some(v) => v,
                    None => match st.random_free_vertex() {
                        Some(v) => v,
                        None => break,
                    },
                };
                let before = st.allocated;
                st.expand(v, p);
                psize += st.allocated - before;
            }
            if st.allocated == m {
                break;
            }
        }
        // Safety net: α ≥ 1 guarantees capacity, but cap rounding can leave
        // a trickle of isolated edges; give them to the smallest partition.
        if st.allocated < m {
            let mut sizes = vec![0u64; k as usize];
            for &p in &st.parts {
                if p != UNASSIGNED {
                    sizes[p as usize] += 1;
                }
            }
            for e in 0..m {
                if st.parts[e as usize] == UNASSIGNED {
                    let p =
                        (0..k).min_by_key(|&p| (sizes[p as usize], p)).expect("k >= 1 partitions");
                    st.parts[e as usize] = p;
                    sizes[p as usize] += 1;
                }
            }
        }
        EdgeAssignment::new(st.parts, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_based::RandomPartitioner;
    use crate::quality::PartitionQuality;
    use crate::streaming::HdrfPartitioner;
    use dne_graph::gen;

    #[test]
    fn covers_all_edges() {
        let g = gen::rmat(&gen::RmatConfig::graph500(9, 8, 1));
        let a = NePartitioner::new(1).partition(&g, 8);
        assert!(a.is_valid_for(&g));
        assert!(a.as_slice().iter().all(|&p| p < 8));
    }

    #[test]
    fn respects_balance_cap_approximately() {
        let g = gen::rmat(&gen::RmatConfig::graph500(10, 8, 2));
        let a = NePartitioner::new(1).partition(&g, 8);
        let q = PartitionQuality::measure(&g, &a);
        // Expansion stops at the cap but may overshoot by one vertex's
        // edge bundle; allow a small margin above α.
        assert!(q.edge_balance < 1.35, "edge balance {}", q.edge_balance);
    }

    #[test]
    fn beats_hash_and_streaming_on_skewed_graphs() {
        let g = gen::rmat(&gen::RmatConfig::graph500(10, 8, 3));
        let qn = PartitionQuality::measure(&g, &NePartitioner::new(1).partition(&g, 16));
        let qr = PartitionQuality::measure(&g, &RandomPartitioner::new(1).partition(&g, 16));
        let qh = PartitionQuality::measure(&g, &HdrfPartitioner::new(1).partition(&g, 16));
        assert!(qn.replication_factor < qr.replication_factor);
        assert!(
            qn.replication_factor < qh.replication_factor,
            "NE {} should beat HDRF {} (Table 4 ordering)",
            qn.replication_factor,
            qh.replication_factor
        );
    }

    #[test]
    fn perfect_on_two_cliques() {
        let g = gen::two_cliques_bridge(10);
        let a = NePartitioner::new(4).partition(&g, 2);
        let q = PartitionQuality::measure(&g, &a);
        // Ideal RF here is (20 + 2 replicas of bridge)/20 ≈ 1.05; NE should
        // land very close.
        assert!(q.replication_factor < 1.35, "RF {}", q.replication_factor);
    }

    #[test]
    fn single_partition_takes_everything() {
        let g = gen::cycle(20);
        let a = NePartitioner::new(1).partition(&g, 1);
        assert!(a.as_slice().iter().all(|&p| p == 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::rmat(&gen::RmatConfig::graph500(8, 4, 5));
        assert_eq!(NePartitioner::new(9).partition(&g, 4), NePartitioner::new(9).partition(&g, 4));
    }

    #[test]
    fn empty_graph() {
        let g = dne_graph::Graph::from_canonical_edges(0, vec![]);
        let a = NePartitioner::new(1).partition(&g, 4);
        assert_eq!(a.num_edges(), 0);
    }
}
