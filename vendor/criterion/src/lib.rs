//! Offline shim for the subset of `criterion` used by this workspace.
//!
//! The container building this repo cannot reach crates.io, so this crate
//! provides an API-compatible, dependency-free harness: same macros and
//! builder surface, wall-clock timing, plain-text report. It honors the
//! `--test` flag cargo passes for `cargo test --benches` (one iteration
//! per benchmark, no timing loop) and a `DNE_BENCH_QUICK=1` environment
//! variable for fast smoke runs in CI.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost. The shim runs setup before
/// every routine invocation regardless of the hint.
#[derive(Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on fresh input from `setup` each iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Top-level harness state (sample sizes, test mode, report output).
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10, test_mode: false, quick: false }
    }
}

impl Criterion {
    /// Build a harness from process arguments (recognizes `--test`) and
    /// the `DNE_BENCH_QUICK` environment variable.
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        let quick = std::env::var("DNE_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
        Self { test_mode, quick, ..Self::default() }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None, throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(None, id.into(), None, sample_size, f);
        self
    }

    pub fn final_summary(&mut self) {}

    fn iters_for(&self, sample_size: usize) -> u64 {
        if self.test_mode || self.quick {
            1
        } else {
            sample_size as u64
        }
    }

    fn run_one<F>(
        &mut self,
        group: Option<&str>,
        id: BenchmarkId,
        throughput: Option<Throughput>,
        sample_size: usize,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: self.iters_for(sample_size), elapsed: Duration::ZERO };
        f(&mut b);
        let label = match group {
            Some(g) => format!("{g}/{}", id.id),
            None => id.id,
        };
        if self.test_mode {
            println!("test {label} ... ok");
            return;
        }
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / per_iter)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!("{label:<48} {:>12.3} ms/iter{rate}", per_iter * 1e3);
    }
}

/// A named group of related benchmarks sharing sample-size/throughput
/// configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let name = self.name.clone();
        self.criterion.run_one(Some(&name), id.into(), self.throughput, sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Re-export so `criterion::black_box` call sites work; prefer
/// `std::hint::black_box` in new code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { sample_size: 2, test_mode: true, quick: false };
        let mut ran = 0;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion { sample_size: 3, test_mode: false, quick: false };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut setups = 0;
        group.bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 4]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
        assert_eq!(setups, 3);
    }
}
