//! Sheep-like elimination-tree edge partitioning (Margo & Seltzer,
//! VLDB 2015).
//!
//! "Sheep is the state-of-the-art distributed edge partition method, where
//! the graph is parallelly translated into the elimination tree before
//! applying tree partitioning" (paper §2.2). The algorithmic core
//! reproduced here:
//!
//! 1. rank vertices by ascending degree (Sheep's elimination order);
//! 2. approximate the elimination tree: `parent(v)` = the lowest-ranked
//!    neighbor of `v` ranked above `v` (Sheep's own practical
//!    approximation of the fill-in tree);
//! 3. map every edge to the tree node of its lower-ranked endpoint;
//! 4. partition the forest by cutting its Euler tour into `k` contiguous
//!    chunks of (approximately) equal owned-edge mass — subtrees stay
//!    contiguous, which is where Sheep's locality comes from.
//!
//! Figure 8 shows Sheep strong on some graphs (Twitter, Flickr) and weak on
//! others (Pokec, Orkut, Friendster); the indirect tree objective has the
//! same character here.

use crate::assignment::{EdgeAssignment, PartitionId};
use crate::traits::EdgePartitioner;
use dne_graph::{Graph, VertexId};

/// Sheep-style elimination-tree edge partitioner.
#[derive(Debug, Clone)]
pub struct SheepPartitioner {
    /// Imbalance factor on owned-edge mass per chunk.
    pub alpha: f64,
}

impl SheepPartitioner {
    /// Default construction (α = 1.1 like the other methods).
    pub fn new() -> Self {
        Self { alpha: 1.1 }
    }
}

impl Default for SheepPartitioner {
    fn default() -> Self {
        Self::new()
    }
}

impl EdgePartitioner for SheepPartitioner {
    fn name(&self) -> String {
        "Sheep-like".into()
    }

    fn partition(&self, g: &Graph, k: PartitionId) -> EdgeAssignment {
        let n = g.num_vertices() as usize;
        let m = g.num_edges();
        if m == 0 {
            return EdgeAssignment::new(vec![], k);
        }
        // 1. Elimination order: ascending degree, ties by id.
        let mut order: Vec<VertexId> = (0..g.num_vertices()).collect();
        order.sort_unstable_by_key(|&v| (g.degree(v), v));
        let mut rank = vec![0u64; n];
        for (r, &v) in order.iter().enumerate() {
            rank[v as usize] = r as u64;
        }
        // 2. Approximate elimination-tree parents.
        const ROOT: u32 = u32::MAX;
        let mut parent = vec![ROOT; n];
        for v in g.vertices() {
            let rv = rank[v as usize];
            let mut best: Option<(u64, VertexId)> = None;
            for &u in g.neighbor_vertices(v) {
                let ru = rank[u as usize];
                if ru > rv && best.is_none_or(|(br, _)| ru < br) {
                    best = Some((ru, u));
                }
            }
            if let Some((_, u)) = best {
                parent[v as usize] = u as u32;
            }
        }
        // 3. Owned-edge count per tree node (lower-ranked endpoint owns).
        let mut owned = vec![0u64; n];
        for e in 0..m {
            let (u, v) = g.edge(e);
            let owner = if rank[u as usize] < rank[v as usize] { u } else { v };
            owned[owner as usize] += 1;
        }
        // 4. Euler tour of the forest (children grouped under parents),
        //    then cut the tour into k chunks of ~|E|/k owned mass.
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut roots: Vec<u32> = Vec::new();
        // Attach children in descending rank so the tour visits the heavy
        // elimination spine first (roots are the highest-ranked vertices).
        for &v in order.iter().rev() {
            let p = parent[v as usize];
            if p == ROOT {
                roots.push(v as u32);
            } else {
                children[p as usize].push(v as u32);
            }
        }
        let mut tour: Vec<u32> = Vec::with_capacity(n);
        let mut stack: Vec<u32> = Vec::new();
        for &r in &roots {
            stack.push(r);
            while let Some(v) = stack.pop() {
                tour.push(v);
                for &c in &children[v as usize] {
                    stack.push(c);
                }
            }
        }
        debug_assert_eq!(tour.len(), n);
        // Cut the tour by owned-mass prefix sums.
        let cap = (self.alpha * m as f64 / k as f64).ceil() as u64;
        let mut vertex_part = vec![0 as PartitionId; n];
        let mut p = 0 as PartitionId;
        let mut acc = 0u64;
        for &v in &tour {
            if acc >= cap && p + 1 < k {
                p += 1;
                acc = 0;
            }
            vertex_part[v as usize] = p;
            acc += owned[v as usize];
        }
        // 5. Edges inherit their owner node's chunk.
        EdgeAssignment::from_fn(g, k, |e| {
            let (u, v) = g.edge(e);
            let owner = if rank[u as usize] < rank[v as usize] { u } else { v };
            vertex_part[owner as usize]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_based::RandomPartitioner;
    use crate::quality::PartitionQuality;
    use dne_graph::gen;

    #[test]
    fn covers_all_edges() {
        let g = gen::rmat(&gen::RmatConfig::graph500(9, 8, 1));
        let a = SheepPartitioner::new().partition(&g, 8);
        assert!(a.is_valid_for(&g));
    }

    #[test]
    fn beats_random_on_skewed_graphs() {
        let g = gen::rmat(&gen::RmatConfig::graph500(10, 8, 2));
        let qs = PartitionQuality::measure(&g, &SheepPartitioner::new().partition(&g, 16));
        let qr = PartitionQuality::measure(&g, &RandomPartitioner::new(1).partition(&g, 16));
        assert!(
            qs.replication_factor < qr.replication_factor,
            "Sheep-like {} should beat Random {}",
            qs.replication_factor,
            qr.replication_factor
        );
    }

    #[test]
    fn good_on_trees_by_construction() {
        // A path IS its own elimination spine: contiguous chunks cut only
        // at k-1 places → RF ≈ 1.
        let g = gen::path(1000);
        let q = PartitionQuality::measure(&g, &SheepPartitioner::new().partition(&g, 4));
        assert!(q.replication_factor < 1.1, "RF {}", q.replication_factor);
    }

    #[test]
    fn balance_is_respected() {
        let g = gen::rmat(&gen::RmatConfig::graph500(9, 8, 4));
        let q = PartitionQuality::measure(&g, &SheepPartitioner::new().partition(&g, 8));
        // Chunking by owned mass with α slack; hubs can overshoot a bit.
        assert!(q.edge_balance < 2.0, "edge balance {}", q.edge_balance);
    }

    #[test]
    fn deterministic() {
        let g = gen::cycle(50);
        assert_eq!(
            SheepPartitioner::new().partition(&g, 4),
            SheepPartitioner::new().partition(&g, 4)
        );
    }
}
