//! Synthetic graph generators.
//!
//! The evaluation of the paper runs on (a) seven real-world skewed graphs,
//! (b) RMAT graphs from Scale20–30 with edge factors 2^4–2^10 (§7.1), (c) the
//! ring+complete construction that proves bound tightness (Theorem 2), and
//! (d) three road networks (§7.7). Real graphs and the physical cluster are
//! not available here, so:
//!
//! * [`rmat()`] reproduces the Graph500 Kronecker/RMAT generator used for the
//!   synthetic and trillion-edge experiments, and (with per-dataset skew
//!   parameters) generates the scaled stand-ins for the real-world graphs;
//! * [`road`] produces 2D-lattice graphs with the low, near-uniform degree
//!   profile of road networks;
//! * [`ring_complete()`] reproduces the Theorem 2 worst-case construction;
//! * [`classic`] and [`random`] provide test fixtures (paths, cliques,
//!   stars, trees, Erdős–Rényi, Chung–Lu power law).
//!
//! The stochastic generators with a heavy sampling phase also come in
//! parallel variants ([`rmat_parallel`], [`erdos_renyi_parallel`],
//! [`chung_lu_parallel`], [`barabasi_albert_parallel`]) that chunk the
//! sample stream over worker threads via [`crate::hash::SplitMix64`]
//! stream jumping. Each is **byte-identical to its serial counterpart for
//! every thread count** — the thread count only changes wall-clock, never
//! the graph.

pub mod barabasi;
pub mod classic;
pub mod random;
pub mod ring_complete;
pub mod rmat;
pub mod road;

pub use barabasi::{barabasi_albert, barabasi_albert_parallel};
pub use classic::{complete, cycle, path, star, two_cliques_bridge};
pub use random::{chung_lu, chung_lu_parallel, erdos_renyi, erdos_renyi_parallel};
pub use ring_complete::ring_complete;
pub use rmat::{rmat, rmat_parallel, RmatConfig};
pub use road::road_grid;
