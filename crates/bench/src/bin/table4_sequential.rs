//! Table 4 reproduction: Distributed NE vs the sequential state of the art
//! (HDRF, NE, SNE) on the four mid-size graphs, 64 partitions.
//!
//! Paper findings to reproduce: offline NE has the best RF; Distributed NE
//! is close behind (between NE and SNE); HDRF is clearly worse; and
//! Distributed NE's wall time beats the sequential algorithms by 1–2
//! orders of magnitude (here the parallelism is simulated on one host, so
//! the speed-up is bounded by the core count — the *ordering* is the
//! reproducible claim).

use std::time::Instant;

use dne_bench::datasets;
use dne_bench::suite::table4_roster;
use dne_bench::table::{f2, parse_mode, secs, Table};
use dne_core::{DistributedNe, NeConfig};
use dne_partition::PartitionQuality;

fn main() {
    let quick = parse_mode();
    let k = 64;
    let mut table = Table::new(&["dataset", "method", "RF", "time_s"]);
    for d in datasets::midsize() {
        let g = if quick { d.build_quick() } else { d.build() };
        eprintln!("{}: |E|={}", d.name, g.num_edges());
        for m in table4_roster(11) {
            let t = Instant::now();
            let a = m.partition(&g, k);
            let elapsed = t.elapsed();
            let q = PartitionQuality::measure(&g, &a);
            table.row(vec![d.name.into(), m.name(), f2(q.replication_factor), secs(elapsed)]);
        }
        let ne = DistributedNe::new(NeConfig::default().with_seed(11));
        let (a, stats) = ne.partition_with_stats(&g, k);
        let q = PartitionQuality::measure(&g, &a);
        table.row(vec![
            d.name.into(),
            "DistributedNE".into(),
            f2(q.replication_factor),
            secs(stats.elapsed),
        ]);
    }
    println!("\n=== Table 4: comparison with sequential algorithms (|P| = {k}) ===");
    table.print();
    if let Ok(p) = table.write_tsv("table4_sequential") {
        eprintln!("wrote {}", p.display());
    }
}
