//! The simulated cluster: spawn P "machines", wire them together over the
//! selected transport backend, run a per-rank closure, join the results.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::collectives::{CollectiveTopology, Collectives, PendingGather};
use crate::comm::CommEndpoint;
use crate::memory::{MemoryReport, MemoryTracker};
use crate::stats::CommStats;
use crate::transport::{BatchConfig, TransportError, TransportKind};
use crate::wire::{WireDecode, WireEncode};

/// Handle given to each simulated machine: its rank, the interconnect, the
/// collectives, and the accounting hooks.
///
/// Every messaging primitive comes in two flavors: a `try_`-prefixed
/// fallible form returning `Result<_, TransportError>` (what per-rank
/// algorithm code in a real multi-process cluster uses, so a dead peer
/// aborts the rank with an attributable error), and an infallible
/// convenience form that panics with the typed error's message — fine for
/// in-process simulations, where a failed rank takes the run down anyway.
pub struct Ctx<M> {
    comm: CommEndpoint<M>,
    coll: Collectives,
    mem: Arc<MemoryTracker>,
}

impl<M: Send + WireEncode + WireDecode + 'static> Ctx<M> {
    /// Assemble a context from its parts — how a worker process in a real
    /// multi-process cluster (see [`crate::tcp::TcpProcessCluster`])
    /// builds the same handle that in-process `Cluster::run` closures
    /// receive.
    pub fn from_parts(comm: CommEndpoint<M>, coll: Collectives, mem: Arc<MemoryTracker>) -> Self {
        Self { comm, coll, mem }
    }

    /// This machine's rank in `0..nprocs`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Number of machines in the cluster.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.comm.nprocs()
    }

    fn bail(&self, e: TransportError) -> ! {
        panic!("rank {}: transport failure: {e}", self.rank())
    }

    /// Point-to-point send (FIFO per link, byte-accounted).
    #[inline]
    pub fn try_send(&self, dst: usize, msg: M) -> Result<(), TransportError> {
        self.comm.send(dst, msg)
    }

    /// Infallible [`Ctx::try_send`]; panics on transport failure.
    #[inline]
    pub fn send(&self, dst: usize, msg: M) {
        self.try_send(dst, msg).unwrap_or_else(|e| self.bail(e));
    }

    /// Blocking receive of the next message from any peer.
    #[inline]
    pub fn try_recv(&self) -> Result<(usize, M), TransportError> {
        self.comm.recv()
    }

    /// Infallible [`Ctx::try_recv`]; panics on transport failure.
    #[inline]
    pub fn recv(&self) -> (usize, M) {
        self.try_recv().unwrap_or_else(|e| self.bail(e))
    }

    /// Push every buffered (coalesced) point-to-point envelope onto the
    /// wire now. A no-op when `DNE_COMM_BATCH` is off; every blocking
    /// receive primitive flushes implicitly, so explicit calls are only
    /// needed when a round's sends must depart before unrelated local
    /// work.
    #[inline]
    pub fn try_flush(&self) -> Result<(), TransportError> {
        self.comm.flush()
    }

    /// Drain every already-deliverable inbound envelope — point-to-point
    /// *and* collective — into this rank's buffers without blocking,
    /// returning how many arrived. The eager-recv half of an overlapped
    /// round: call it mid-computation so frames are decoded while the CPU
    /// would otherwise idle in the next blocking collect.
    pub fn try_drain_ready(&mut self) -> Result<usize, TransportError> {
        Ok(self.comm.drain_ready()? + self.coll.drain_ready()?)
    }

    /// Begin an all-gather without collecting it (see
    /// [`Collectives::start_all_gather_u64`]): the send phase departs now,
    /// the caller computes while peers' contributions arrive, then calls
    /// [`Ctx::try_finish_all_gather_u64`]. Results and accounting are
    /// bit-identical to the one-shot [`Ctx::try_all_gather_u64`].
    #[inline]
    pub fn try_start_all_gather_u64(
        &mut self,
        value: u64,
    ) -> Result<PendingGather, TransportError> {
        self.coll.start_all_gather_u64(value)
    }

    /// Complete an all-gather begun by [`Ctx::try_start_all_gather_u64`].
    #[inline]
    pub fn try_finish_all_gather_u64(
        &mut self,
        pending: PendingGather,
    ) -> Result<Vec<u64>, TransportError> {
        self.coll.finish_all_gather_u64(pending)
    }

    /// Lock-step all-to-all: send one message to every rank (produced by
    /// `make(dst)`), then receive exactly one from every rank, returned
    /// indexed by source. The workhorse primitive of every iterative
    /// algorithm in this workspace; see module docs for why back-to-back
    /// exchanges are race-free.
    pub fn try_exchange(
        &mut self,
        mut make: impl FnMut(usize) -> M,
    ) -> Result<Vec<M>, TransportError> {
        for dst in 0..self.nprocs() {
            self.comm.send(dst, make(dst))?;
        }
        self.comm.recv_one_from_each()
    }

    /// Infallible [`Ctx::try_exchange`]; panics on transport failure.
    pub fn exchange(&mut self, make: impl FnMut(usize) -> M) -> Vec<M> {
        match self.try_exchange(make) {
            Ok(v) => v,
            Err(e) => self.bail(e),
        }
    }

    /// MPI-style barrier across all machines.
    #[inline]
    pub fn try_barrier(&mut self) -> Result<(), TransportError> {
        self.coll.barrier()
    }

    /// Infallible [`Ctx::try_barrier`]; panics on transport failure.
    #[inline]
    pub fn barrier(&mut self) {
        self.try_barrier().unwrap_or_else(|e| self.bail(e));
    }

    /// All-gather one `u64` per machine.
    #[inline]
    pub fn try_all_gather_u64(&mut self, value: u64) -> Result<Vec<u64>, TransportError> {
        self.coll.all_gather_u64(value)
    }

    /// Infallible [`Ctx::try_all_gather_u64`]; panics on transport failure.
    #[inline]
    pub fn all_gather_u64(&mut self, value: u64) -> Vec<u64> {
        match self.try_all_gather_u64(value) {
            Ok(v) => v,
            Err(e) => self.bail(e),
        }
    }

    /// Sum-reduce a `u64` across machines (paper's `AllGatherSum`).
    #[inline]
    pub fn try_all_reduce_sum_u64(&mut self, value: u64) -> Result<u64, TransportError> {
        self.coll.all_reduce_sum_u64(value)
    }

    /// Infallible [`Ctx::try_all_reduce_sum_u64`]; panics on failure.
    #[inline]
    pub fn all_reduce_sum_u64(&mut self, value: u64) -> u64 {
        match self.try_all_reduce_sum_u64(value) {
            Ok(v) => v,
            Err(e) => self.bail(e),
        }
    }

    /// Max-reduce a `u64` across machines.
    #[inline]
    pub fn try_all_reduce_max_u64(&mut self, value: u64) -> Result<u64, TransportError> {
        self.coll.all_reduce_max_u64(value)
    }

    /// Infallible [`Ctx::try_all_reduce_max_u64`]; panics on failure.
    #[inline]
    pub fn all_reduce_max_u64(&mut self, value: u64) -> u64 {
        match self.try_all_reduce_max_u64(value) {
            Ok(v) => v,
            Err(e) => self.bail(e),
        }
    }

    /// Sum-reduce an `f64` across machines.
    #[inline]
    pub fn try_all_reduce_sum_f64(&mut self, value: f64) -> Result<f64, TransportError> {
        self.coll.all_reduce_sum_f64(value)
    }

    /// Infallible [`Ctx::try_all_reduce_sum_f64`]; panics on failure.
    #[inline]
    pub fn all_reduce_sum_f64(&mut self, value: f64) -> f64 {
        match self.try_all_reduce_sum_f64(value) {
            Ok(v) => v,
            Err(e) => self.bail(e),
        }
    }

    /// OR-reduce a `bool` across machines.
    #[inline]
    pub fn try_all_reduce_any(&mut self, value: bool) -> Result<bool, TransportError> {
        self.coll.all_reduce_any(value)
    }

    /// Infallible [`Ctx::try_all_reduce_any`]; panics on failure.
    #[inline]
    pub fn all_reduce_any(&mut self, value: bool) -> bool {
        match self.try_all_reduce_any(value) {
            Ok(v) => v,
            Err(e) => self.bail(e),
        }
    }

    /// Report this machine's current live heap bytes (mem-score snapshot).
    #[inline]
    pub fn report_memory(&self, live_bytes: usize) {
        self.mem.report(self.rank(), live_bytes);
    }
}

/// Everything a cluster run produces: per-rank results plus accounting.
#[derive(Debug)]
pub struct ClusterOutcome<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Communication accounting for the whole run.
    pub comm: Arc<CommStats>,
    /// Peak-memory accounting for the whole run.
    pub memory: MemoryReport,
    /// Wall-clock duration of the parallel section.
    pub elapsed: Duration,
}

/// Factory for simulated cluster runs.
#[derive(Debug, Clone, Copy)]
pub struct Cluster {
    nprocs: usize,
    transport: TransportKind,
    /// `None` resolves `DNE_COLLECTIVES` lazily at [`Cluster::run`] time,
    /// so an explicit [`Cluster::with_collectives`] choice never touches
    /// (and can never be broken by) the environment.
    collectives: Option<CollectiveTopology>,
    /// `None` resolves `DNE_COMM_BATCH` lazily at [`Cluster::run`] time —
    /// the same pattern as `collectives`. Applies to the point-to-point
    /// fabric only; collectives always run unbatched (their cost model is
    /// exact per-message).
    comm_batch: Option<BatchConfig>,
}

impl Cluster {
    /// A cluster of `nprocs` simulated machines (`nprocs >= 1`) on the
    /// transport selected by the `DNE_TRANSPORT` environment variable
    /// (loopback when unset — see [`TransportKind::from_env`]) and the
    /// collective topology selected by `DNE_COLLECTIVES` (flat when unset
    /// — see [`CollectiveTopology::from_env`]).
    pub fn new(nprocs: usize) -> Self {
        Self::with_transport(nprocs, TransportKind::from_env())
    }

    /// A cluster of `nprocs` simulated machines on an explicit backend.
    /// The collective topology resolves from `DNE_COLLECTIVES` at run
    /// time; override it with [`Cluster::with_collectives`].
    pub fn with_transport(nprocs: usize, transport: TransportKind) -> Self {
        assert!(nprocs >= 1, "cluster needs at least one machine");
        Self { nprocs, transport, collectives: None, comm_batch: None }
    }

    /// Select the collective aggregation topology explicitly (overrides
    /// `DNE_COLLECTIVES`, which is then never consulted). Results are
    /// bit-identical under every topology; only the collectives'
    /// message/byte schedule changes.
    pub fn with_collectives(mut self, collectives: CollectiveTopology) -> Self {
        self.collectives = Some(collectives);
        self
    }

    /// Number of machines.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The transport backend this cluster runs on.
    pub fn transport(&self) -> TransportKind {
        self.transport
    }

    /// The collective topology a run will use: the explicit choice if one
    /// was made, otherwise whatever `DNE_COLLECTIVES` says right now.
    pub fn collectives(&self) -> CollectiveTopology {
        self.collectives.unwrap_or_else(CollectiveTopology::from_env)
    }

    /// Select the point-to-point send-coalescing policy explicitly
    /// (overrides `DNE_COMM_BATCH`, which is then never consulted).
    /// Results — and logical message/byte accounting — are bit-identical
    /// with batching on or off; only physical frame counts (and wall
    /// time) change.
    pub fn with_comm_batch(mut self, batch: BatchConfig) -> Self {
        self.comm_batch = Some(batch);
        self
    }

    /// The coalescing policy a run will use: the explicit choice if one
    /// was made, otherwise whatever `DNE_COMM_BATCH` says right now.
    pub fn comm_batch(&self) -> BatchConfig {
        self.comm_batch.unwrap_or_else(BatchConfig::from_env)
    }

    /// Run `f` on every machine in parallel and join the results.
    ///
    /// `M` is the message type of the run's interconnect; `f` receives a
    /// mutable [`Ctx`] and may borrow from the caller's stack (scoped
    /// threads), which is how the partitioners share one immutable `&Graph`
    /// across machines without `Arc`.
    ///
    /// # Panics
    /// Propagates a panic from any machine.
    pub fn run<M, R, F>(&self, f: F) -> ClusterOutcome<R>
    where
        M: Send + WireEncode + WireDecode + 'static,
        R: Send,
        F: Fn(&mut Ctx<M>) -> R + Sync,
    {
        let stats = CommStats::new(self.nprocs);
        let mem = MemoryTracker::new(self.nprocs);
        let endpoints = CommEndpoint::<M>::fabric(
            self.transport,
            self.nprocs,
            self.comm_batch(),
            Arc::clone(&stats),
        );
        let collectives = Collectives::fabric(
            self.transport,
            self.collectives(),
            self.nprocs,
            Arc::clone(&stats),
        );
        let start = Instant::now();
        let results: Vec<R> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.nprocs);
            for (comm, coll) in endpoints.into_iter().zip(collectives) {
                let mem = Arc::clone(&mem);
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut ctx = Ctx::from_parts(comm, coll, mem);
                    f(&mut ctx)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        let elapsed = start.elapsed();
        ClusterOutcome { results, comm: stats, memory: mem.report_summary(), elapsed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [TransportKind; 3] = TransportKind::ALL;
    const TOPOLOGIES: [CollectiveTopology; 3] = CollectiveTopology::ALL;

    /// Run the same cluster program on every (transport × topology) pair.
    fn on_all(nprocs: usize, f: impl Fn(&mut Ctx<u64>) + Sync) {
        for kind in ALL {
            for topo in TOPOLOGIES {
                Cluster::with_transport(nprocs, kind).with_collectives(topo).run::<u64, _, _>(&f);
            }
        }
    }

    #[test]
    fn run_returns_rank_indexed_results() {
        let out = Cluster::new(4).run::<u64, _, _>(|ctx| ctx.rank() * 2);
        assert_eq!(out.results, vec![0, 2, 4, 6]);
    }

    #[test]
    fn exchange_is_all_to_all() {
        on_all(3, |ctx| {
            let rank = ctx.rank();
            // Everyone sends (own rank * 100 + dst) to each dst.
            let got = ctx.exchange(|dst| (rank * 100 + dst) as u64);
            // From src we must get src*100 + our rank.
            let want: Vec<u64> = (0..3).map(|src| (src * 100 + rank) as u64).collect();
            assert_eq!(got, want);
        });
    }

    #[test]
    fn repeated_exchanges_stay_aligned() {
        on_all(4, |ctx| {
            for round in 0..100u64 {
                let got = ctx.exchange(|_| round);
                assert!(got.iter().all(|&r| r == round));
            }
        });
    }

    #[test]
    fn collectives_work_inside_run() {
        let out = Cluster::new(5).run::<u64, _, _>(|ctx| {
            let total = ctx.all_reduce_sum_u64(ctx.rank() as u64);
            assert_eq!(total, 10);
            ctx.barrier();
            total
        });
        assert!(out.results.iter().all(|&t| t == 10));
    }

    #[test]
    fn memory_and_comm_accounting_flow_through() {
        for kind in ALL {
            for topo in TOPOLOGIES {
                let out = Cluster::with_transport(2, kind).with_collectives(topo).run::<u64, _, _>(
                    |ctx| {
                        ctx.report_memory(1000 * (ctx.rank() + 1));
                        ctx.barrier();
                        if ctx.rank() == 0 {
                            ctx.send(1, 7);
                        } else {
                            let (src, v) = ctx.recv();
                            assert_eq!((src, v), (0, 7));
                        }
                    },
                );
                assert_eq!(out.memory.peak_total_bytes, 3000);
                // One point-to-point u64 (8 bytes) plus one barrier at the
                // topology's published per-collective cost — identical on
                // every transport backend.
                let (coll_bytes, _) = topo.total_traffic(2);
                assert_eq!(out.comm.total_bytes(), 8 + coll_bytes, "{kind}/{topo}");
                assert_eq!(out.comm.total_collective_rounds(), 2, "{kind}/{topo}");
            }
        }
    }

    #[test]
    fn single_machine_cluster() {
        let out = Cluster::new(1).run::<u64, _, _>(|ctx| {
            let v = ctx.exchange(|_| 42u64);
            assert_eq!(v, vec![42]);
            ctx.all_reduce_sum_u64(5)
        });
        assert_eq!(out.results, vec![5]);
    }

    #[test]
    fn byte_accounting_agrees_across_backends() {
        // The codec's estimate==actual invariant, observed end-to-end: the
        // same program must charge the same bytes on every transport (the
        // topology is held fixed; per-topology costs are covered by the
        // collectives tests and the equivalence harness).
        let totals: Vec<u64> = ALL
            .into_iter()
            .map(|kind| {
                let out = Cluster::with_transport(3, kind)
                    .with_collectives(CollectiveTopology::RecursiveDoubling)
                    .run::<Vec<(u64, f64)>, _, _>(|ctx| {
                        let rank = ctx.rank() as u64;
                        for round in 0..5 {
                            let got = ctx.exchange(|_dst| {
                                (0..round + rank).map(|i| (i, i as f64 * 0.5)).collect()
                            });
                            assert_eq!(got.len(), 3);
                            ctx.barrier();
                        }
                        ctx.all_reduce_sum_u64(1)
                    });
                out.comm.total_bytes()
            })
            .collect();
        assert!(totals[0] > 0);
        assert_eq!(totals[0], totals[1], "loopback estimate must equal bytes actual");
        assert_eq!(totals[0], totals[2], "loopback estimate must equal tcp actual");
    }

    #[test]
    fn comm_batch_keeps_accounting_and_results_identical() {
        // The same program under an explicit batch policy: identical
        // results, logical msgs, and bytes; strictly fewer frames. The
        // program sends ten envelopes per destination before its first
        // receive (the flush point), which is the traffic shape
        // coalescing exists for.
        for kind in ALL {
            let run = |batch: BatchConfig| {
                Cluster::with_transport(3, kind)
                    .with_collectives(CollectiveTopology::Flat)
                    .with_comm_batch(batch)
                    .run::<u64, _, _>(|ctx| {
                        let rank = ctx.rank() as u64;
                        let me = ctx.rank();
                        for dst in (0..ctx.nprocs()).filter(|&d| d != me) {
                            for i in 0..10u64 {
                                ctx.send(dst, rank * 1000 + i);
                            }
                        }
                        let mut acc = 0;
                        for _ in 0..10 * (ctx.nprocs() - 1) {
                            let (_, v) = ctx.recv();
                            acc += v;
                        }
                        ctx.all_reduce_sum_u64(acc)
                    })
            };
            let plain = run(BatchConfig::disabled());
            let batched = run(BatchConfig::msgs(64));
            assert_eq!(plain.results, batched.results, "{kind}: results invariant");
            assert_eq!(plain.comm.total_msgs(), batched.comm.total_msgs(), "{kind}: msgs");
            assert_eq!(plain.comm.total_bytes(), batched.comm.total_bytes(), "{kind}: bytes");
            assert!(
                batched.comm.total_frames() < plain.comm.total_frames(),
                "{kind}: coalescing must reduce physical frames \
                 ({} vs {})",
                batched.comm.total_frames(),
                plain.comm.total_frames()
            );
        }
    }

    #[test]
    fn split_gather_overlaps_inside_a_run() {
        for kind in ALL {
            for topo in TOPOLOGIES {
                let out = Cluster::with_transport(3, kind).with_collectives(topo).run::<u64, _, _>(
                    |ctx| {
                        let mut total = 0;
                        for round in 0..5u64 {
                            let pending =
                                ctx.try_start_all_gather_u64(ctx.rank() as u64 + round).unwrap();
                            // Overlapped "computation" with an eager drain.
                            let _ = ctx.try_drain_ready().unwrap();
                            let got = ctx.try_finish_all_gather_u64(pending).unwrap();
                            total += got.iter().sum::<u64>();
                        }
                        total
                    },
                );
                // Per round: (0+1+2) + 3*round, summed over rounds 0..5.
                let want = (0..5u64).map(|r| 3 + 3 * r).sum::<u64>();
                assert!(out.results.iter().all(|&t| t == want), "{kind}/{topo}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_machines_rejected() {
        Cluster::new(0);
    }

    #[test]
    fn explicit_topology_wins_over_the_environment() {
        // An explicit with_collectives choice must hold whatever
        // DNE_COLLECTIVES the surrounding run exports (construction never
        // reads the variable, so even an invalid value cannot break a
        // pinned cluster — the env is only consulted lazily when unset).
        for topo in TOPOLOGIES {
            let c = Cluster::with_transport(2, TransportKind::Loopback).with_collectives(topo);
            assert_eq!(c.collectives(), topo);
        }
    }
}
