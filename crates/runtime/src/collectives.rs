//! MPI-style collectives: barrier, all-gather, all-reduce — over pluggable
//! aggregation topologies.
//!
//! Algorithm 1 of the paper uses `Barrier()` (line 9) and
//! `AllGatherSum(|Ep|)` (line 14) every iteration; the application engine
//! uses all-reduce for convergence/frontier checks. Collectives are built
//! as *real traffic* over the same [`Transport`] fabric as point-to-point
//! messages, so every backend (loopback / bytes / tcp) gets every topology
//! for free.
//!
//! # Topologies
//!
//! Three interchangeable [`CollectiveTopology`] implementations move the
//! same rank-indexed word vector; they differ only in schedule:
//!
//! * [`CollectiveTopology::Flat`] — the reference: every rank sends its
//!   one-word contribution to every peer and collects one word from each
//!   (the self-send is free and keeps indexing uniform). Depth 1, but
//!   `P − 1` messages and `8·(P−1)` bytes per rank per collective.
//! * [`CollectiveTopology::Binomial`] — a binomial-tree gather to rank 0
//!   followed by a binomial-tree broadcast of the assembled vector:
//!   depth `2·⌈log₂P⌉`, and only `2·(P−1)` messages *in total* per
//!   collective. The logarithmic-depth aggregation "Partitioning
//!   Trillion-edge Graphs in Minutes" leans on.
//! * [`CollectiveTopology::RecursiveDoubling`] — partner exchanges over
//!   rank distance `2^i`, doubling the gathered block each round: depth
//!   `⌈log₂P⌉` with `log₂P` messages and (at power-of-two `P`) exactly
//!   the flat `8·(P−1)` bytes per rank. Non-power-of-two `P` folds the
//!   surplus ranks into neighbors in a pre-step and unfolds them in a
//!   post-step — the classic recursive-doubling edge case, covered by
//!   property tests.
//!
//! Every reduction (`sum`, `max`, `any`, `f64` sum) is a fold of the
//! all-gathered vector *in rank order*, identical code under every
//! topology — which is what makes results (including `f64` sums, where
//! association order changes bits) **bit-identical** across topologies.
//!
//! # Wire format and accounting
//!
//! Collective rounds travel as [`CollMsg`]: a packed block of `u64` words
//! with *no* length prefix (the frame's payload length already determines
//! the word count), so a one-word flat round costs exactly 8 wire bytes —
//! the same accounting as before topologies existed. Exact per-rank costs
//! for every topology are published by
//! [`CollectiveTopology::rank_traffic`] /
//! [`CollectiveTopology::total_traffic`], the single source of truth the
//! unit, property, and equivalence tests check measured [`CommStats`]
//! against (closed forms are documented in `ARCHITECTURE.md`).
//!
//! Round alignment comes from the same argument as
//! [`crate::Ctx::exchange`]: per-link FIFO order plus a deterministic
//! per-topology schedule (each receive names its source) keeps
//! back-to-back collectives race-free even when peers run ahead.
//!
//! Topology selection mirrors transport selection: the `DNE_COLLECTIVES`
//! environment variable (`flat` | `tree` | `recursive-doubling`), or
//! explicit [`crate::Cluster::with_collectives`] /
//! `NeConfig::with_collectives` / `Engine::with_collectives` plumbing.
//!
//! Transport failures surface as a [`TransportError`] from the collective
//! call rather than a panic inside the runtime. On the tcp backend that
//! includes a peer dying mid-collective (its socket closes without the
//! goodbye frame); on the in-process channel backends a vanished peer can
//! only be a sibling thread already unwinding the whole run, and is
//! reported once the fabric is torn down.

use std::sync::Arc;

use crate::comm::CommEndpoint;
use crate::stats::CommStats;
use crate::transport::{BatchConfig, Transport, TransportError, TransportKind};
use crate::wire::{WireDecode, WireEncode, WireError, WireReader, WireSize};

/// Wire message of the collectives fabric: a packed block of `u64` words
/// with **no** length prefix. The enclosing frame already carries the
/// payload length, so the word count is `payload_len / 8` — a one-word
/// collective round costs exactly 8 wire bytes. Because decoding consumes
/// the whole remaining input, `CollMsg` is only valid as a frame's entire
/// payload, never as a field of a larger message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollMsg(pub Vec<u64>);

impl WireSize for CollMsg {
    #[inline]
    fn wire_bytes(&self) -> usize {
        8 * self.0.len()
    }
}

impl WireEncode for CollMsg {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        u64::encode_slice(&self.0, buf);
    }
}

impl WireDecode for CollMsg {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rem = r.remaining();
        if !rem.is_multiple_of(8) {
            // A word block can never leave a partial word.
            return Err(WireError::Truncated { needed: rem + (8 - rem % 8), available: rem });
        }
        Ok(CollMsg(u64::decode_slice(r, rem / 8)?))
    }
}

/// The names `CollectiveTopology::from_str` accepts, for error messages.
const TOPOLOGY_NAMES: &str = "\"flat\", \"tree\", or \"recursive-doubling\"";

/// Which aggregation topology a cluster run's collectives use.
///
/// All topologies produce bit-identical results (the reductions fold the
/// same rank-indexed vector in the same order); they trade message count,
/// bytes, and latency depth differently — see the module docs and the
/// exact cost model in [`CollectiveTopology::rank_traffic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectiveTopology {
    /// Flat all-gather: every rank sends one word to every peer. Depth 1;
    /// `P − 1` messages and `8·(P−1)` bytes per rank. The reference.
    #[default]
    Flat,
    /// Binomial tree: gather the words to rank 0, broadcast the assembled
    /// vector back down. Depth `2·⌈log₂P⌉`; `2·(P−1)` messages in total.
    Binomial,
    /// Recursive doubling: partner exchanges at doubling rank distance.
    /// Depth `⌈log₂P⌉` (+2 at non-power-of-two `P`); `log₂P` messages and
    /// `8·(P−1)` bytes per rank at power-of-two `P`.
    RecursiveDoubling,
}

impl CollectiveTopology {
    /// Environment variable consulted by [`CollectiveTopology::from_env`].
    pub const ENV_VAR: &'static str = "DNE_COLLECTIVES";

    /// Every topology, in definition order — the canonical list invariance
    /// tests iterate, so adding a topology cannot silently drop it from a
    /// test suite that hand-copied the roster.
    pub const ALL: [CollectiveTopology; 3] = [
        CollectiveTopology::Flat,
        CollectiveTopology::Binomial,
        CollectiveTopology::RecursiveDoubling,
    ];

    /// Read the topology from `DNE_COLLECTIVES` (`flat` | `tree` |
    /// `recursive-doubling`, case-insensitive, surrounding whitespace
    /// ignored). Unset or empty means [`CollectiveTopology::Flat`].
    ///
    /// # Panics
    /// Panics on an unrecognized or non-Unicode value, naming the valid
    /// topologies — a misconfigured run (`DNE_COLLECTIVES=trees`) must
    /// fail loudly before it silently measures the wrong topology.
    pub fn from_env() -> Self {
        match std::env::var(Self::ENV_VAR) {
            Ok(v) if !v.trim().is_empty() => {
                v.parse().unwrap_or_else(|e| panic!("invalid {}: {e}", Self::ENV_VAR))
            }
            Err(std::env::VarError::NotUnicode(raw)) => {
                panic!(
                    "invalid {}: non-Unicode value {raw:?} (expected {TOPOLOGY_NAMES})",
                    Self::ENV_VAR
                )
            }
            _ => CollectiveTopology::Flat,
        }
    }

    /// Exact `(bytes, messages)` one collective charges to `rank` in a
    /// `p`-rank fabric. This is the published cost model: the execution
    /// schedules below move exactly these quantities, and the test suites
    /// assert measured [`CommStats`] against sums of this function.
    /// Self-sends (flat topology only) are free and not counted, matching
    /// [`CommEndpoint`]'s accounting policy.
    pub fn rank_traffic(self, rank: usize, p: usize) -> (u64, u64) {
        assert!(rank < p, "rank {rank} out of range for {p} ranks");
        if p == 1 {
            return (0, 0);
        }
        match self {
            CollectiveTopology::Flat => (8 * (p as u64 - 1), p as u64 - 1),
            CollectiveTopology::Binomial => {
                let relay_rounds =
                    if rank == 0 { ceil_log2(p) } else { rank.trailing_zeros() as usize };
                let mut bytes = 0u64;
                let mut msgs = 0u64;
                if rank != 0 {
                    // One gather send: this rank's whole subtree block.
                    let subtree = (1usize << relay_rounds).min(p - rank);
                    bytes += 8 * subtree as u64;
                    msgs += 1;
                }
                // One full-vector broadcast send per child in range.
                for i in 0..relay_rounds {
                    if rank + (1usize << i) < p {
                        bytes += 8 * p as u64;
                        msgs += 1;
                    }
                }
                (bytes, msgs)
            }
            CollectiveTopology::RecursiveDoubling => {
                let p2 = prev_pow2(p);
                let rem = p - p2;
                let rounds = p2.trailing_zeros() as usize;
                if rank < 2 * rem && rank.is_multiple_of(2) {
                    // Folded rank: one pre-step word, then it only receives.
                    return (8, 1);
                }
                let eff = if rank < 2 * rem { rank / 2 } else { rank - rem };
                let mut bytes = 0u64;
                let mut msgs = 0u64;
                for i in 0..rounds {
                    let size = 1usize << i;
                    let start = eff & !(size - 1);
                    // Block words: one per effective rank, two for each
                    // effective rank that absorbed a folded neighbor.
                    let words = size + rem.saturating_sub(start).min(size);
                    bytes += 8 * words as u64;
                    msgs += 1;
                }
                if rank < 2 * rem {
                    // Post-step: hand the finished vector back to the
                    // folded even neighbor.
                    bytes += 8 * p as u64;
                    msgs += 1;
                }
                (bytes, msgs)
            }
        }
    }

    /// `(bytes, messages)` one collective moves across *all* ranks —
    /// the sum of [`CollectiveTopology::rank_traffic`] over `0..p`.
    pub fn total_traffic(self, p: usize) -> (u64, u64) {
        (0..p).map(|r| self.rank_traffic(r, p)).fold((0, 0), |(b, m), (rb, rm)| (b + rb, m + rm))
    }
}

impl std::str::FromStr for CollectiveTopology {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "flat" => Ok(CollectiveTopology::Flat),
            "tree" | "binomial" => Ok(CollectiveTopology::Binomial),
            "recursive-doubling" | "rd" => Ok(CollectiveTopology::RecursiveDoubling),
            other => {
                Err(format!("unknown collective topology {other:?} (expected {TOPOLOGY_NAMES})"))
            }
        }
    }
}

impl std::fmt::Display for CollectiveTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CollectiveTopology::Flat => "flat",
            CollectiveTopology::Binomial => "tree",
            CollectiveTopology::RecursiveDoubling => "recursive-doubling",
        })
    }
}

/// Largest power of two `<= p` (`p >= 1`).
fn prev_pow2(p: usize) -> usize {
    1 << (usize::BITS - 1 - p.leading_zeros())
}

/// Smallest `d` with `2^d >= p` (`p >= 1`).
fn ceil_log2(p: usize) -> usize {
    (usize::BITS - (p - 1).leading_zeros()) as usize
}

/// Check an incoming collective block has the word count the schedule
/// demands — a mismatch means a diverged or corrupt peer, reported as a
/// typed framing error attributed to its sender, never a panic.
fn expect_words(msg: CollMsg, want: usize, src: usize) -> Result<Vec<u64>, TransportError> {
    if msg.0.len() != want {
        return Err(TransportError::Frame {
            src: Some(src),
            detail: format!(
                "collective block of {} words arrived where the schedule expects {want}",
                msg.0.len()
            ),
        });
    }
    Ok(msg.0)
}

/// An all-gather whose send phase has been posted but whose collect has
/// not run yet — the in-flight handle of an overlapped (double-buffered)
/// round. Produced by [`Collectives::start_all_gather_u64`], consumed by
/// [`Collectives::finish_all_gather_u64`].
#[derive(Debug)]
#[must_use = "an in-flight all-gather must be finished or the next collective will misalign"]
pub struct PendingGather {
    value: u64,
    /// Whether the send phase already ran at `start` time (flat
    /// topology); if not, `finish` runs the whole schedule.
    sent: bool,
}

/// Per-rank collective-communication endpoint for one cluster run.
pub struct Collectives {
    comm: CommEndpoint<CollMsg>,
    topology: CollectiveTopology,
    stats: Arc<CommStats>,
}

impl Collectives {
    /// Build the `n` connected collective endpoints of a run at once,
    /// sharing the run's byte accounting and aggregation topology.
    pub fn fabric(
        kind: TransportKind,
        topology: CollectiveTopology,
        n: usize,
        stats: Arc<CommStats>,
    ) -> Vec<Collectives> {
        // Collectives always run unbatched: their cost model publishes
        // exact per-rank frame-per-message traffic, and a one-word block
        // gains nothing from coalescing anyway.
        CommEndpoint::fabric(kind, n, BatchConfig::disabled(), Arc::clone(&stats))
            .into_iter()
            .map(|comm| Collectives { comm, topology, stats: Arc::clone(&stats) })
            .collect()
    }

    /// Wrap a single already-connected transport endpoint — how a worker
    /// process in a real multi-process cluster (see [`crate::tcp`])
    /// builds its collectives handle.
    pub fn from_transport(
        link: Box<dyn Transport<CollMsg>>,
        topology: CollectiveTopology,
        stats: Arc<CommStats>,
    ) -> Collectives {
        Collectives {
            comm: CommEndpoint::from_transport(link, Arc::clone(&stats)),
            topology,
            stats,
        }
    }

    /// This endpoint's rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Number of participants.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.comm.nprocs()
    }

    /// The aggregation topology this endpoint runs.
    #[inline]
    pub fn topology(&self) -> CollectiveTopology {
        self.topology
    }

    /// All-gather: contribute `value`, receive the full vector of
    /// contributions indexed by rank — identical under every topology.
    pub fn all_gather_u64(&mut self, value: u64) -> Result<Vec<u64>, TransportError> {
        let pending = self.start_all_gather_u64(value)?;
        self.finish_all_gather_u64(pending)
    }

    /// Begin an all-gather without collecting it: the collective round is
    /// recorded and every send the schedule can post *before any receive*
    /// goes out now — the whole send phase on the flat topology; nothing
    /// on the tree schedules, whose first sends depend on received
    /// blocks. The caller overlaps computation with the in-flight round,
    /// then calls [`Collectives::finish_all_gather_u64`]. One `start`
    /// must be finished before the next collective begins; results and
    /// accounting are bit-identical to the one-shot
    /// [`Collectives::all_gather_u64`] (which is itself start + finish).
    pub fn start_all_gather_u64(&mut self, value: u64) -> Result<PendingGather, TransportError> {
        self.stats.record_collective(self.rank());
        let sent = match self.topology {
            CollectiveTopology::Flat => {
                for dst in 0..self.nprocs() {
                    self.comm.send(dst, CollMsg(vec![value]))?;
                }
                self.comm.flush()?;
                true
            }
            _ => false,
        };
        Ok(PendingGather { value, sent })
    }

    /// Complete an all-gather begun by
    /// [`Collectives::start_all_gather_u64`], returning the rank-indexed
    /// contribution vector.
    pub fn finish_all_gather_u64(
        &mut self,
        pending: PendingGather,
    ) -> Result<Vec<u64>, TransportError> {
        if pending.sent {
            let mut out = Vec::with_capacity(self.nprocs());
            for (src, msg) in self.comm.recv_one_from_each()?.into_iter().enumerate() {
                out.push(expect_words(msg, 1, src)?[0]);
            }
            return Ok(out);
        }
        match self.topology {
            CollectiveTopology::Flat => self.flat_all_gather(pending.value),
            CollectiveTopology::Binomial => self.binomial_all_gather(pending.value),
            CollectiveTopology::RecursiveDoubling => self.rd_all_gather(pending.value),
        }
    }

    /// Drain whatever collective traffic is already deliverable into this
    /// endpoint's buffers without blocking — the eager-recv half of an
    /// overlapped round; returns how many blocks arrived.
    pub fn drain_ready(&mut self) -> Result<usize, TransportError> {
        self.comm.drain_ready()
    }

    /// Flat reference schedule: one word to every peer, one from each.
    fn flat_all_gather(&mut self, value: u64) -> Result<Vec<u64>, TransportError> {
        for dst in 0..self.nprocs() {
            self.comm.send(dst, CollMsg(vec![value]))?;
        }
        let mut out = Vec::with_capacity(self.nprocs());
        for (src, msg) in self.comm.recv_one_from_each()?.into_iter().enumerate() {
            out.push(expect_words(msg, 1, src)?[0]);
        }
        Ok(out)
    }

    /// Binomial-tree schedule: gather subtree blocks to rank 0 (child
    /// `r + 2^i` folds into `r` at round `i`), then broadcast the full
    /// vector back down the same tree, farthest subtree first.
    fn binomial_all_gather(&mut self, value: u64) -> Result<Vec<u64>, TransportError> {
        let p = self.nprocs();
        let rank = self.rank();
        if p == 1 {
            return Ok(vec![value]);
        }
        // `words` always covers the contiguous rank range
        // [rank, rank + words.len()); receiving children in ascending
        // round order keeps it contiguous.
        let relay_rounds = if rank == 0 { ceil_log2(p) } else { rank.trailing_zeros() as usize };
        let mut words = vec![value];
        for i in 0..relay_rounds {
            let child = rank + (1usize << i);
            if child < p {
                let block = (1usize << i).min(p - child);
                words.extend(expect_words(self.comm.recv_from(child)?, block, child)?);
            }
        }
        let full = if rank == 0 {
            debug_assert_eq!(words.len(), p, "root must assemble every word");
            words
        } else {
            let parent = rank - (1usize << relay_rounds);
            self.comm.send(parent, CollMsg(words))?;
            expect_words(self.comm.recv_from(parent)?, p, parent)?
        };
        for i in (0..relay_rounds).rev() {
            let child = rank + (1usize << i);
            if child < p {
                self.comm.send(child, CollMsg(full.clone()))?;
            }
        }
        Ok(full)
    }

    /// Recursive-doubling schedule. Non-power-of-two `P` first folds the
    /// lowest `2·rem` ranks pairwise (even hands its word to odd), runs
    /// the power-of-two exchange over the `p2` surviving participants,
    /// then unfolds (odd hands the finished vector back to even).
    fn rd_all_gather(&mut self, value: u64) -> Result<Vec<u64>, TransportError> {
        let p = self.nprocs();
        let rank = self.rank();
        if p == 1 {
            return Ok(vec![value]);
        }
        let p2 = prev_pow2(p);
        let rem = p - p2;
        let rounds = p2.trailing_zeros() as usize;
        // Original rank of effective rank `f`: the odd member of a folded
        // pair, or the unfolded rank shifted past the folded region.
        let orig_of = |f: usize| if f < rem { 2 * f + 1 } else { f + rem };
        // Original ranks whose words an effective-rank block covers, in
        // ascending order (folded effs cover their pair, others just
        // themselves).
        let origs_of_block = |start: usize, size: usize| {
            (start..start + size).flat_map(move |f| {
                if f < rem {
                    vec![2 * f, 2 * f + 1]
                } else {
                    vec![f + rem]
                }
            })
        };
        if rank < 2 * rem && rank.is_multiple_of(2) {
            // Folded rank: contribute the word, wait for the result.
            self.comm.send(rank + 1, CollMsg(vec![value]))?;
            return expect_words(self.comm.recv_from(rank + 1)?, p, rank + 1);
        }
        let eff = if rank < 2 * rem { rank / 2 } else { rank - rem };
        let mut slots: Vec<Option<u64>> = vec![None; p];
        slots[rank] = Some(value);
        if rank < 2 * rem {
            // Absorb the folded even neighbor's word before the rounds.
            let w = expect_words(self.comm.recv_from(rank - 1)?, 1, rank - 1)?;
            slots[rank - 1] = Some(w[0]);
        }
        for i in 0..rounds {
            let size = 1usize << i;
            let partner_eff = eff ^ size;
            let partner = orig_of(partner_eff);
            let mine: Vec<u64> = origs_of_block(eff & !(size - 1), size)
                .map(|r| slots[r].expect("own block gathered"))
                .collect();
            self.comm.send(partner, CollMsg(mine))?;
            let partner_start = partner_eff & !(size - 1);
            let want: Vec<usize> = origs_of_block(partner_start, size).collect();
            let theirs = expect_words(self.comm.recv_from(partner)?, want.len(), partner)?;
            for (r, w) in want.into_iter().zip(theirs) {
                slots[r] = Some(w);
            }
        }
        let full: Vec<u64> =
            slots.into_iter().map(|s| s.expect("doubling rounds cover every rank")).collect();
        if rank < 2 * rem {
            // Unfold: return the finished vector to the even neighbor.
            self.comm.send(rank - 1, CollMsg(full.clone()))?;
        }
        Ok(full)
    }

    /// Barrier: returns once every participant has arrived.
    pub fn barrier(&mut self) -> Result<(), TransportError> {
        self.all_gather_u64(0).map(|_| ())
    }

    /// Sum-reduce a `u64` across all participants.
    pub fn all_reduce_sum_u64(&mut self, value: u64) -> Result<u64, TransportError> {
        Ok(self.all_gather_u64(value)?.iter().sum())
    }

    /// Max-reduce a `u64` across all participants.
    pub fn all_reduce_max_u64(&mut self, value: u64) -> Result<u64, TransportError> {
        Ok(self.all_gather_u64(value)?.into_iter().max().unwrap_or(0))
    }

    /// Sum-reduce an `f64` (transported via bit pattern, summed at the
    /// reader in rank order — bit-identical under every topology).
    pub fn all_reduce_sum_f64(&mut self, value: f64) -> Result<f64, TransportError> {
        Ok(self.all_gather_u64(value.to_bits())?.iter().map(|&b| f64::from_bits(b)).sum())
    }

    /// Logical OR across participants (any participant true ⇒ all see true).
    pub fn all_reduce_any(&mut self, value: bool) -> Result<bool, TransportError> {
        Ok(self.all_reduce_sum_u64(value as u64)? > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [TransportKind; 3] = TransportKind::ALL;
    const TOPOLOGIES: [CollectiveTopology; 3] = CollectiveTopology::ALL;

    fn run_on(
        kind: TransportKind,
        topo: CollectiveTopology,
        n: usize,
        f: impl Fn(usize, &mut Collectives) + Sync,
    ) {
        let stats = CommStats::new(n);
        let fabric = Collectives::fabric(kind, topo, n, stats);
        std::thread::scope(|s| {
            for mut coll in fabric {
                let f = &f;
                s.spawn(move || f(coll.rank(), &mut coll));
            }
        });
    }

    /// Run the same program on every (transport × topology) pair.
    fn all(n: usize, f: impl Fn(usize, &mut Collectives) + Sync) {
        for kind in ALL {
            for topo in TOPOLOGIES {
                run_on(kind, topo, n, &f);
            }
        }
    }

    #[test]
    fn all_gather_returns_rank_indexed_values() {
        all(4, |rank, coll| {
            let got = coll.all_gather_u64((rank * 10) as u64).unwrap();
            assert_eq!(got, vec![0, 10, 20, 30], "{}", coll.topology());
        });
    }

    #[test]
    fn all_gather_handles_non_power_of_two_ranks() {
        // P = 5 and 7: the recursive-doubling fold/unfold and the ragged
        // binomial tree must still deliver the full rank-indexed vector.
        for n in [2, 3, 5, 6, 7] {
            all(n, |rank, coll| {
                let got = coll.all_gather_u64(100 + rank as u64).unwrap();
                let want: Vec<u64> = (0..coll.nprocs() as u64).map(|r| 100 + r).collect();
                assert_eq!(got, want, "P={n} {}", coll.topology());
            });
        }
    }

    #[test]
    fn repeated_rounds_do_not_mix() {
        all(3, |rank, coll| {
            for round in 0..50u64 {
                let got = coll.all_gather_u64(round * 100 + rank as u64).unwrap();
                assert_eq!(got, vec![round * 100, round * 100 + 1, round * 100 + 2]);
            }
        });
    }

    #[test]
    fn reductions() {
        all(4, |rank, coll| {
            assert_eq!(coll.all_reduce_sum_u64(2).unwrap(), 8);
            assert_eq!(coll.all_reduce_max_u64(rank as u64).unwrap(), 3);
            let s = coll.all_reduce_sum_f64(0.5).unwrap();
            assert!((s - 2.0).abs() < 1e-12);
            assert!(coll.all_reduce_any(rank == 2).unwrap());
            assert!(!coll.all_reduce_any(false).unwrap());
        });
    }

    #[test]
    fn single_process_collectives_are_identity() {
        all(1, |_rank, coll| {
            assert_eq!(coll.all_gather_u64(9).unwrap(), vec![9]);
            assert_eq!(coll.all_reduce_sum_u64(9).unwrap(), 9);
            coll.barrier().unwrap();
        });
    }

    #[test]
    fn collectives_charge_exactly_the_published_traffic() {
        // Measured CommStats must equal the rank_traffic cost model on
        // every (transport × topology) pair, per rank and in total.
        for kind in ALL {
            for topo in TOPOLOGIES {
                for n in [1usize, 2, 3, 4, 5] {
                    let stats = CommStats::new(n);
                    let fabric = Collectives::fabric(kind, topo, n, stats.clone());
                    std::thread::scope(|s| {
                        for mut coll in fabric {
                            s.spawn(move || coll.barrier().unwrap());
                        }
                    });
                    for rank in 0..n {
                        let (bytes, msgs) = topo.rank_traffic(rank, n);
                        assert_eq!(
                            stats.bytes_sent_by(rank),
                            bytes,
                            "{kind}/{topo} P={n} rank {rank} bytes"
                        );
                        assert_eq!(
                            stats.msgs_sent_by(rank),
                            msgs,
                            "{kind}/{topo} P={n} rank {rank} msgs"
                        );
                    }
                    let (bytes, msgs) = topo.total_traffic(n);
                    assert_eq!(stats.total_bytes(), bytes, "{kind}/{topo} P={n} total bytes");
                    assert_eq!(stats.total_msgs(), msgs, "{kind}/{topo} P={n} total msgs");
                    assert_eq!(stats.total_collective_rounds(), n as u64, "{kind}/{topo} rounds");
                }
            }
        }
    }

    #[test]
    fn split_all_gather_matches_one_shot_with_overlapped_work() {
        // start → (local work + eager drain) → finish must return exactly
        // what the one-shot gather returns, on every pair and at awkward
        // P, including back-to-back overlapped rounds.
        for n in [1, 2, 3, 5] {
            all(n, |rank, coll| {
                for round in 0..10u64 {
                    let pending = coll.start_all_gather_u64(round * 100 + rank as u64).unwrap();
                    // "Computation" while the round is in flight, plus an
                    // eager drain of whatever already arrived.
                    let _ = coll.drain_ready().unwrap();
                    let got = coll.finish_all_gather_u64(pending).unwrap();
                    let want: Vec<u64> =
                        (0..coll.nprocs() as u64).map(|r| round * 100 + r).collect();
                    assert_eq!(got, want, "P={n} round {round} {}", coll.topology());
                }
            });
        }
    }

    #[test]
    fn split_all_gather_charges_exactly_one_collective_round() {
        let stats = CommStats::new(3);
        let fabric = Collectives::fabric(
            TransportKind::Loopback,
            CollectiveTopology::Flat,
            3,
            stats.clone(),
        );
        std::thread::scope(|s| {
            for mut coll in fabric {
                s.spawn(move || {
                    let pending = coll.start_all_gather_u64(1).unwrap();
                    coll.finish_all_gather_u64(pending).unwrap();
                });
            }
        });
        assert_eq!(stats.total_collective_rounds(), 3, "one round per rank, recorded at start");
        let (bytes, msgs) = CollectiveTopology::Flat.total_traffic(3);
        assert_eq!((stats.total_bytes(), stats.total_msgs()), (bytes, msgs));
    }

    #[test]
    fn flat_traffic_matches_the_historical_formula() {
        // The reference topology keeps the pre-topology accounting:
        // 8·(P−1) bytes in P−1 messages per rank per collective.
        for p in [2usize, 4, 7, 64] {
            for rank in 0..p {
                assert_eq!(
                    CollectiveTopology::Flat.rank_traffic(rank, p),
                    (8 * (p as u64 - 1), p as u64 - 1)
                );
            }
        }
    }

    #[test]
    fn single_process_collectives_are_free() {
        for kind in [TransportKind::Bytes, TransportKind::Tcp] {
            for topo in TOPOLOGIES {
                let stats = CommStats::new(1);
                let fabric = Collectives::fabric(kind, topo, 1, stats.clone());
                let mut coll = fabric.into_iter().next().unwrap();
                coll.barrier().unwrap();
                assert_eq!(coll.all_gather_u64(3).unwrap(), vec![3]);
                assert_eq!(
                    stats.total_bytes(),
                    0,
                    "{kind}/{topo}: nprocs = 1 moves nothing over the wire"
                );
            }
        }
    }

    #[test]
    fn departed_peer_mid_collective_is_an_error_not_a_hang() {
        // Rank 1 goes away before contributing its word: rank 0's
        // all-gather must surface a typed transport error instead of
        // blocking forever or panicking mid-collective.
        let stats = CommStats::new(2);
        let mut fabric =
            Collectives::fabric(TransportKind::Tcp, CollectiveTopology::Flat, 2, stats);
        let one = fabric.pop().expect("rank 1");
        let mut zero = fabric.pop().expect("rank 0");
        drop(one);
        let err = zero.all_gather_u64(1).unwrap_err();
        assert!(matches!(err, TransportError::Disconnected { .. }), "{err}");
    }

    #[test]
    fn topology_parses_and_displays() {
        use CollectiveTopology::*;
        assert_eq!("flat".parse::<CollectiveTopology>().unwrap(), Flat);
        assert_eq!("TREE".parse::<CollectiveTopology>().unwrap(), Binomial);
        assert_eq!("binomial".parse::<CollectiveTopology>().unwrap(), Binomial);
        assert_eq!(
            " Recursive-Doubling ".parse::<CollectiveTopology>().unwrap(),
            RecursiveDoubling
        );
        assert_eq!("rd".parse::<CollectiveTopology>().unwrap(), RecursiveDoubling);
        assert_eq!(Flat.to_string(), "flat");
        assert_eq!(Binomial.to_string(), "tree");
        assert_eq!(RecursiveDoubling.to_string(), "recursive-doubling");
        assert_eq!(CollectiveTopology::default(), Flat);
        for topo in CollectiveTopology::ALL {
            assert_eq!(topo.to_string().parse::<CollectiveTopology>().unwrap(), topo);
        }
    }

    #[test]
    fn topology_typos_name_every_valid_name() {
        // Mirrors the DNE_TRANSPORT rule: `DNE_COLLECTIVES=trees` must be
        // a hard error that tells the operator what would have been
        // accepted.
        for typo in ["trees", "ring", "recursive_doubling", "binominal"] {
            let err = typo.parse::<CollectiveTopology>().unwrap_err();
            for name in ["flat", "tree", "recursive-doubling"] {
                assert!(err.contains(name), "error {err:?} must list {name}");
            }
        }
    }

    #[test]
    fn collmsg_codec_is_prefix_free_words() {
        let msg = CollMsg(vec![1, 2, 3]);
        let bytes = msg.to_wire();
        assert_eq!(bytes.len(), 24, "no length prefix: 3 words are 24 bytes");
        assert_eq!(msg.wire_bytes(), 24);
        assert_eq!(CollMsg::from_wire(&bytes).unwrap(), msg);
        assert_eq!(CollMsg::from_wire(&[]).unwrap(), CollMsg(vec![]));
        assert!(CollMsg::from_wire(&bytes[..7]).is_err(), "partial word must not decode");
    }
}
