//! Property tests of the graph substrate: CSR invariants, builder
//! idempotence, IO round-trips, generator guarantees.

use distributed_ne::graph::gen;
use distributed_ne::graph::transform;
use distributed_ne::graph::{EdgeListBuilder, Graph};
use proptest::prelude::*;

/// Strategy: an arbitrary small raw edge list (with duplicates and loops).
fn raw_edges() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..64, 0u64..64), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The builder always yields a canonical, loop-free, deduplicated list.
    #[test]
    fn builder_canonicalizes(raw in raw_edges()) {
        let mut b = EdgeListBuilder::new();
        b.extend_edges(raw.clone());
        let edges = b.finish();
        for w in edges.windows(2) {
            prop_assert!(w[0] < w[1], "must be strictly sorted");
        }
        for &(u, v) in &edges {
            prop_assert!(u < v, "must be canonical and loop-free");
        }
        // Idempotence: re-ingesting the output reproduces it.
        let mut b2 = EdgeListBuilder::new();
        b2.extend_edges(edges.clone());
        prop_assert_eq!(b2.finish(), edges);
    }

    /// CSR adjacency is an involution: every edge appears in exactly two
    /// adjacency slots, and `opposite` round-trips.
    #[test]
    fn csr_adjacency_involution(raw in raw_edges()) {
        let mut b = EdgeListBuilder::new();
        b.extend_edges(raw);
        let g = b.into_graph(64);
        let mut slot_count = vec![0u32; g.num_edges() as usize];
        for v in g.vertices() {
            for (u, e) in g.neighbors(v) {
                slot_count[e as usize] += 1;
                prop_assert_eq!(g.opposite(e, v), u);
                prop_assert_eq!(g.opposite(e, u), v);
            }
        }
        prop_assert!(slot_count.iter().all(|&c| c == 2));
        let degree_sum: u64 = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    /// Binary IO round-trips exactly.
    #[test]
    fn binary_io_roundtrip(raw in raw_edges(), tag in 0u64..1_000_000) {
        use distributed_ne::graph::io;
        let mut b = EdgeListBuilder::new();
        b.extend_edges(raw);
        let g = b.into_graph(64);
        let dir = std::env::temp_dir().join("dne_proptest_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("g_{tag}.bin"));
        io::write_binary(&g, &path).unwrap();
        let g2 = io::read_binary(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(g.num_vertices(), g2.num_vertices());
        prop_assert_eq!(g.edges(), g2.edges());
    }

    /// Component labels partition the vertex set and are closed over edges.
    #[test]
    fn component_labels_are_consistent(raw in raw_edges()) {
        let mut b = EdgeListBuilder::new();
        b.extend_edges(raw);
        let g = b.into_graph(64);
        let labels = transform::component_labels(&g);
        for &(u, v) in g.edges() {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
        // Every label is the smallest vertex id of its component.
        for v in g.vertices() {
            prop_assert!(labels[v as usize] <= v);
        }
    }

    /// Induced subgraphs never contain edges touching dropped vertices.
    #[test]
    fn induced_subgraph_is_sound(raw in raw_edges(), mask_seed in 0u64..1000) {
        let mut b = EdgeListBuilder::new();
        b.extend_edges(raw);
        let g = b.into_graph(64);
        let keep: Vec<bool> = (0..64u64)
            .map(|v| distributed_ne::graph::hash::mix2(mask_seed, v) & 1 == 0)
            .collect();
        let (sub, old_of) = transform::induced_subgraph(&g, &keep);
        prop_assert_eq!(old_of.len() as u64, sub.num_vertices());
        for &(u, v) in sub.edges() {
            prop_assert!(keep[old_of[u as usize] as usize]);
            prop_assert!(keep[old_of[v as usize] as usize]);
        }
    }

    /// RMAT stays within its configured vertex budget and sample cap.
    #[test]
    fn rmat_respects_budgets(scale in 4u32..9, ef in 1u64..8, seed in 0u64..500) {
        let cfg = gen::RmatConfig::graph500(scale, ef, seed);
        let g = gen::rmat(&cfg);
        prop_assert_eq!(g.num_vertices(), 1u64 << scale);
        prop_assert!(g.num_edges() <= cfg.num_samples());
    }
}

#[test]
fn largest_component_of_connected_graph_is_identity_sized() {
    let g = gen::complete(10);
    let (lcc, _) = transform::largest_component(&g);
    assert_eq!(lcc.num_vertices(), 10);
    assert_eq!(lcc.num_edges(), 45);
}

#[test]
fn empty_graph_transforms() {
    let g = Graph::from_canonical_edges(0, vec![]);
    let labels = transform::component_labels(&g);
    assert!(labels.is_empty());
}
