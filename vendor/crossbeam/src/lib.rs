//! Offline shim for the subset of `crossbeam` used by this workspace.
//!
//! The container building this repo has no access to crates.io, so the
//! workspace vendors minimal, API-compatible stand-ins for its external
//! dependencies. Only `crossbeam::channel::{unbounded, Sender, Receiver}`
//! is needed; it is implemented over `std::sync::mpsc`, which provides the
//! same per-producer FIFO guarantee the runtime relies on.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel. Clonable, per-producer FIFO.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving half has been dropped.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crossbeam: `Debug` does not require `T: Debug`, so
    // `.expect()` works on channels of arbitrary payloads.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned when all sending halves have been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Create an unbounded MPSC channel with a clonable sender.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_per_producer() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            drop(tx2);
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_errors_when_senders_dropped() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
