//! The benchmark applications (paper §7.6 plus the Graphalytics-style
//! extensions) and their sequential reference implementations.
//!
//! The paper's three workloads:
//!
//! * **SSSP** — single-source shortest path on the unweighted graph
//!   ("the lightest workload and only involves a few communications").
//! * **WCC** — weakly connected components by min-label propagation
//!   ("medium").
//! * **PageRank** — fixed-iteration PageRank ("the heaviest, where all the
//!   vertices send messages to their destinations in every iteration";
//!   the paper runs 100 iterations).
//!
//! The Graphalytics-grade additions (LDBC Graphalytics judges partitioners
//! by exactly this kernel set):
//!
//! * **BFS** — level-synchronous breadth-first search: `values[v]` is the
//!   hop count from the source (on this unweighted graph, BFS levels and
//!   SSSP distances coincide — a cross-kernel invariant the property
//!   tests assert).
//! * **Triangles** — exact per-vertex triangle counts plus the global
//!   count, via a three-round adjacency-exchange kernel
//!   ([`crate::Engine::run_triangles_rank`]).
//! * **LCC** — local clustering coefficient
//!   `2·T(v) / (d(v)·(d(v)−1))`, derived from the same exact counts.
//!
//! The distributed engine computes over `V(E)` (vertices with at least one
//! edge); isolated vertices keep their initial value in both the engine and
//! the references (0 for the counting kernels), so results compare exactly.

use std::collections::VecDeque;

use dne_graph::{Graph, VertexId};

use crate::engine::{lcc_value, AppRun, Combine, Engine, VertexProgram};

/// The vertex program behind [`VertexProgram::sssp`] and
/// [`VertexProgram::bfs`]: on an unweighted graph both relax
/// `min(dist(u) + 1)` level-synchronously and differ only in their report
/// name.
fn hop_program(name: &'static str, source: VertexId) -> VertexProgram {
    fn init(v: VertexId, _d: u64, source: f64) -> f64 {
        if v == source as VertexId {
            0.0
        } else {
            f64::INFINITY
        }
    }
    fn edge(x: f64, _d: u64) -> f64 {
        x + 1.0
    }
    fn apply(old: f64, acc: Option<f64>) -> f64 {
        match acc {
            Some(a) => old.min(a),
            None => old,
        }
    }
    VertexProgram {
        name,
        combine: Combine::Min,
        init,
        param: source as f64,
        edge_fn: edge,
        apply,
        fixed_supersteps: None,
        frontier_only: true,
    }
}

impl VertexProgram {
    /// The BFS program (level-synchronous hop counts from `source`).
    pub fn bfs(source: VertexId) -> VertexProgram {
        hop_program("BFS", source)
    }

    /// The SSSP program (unit-weight distances from `source`).
    pub fn sssp(source: VertexId) -> VertexProgram {
        hop_program("SSSP", source)
    }

    /// The WCC program (min-label propagation).
    pub fn wcc() -> VertexProgram {
        fn init(v: VertexId, _d: u64, _p: f64) -> f64 {
            v as f64
        }
        fn edge(x: f64, _d: u64) -> f64 {
            x
        }
        fn apply(old: f64, acc: Option<f64>) -> f64 {
            match acc {
                Some(a) => old.min(a),
                None => old,
            }
        }
        VertexProgram {
            name: "WCC",
            combine: Combine::Min,
            init,
            param: 0.0,
            edge_fn: edge,
            apply,
            fixed_supersteps: None,
            frontier_only: true,
        }
    }

    /// The PageRank program (`iters` synchronous iterations, damping
    /// 0.85, unnormalized per-vertex formulation on the undirected graph).
    pub fn pagerank(iters: u64) -> VertexProgram {
        fn init(_v: VertexId, _d: u64, _p: f64) -> f64 {
            1.0
        }
        fn edge(x: f64, d: u64) -> f64 {
            x / d as f64
        }
        fn apply(_old: f64, acc: Option<f64>) -> f64 {
            0.15 + 0.85 * acc.unwrap_or(0.0)
        }
        VertexProgram {
            name: "PageRank",
            combine: Combine::Sum,
            init,
            param: 0.0,
            edge_fn: edge,
            apply,
            fixed_supersteps: Some(iters),
            frontier_only: false,
        }
    }
}

impl Engine<'_> {
    /// Distributed SSSP from `source` (unweighted hop distances).
    pub fn sssp(&self, source: VertexId) -> AppRun {
        self.run(&VertexProgram::sssp(source))
    }

    /// Distributed level-synchronous BFS from `source`: `values[v]` is the
    /// level (hop count) at which `v` is first reached,
    /// `f64::INFINITY` for unreachable vertices. Each superstep expands
    /// exactly one frontier level (`frontier_only` gathering), so the
    /// superstep count is `eccentricity(source) + 1` on the source's
    /// component.
    pub fn bfs(&self, source: VertexId) -> AppRun {
        self.run(&VertexProgram::bfs(source))
    }

    /// Distributed WCC: every vertex converges to the minimum vertex id of
    /// its connected component.
    pub fn wcc(&self) -> AppRun {
        self.run(&VertexProgram::wcc())
    }

    /// Distributed PageRank with `iters` synchronous iterations
    /// (damping 0.85; unnormalized per-vertex formulation on the
    /// undirected graph, as in vertex-cut engines).
    pub fn pagerank(&self, iters: u64) -> AppRun {
        self.run(&VertexProgram::pagerank(iters))
    }
}

/// Sequential BFS reference for SSSP (hop distances; isolated and
/// unreachable vertices stay at `f64::INFINITY`).
pub fn sssp_reference(g: &Graph, source: VertexId) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; g.num_vertices() as usize];
    dist[source as usize] = 0.0;
    let mut q = VecDeque::new();
    q.push_back(source);
    while let Some(v) = q.pop_front() {
        for &u in g.neighbor_vertices(v) {
            if dist[u as usize].is_infinite() {
                dist[u as usize] = dist[v as usize] + 1.0;
                q.push_back(u);
            }
        }
    }
    dist
}

/// Sequential level-synchronous BFS reference: expand one whole frontier
/// per level, like the distributed kernel expands one frontier per
/// superstep. Levels equal [`sssp_reference`] distances on this unweighted
/// graph — the implementations differ (frontier sweeps vs a FIFO queue)
/// precisely so that agreement is evidence, not tautology.
pub fn bfs_reference(g: &Graph, source: VertexId) -> Vec<f64> {
    let mut level = vec![f64::INFINITY; g.num_vertices() as usize];
    level[source as usize] = 0.0;
    let mut frontier = vec![source];
    let mut depth = 0.0f64;
    while !frontier.is_empty() {
        depth += 1.0;
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in g.neighbor_vertices(v) {
                if level[u as usize].is_infinite() {
                    level[u as usize] = depth;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    level
}

/// Sequential reference for WCC (min vertex id per component; isolated
/// vertices are their own component).
pub fn wcc_reference(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    let mut label = vec![f64::NAN; n];
    for start in g.vertices() {
        if !label[start as usize].is_nan() {
            continue;
        }
        // BFS the component, then assign the minimum id found.
        let mut comp = vec![start];
        let mut q = VecDeque::from([start]);
        label[start as usize] = -1.0; // visited marker
        while let Some(v) = q.pop_front() {
            for &u in g.neighbor_vertices(v) {
                if label[u as usize].is_nan() {
                    label[u as usize] = -1.0;
                    comp.push(u);
                    q.push_back(u);
                }
            }
        }
        let min = *comp.iter().min().unwrap() as f64;
        for v in comp {
            label[v as usize] = min;
        }
    }
    label
}

/// Sequential reference for the engine's PageRank formulation (isolated
/// vertices keep their initial value 1.0, matching the engine's
/// vertices-with-edges-only execution).
pub fn pagerank_reference(g: &Graph, iters: u64) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    let mut pr = vec![1.0f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iters {
        next.iter_mut().for_each(|x| *x = 0.0);
        for v in g.vertices() {
            let d = g.degree(v);
            if d == 0 {
                continue;
            }
            let share = pr[v as usize] / d as f64;
            for &u in g.neighbor_vertices(v) {
                next[u as usize] += share;
            }
        }
        for v in g.vertices() {
            if g.degree(v) > 0 {
                pr[v as usize] = 0.15 + 0.85 * next[v as usize];
            }
        }
    }
    pr
}

/// Exact per-vertex triangle counts on the raw graph: `counts[v]` is the
/// number of triangles containing `v` (0 for isolated vertices), computed
/// by sorted-intersection over every edge — the textbook edge-iterator
/// algorithm, structurally unlike the distributed three-round kernel.
/// The global triangle count is `Σ_v counts[v] / 3`
/// ([`triangle_total`]).
pub fn triangles_reference(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    // CSR adjacency is two sorted runs (smaller, then larger neighbors),
    // not one; sort copies once.
    let sorted: Vec<Vec<VertexId>> = (0..n)
        .map(|v| {
            let mut nb = g.neighbor_vertices(v as VertexId).to_vec();
            nb.sort_unstable();
            nb
        })
        .collect();
    let mut charge = vec![0u64; n];
    g.for_each_edge(|_, u, v| {
        let t = sorted[u as usize].iter().filter(|w| sorted[v as usize].binary_search(w).is_ok());
        let t = t.count() as u64;
        charge[u as usize] += t;
        charge[v as usize] += t;
    });
    // Each triangle at v is charged once by each of its two edges at v.
    charge.iter().map(|&c| (c / 2) as f64).collect()
}

/// The global triangle count implied by per-vertex counts (each triangle
/// has three corners).
pub fn triangle_total(per_vertex: &[f64]) -> f64 {
    per_vertex.iter().sum::<f64>() / 3.0
}

/// Sequential local-clustering-coefficient reference:
/// `2·T(v) / (d(v)·(d(v)−1))` for `d(v) ≥ 2`, else 0. Evaluates the
/// identical floating-point expression as the distributed kernel over the
/// exact [`triangles_reference`] counts, so the two agree to the last bit
/// on every platform with IEEE-754 doubles.
pub fn lcc_reference(g: &Graph) -> Vec<f64> {
    triangles_reference(g)
        .iter()
        .enumerate()
        .map(|(v, &t)| lcc_value(t as u64, g.degree(v as VertexId)))
        .collect()
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use dne_graph::{gen, EdgeListBuilder};
    use dne_partition::hash_based::RandomPartitioner;
    use dne_partition::EdgePartitioner;

    #[test]
    fn sssp_reference_on_path() {
        let g = gen::path(5);
        let d = sssp_reference(&g, 0);
        assert_eq!(d, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn bfs_reference_matches_sssp_reference() {
        let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 2));
        assert_eq!(bfs_reference(&g, 0), sssp_reference(&g, 0));
    }

    #[test]
    fn wcc_reference_on_two_components() {
        let g = gen::ring_complete(4); // clique 0..4, ring 4..10
        let l = wcc_reference(&g);
        assert!(l[0..4].iter().all(|&x| x == 0.0));
        assert!(l[4..].iter().all(|&x| x == 4.0));
    }

    #[test]
    fn pagerank_reference_uniform_on_cycle() {
        // On a regular graph, PR converges to a uniform value = 1.0.
        let g = gen::cycle(10);
        let pr = pagerank_reference(&g, 50);
        for &x in &pr {
            assert!((x - 1.0).abs() < 1e-9, "cycle PR should be 1.0, got {x}");
        }
    }

    #[test]
    fn triangle_reference_on_known_shapes() {
        // A clique on 5 vertices has C(5,3) = 10 triangles, C(4,2) = 6 per
        // vertex; a cycle has none.
        let clique = gen::complete(5);
        let t = triangles_reference(&clique);
        assert!(t.iter().all(|&x| x == 6.0));
        assert_eq!(triangle_total(&t), 10.0);
        assert!(triangles_reference(&gen::cycle(8)).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn lcc_reference_on_known_shapes() {
        // Clique: every LCC is 1. Path interior vertex: two unlinked
        // neighbors, LCC 0. Triangle with a tail: the tail's endpoint has
        // degree 1 → 0, the junction has degree 3 and one linked pair
        // → 2·1/(3·2) = 1/3.
        assert!(lcc_reference(&gen::complete(4)).iter().all(|&x| x == 1.0));
        assert!(lcc_reference(&gen::path(4)).iter().all(|&x| x == 0.0));
        let mut b = EdgeListBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        let g = b.into_graph(4);
        let lcc = lcc_reference(&g);
        assert_eq!(lcc, vec![1.0, 1.0, 1.0 / 3.0, 0.0]);
    }

    #[test]
    fn engine_sssp_matches_reference() {
        let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 1));
        let a = RandomPartitioner::new(1).partition(&g, 4);
        let eng = Engine::new(&g, &a);
        let run = eng.sssp(0);
        let want = sssp_reference(&g, 0);
        for v in 0..g.num_vertices() as usize {
            if g.degree(v as u64) > 0 {
                assert_eq!(run.values[v], want[v], "vertex {v}");
            }
        }
        assert!(run.comm_bytes > 0);
    }

    #[test]
    fn engine_bfs_matches_reference() {
        let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 8));
        let a = RandomPartitioner::new(8).partition(&g, 4);
        let run = Engine::new(&g, &a).bfs(1);
        assert_eq!(run.values, bfs_reference(&g, 1));
    }

    #[test]
    fn engine_wcc_matches_reference() {
        let g = gen::ring_complete(5);
        let a = RandomPartitioner::new(2).partition(&g, 4);
        let run = Engine::new(&g, &a).wcc();
        let want = wcc_reference(&g);
        for v in 0..g.num_vertices() as usize {
            assert_eq!(run.values[v], want[v], "vertex {v}");
        }
    }

    #[test]
    fn engine_pagerank_matches_reference() {
        let g = gen::rmat(&gen::RmatConfig::graph500(6, 4, 3));
        let a = RandomPartitioner::new(3).partition(&g, 4);
        let run = Engine::new(&g, &a).pagerank(10);
        let want = pagerank_reference(&g, 10);
        for v in 0..g.num_vertices() as usize {
            if g.degree(v as u64) > 0 {
                assert!(
                    (run.values[v] - want[v]).abs() < 1e-9,
                    "vertex {v}: engine {} vs reference {}",
                    run.values[v],
                    want[v]
                );
            }
        }
        assert_eq!(run.supersteps, 10);
    }

    #[test]
    fn engine_triangles_and_lcc_match_references() {
        let g = gen::rmat(&gen::RmatConfig::graph500(7, 6, 4));
        let a = RandomPartitioner::new(4).partition(&g, 4);
        let eng = Engine::new(&g, &a);
        let tri = eng.triangles();
        assert_eq!(tri.values, triangles_reference(&g), "per-vertex triangle counts");
        assert_eq!(tri.aggregate, Some(triangle_total(&tri.values)), "global count");
        let lcc = eng.lcc();
        let want = lcc_reference(&g);
        for v in 0..g.num_vertices() as usize {
            assert_eq!(
                lcc.values[v].to_bits(),
                want[v].to_bits(),
                "vertex {v}: identical expression over exact counts must round identically"
            );
        }
    }
}
