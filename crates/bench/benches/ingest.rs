//! Serial vs parallel ingestion micro-benchmarks.
//!
//! The acceptance workload of the parallel ingestion subsystem: build a CSR
//! graph from raw RMAT samples with the sequential path
//! (`EdgeListBuilder::finish` + `Graph::from_canonical_edges`) and the
//! parallel path (`build_parallel`) at several thread counts, plus the
//! end-to-end generator comparison (`rmat` vs `rmat_parallel`). Outputs are
//! byte-identical by construction, so the numbers compare the same work.
//!
//! The `DNE_INGEST_SCALE` environment variable (default 14) selects the
//! RMAT scale; scale 17 × EF 80 reproduces the 10M-edge acceptance sweep
//! on machines with the memory for it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dne_graph::gen::{rmat, rmat_parallel, RmatConfig};
use dne_graph::parallel::default_ingest_threads;
use dne_graph::{EdgeListBuilder, Graph};
use std::hint::black_box;

fn scale() -> u32 {
    std::env::var("DNE_INGEST_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(14)
}

/// Thread counts to sweep: 1 (sequential), 2, and the machine width.
fn thread_sweep() -> Vec<usize> {
    let mut t = vec![1, 2, default_ingest_threads()];
    t.sort_unstable();
    t.dedup();
    t
}

/// Raw (pre-dedup) canonical samples of an RMAT stream, the input the
/// builder benchmarks consume.
fn raw_samples(cfg: &RmatConfig) -> (u64, Vec<(u64, u64)>) {
    let g = rmat(cfg);
    let n = g.num_vertices();
    // Re-expand the deduplicated edge list into a shuffled, duplicated raw
    // stream so `finish` has realistic compaction work to do.
    let mut raw = Vec::with_capacity(2 * g.edges().len());
    for (i, &(u, v)) in g.edges().iter().enumerate() {
        raw.push((v, u));
        if i % 3 != 0 {
            raw.push((u, v)); // duplicate to compact away
        }
    }
    let mut rng = dne_graph::hash::SplitMix64::new(9);
    for i in (1..raw.len()).rev() {
        raw.swap(i, rng.next_below(i as u64 + 1) as usize);
    }
    (n, raw)
}

fn bench_builder(c: &mut Criterion) {
    let cfg = RmatConfig::graph500(scale(), 8, 1);
    let (n, raw) = raw_samples(&cfg);
    let mut group = c.benchmark_group("edge_list_build");
    group.sample_size(10);
    group.throughput(Throughput::Elements(raw.len() as u64));
    group.bench_function("serial", |b| {
        b.iter_batched(
            || {
                let mut bld = EdgeListBuilder::with_capacity(raw.len());
                bld.extend_edges(raw.iter().copied());
                bld
            },
            |bld| black_box(bld.into_graph(n)),
            criterion::BatchSize::LargeInput,
        )
    });
    for threads in thread_sweep() {
        group.bench_function(BenchmarkId::new("parallel", threads), |b| {
            b.iter_batched(
                || {
                    let mut bld = EdgeListBuilder::with_capacity(raw.len());
                    bld.extend_edges(raw.iter().copied());
                    bld
                },
                |bld| black_box(bld.build_parallel(n, threads)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_csr(c: &mut Criterion) {
    let g = rmat(&RmatConfig::graph500(scale(), 8, 2));
    let edges: Vec<_> = g.edges().to_vec();
    let n = g.num_vertices();
    let mut group = c.benchmark_group("csr_build_parallel");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_edges()));
    group.bench_function("serial", |b| {
        b.iter_batched(
            || edges.clone(),
            |e| black_box(Graph::from_canonical_edges(n, e)),
            criterion::BatchSize::LargeInput,
        )
    });
    for threads in thread_sweep() {
        group.bench_function(BenchmarkId::new("parallel", threads), |b| {
            b.iter_batched(
                || edges.clone(),
                |e| black_box(Graph::from_canonical_edges_parallel(n, e, threads)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_generator(c: &mut Criterion) {
    let cfg = RmatConfig::graph500(scale(), 8, 3);
    let mut group = c.benchmark_group("rmat_end_to_end");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cfg.num_samples()));
    group.bench_function("serial", |b| b.iter(|| black_box(rmat(&cfg))));
    for threads in thread_sweep() {
        group.bench_function(BenchmarkId::new("parallel", threads), |b| {
            b.iter(|| black_box(rmat_parallel(&cfg, threads)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_builder, bench_csr, bench_generator);
criterion_main!(benches);
