//! Run statistics of a Distributed NE execution.

use std::time::Duration;

/// Everything the benchmark harness needs to reproduce the paper's
/// performance figures from one partitioning run.
#[derive(Debug, Clone)]
pub struct NeStats {
    /// Number of partitions `|P|` (== simulated machines).
    pub num_partitions: u32,
    /// `|E|` of the input graph.
    pub num_edges: u64,
    /// Iterations of the expansion loop (Figure 6's left axis).
    pub iterations: u64,
    /// Wall-clock time of the parallel section (Figure 10's metric —
    /// excludes graph loading/deployment, as in the paper §7.3).
    pub elapsed: Duration,
    /// Total bytes crossing the simulated interconnect.
    pub comm_bytes: u64,
    /// Total messages crossing the simulated interconnect.
    pub comm_msgs: u64,
    /// Physical frames carrying those messages. Without coalescing this
    /// equals `comm_msgs` minus self-sends (one frame per remote
    /// envelope); with `DNE_COMM_BATCH` it drops as small envelopes share
    /// multi-message frames. Results and the two counters above are
    /// bit-identical either way.
    pub comm_frames: u64,
    /// Collective rounds (barrier / all-gather / all-reduce) each rank
    /// executed — identical across ranks by the lock-step structure. With
    /// `CollectiveTopology::total_traffic` this turns `comm_bytes` into an
    /// exact per-topology expectation (the equivalence harness does).
    pub collective_rounds: u64,
    /// Peak total live bytes across machines (Figure 9 numerator).
    pub peak_memory_bytes: u64,
    /// The paper's mem score: peak bytes / `|E|` (Figure 9).
    pub mem_score: f64,
    /// Largest per-machine cumulative vertex-selection time — the
    /// bottleneck the paper identifies in the trillion-edge experiment
    /// (§7.4: selection grows to 30.3 % of the runtime on 256 machines).
    pub selection_time_max: Duration,
    /// Largest per-machine cumulative allocation time.
    pub allocation_time_max: Duration,
}

impl NeStats {
    /// Fraction of the slowest machine's measured work spent in vertex
    /// selection (the §7.4 imbalance indicator).
    pub fn selection_share(&self) -> f64 {
        let s = self.selection_time_max.as_secs_f64();
        let a = self.allocation_time_max.as_secs_f64();
        if s + a == 0.0 {
            0.0
        } else {
            s / (s + a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_share_is_a_fraction() {
        let st = NeStats {
            num_partitions: 4,
            num_edges: 100,
            iterations: 5,
            elapsed: Duration::from_millis(10),
            comm_bytes: 1000,
            comm_msgs: 10,
            comm_frames: 8,
            collective_rounds: 6,
            peak_memory_bytes: 4096,
            mem_score: 40.96,
            selection_time_max: Duration::from_millis(3),
            allocation_time_max: Duration::from_millis(7),
        };
        assert!((st.selection_share() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn zero_times_give_zero_share() {
        let st = NeStats {
            num_partitions: 1,
            num_edges: 0,
            iterations: 0,
            elapsed: Duration::ZERO,
            comm_bytes: 0,
            comm_msgs: 0,
            comm_frames: 0,
            collective_rounds: 0,
            peak_memory_bytes: 0,
            mem_score: 0.0,
            selection_time_max: Duration::ZERO,
            allocation_time_max: Duration::ZERO,
        };
        assert_eq!(st.selection_share(), 0.0);
    }
}
