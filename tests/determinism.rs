//! Determinism guarantees: under a fixed seed every partitioner — including
//! the multi-threaded Distributed NE — produces bit-identical assignments,
//! because all cross-machine interaction goes through the runtime's
//! lock-step exchanges (see `dne-runtime` docs).

use distributed_ne::core::{DistributedNe, NeConfig};
use distributed_ne::graph::gen;
use distributed_ne::partition::greedy::NePartitioner;
use distributed_ne::partition::streaming::{HdrfPartitioner, ObliviousPartitioner};
use distributed_ne::partition::EdgePartitioner;

#[test]
fn distributed_ne_is_deterministic_across_many_runs() {
    let g = gen::rmat(&gen::RmatConfig::graph500(9, 8, 11));
    let ne = DistributedNe::new(NeConfig::default().with_seed(11));
    let reference = ne.partition(&g, 8);
    // The algorithm runs on 8 concurrent threads; any schedule-dependence
    // would show up across repetitions.
    for run in 0..5 {
        let a = ne.partition(&g, 8);
        assert_eq!(a, reference, "run {run} diverged — scheduling leak into the algorithm");
    }
}

#[test]
fn seeds_change_results_but_not_quality_class() {
    use distributed_ne::partition::PartitionQuality;
    let g = gen::rmat(&gen::RmatConfig::graph500(9, 8, 3));
    let a1 = DistributedNe::new(NeConfig::default().with_seed(1)).partition(&g, 8);
    let a2 = DistributedNe::new(NeConfig::default().with_seed(2)).partition(&g, 8);
    assert_ne!(a1, a2);
    let q1 = PartitionQuality::measure(&g, &a1).replication_factor;
    let q2 = PartitionQuality::measure(&g, &a2).replication_factor;
    // The paper reports <5% relative standard error over 5 seeds; two
    // seeds should land in the same quality class (within 25%).
    assert!((q1 - q2).abs() / q1.min(q2) < 0.25, "seed sensitivity too high: {q1} vs {q2}");
}

#[test]
fn sequential_methods_are_deterministic() {
    let g = gen::rmat(&gen::RmatConfig::graph500(8, 8, 5));
    let methods: Vec<Box<dyn EdgePartitioner>> = vec![
        Box::new(NePartitioner::new(5)),
        Box::new(HdrfPartitioner::new(5)),
        Box::new(ObliviousPartitioner::new(5)),
    ];
    for m in methods {
        assert_eq!(m.partition(&g, 6), m.partition(&g, 6), "{} not deterministic", m.name());
    }
}

#[test]
fn determinism_holds_across_partition_counts() {
    let g = gen::rmat(&gen::RmatConfig::graph500(8, 4, 9));
    for k in [2u32, 3, 5, 12, 31] {
        let ne = DistributedNe::new(NeConfig::default().with_seed(9));
        assert_eq!(ne.partition(&g, k), ne.partition(&g, k), "k = {k}");
    }
}
