//! Message types exchanged between expansion and allocation processes.
//!
//! One Distributed NE iteration is three lock-step all-to-all rounds
//! (Figure 4 steps 1–6):
//!
//! 1. **Select** — expansion process `p` multicasts its chosen vertices to
//!    the allocators in charge (Algorithm 1 line 8). Allocators not in any
//!    chosen vertex's replica set receive an empty message (the lock-step
//!    exchange still delivers one envelope per link; an empty message
//!    charges only its header).
//! 2. **Sync** — allocators synchronize new vertex-allocation ids with the
//!    replicas of each vertex (Algorithm 2, `SyncVertexAllocations`).
//! 3. **Result** — allocators return the new boundary with local `D_rest`
//!    scores plus the newly allocated edges to the owning expansion
//!    processes (Algorithm 2, `SendNewBoundaryWithLocalDrest` /
//!    `SendNewAllocatedEdges`), piggybacking the free-edge gossip used for
//!    random-restart routing.

use dne_graph::{EdgeId, VertexId};
use dne_runtime::WireSize;

/// Partition id on the wire (matches `dne_partition::PartitionId`).
pub type Part = u32;

/// One envelope of the Distributed NE protocol.
#[derive(Debug, Clone)]
pub enum NeMsg {
    /// Expansion → allocator: vertices selected for the sender's partition
    /// this iteration; a non-zero `random_budget` asks the receiving
    /// allocator to expand one random free vertex on the sender's behalf
    /// (boundary exhausted), choosing one whose remaining local degree fits
    /// the sender's remaining capacity.
    Select {
        /// Vertices selected for expansion this iteration.
        vertices: Vec<VertexId>,
        /// Non-zero: capacity budget for the random-vertex fallback.
        random_budget: u64,
    },
    /// Allocator → allocator: `(vertex, partition)` memberships created by
    /// the one-hop phase, destined for the vertex's replicas.
    Sync {
        /// New `(vertex, partition)` membership pairs.
        pairs: Vec<(VertexId, Part)>,
    },
    /// Allocator → expansion: new boundary vertices with their local
    /// `D_rest` contribution, newly allocated edge ids for the receiving
    /// partition, and the sender's free-edge count (gossip).
    Result {
        /// New boundary vertices with their local `D_rest` contribution.
        boundary: Vec<(VertexId, u64)>,
        /// Edge ids newly allocated to the receiving partition.
        edges: Vec<EdgeId>,
        /// The sender's count of still-unallocated local edges (gossip).
        free_edges: u64,
    },
}

impl WireSize for NeMsg {
    fn wire_bytes(&self) -> usize {
        // 1-byte tag + payload; vectors carry an 8-byte length prefix.
        match self {
            NeMsg::Select { vertices, random_budget: _ } => 1 + 8 + 8 + 8 * vertices.len(),
            NeMsg::Sync { pairs } => 1 + 8 + 12 * pairs.len(),
            NeMsg::Result { boundary, edges, free_edges: _ } => {
                1 + 8 + 16 * boundary.len() + 8 + 8 * edges.len() + 8
            }
        }
    }
}

impl NeMsg {
    /// An empty Select (no vertices, no random request).
    pub fn empty_select() -> Self {
        NeMsg::Select { vertices: Vec::new(), random_budget: 0 }
    }

    /// An empty Sync.
    pub fn empty_sync() -> Self {
        NeMsg::Sync { pairs: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_scale_with_payload() {
        let s0 = NeMsg::empty_select().wire_bytes();
        let s2 = NeMsg::Select { vertices: vec![1, 2], random_budget: 0 }.wire_bytes();
        assert_eq!(s2 - s0, 16);
        let y0 = NeMsg::empty_sync().wire_bytes();
        let y3 = NeMsg::Sync { pairs: vec![(1, 0), (2, 1), (3, 2)] }.wire_bytes();
        assert_eq!(y3 - y0, 36);
        let r = NeMsg::Result { boundary: vec![(5, 2)], edges: vec![1, 2, 3], free_edges: 9 };
        assert_eq!(r.wire_bytes(), 1 + 8 + 16 + 8 + 24 + 8);
    }
}
