//! The assignment-lookup protocol: what `dne-server` serves and
//! `dne-client` speaks.
//!
//! A deliberately small, prefix-free request vocabulary over the
//! workspace wire codec (1-byte variant tag + the fields' own codecs,
//! exactly like `dne-core`'s `NeMsg`), carried by the runtime's
//! request/response service layer ([`dne_runtime::WireServer`] /
//! [`dne_runtime::WireClient`]). Floating-point stats travel as IEEE-754
//! bit patterns (`f64::to_bits`) so responses are byte-exact and the
//! codec stays integer-only.
//!
//! [`AssignmentService`] adapts a [`ShardedAssignmentIndex`] to the
//! [`Service`] trait: every request is answered from the sharded maps;
//! `Shutdown` answers and then stops the server (the CI smoke and the
//! benchmark harness use it for deterministic teardown).

use dne_graph::EdgeId;
use dne_partition::{PartitionId, ShardedAssignmentIndex};
use dne_runtime::{Service, ServiceReply, WireDecode, WireEncode, WireError, WireReader, WireSize};

/// Environment variable consulted by [`conns_from_env`]: how many
/// concurrent connections `dne-client` drives.
pub const CLIENT_CONNS_ENV: &str = "DNE_CLIENT_CONNS";

/// What a valid connection count looks like — quoted by parse errors.
const CONNS_FORMS: &str = "a positive connection count like 8";

/// Parse a client concurrency level: a positive integer.
pub fn parse_conns(s: &str) -> Result<usize, String> {
    let n: usize = s.trim().parse().map_err(|e| format!("{e} (expected {CONNS_FORMS})"))?;
    if n == 0 {
        return Err(format!("0 connections cannot drive load (expected {CONNS_FORMS})"));
    }
    Ok(n)
}

/// Read the client concurrency from `DNE_CLIENT_CONNS`. Unset or empty
/// means 8 (the acceptance floor of the service benchmark).
///
/// # Panics
/// Panics on a value that is not a positive integer (or not Unicode),
/// naming the valid form.
pub fn conns_from_env() -> usize {
    match std::env::var(CLIENT_CONNS_ENV) {
        Ok(v) if !v.trim().is_empty() => {
            parse_conns(&v).unwrap_or_else(|e| panic!("invalid {CLIENT_CONNS_ENV} {v:?}: {e}"))
        }
        Err(std::env::VarError::NotUnicode(raw)) => {
            panic!("invalid {CLIENT_CONNS_ENV}: non-Unicode value {raw:?} (expected {CONNS_FORMS})")
        }
        _ => 8,
    }
}

/// One lookup request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupRequest {
    /// Which partition owns edge `{u, v}`? Endpoint order is irrelevant.
    LookupEdge {
        /// One endpoint.
        u: u64,
        /// The other endpoint.
        v: u64,
    },
    /// The replication set of vertex `v`.
    ReplicaSet {
        /// The vertex.
        v: u64,
    },
    /// Size and balance stats of one partition.
    PartStats {
        /// The partition.
        part: PartitionId,
    },
    /// The assignment fingerprint and global shape.
    Fingerprint,
    /// Answer, then stop serving (graceful teardown).
    Shutdown,
}

/// The server's answer to one [`LookupRequest`] (variants correspond
/// one-to-one, which the client checks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupResponse {
    /// Owner of the requested edge: `(edge id, partition)`, or `None`
    /// when the graph has no such edge. Multi-edges answer with their
    /// lowest edge id.
    Owner {
        /// The owning `(edge id, partition)`, if the edge exists.
        owner: Option<(EdgeId, PartitionId)>,
    },
    /// The replication set of the requested vertex, ascending (empty for
    /// vertices no edge touches).
    Replicas {
        /// Partitions whose edge set touches the vertex.
        parts: Vec<PartitionId>,
    },
    /// Per-partition stats plus the global quality numbers.
    PartStats {
        /// `(|E_p|, |V(E_p)|)` — `None` when the partition is out of
        /// range.
        counts: Option<(u64, u64)>,
        /// Replication factor, as `f64::to_bits` (byte-exact).
        rf_bits: u64,
        /// Edge balance, as `f64::to_bits`.
        eb_bits: u64,
    },
    /// Fingerprint and shape of the served assignment.
    Fingerprint {
        /// [`dne_partition::EdgeAssignment::fingerprint`] of the served
        /// assignment.
        fingerprint: u64,
        /// Number of partitions `|P|`.
        num_partitions: PartitionId,
        /// Number of indexed edges.
        num_edges: u64,
    },
    /// Acknowledgement of a `Shutdown` request.
    ShuttingDown,
}

const TAG_LOOKUP_EDGE: u8 = 0;
const TAG_REPLICA_SET: u8 = 1;
const TAG_PART_STATS: u8 = 2;
const TAG_FINGERPRINT: u8 = 3;
const TAG_SHUTDOWN: u8 = 4;

impl WireSize for LookupRequest {
    fn wire_bytes(&self) -> usize {
        1 + match self {
            LookupRequest::LookupEdge { u, v } => u.wire_bytes() + v.wire_bytes(),
            LookupRequest::ReplicaSet { v } => v.wire_bytes(),
            LookupRequest::PartStats { part } => part.wire_bytes(),
            LookupRequest::Fingerprint | LookupRequest::Shutdown => 0,
        }
    }
}

impl WireEncode for LookupRequest {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            LookupRequest::LookupEdge { u, v } => {
                buf.push(TAG_LOOKUP_EDGE);
                u.encode(buf);
                v.encode(buf);
            }
            LookupRequest::ReplicaSet { v } => {
                buf.push(TAG_REPLICA_SET);
                v.encode(buf);
            }
            LookupRequest::PartStats { part } => {
                buf.push(TAG_PART_STATS);
                part.encode(buf);
            }
            LookupRequest::Fingerprint => buf.push(TAG_FINGERPRINT),
            LookupRequest::Shutdown => buf.push(TAG_SHUTDOWN),
        }
    }
}

impl WireDecode for LookupRequest {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.read_array::<1>()?[0] {
            TAG_LOOKUP_EDGE => {
                Ok(LookupRequest::LookupEdge { u: u64::decode(r)?, v: u64::decode(r)? })
            }
            TAG_REPLICA_SET => Ok(LookupRequest::ReplicaSet { v: u64::decode(r)? }),
            TAG_PART_STATS => Ok(LookupRequest::PartStats { part: PartitionId::decode(r)? }),
            TAG_FINGERPRINT => Ok(LookupRequest::Fingerprint),
            TAG_SHUTDOWN => Ok(LookupRequest::Shutdown),
            tag => Err(WireError::BadTag { tag }),
        }
    }
}

impl WireSize for LookupResponse {
    fn wire_bytes(&self) -> usize {
        1 + match self {
            LookupResponse::Owner { owner } => owner.wire_bytes(),
            LookupResponse::Replicas { parts } => parts.wire_bytes(),
            LookupResponse::PartStats { counts, rf_bits, eb_bits } => {
                counts.wire_bytes() + rf_bits.wire_bytes() + eb_bits.wire_bytes()
            }
            LookupResponse::Fingerprint { fingerprint, num_partitions, num_edges } => {
                fingerprint.wire_bytes() + num_partitions.wire_bytes() + num_edges.wire_bytes()
            }
            LookupResponse::ShuttingDown => 0,
        }
    }
}

impl WireEncode for LookupResponse {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            LookupResponse::Owner { owner } => {
                buf.push(TAG_LOOKUP_EDGE);
                owner.encode(buf);
            }
            LookupResponse::Replicas { parts } => {
                buf.push(TAG_REPLICA_SET);
                parts.encode(buf);
            }
            LookupResponse::PartStats { counts, rf_bits, eb_bits } => {
                buf.push(TAG_PART_STATS);
                counts.encode(buf);
                rf_bits.encode(buf);
                eb_bits.encode(buf);
            }
            LookupResponse::Fingerprint { fingerprint, num_partitions, num_edges } => {
                buf.push(TAG_FINGERPRINT);
                fingerprint.encode(buf);
                num_partitions.encode(buf);
                num_edges.encode(buf);
            }
            LookupResponse::ShuttingDown => buf.push(TAG_SHUTDOWN),
        }
    }
}

impl WireDecode for LookupResponse {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.read_array::<1>()?[0] {
            TAG_LOOKUP_EDGE => Ok(LookupResponse::Owner { owner: Option::decode(r)? }),
            TAG_REPLICA_SET => Ok(LookupResponse::Replicas { parts: Vec::decode(r)? }),
            TAG_PART_STATS => Ok(LookupResponse::PartStats {
                counts: Option::decode(r)?,
                rf_bits: u64::decode(r)?,
                eb_bits: u64::decode(r)?,
            }),
            TAG_FINGERPRINT => Ok(LookupResponse::Fingerprint {
                fingerprint: u64::decode(r)?,
                num_partitions: PartitionId::decode(r)?,
                num_edges: u64::decode(r)?,
            }),
            TAG_SHUTDOWN => Ok(LookupResponse::ShuttingDown),
            tag => Err(WireError::BadTag { tag }),
        }
    }
}

/// A [`ShardedAssignmentIndex`] behind the [`Service`] trait — what
/// `dne-server` plugs into the runtime's [`dne_runtime::WireServer`].
pub struct AssignmentService {
    index: ShardedAssignmentIndex,
}

impl AssignmentService {
    /// Serve lookups from `index`.
    pub fn new(index: ShardedAssignmentIndex) -> Self {
        Self { index }
    }

    /// The served index (the server prints its fingerprint at startup).
    pub fn index(&self) -> &ShardedAssignmentIndex {
        &self.index
    }

    /// The authoritative answer to one request — shared by the live
    /// server and the client's offline verification, so "byte-identical
    /// to the offline answer" is checked against the exact same code.
    pub fn answer(&self, req: &LookupRequest) -> LookupResponse {
        match *req {
            LookupRequest::LookupEdge { u, v } => {
                LookupResponse::Owner { owner: self.index.owner_of(u, v) }
            }
            LookupRequest::ReplicaSet { v } => {
                LookupResponse::Replicas { parts: self.index.replica_set(v).to_vec() }
            }
            LookupRequest::PartStats { part } => LookupResponse::PartStats {
                counts: self.index.edge_count(part).zip(self.index.replica_count(part)),
                rf_bits: self.index.replication_factor().to_bits(),
                eb_bits: self.index.edge_balance().to_bits(),
            },
            LookupRequest::Fingerprint | LookupRequest::Shutdown => LookupResponse::Fingerprint {
                fingerprint: self.index.fingerprint(),
                num_partitions: self.index.num_partitions(),
                num_edges: self.index.num_edges(),
            },
        }
    }
}

impl Service for AssignmentService {
    type Req = LookupRequest;
    type Resp = LookupResponse;

    fn handle(&mut self, req: Self::Req) -> ServiceReply<Self::Resp> {
        match req {
            LookupRequest::Shutdown => {
                ServiceReply::ReplyThenShutdown(LookupResponse::ShuttingDown)
            }
            other => ServiceReply::Reply(self.answer(&other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_shapes() -> Vec<LookupRequest> {
        vec![
            LookupRequest::LookupEdge { u: 0, v: u64::MAX },
            LookupRequest::ReplicaSet { v: 7 },
            LookupRequest::PartStats { part: 3 },
            LookupRequest::Fingerprint,
            LookupRequest::Shutdown,
        ]
    }

    fn response_shapes() -> Vec<LookupResponse> {
        vec![
            LookupResponse::Owner { owner: None },
            LookupResponse::Owner { owner: Some((42, 3)) },
            LookupResponse::Replicas { parts: Vec::new() },
            LookupResponse::Replicas { parts: vec![0, 2, 5] },
            LookupResponse::PartStats { counts: None, rf_bits: 0, eb_bits: 0 },
            LookupResponse::PartStats {
                counts: Some((10, 20)),
                rf_bits: 1.5f64.to_bits(),
                eb_bits: 1.01f64.to_bits(),
            },
            LookupResponse::Fingerprint { fingerprint: 0xdead, num_partitions: 8, num_edges: 99 },
            LookupResponse::ShuttingDown,
        ]
    }

    #[test]
    fn codec_roundtrips_every_shape_at_exact_size() {
        for req in request_shapes() {
            let bytes = req.to_wire();
            assert_eq!(bytes.len(), req.wire_bytes(), "estimate != actual for {req:?}");
            assert_eq!(LookupRequest::from_wire(&bytes).unwrap(), req);
        }
        for resp in response_shapes() {
            let bytes = resp.to_wire();
            assert_eq!(bytes.len(), resp.wire_bytes(), "estimate != actual for {resp:?}");
            assert_eq!(LookupResponse::from_wire(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn truncated_messages_error_not_panic() {
        for req in request_shapes() {
            let bytes = req.to_wire();
            for cut in 0..bytes.len() {
                assert!(LookupRequest::from_wire(&bytes[..cut]).is_err(), "{cut} of {req:?}");
            }
        }
        for resp in response_shapes() {
            let bytes = resp.to_wire();
            for cut in 0..bytes.len() {
                assert!(LookupResponse::from_wire(&bytes[..cut]).is_err(), "{cut} of {resp:?}");
            }
        }
    }

    #[test]
    fn unknown_tags_are_errors() {
        assert_eq!(LookupRequest::from_wire(&[9]), Err(WireError::BadTag { tag: 9 }));
        assert_eq!(LookupResponse::from_wire(&[200]), Err(WireError::BadTag { tag: 200 }));
    }

    #[test]
    fn conn_parsing_is_strict() {
        assert_eq!(parse_conns("8"), Ok(8));
        assert_eq!(parse_conns(" 1 "), Ok(1));
        assert!(parse_conns("0").unwrap_err().contains("positive"));
        assert!(parse_conns("many").unwrap_err().contains("positive"));
    }

    #[test]
    fn service_answers_and_shuts_down() {
        use dne_partition::EdgeAssignment;
        let g = dne_graph::gen::path(4);
        let a = EdgeAssignment::new(vec![0, 1, 0], 2);
        let idx = ShardedAssignmentIndex::build(&g, &a, 2);
        let mut svc = AssignmentService::new(idx);
        match svc.handle(LookupRequest::LookupEdge { u: 1, v: 0 }) {
            ServiceReply::Reply(LookupResponse::Owner { owner: Some((0, 0)) }) => {}
            other => panic!("unexpected reply {other:?}"),
        }
        match svc.handle(LookupRequest::Shutdown) {
            ServiceReply::ReplyThenShutdown(LookupResponse::ShuttingDown) => {}
            other => panic!("shutdown must reply-then-stop, got {other:?}"),
        }
    }
}
