//! Hash-based edge partitioners (paper §2.2, "one of the major approaches").
//!
//! These are the cheap, scalable, low-quality baselines: edges are assigned
//! by hashing so no graph structure is consulted (beyond degree for
//! DBH/Hybrid). They anchor the *low-quality* end of Figure 8 and the
//! *fast* end of the performance discussion.

mod dbh;
mod grid;
mod hybrid;
mod random;

pub use dbh::DbhPartitioner;
pub use grid::{grid_dims, GridPartitioner};
pub use hybrid::HybridHashPartitioner;
pub use random::RandomPartitioner;
