//! # dne-graph — graph substrate for Distributed NE
//!
//! This crate provides the graph representation and the synthetic
//! graph generators used throughout the Distributed NE reproduction:
//!
//! * [`Graph`] — an undirected, unweighted graph in **compressed sparse
//!   row (CSR)** form with globally numbered, deduplicated edges,
//!   mirroring the paper's storage choice (§4 "Data Structure"). `Graph`
//!   is a facade over the pluggable [`GraphStorage`] seam: the default
//!   backend keeps the CSR as continuous in-memory arrays, while the
//!   `mmap` and `chunk-streamed` backends ([`storage`], [`mmap`]) serve
//!   the same accessors from disk for graphs bigger than RAM
//!   (`DNE_GRAPH_STORAGE` selects one at [`io::open_chunked_env`]).
//! * [`EdgeListBuilder`] — canonicalizing edge-list builder (drops self
//!   loops, deduplicates parallel edges, sorts) used by every generator and
//!   by the IO layer.
//! * [`gen`] — synthetic generators: Graph500-style RMAT ([`gen::rmat()`]),
//!   the ring+complete construction from Theorem 2
//!   ([`gen::ring_complete()`]), 2D-lattice road networks ([`gen::road`]),
//!   Erdős–Rényi, Chung–Lu power-law, and small classic graphs for tests.
//! * [`hash`] — fast non-cryptographic hashing (splitmix64-based) used for
//!   1D/2D hash partitioning and for internal hash maps.
//! * [`io`] — plain-text and binary edge-list readers/writers, a
//!   chunk-framed streaming binary format (`DNECHNK1`) for graphs too
//!   large to buffer twice, and an on-disk CSR container (`DNECSRF1`)
//!   built from it in two sequential O(|V|)-heap passes.
//! * [`parallel`] — the parallel ingestion machinery behind
//!   [`EdgeListBuilder::build_parallel`],
//!   [`Graph::from_canonical_edges_parallel`] and the `gen::*_parallel`
//!   generators; every parallel path is byte-identical to its sequential
//!   counterpart for any thread count.
//! * [`degree`] — degree-distribution statistics used by the benchmark
//!   harness to validate that dataset stand-ins preserve skew.
//!
//! The crate is dependency-free by design (generators use an internal
//! splitmix64 RNG) so that every other crate in the workspace can build on
//! it.
//!
//! ## Quick start
//!
//! ```
//! use dne_graph::{EdgeListBuilder, Graph};
//!
//! // Raw input with a self loop, a duplicate, and both orientations.
//! let mut b = EdgeListBuilder::new();
//! b.extend_edges([(0, 1), (1, 0), (1, 2), (1, 2), (2, 2)]);
//! let g: Graph = b.into_graph(3);
//!
//! assert_eq!(g.num_vertices(), 3);
//! assert_eq!(g.num_edges(), 2); // (0,1) and (1,2)
//! assert_eq!(g.degree(1), 2);
//!
//! // Generators produce ready-made graphs.
//! let r = dne_graph::gen::rmat(&dne_graph::gen::RmatConfig::graph500(8, 4, 42));
//! assert_eq!(r.num_vertices(), 1 << 8);
//! ```

#![deny(missing_docs)]

pub mod degree;
pub mod edge_list;
pub mod gen;
pub mod graph;
pub mod hash;
pub mod io;
pub mod mmap;
pub mod parallel;
pub mod storage;
pub mod transform;
pub mod types;

pub use edge_list::EdgeListBuilder;
pub use graph::{EdgeIter, Graph};
pub use storage::{GraphStorage, StorageKind};
pub use types::{EdgeId, VertexId, INVALID_VERTEX};

/// Types that can report (an estimate of) their owned heap allocation.
///
/// Used by the simulated-cluster memory accounting (`dne-runtime`) to
/// reproduce the paper's "mem score" metric (Figure 9): total bytes of live
/// partitioning state at the peak snapshot, normalized by `|E|`.
pub trait HeapSize {
    /// Estimated number of heap bytes owned by `self` (excluding `size_of::<Self>()`).
    fn heap_bytes(&self) -> usize;
}

impl<T> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

impl<T> HeapSize for Box<[T]> {
    fn heap_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}
