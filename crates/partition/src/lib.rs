#![deny(missing_docs)]
//! # dne-partition — partitioning framework and baseline partitioners
//!
//! Defines the workspace-wide partitioning abstractions and implements every
//! *baseline* the paper compares against (§7.1 "Benchmark Partitioning
//! Algorithms"). Distributed NE itself lives in `dne-core` and plugs into
//! the same [`EdgePartitioner`] trait.
//!
//! ## Framework
//!
//! * [`EdgeAssignment`] — a dense `edge id → partition id` map, the output
//!   of every edge partitioner.
//! * [`PartitionQuality`] — replication factor (Equation 1), edge balance
//!   and vertex balance (§7.6 definitions) measured from an assignment.
//! * [`EdgePartitioner`] / [`VertexPartitioner`] — the two partitioner
//!   families; [`VertexToEdge`] converts a vertex partitioner into an edge
//!   partitioner by assigning each edge to the partition of one of its
//!   endpoints at random, exactly as the paper does for ParMETIS, Spinner
//!   and XtraPuLP ("each edge is randomly assigned to one of its adjacent
//!   vertices' partitions", after Bourse et al.).
//!
//! ## Baselines (paper §2.2 / §7.1 → module)
//!
//! | Paper name        | Kind                 | Module |
//! |-------------------|----------------------|--------|
//! | Random (1D hash)  | hash                 | [`hash_based::RandomPartitioner`] |
//! | 2D-Random / Grid  | hash                 | [`hash_based::GridPartitioner`] |
//! | DBH               | degree-based hash    | [`hash_based::DbhPartitioner`] |
//! | Hybrid Hash       | degree-based hash    | [`hash_based::HybridHashPartitioner`] |
//! | Oblivious         | greedy streaming     | [`streaming::ObliviousPartitioner`] |
//! | HDRF              | greedy streaming     | [`streaming::HdrfPartitioner`] |
//! | Hybrid Ginger     | hash + refinement    | [`streaming::GingerPartitioner`] |
//! | NE (sequential)   | offline greedy       | [`greedy::NePartitioner`] |
//! | SNE               | streaming NE         | [`greedy::SnePartitioner`] |
//! | Spinner           | LP vertex partition  | [`vertex::SpinnerPartitioner`] |
//! | XtraPuLP          | LP vertex partition  | [`vertex::XtraPulpPartitioner`] |
//! | ParMETIS          | multilevel vertex    | [`vertex::MetisLikePartitioner`] |
//! | Sheep             | elimination tree     | [`vertex::SheepPartitioner`] |
//!
//! The re-implementations follow the published algorithm cores; they are
//! labelled `*-like` in benchmark output where the original is a large
//! external system (ParMETIS, Sheep, XtraPuLP, Spinner).
//!
//! ## Quick start
//!
//! ```
//! use dne_graph::gen::{rmat, RmatConfig};
//! use dne_partition::hash_based::RandomPartitioner;
//! use dne_partition::{EdgePartitioner, PartitionQuality};
//!
//! let g = rmat(&RmatConfig::graph500(8, 8, 1));
//! let assignment = RandomPartitioner::new(1).partition(&g, 4);
//! assert!(assignment.is_valid_for(&g));
//!
//! let q = PartitionQuality::measure(&g, &assignment);
//! assert!(q.replication_factor >= 1.0);
//! ```

pub mod assignment;
pub mod comm_model;
pub mod dynamic;
pub mod greedy;
pub mod hash_based;
pub mod index;
pub mod quality;
pub mod streaming;
pub mod traits;
pub mod vertex;

pub use assignment::{EdgeAssignment, PartitionId, UNASSIGNED};
pub use comm_model::{estimate_comm, CommEstimate};
pub use dynamic::IncrementalVertexCut;
pub use index::{parse_shards, shards_from_env, ShardedAssignmentIndex, SERVER_SHARDS_ENV};
pub use quality::PartitionQuality;
pub use traits::{EdgePartitioner, VertexPartitioner, VertexToEdge};
