//! Road-network-like graphs (non-skewed) for the §7.7 evaluation.
//!
//! The paper evaluates three real road networks (California, Pennsylvania,
//! Texas) as representatives of large *non-skewed* graphs: near-uniform low
//! degree (average ≈ 2.8 edges/vertex), huge diameter, strong locality.
//! We substitute a 2D lattice with stochastic edge deletions and a sprinkle
//! of diagonal shortcuts, which reproduces those structural properties
//! (degree ≤ 4–5, locality, planarity-ish) at configurable scale.

use crate::hash::SplitMix64;
use crate::types::VertexId;
use crate::{EdgeListBuilder, Graph};

/// Generate a `width × height` lattice road network.
///
/// * `keep_prob` — probability that each lattice edge exists (models missing
///   road segments; 1.0 gives the full grid). The paper's road networks have
///   |E|/|V| ≈ 1.4, which a full grid (≈ 2.0) overshoots; `keep_prob ≈ 0.7`
///   matches it.
/// * `shortcut_prob` — probability per vertex of one extra diagonal edge
///   (models highways/bridges).
pub fn road_grid(
    width: VertexId,
    height: VertexId,
    keep_prob: f64,
    shortcut_prob: f64,
    seed: u64,
) -> Graph {
    assert!(width >= 2 && height >= 2, "grid must be at least 2x2");
    assert!((0.0..=1.0).contains(&keep_prob));
    assert!((0.0..=1.0).contains(&shortcut_prob));
    let id = |x: VertexId, y: VertexId| y * width + x;
    let mut rng = SplitMix64::new(seed ^ 0x524F_4144_5F47_454E); // "ROAD_GEN"
    let mut b = EdgeListBuilder::with_capacity((width * height * 2) as usize);
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width && rng.next_f64() < keep_prob {
                b.push(id(x, y), id(x + 1, y));
            }
            if y + 1 < height && rng.next_f64() < keep_prob {
                b.push(id(x, y), id(x, y + 1));
            }
            if x + 1 < width && y + 1 < height && rng.next_f64() < shortcut_prob {
                b.push(id(x, y), id(x + 1, y + 1));
            }
        }
    }
    b.into_graph(width * height)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_edge_count() {
        // width*(height-1) + (width-1)*height edges for the full lattice.
        let g = road_grid(10, 8, 1.0, 0.0, 1);
        assert_eq!(g.num_vertices(), 80);
        assert_eq!(g.num_edges(), 10 * 7 + 9 * 8);
    }

    #[test]
    fn degrees_are_bounded_like_roads() {
        let g = road_grid(30, 30, 0.7, 0.05, 2);
        assert!(g.max_degree() <= 7, "road max degree should be small, got {}", g.max_degree());
    }

    #[test]
    fn keep_prob_thins_the_graph() {
        let dense = road_grid(20, 20, 1.0, 0.0, 3);
        let sparse = road_grid(20, 20, 0.5, 0.0, 3);
        assert!(sparse.num_edges() < dense.num_edges());
    }

    #[test]
    fn deterministic() {
        let a = road_grid(12, 12, 0.8, 0.1, 9);
        let b = road_grid(12, 12, 0.8, 0.1, 9);
        assert_eq!(a.edges(), b.edges());
    }
}
