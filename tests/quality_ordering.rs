//! The paper's quality claims as executable assertions (Figure 8 / Table 4
//! / Table 6 orderings, at reduced scale).

use distributed_ne::core::{DistributedNe, NeConfig};
use distributed_ne::graph::gen;
use distributed_ne::partition::greedy::NePartitioner;
use distributed_ne::partition::hash_based::{GridPartitioner, RandomPartitioner};
use distributed_ne::partition::streaming::{GingerPartitioner, HdrfPartitioner};
use distributed_ne::partition::{EdgePartitioner, PartitionQuality};

fn rf(g: &dne_graph::Graph, m: &dyn EdgePartitioner, k: u32) -> f64 {
    PartitionQuality::measure(g, &m.partition(g, k)).replication_factor
}

#[test]
fn dne_beats_the_hash_family_on_skewed_graphs() {
    // Figure 8's headline: Distributed NE < {Ginger, Grid, Random} on
    // skewed graphs, with margin growing in |P|.
    let g = gen::rmat(&gen::RmatConfig::graph500(11, 12, 5));
    for k in [16u32, 64] {
        let dne = rf(&g, &DistributedNe::new(NeConfig::default().with_seed(5)), k);
        let random = rf(&g, &RandomPartitioner::new(5), k);
        let grid = rf(&g, &GridPartitioner::new(5), k);
        let ginger = rf(&g, &GingerPartitioner::new(5), k);
        assert!(dne < random, "k={k}: dne {dne} < random {random}");
        assert!(dne < grid, "k={k}: dne {dne} < grid {grid}");
        assert!(dne < ginger, "k={k}: dne {dne} < ginger {ginger}");
    }
}

#[test]
fn margin_grows_with_partition_count() {
    let g = gen::rmat(&gen::RmatConfig::graph500(11, 12, 7));
    let ne = DistributedNe::new(NeConfig::default().with_seed(7));
    let rand = RandomPartitioner::new(7);
    let gap4 = rf(&g, &rand, 4) / rf(&g, &ne, 4);
    let gap64 = rf(&g, &rand, 64) / rf(&g, &ne, 64);
    assert!(
        gap64 > gap4,
        "improvement should grow with |P| (paper §7.2): x{gap4:.2} at 4 vs x{gap64:.2} at 64"
    );
}

#[test]
fn table4_ordering_ne_dne_hdrf() {
    // Table 4: offline NE best, Distributed NE close behind, HDRF worst.
    let g = gen::rmat(&gen::RmatConfig::graph500(10, 12, 3));
    let k = 64;
    let ne = rf(&g, &NePartitioner::new(3), k);
    let dne = rf(&g, &DistributedNe::new(NeConfig::default().with_seed(3)), k);
    let hdrf = rf(&g, &HdrfPartitioner::new(3), k);
    assert!(ne <= dne * 1.05, "NE {ne} should be at least as good as D.NE {dne}");
    assert!(dne < hdrf, "D.NE {dne} should beat HDRF {hdrf}");
    // And the distributed approximation should stay within the paper's
    // observed band (D.NE ≤ ~1.6× NE across Table 4).
    assert!(dne / ne < 1.8, "D.NE {dne} degraded too far from NE {ne}");
}

#[test]
fn rf_grows_with_edge_factor_not_scale() {
    // Figure 8(h–j): RF increases with density; at fixed EF it is nearly
    // scale-invariant.
    let ne = DistributedNe::new(NeConfig::default().with_seed(9));
    let rf_s10_e4 = rf(&gen::rmat(&gen::RmatConfig::graph500(10, 4, 9)), &ne, 16);
    let rf_s10_e32 = rf(&gen::rmat(&gen::RmatConfig::graph500(10, 32, 9)), &ne, 16);
    let rf_s12_e4 = rf(&gen::rmat(&gen::RmatConfig::graph500(12, 4, 9)), &ne, 16);
    assert!(
        rf_s10_e32 > rf_s10_e4,
        "denser graph must replicate more: {rf_s10_e32} vs {rf_s10_e4}"
    );
    assert!(
        (rf_s12_e4 - rf_s10_e4).abs() / rf_s10_e4 < 0.35,
        "scale alone should not change difficulty much: {rf_s10_e4} vs {rf_s12_e4}"
    );
}

#[test]
fn road_networks_near_ideal_for_dne() {
    // Table 6: D.NE reaches RF ≈ 1.0x on road networks.
    let g = gen::road_grid(40, 40, 0.72, 0.02, 3);
    let dne = rf(&g, &DistributedNe::new(NeConfig::default().with_seed(3)), 16);
    let random = rf(&g, &RandomPartitioner::new(3), 16);
    assert!(dne < 1.35, "road RF {dne} should be near 1 (paper: 1.02)");
    assert!(random > 1.8, "hashing should be clearly worse on roads, got {random}");
}
