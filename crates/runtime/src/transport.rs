//! Pluggable transport backends for the simulated interconnect.
//!
//! All traffic in the simulated cluster — point-to-point envelopes *and*
//! collective rounds — flows through the [`Transport`] trait. Three
//! backends implement it:
//!
//! * [`LoopbackTransport`] — the fast path: messages move between machine
//!   threads by pointer through crossbeam channels, and the wire cost is
//!   the [`WireSize`] *estimate*. Semantically identical to the original
//!   runtime.
//! * [`BytesTransport`] — every envelope is really serialized through the
//!   [`WireEncode`]/[`WireDecode`] codec into a length-prefixed
//!   little-endian frame, shipped as raw bytes, and decoded on receive.
//!   The wire cost charged is the *actual* encoded payload length, which
//!   makes communication-volume numbers (Table 5 "COM", Figures 9/10)
//!   exact rather than estimated.
//! * [`TcpTransport`](crate::tcp::TcpTransport) — the same frames, but
//!   carried over real `TcpStream` sockets: a full localhost mesh built by
//!   a rendezvous bootstrap (rank 0 listens, peers dial in and exchange
//!   rank handshakes). The in-process fabric bridges machine threads with
//!   real sockets; the same endpoint code also powers genuinely
//!   multi-process clusters (see [`crate::tcp::TcpProcessCluster`] and the
//!   `dne-tcp-worker` binary).
//!
//! All backends preserve the two properties every algorithm in this
//! workspace relies on: per-link FIFO order (crossbeam channels are
//! per-producer FIFO, TCP streams are ordered — the MPI non-overtaking
//! guarantee) and source-tagged envelopes.
//!
//! Backend selection is a [`TransportKind`], threaded through
//! [`crate::Cluster::with_transport`], `NeConfig` in `dne-core`, and the
//! `DNE_TRANSPORT` environment variable (`loopback` | `bytes` | `tcp`)
//! that the bench binaries and test suites honor.
//!
//! Failure surfaces as a typed [`TransportError`], never a panic: a frame
//! that fails to decode, a send into a torn-down fabric, or a vanished
//! peer is reported from [`Transport::send`]/[`Transport::recv`] as an
//! `Err` the caller can attribute to a rank. How *promptly* a vanished
//! peer is detected depends on the medium: the tcp backend observes the
//! peer's socket close (EOF without the goodbye frame) and errors on the
//! next receive, while the in-process channel backends — where a "dead
//! peer" can only mean a sibling thread already unwinding the whole run —
//! report [`TransportError::Disconnected`] once the fabric is torn down.

use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::stats::CommStats;
use crate::wire::{WireDecode, WireEncode, WireError, WireReader, WireSize};

/// Which transport backend a cluster run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Pointer-passing channels with estimated byte accounting (fast path).
    #[default]
    Loopback,
    /// Real serialization: every envelope is encoded to a byte frame and
    /// decoded on receive; byte accounting is exact.
    Bytes,
    /// Real sockets: the byte frames cross genuine localhost `TcpStream`s
    /// between endpoints; byte accounting is exact and identical to
    /// [`TransportKind::Bytes`].
    Tcp,
}

/// The names `TransportKind::from_str` accepts, for error messages.
const KIND_NAMES: &str = "\"loopback\", \"bytes\", or \"tcp\"";

impl TransportKind {
    /// Environment variable consulted by [`TransportKind::from_env`].
    pub const ENV_VAR: &'static str = "DNE_TRANSPORT";

    /// Every backend, in definition order — the canonical list invariance
    /// tests iterate, so adding a backend cannot silently drop it from a
    /// test suite that hand-copied the roster.
    pub const ALL: [TransportKind; 3] =
        [TransportKind::Loopback, TransportKind::Bytes, TransportKind::Tcp];

    /// Read the backend from `DNE_TRANSPORT` (`loopback` | `bytes` | `tcp`,
    /// case-insensitive, surrounding whitespace ignored). Unset or empty
    /// means [`TransportKind::Loopback`].
    ///
    /// # Panics
    /// Panics on an unrecognized or non-Unicode value, naming the valid
    /// backends — a misconfigured benchmark run (`DNE_TRANSPORT=byte`)
    /// must fail loudly before it silently measures the wrong backend.
    pub fn from_env() -> Self {
        match std::env::var(Self::ENV_VAR) {
            Ok(v) if !v.trim().is_empty() => {
                v.parse().unwrap_or_else(|e| panic!("invalid {}: {e}", Self::ENV_VAR))
            }
            Err(std::env::VarError::NotUnicode(raw)) => {
                panic!(
                    "invalid {}: non-Unicode value {raw:?} (expected {KIND_NAMES})",
                    Self::ENV_VAR
                )
            }
            _ => TransportKind::Loopback,
        }
    }

    /// Build the `n`-endpoint fabric of this backend with the given
    /// coalescing policy, recording physical frame counts into `stats`.
    ///
    /// # Panics
    /// [`TransportKind::Tcp`] panics when the localhost socket mesh cannot
    /// be built (ports exhausted, loopback interface unavailable) — an
    /// environment failure, not an input condition.
    pub(crate) fn fabric<M>(
        self,
        n: usize,
        batch: BatchConfig,
        stats: Arc<CommStats>,
    ) -> Vec<Box<dyn Transport<M>>>
    where
        M: Send + WireEncode + WireDecode + 'static,
    {
        match self {
            TransportKind::Loopback => LoopbackTransport::fabric_with(n, batch, stats)
                .into_iter()
                .map(|t| Box::new(t) as Box<dyn Transport<M>>)
                .collect(),
            TransportKind::Bytes => BytesTransport::fabric_with(n, batch, stats)
                .into_iter()
                .map(|t| Box::new(t) as Box<dyn Transport<M>>)
                .collect(),
            TransportKind::Tcp => crate::tcp::TcpTransport::fabric_with(n, batch, stats)
                .into_iter()
                .map(|t| Box::new(t) as Box<dyn Transport<M>>)
                .collect(),
        }
    }
}

/// Default per-destination byte threshold at which a coalescing buffer is
/// flushed even before reaching its message-count threshold (256 KiB —
/// far below [`MAX_FRAME_PAYLOAD`], so a multi-message frame body can
/// never approach the framing bound).
pub const DEFAULT_BATCH_BYTES: usize = 256 * 1024;

/// The names `BatchConfig::from_str` accepts, for error messages.
const BATCH_NAMES: &str = "\"off\", \"0\", or a positive envelope count like \"64\"";

/// Coalescing policy for point-to-point sends: how many small
/// same-destination envelopes may share one multi-message wire frame
/// before the transport flushes the buffer on its own. Receivers always
/// understand both frame layouts, so batching is purely a sender-side
/// knob; logical message/byte accounting is identical with it on or off —
/// only the `frames` counter (and syscall count) changes.
///
/// Resolved from the `DNE_COMM_BATCH` environment variable by
/// [`BatchConfig::from_env`]; disabled (one envelope per frame — the
/// historical behavior) by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum logical envelopes buffered per destination before the
    /// transport auto-flushes that destination. `<= 1` disables
    /// coalescing entirely.
    pub max_msgs: usize,
    /// Maximum buffered payload bytes per destination before an
    /// auto-flush. Envelopes at least this large bypass the buffer and
    /// travel as classic single-message frames.
    pub max_bytes: usize,
}

impl BatchConfig {
    /// Environment variable consulted by [`BatchConfig::from_env`].
    pub const ENV_VAR: &'static str = "DNE_COMM_BATCH";

    /// Coalescing disabled: every envelope is its own frame.
    pub const fn disabled() -> Self {
        BatchConfig { max_msgs: 1, max_bytes: DEFAULT_BATCH_BYTES }
    }

    /// Coalesce up to `max_msgs` envelopes per frame with the default
    /// byte threshold.
    pub const fn msgs(max_msgs: usize) -> Self {
        let max_msgs = if max_msgs == 0 { 1 } else { max_msgs };
        BatchConfig { max_msgs, max_bytes: DEFAULT_BATCH_BYTES }
    }

    /// Whether sends are buffered at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.max_msgs > 1
    }

    /// Read the policy from `DNE_COMM_BATCH`: unset, empty, `off`, or `0`
    /// disable coalescing; a positive integer `N` coalesces up to `N`
    /// envelopes per frame.
    ///
    /// # Panics
    /// Panics on an unrecognized or non-Unicode value, naming the
    /// accepted forms — a misconfigured benchmark run must fail loudly
    /// before it silently measures the wrong configuration.
    pub fn from_env() -> Self {
        match std::env::var(Self::ENV_VAR) {
            Ok(v) if !v.trim().is_empty() => {
                v.parse().unwrap_or_else(|e| panic!("invalid {}: {e}", Self::ENV_VAR))
            }
            Err(std::env::VarError::NotUnicode(raw)) => {
                panic!(
                    "invalid {}: non-Unicode value {raw:?} (expected {BATCH_NAMES})",
                    Self::ENV_VAR
                )
            }
            _ => BatchConfig::disabled(),
        }
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::disabled()
    }
}

impl std::str::FromStr for BatchConfig {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim().to_ascii_lowercase();
        if t == "off" || t == "0" {
            return Ok(BatchConfig::disabled());
        }
        match t.parse::<usize>() {
            Ok(n) => Ok(BatchConfig::msgs(n)),
            Err(_) => Err(format!("unknown batch setting {s:?} (expected {BATCH_NAMES})")),
        }
    }
}

impl std::fmt::Display for BatchConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.enabled() {
            write!(f, "{}", self.max_msgs)
        } else {
            f.write_str("off")
        }
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "loopback" => Ok(TransportKind::Loopback),
            "bytes" => Ok(TransportKind::Bytes),
            "tcp" => Ok(TransportKind::Tcp),
            other => Err(format!("unknown transport {other:?} (expected {KIND_NAMES})")),
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TransportKind::Loopback => "loopback",
            TransportKind::Bytes => "bytes",
            TransportKind::Tcp => "tcp",
        })
    }
}

/// A transport-level failure, surfaced as a value instead of a panic so a
/// dead peer aborts a run with an attributable error — essential once
/// endpoints live in separate OS processes that can genuinely die.
#[derive(Debug)]
pub enum TransportError {
    /// A peer endpoint went away: its channel disconnected, its socket was
    /// reset, or its stream ended without the goodbye frame a graceful
    /// shutdown sends.
    Disconnected {
        /// The peer that vanished, when the transport can attribute it.
        peer: Option<usize>,
    },
    /// An incoming frame's payload failed wire decoding.
    Decode {
        /// Source rank of the malformed frame.
        src: usize,
        /// The underlying codec error.
        error: WireError,
    },
    /// A frame violated the framing protocol: oversized length prefix,
    /// stream truncated mid-frame, or a header that does not parse.
    Frame {
        /// Source rank, when the link it arrived on is known.
        src: Option<usize>,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A socket-level IO failure.
    Io {
        /// What the transport was doing when the error occurred.
        context: String,
        /// The underlying OS error.
        error: std::io::Error,
    },
    /// The TCP rendezvous/bootstrap protocol failed (bad magic, rank
    /// mismatch, peer count disagreement, bootstrap timeout).
    Bootstrap {
        /// Human-readable description of the failure.
        detail: String,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected { peer: Some(p) } => {
                write!(f, "peer rank {p} disconnected without goodbye")
            }
            TransportError::Disconnected { peer: None } => {
                write!(f, "all peers disconnected; no further messages can arrive")
            }
            TransportError::Decode { src, error } => {
                write!(f, "malformed frame from rank {src}: {error}")
            }
            TransportError::Frame { src: Some(s), detail } => {
                write!(f, "framing violation on link from rank {s}: {detail}")
            }
            TransportError::Frame { src: None, detail } => write!(f, "framing violation: {detail}"),
            TransportError::Io { context, error } => {
                write!(f, "io failure while {context}: {error}")
            }
            TransportError::Bootstrap { detail } => write!(f, "tcp bootstrap failed: {detail}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io { error, .. } => Some(error),
            TransportError::Decode { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// One endpoint of the simulated interconnect: the seam between the
/// runtime's messaging primitives and the medium that carries them.
///
/// `send` reports the envelope's wire size (estimated on loopback, actual
/// encoded payload on bytes/tcp) for *every* destination, including self.
/// Whether a send is chargeable is not a transport concern: accounting
/// policy (self-sends are free) lives in exactly one place, the
/// [`CommEndpoint`](crate::comm::CommEndpoint) wrapping this trait. `recv`
/// blocks for the next envelope from any source and returns it tagged with
/// the source rank.
///
/// Both operations are fallible: a vanished peer or an undecodable frame
/// is a [`TransportError`], not a panic, so callers (including worker
/// processes in a real multi-process cluster) can attribute the failure
/// and exit cleanly.
pub trait Transport<M>: Send {
    /// This endpoint's rank in `0..nprocs`.
    fn rank(&self) -> usize;

    /// Number of endpoints in the fabric.
    fn nprocs(&self) -> usize;

    /// Deliver `msg` to `dst`'s queue; returns the envelope's wire size.
    ///
    /// Under an enabled [`BatchConfig`] small envelopes may be buffered
    /// rather than transmitted immediately; [`Transport::flush`] (called
    /// by `CommEndpoint` before every blocking receive) pushes them out.
    /// The reported wire size is always the *logical* envelope's payload
    /// bytes, buffered or not, so byte accounting is batching-invariant.
    fn send(&self, dst: usize, msg: M) -> Result<usize, TransportError>;

    /// Blocking receive of the next `(source, message)` envelope.
    fn recv(&self) -> Result<(usize, M), TransportError>;

    /// Transmit every buffered envelope as multi-message frames (one per
    /// destination with a non-empty buffer). A no-op when coalescing is
    /// disabled — the default implementation covers backends that never
    /// buffer.
    fn flush(&self) -> Result<(), TransportError> {
        Ok(())
    }

    /// Non-blocking receive: the next envelope if one is already
    /// deliverable, `None` otherwise. Lets callers drain the inbound
    /// queue eagerly while mid-round computation is still running. The
    /// default says "nothing ready", which is always safe.
    fn try_recv(&self) -> Result<Option<(usize, M)>, TransportError> {
        Ok(None)
    }
}

/// Build the fully-connected channel mesh both in-process backends share:
/// one MPMC queue per endpoint, every peer holding a cloned sender to it.
fn channel_mesh<E>(n: usize) -> Vec<(usize, Vec<Sender<E>>, Receiver<E>)> {
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| (rank, senders.clone(), receiver))
        .collect()
}

/// One channel packet of the loopback fabric: either a single envelope or
/// the pointer-passing model of a coalesced multi-message frame — what the
/// serializing backends put on a wire, minus the bytes.
enum LoopPacket<M> {
    One(usize, M),
    Many(usize, Vec<M>),
}

/// A per-destination coalescing buffer (loopback flavor: whole messages).
struct LoopBatch<M> {
    msgs: Vec<M>,
    bytes: usize,
}

/// The pointer-passing fast path: envelopes move through typed channels,
/// wire cost is the [`WireSize`] estimate. Coalescing is *modeled*: a
/// flushed buffer travels as one `LoopPacket::Many`, so frame counts match
/// the serializing backends for identical traffic.
pub struct LoopbackTransport<M> {
    rank: usize,
    senders: Vec<Sender<LoopPacket<M>>>,
    receiver: Receiver<LoopPacket<M>>,
    /// Envelopes unpacked from received packets, in arrival order.
    inbox: Mutex<VecDeque<(usize, M)>>,
    batch: BatchConfig,
    outbox: Vec<Mutex<LoopBatch<M>>>,
    stats: Arc<CommStats>,
}

impl<M: Send + WireSize> LoopbackTransport<M> {
    /// Build all `n` connected loopback endpoints at once (coalescing
    /// disabled, frame counts unrecorded — the historical constructor).
    pub fn fabric(n: usize) -> Vec<Self> {
        Self::fabric_with(n, BatchConfig::disabled(), CommStats::new(n))
    }

    /// Build the fabric with an explicit coalescing policy, recording
    /// physical frame counts into `stats`.
    pub fn fabric_with(n: usize, batch: BatchConfig, stats: Arc<CommStats>) -> Vec<Self> {
        channel_mesh(n)
            .into_iter()
            .map(|(rank, senders, receiver)| Self {
                rank,
                senders,
                receiver,
                inbox: Mutex::new(VecDeque::new()),
                batch,
                outbox: (0..n)
                    .map(|_| Mutex::new(LoopBatch { msgs: Vec::new(), bytes: 0 }))
                    .collect(),
                stats: Arc::clone(&stats),
            })
            .collect()
    }

    fn transmit(&self, dst: usize, packet: LoopPacket<M>) -> Result<(), TransportError> {
        self.senders[dst]
            .send(packet)
            .map_err(|_| TransportError::Disconnected { peer: Some(dst) })?;
        if dst != self.rank {
            self.stats.record_frames(self.rank, 1);
        }
        Ok(())
    }

    fn flush_dst(&self, dst: usize) -> Result<(), TransportError> {
        let msgs = {
            let mut buf = self.outbox[dst].lock();
            if buf.msgs.is_empty() {
                return Ok(());
            }
            buf.bytes = 0;
            std::mem::take(&mut buf.msgs)
        };
        self.transmit(dst, LoopPacket::Many(self.rank, msgs))
    }

    /// Unpack one received packet into the inbox.
    fn ingest(&self, packet: LoopPacket<M>) {
        let mut inbox = self.inbox.lock();
        match packet {
            LoopPacket::One(src, m) => inbox.push_back((src, m)),
            LoopPacket::Many(src, msgs) => inbox.extend(msgs.into_iter().map(|m| (src, m))),
        }
    }
}

impl<M: Send + WireSize> Transport<M> for LoopbackTransport<M> {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn nprocs(&self) -> usize {
        self.senders.len()
    }

    fn send(&self, dst: usize, msg: M) -> Result<usize, TransportError> {
        let wire = msg.wire_bytes();
        check_payload_bound(wire, self.rank)?;
        // Self-sends never cross a wire; large envelopes bypass the buffer
        // (after a flush that keeps the link FIFO) as classic frames.
        if dst == self.rank || !self.batch.enabled() {
            self.transmit(dst, LoopPacket::One(self.rank, msg))?;
            return Ok(wire);
        }
        if wire >= self.batch.max_bytes {
            self.flush_dst(dst)?;
            self.transmit(dst, LoopPacket::One(self.rank, msg))?;
            return Ok(wire);
        }
        let full = {
            let mut buf = self.outbox[dst].lock();
            buf.msgs.push(msg);
            buf.bytes += wire;
            buf.msgs.len() >= self.batch.max_msgs || buf.bytes >= self.batch.max_bytes
        };
        if full {
            self.flush_dst(dst)?;
        }
        Ok(wire)
    }

    fn recv(&self) -> Result<(usize, M), TransportError> {
        loop {
            if let Some(envelope) = self.inbox.lock().pop_front() {
                return Ok(envelope);
            }
            let packet =
                self.receiver.recv().map_err(|_| TransportError::Disconnected { peer: None })?;
            self.ingest(packet);
        }
    }

    fn flush(&self) -> Result<(), TransportError> {
        if self.batch.enabled() {
            for dst in 0..self.senders.len() {
                self.flush_dst(dst)?;
            }
        }
        Ok(())
    }

    fn try_recv(&self) -> Result<Option<(usize, M)>, TransportError> {
        loop {
            if let Some(envelope) = self.inbox.lock().pop_front() {
                return Ok(Some(envelope));
            }
            match self.receiver.try_recv() {
                Ok(packet) => self.ingest(packet),
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => {
                    return Err(TransportError::Disconnected { peer: None })
                }
            }
        }
    }
}

/// Frame header: `[u64 payload length][u32 source rank]`, little-endian.
pub(crate) const FRAME_HEADER_BYTES: usize = 12;

/// Upper bound on a single message's encoded payload (1 GiB). Enforced
/// identically by *every* backend's `send` — on the framing backends a
/// corrupt or adversarial length prefix must not drive the reader into a
/// giant allocation, and bounding loopback the same way keeps the three
/// backends observationally identical even at the limit.
pub const MAX_FRAME_PAYLOAD: u64 = 1 << 30;

/// Reject an outgoing payload that would exceed the frame bound.
pub(crate) fn check_payload_bound(wire: usize, src: usize) -> Result<(), TransportError> {
    if wire as u64 > MAX_FRAME_PAYLOAD {
        return Err(TransportError::Frame {
            src: Some(src),
            detail: format!(
                "outgoing message payload of {wire} bytes exceeds the \
                 {MAX_FRAME_PAYLOAD}-byte frame bound"
            ),
        });
    }
    Ok(())
}

/// Encode one envelope into its wire frame
/// (`[u64 payload len][u32 src][payload]`) — the format shared by the
/// bytes backend and the TCP socket fabric.
pub(crate) fn encode_frame<M: WireEncode>(src: usize, msg: &M) -> Vec<u8> {
    let payload_len = msg.wire_bytes();
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload_len);
    (payload_len as u64).encode(&mut frame);
    (src as u32).encode(&mut frame);
    msg.encode(&mut frame);
    debug_assert_eq!(
        frame.len(),
        FRAME_HEADER_BYTES + payload_len,
        "encoder must emit exactly wire_bytes() payload bytes"
    );
    frame
}

/// Decode one wire frame back into its envelope. Malformed frames are
/// typed errors, never panics: on the in-process bytes backend they would
/// indicate a codec bug, but the same frames cross real sockets on the
/// TCP backend, where truncation and corruption are input conditions.
pub(crate) fn decode_frame<M: WireDecode>(frame: &[u8]) -> Result<(usize, M), TransportError> {
    let mut r = WireReader::new(frame);
    let payload_len = u64::decode(&mut r).map_err(|e| TransportError::Frame {
        src: None,
        detail: format!("frame too short for length prefix: {e}"),
    })? as usize;
    let src = u32::decode(&mut r).map_err(|e| TransportError::Frame {
        src: None,
        detail: format!("frame too short for source rank: {e}"),
    })? as usize;
    if r.remaining() != payload_len {
        return Err(TransportError::Frame {
            src: Some(src),
            detail: format!(
                "length prefix mismatch: header claims {payload_len} payload bytes, \
                 {} present",
                r.remaining()
            ),
        });
    }
    let payload = r.read_bytes(payload_len).expect("payload length checked above");
    let msg = M::from_wire(payload).map_err(|error| TransportError::Decode { src, error })?;
    Ok((src, msg))
}

/// Flag bit set in the `u64` length prefix of a *multi-message* frame.
/// The body of a flagged frame is `[u32 count][(u32 sublen)(payload)]…`
/// instead of a single payload. The TCP goodbye sentinel (`u64::MAX`,
/// every bit set) is checked before this flag everywhere both can occur.
pub(crate) const BATCH_FLAG: u64 = 1 << 63;

/// Does this encoded frame carry a multi-message body?
pub(crate) fn frame_is_batch(frame: &[u8]) -> bool {
    frame.len() >= 8 && {
        let mut len = [0u8; 8];
        len.copy_from_slice(&frame[..8]);
        u64::from_le_bytes(len) & BATCH_FLAG != 0
    }
}

/// Encode several same-destination payloads into one multi-message frame:
/// `[u64 body len | BATCH_FLAG][u32 src][u32 count][(u32 sublen)(payload)]…`.
pub(crate) fn encode_batch_frame(src: usize, payloads: &[Vec<u8>]) -> Vec<u8> {
    let body: usize = 4 + payloads.iter().map(|p| 4 + p.len()).sum::<usize>();
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + body);
    ((body as u64) | BATCH_FLAG).encode(&mut frame);
    (src as u32).encode(&mut frame);
    (payloads.len() as u32).encode(&mut frame);
    for p in payloads {
        (p.len() as u32).encode(&mut frame);
        frame.extend_from_slice(p);
    }
    frame
}

/// Decode the body of a multi-message frame (everything after the 12-byte
/// header) into its logical envelopes, in send order.
pub(crate) fn decode_batch_body<M: WireDecode>(
    src: usize,
    body: &[u8],
) -> Result<Vec<M>, TransportError> {
    let mut r = WireReader::new(body);
    let count = u32::decode(&mut r).map_err(|e| TransportError::Frame {
        src: Some(src),
        detail: format!("batch frame too short for message count: {e}"),
    })?;
    let mut out = Vec::with_capacity(count as usize);
    for i in 0..count {
        let sublen = u32::decode(&mut r).map_err(|e| TransportError::Frame {
            src: Some(src),
            detail: format!("batch frame truncated at sub-message {i}/{count}: {e}"),
        })? as usize;
        let payload = r.read_bytes(sublen).map_err(|e| TransportError::Frame {
            src: Some(src),
            detail: format!("batch sub-message {i}/{count} truncated: {e}"),
        })?;
        out.push(M::from_wire(payload).map_err(|error| TransportError::Decode { src, error })?);
    }
    if r.remaining() != 0 {
        return Err(TransportError::Frame {
            src: Some(src),
            detail: format!("{} trailing bytes after {count} batched messages", r.remaining()),
        });
    }
    Ok(out)
}

/// Decode a whole encoded frame — single-message or multi-message — into
/// its envelopes. The batch path is shared by the bytes backend and the
/// TCP socket reader so both understand coalesced traffic identically.
pub(crate) fn decode_frames<M: WireDecode>(
    frame: &[u8],
) -> Result<(usize, Vec<M>), TransportError> {
    if !frame_is_batch(frame) {
        return decode_frame(frame).map(|(src, m)| (src, vec![m]));
    }
    let mut r = WireReader::new(frame);
    let raw_len = u64::decode(&mut r).expect("frame_is_batch read 8 bytes") & !BATCH_FLAG;
    let src = u32::decode(&mut r).map_err(|e| TransportError::Frame {
        src: None,
        detail: format!("batch frame too short for source rank: {e}"),
    })? as usize;
    if r.remaining() as u64 != raw_len {
        return Err(TransportError::Frame {
            src: Some(src),
            detail: format!(
                "batch length prefix mismatch: header claims {raw_len} body bytes, {} present",
                r.remaining()
            ),
        });
    }
    let body_len = r.remaining();
    let body = r.read_bytes(body_len).expect("length checked above");
    decode_batch_body(src, body).map(|msgs| (src, msgs))
}

/// The serializing backend: every envelope becomes a length-prefixed
/// little-endian byte frame (`[u64 payload len][u32 src][payload]`).
///
/// Self-sends are encoded and decoded like any other envelope — the codec
/// round-trip is exercised for *every* message a run produces — but, as on
/// the loopback backend, they are not charged to the byte accounting (no
/// wire crossed).
pub struct BytesTransport<M> {
    rank: usize,
    senders: Vec<Sender<Vec<u8>>>,
    receiver: Receiver<Vec<u8>>,
    /// Envelopes decoded from received frames, in arrival order.
    inbox: Mutex<VecDeque<(usize, M)>>,
    batch: BatchConfig,
    outbox: Vec<Mutex<ByteBatch>>,
    stats: Arc<CommStats>,
    _msg: std::marker::PhantomData<fn() -> M>,
}

/// A per-destination coalescing buffer (serialized flavor: payloads).
struct ByteBatch {
    payloads: Vec<Vec<u8>>,
    bytes: usize,
}

impl<M: Send + WireEncode + WireDecode> BytesTransport<M> {
    /// Build all `n` connected byte-frame endpoints at once (coalescing
    /// disabled, frame counts unrecorded — the historical constructor).
    pub fn fabric(n: usize) -> Vec<Self> {
        Self::fabric_with(n, BatchConfig::disabled(), CommStats::new(n))
    }

    /// Build the fabric with an explicit coalescing policy, recording
    /// physical frame counts into `stats`.
    pub fn fabric_with(n: usize, batch: BatchConfig, stats: Arc<CommStats>) -> Vec<Self> {
        channel_mesh(n)
            .into_iter()
            .map(|(rank, senders, receiver)| Self {
                rank,
                senders,
                receiver,
                inbox: Mutex::new(VecDeque::new()),
                batch,
                outbox: (0..n)
                    .map(|_| Mutex::new(ByteBatch { payloads: Vec::new(), bytes: 0 }))
                    .collect(),
                stats: Arc::clone(&stats),
                _msg: std::marker::PhantomData,
            })
            .collect()
    }

    fn transmit(&self, dst: usize, frame: Vec<u8>) -> Result<(), TransportError> {
        self.senders[dst]
            .send(frame)
            .map_err(|_| TransportError::Disconnected { peer: Some(dst) })?;
        if dst != self.rank {
            self.stats.record_frames(self.rank, 1);
        }
        Ok(())
    }

    fn flush_dst(&self, dst: usize) -> Result<(), TransportError> {
        let payloads = {
            let mut buf = self.outbox[dst].lock();
            if buf.payloads.is_empty() {
                return Ok(());
            }
            buf.bytes = 0;
            std::mem::take(&mut buf.payloads)
        };
        self.transmit(dst, encode_batch_frame(self.rank, &payloads))
    }

    /// Decode one received frame — single or multi-message — into the inbox.
    fn ingest(&self, frame: Vec<u8>) -> Result<(), TransportError> {
        let (src, msgs) = decode_frames::<M>(&frame)?;
        self.inbox.lock().extend(msgs.into_iter().map(|m| (src, m)));
        Ok(())
    }
}

impl<M: Send + WireEncode + WireDecode> Transport<M> for BytesTransport<M> {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn nprocs(&self) -> usize {
        self.senders.len()
    }

    fn send(&self, dst: usize, msg: M) -> Result<usize, TransportError> {
        // Self-sends still round-trip the codec (as classic frames) but
        // never share a buffer with real traffic; with coalescing off
        // every envelope is its own frame, exactly as before.
        if dst == self.rank || !self.batch.enabled() {
            let frame = encode_frame(self.rank, &msg);
            // Report the encoded payload, excluding the 12-byte frame
            // header: WireSize estimates are payload-only, and all
            // backends must account identically for identical traffic.
            let wire = frame.len() - FRAME_HEADER_BYTES;
            check_payload_bound(wire, self.rank)?;
            self.transmit(dst, frame)?;
            return Ok(wire);
        }
        let payload = msg.to_wire();
        let wire = payload.len();
        check_payload_bound(wire, self.rank)?;
        if wire >= self.batch.max_bytes {
            // Large envelopes bypass the buffer (after a flush that keeps
            // the link FIFO) as classic single-message frames.
            self.flush_dst(dst)?;
            let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + wire);
            (wire as u64).encode(&mut frame);
            (self.rank as u32).encode(&mut frame);
            frame.extend_from_slice(&payload);
            self.transmit(dst, frame)?;
            return Ok(wire);
        }
        let full = {
            let mut buf = self.outbox[dst].lock();
            buf.payloads.push(payload);
            buf.bytes += wire;
            buf.payloads.len() >= self.batch.max_msgs || buf.bytes >= self.batch.max_bytes
        };
        if full {
            self.flush_dst(dst)?;
        }
        Ok(wire)
    }

    fn recv(&self) -> Result<(usize, M), TransportError> {
        loop {
            if let Some(envelope) = self.inbox.lock().pop_front() {
                return Ok(envelope);
            }
            let frame =
                self.receiver.recv().map_err(|_| TransportError::Disconnected { peer: None })?;
            self.ingest(frame)?;
        }
    }

    fn flush(&self) -> Result<(), TransportError> {
        if self.batch.enabled() {
            for dst in 0..self.senders.len() {
                self.flush_dst(dst)?;
            }
        }
        Ok(())
    }

    fn try_recv(&self) -> Result<Option<(usize, M)>, TransportError> {
        loop {
            if let Some(envelope) = self.inbox.lock().pop_front() {
                return Ok(Some(envelope));
            }
            match self.receiver.try_recv() {
                Ok(frame) => self.ingest(frame)?,
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => {
                    return Err(TransportError::Disconnected { peer: None })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unbatched fabric with throwaway stats — the historical shape.
    fn plain_fabric<M>(kind: TransportKind, n: usize) -> Vec<Box<dyn Transport<M>>>
    where
        M: Send + WireEncode + WireDecode + 'static,
    {
        kind.fabric(n, BatchConfig::disabled(), CommStats::new(n))
    }

    #[test]
    fn kind_parses_and_displays() {
        assert_eq!("loopback".parse::<TransportKind>().unwrap(), TransportKind::Loopback);
        assert_eq!("BYTES".parse::<TransportKind>().unwrap(), TransportKind::Bytes);
        assert_eq!("tcp".parse::<TransportKind>().unwrap(), TransportKind::Tcp);
        assert_eq!(" Tcp ".parse::<TransportKind>().unwrap(), TransportKind::Tcp);
        assert_eq!(TransportKind::Bytes.to_string(), "bytes");
        assert_eq!(TransportKind::Tcp.to_string(), "tcp");
        assert_eq!(TransportKind::default(), TransportKind::Loopback);
    }

    #[test]
    fn typos_name_every_valid_backend() {
        // The satellite bug: `DNE_TRANSPORT=byte` must be a hard error that
        // tells the operator what would have been accepted.
        let err = "byte".parse::<TransportKind>().unwrap_err();
        for name in ["loopback", "bytes", "tcp"] {
            assert!(err.contains(name), "error {err:?} must list {name}");
        }
    }

    fn delivery_roundtrip(kind: TransportKind) {
        let mut fabric = plain_fabric::<Vec<u64>>(kind, 2);
        let b = fabric.pop().unwrap();
        let a = fabric.pop().unwrap();
        let payload: Vec<u64> = (0..100).collect();
        let wire = a.send(1, payload.clone()).unwrap();
        assert_eq!(wire, payload.wire_bytes(), "charged bytes must equal wire size");
        let (src, got) = b.recv().unwrap();
        assert_eq!(src, 0);
        assert_eq!(got, payload);
    }

    #[test]
    fn loopback_delivers_and_charges_estimate() {
        delivery_roundtrip(TransportKind::Loopback);
    }

    #[test]
    fn bytes_delivers_and_charges_actual() {
        delivery_roundtrip(TransportKind::Bytes);
    }

    #[test]
    fn tcp_delivers_and_charges_actual() {
        delivery_roundtrip(TransportKind::Tcp);
    }

    #[test]
    fn self_sends_report_their_size_and_deliver() {
        // Transports always report the envelope's wire size — the
        // self-sends-are-free policy lives solely in CommEndpoint.
        for kind in TransportKind::ALL {
            let fabric = plain_fabric::<u64>(kind, 1);
            let a = &fabric[0];
            assert_eq!(a.send(0, 7).unwrap(), 8, "{kind}: size reported even for self-sends");
            assert_eq!(a.recv().unwrap(), (0, 7));
        }
    }

    #[test]
    fn frame_layout_is_length_prefixed_little_endian() {
        let frame = encode_frame(3, &0x0102_0304_0506_0708u64);
        assert_eq!(&frame[0..8], &8u64.to_le_bytes(), "payload length prefix");
        assert_eq!(&frame[8..12], &3u32.to_le_bytes(), "source rank");
        assert_eq!(&frame[12..], &0x0102_0304_0506_0708u64.to_le_bytes());
        let (src, msg) = decode_frame::<u64>(&frame).unwrap();
        assert_eq!((src, msg), (3, 0x0102_0304_0506_0708));
    }

    #[test]
    fn truncated_frame_is_a_typed_error() {
        let frame = encode_frame(0, &7u64);
        let err = decode_frame::<u64>(&frame[..frame.len() - 1]).unwrap_err();
        assert!(
            matches!(err, TransportError::Frame { .. }),
            "truncation must surface as a framing error, got {err}"
        );
    }

    #[test]
    fn undecodable_payload_names_the_source() {
        // A frame whose header is intact but whose payload is garbage for
        // the target type must attribute the decode failure to its sender.
        let frame = encode_frame(2, &vec![1u8, 2, 3]);
        match decode_frame::<Vec<u64>>(&frame) {
            Err(TransportError::Decode { src: 2, .. }) => {}
            other => panic!("expected Decode error from rank 2, got {other:?}"),
        }
    }

    #[test]
    fn loopback_send_to_dropped_fabric_errors() {
        let mut fabric = LoopbackTransport::<u64>::fabric(2);
        let _b = fabric.pop().unwrap();
        let a = fabric.pop().unwrap();
        drop(_b);
        let err = a.send(1, 5).unwrap_err();
        assert!(matches!(err, TransportError::Disconnected { peer: Some(1) }), "{err}");
    }

    #[test]
    fn batch_config_parses_and_displays() {
        assert_eq!("off".parse::<BatchConfig>().unwrap(), BatchConfig::disabled());
        assert_eq!("0".parse::<BatchConfig>().unwrap(), BatchConfig::disabled());
        assert_eq!(" 64 ".parse::<BatchConfig>().unwrap(), BatchConfig::msgs(64));
        assert!(!"1".parse::<BatchConfig>().unwrap().enabled());
        assert!(BatchConfig::msgs(8).enabled());
        assert!(!BatchConfig::disabled().enabled());
        assert_eq!(BatchConfig::msgs(8).to_string(), "8");
        assert_eq!(BatchConfig::disabled().to_string(), "off");
        assert_eq!(BatchConfig::default(), BatchConfig::disabled());
        let err = "eight".parse::<BatchConfig>().unwrap_err();
        assert!(err.contains("off"), "error {err:?} must name the accepted forms");
    }

    #[test]
    fn batch_frame_roundtrips_in_send_order() {
        let payloads: Vec<Vec<u8>> = [7u64, 8, 9].iter().map(|v| v.to_wire()).collect::<Vec<_>>();
        let frame = encode_batch_frame(5, &payloads);
        assert!(frame_is_batch(&frame), "flag bit must mark multi-message frames");
        assert!(!frame_is_batch(&encode_frame(5, &7u64)));
        let (src, msgs) = decode_frames::<u64>(&frame).unwrap();
        assert_eq!(src, 5);
        assert_eq!(msgs, vec![7, 8, 9]);
    }

    #[test]
    fn truncated_batch_frame_is_a_typed_error() {
        let frame = encode_batch_frame(1, &[3u64.to_wire(), 4u64.to_wire()]);
        for cut in [frame.len() - 1, FRAME_HEADER_BYTES + 5, FRAME_HEADER_BYTES] {
            let err = decode_frames::<u64>(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, TransportError::Frame { .. }),
                "cut at {cut} must surface as a framing error, got {err}"
            );
        }
    }

    #[test]
    fn coalescing_batches_frames_but_accounting_is_invariant() {
        // 10 small envelopes to one peer under an 8-message batch: two
        // physical frames (8 + a flushed 2), identical bytes/msgs to the
        // unbatched run — on every backend.
        for kind in TransportKind::ALL {
            let stats = CommStats::new(2);
            let mut fabric = kind.fabric::<u64>(2, BatchConfig::msgs(8), Arc::clone(&stats));
            let b = fabric.pop().unwrap();
            let a = fabric.pop().unwrap();
            for i in 0..10u64 {
                assert_eq!(a.send(1, i).unwrap(), 8, "{kind}: logical wire size per envelope");
            }
            a.flush().unwrap();
            for i in 0..10u64 {
                assert_eq!(b.recv().unwrap(), (0, i), "{kind}: batch preserves FIFO order");
            }
            assert_eq!(stats.frames_by(0), 2, "{kind}: 10 envelopes in 2 frames");
        }
    }

    #[test]
    fn large_envelopes_bypass_the_buffer_in_order() {
        // small, HUGE, small: the big envelope must flush the pending
        // buffer first so the link stays FIFO, and travel as its own
        // classic frame.
        for kind in TransportKind::ALL {
            let stats = CommStats::new(2);
            let batch = BatchConfig { max_msgs: 64, max_bytes: 64 };
            let mut fabric = kind.fabric::<Vec<u64>>(2, batch, Arc::clone(&stats));
            let b = fabric.pop().unwrap();
            let a = fabric.pop().unwrap();
            let big: Vec<u64> = (0..100).collect();
            a.send(1, vec![1]).unwrap();
            a.send(1, big.clone()).unwrap();
            a.send(1, vec![2]).unwrap();
            a.flush().unwrap();
            assert_eq!(b.recv().unwrap(), (0, vec![1]), "{kind}");
            assert_eq!(b.recv().unwrap(), (0, big.clone()), "{kind}");
            assert_eq!(b.recv().unwrap(), (0, vec![2]), "{kind}");
            // frame 1: flushed [1]; frame 2: the big envelope; frame 3:
            // the flushed trailing [2].
            assert_eq!(stats.frames_by(0), 3, "{kind}");
        }
    }

    #[test]
    fn try_recv_drains_ready_envelopes_without_blocking() {
        for kind in TransportKind::ALL {
            let mut fabric = plain_fabric::<u64>(kind, 2);
            let b = fabric.pop().unwrap();
            let a = fabric.pop().unwrap();
            a.send(1, 11).unwrap();
            a.send(1, 12).unwrap();
            a.flush().unwrap();
            // The tcp fabric delivers asynchronously; poll briefly.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            let mut got = Vec::new();
            while got.len() < 2 && std::time::Instant::now() < deadline {
                if let Some((src, v)) = b.try_recv().unwrap() {
                    assert_eq!(src, 0);
                    got.push(v);
                } else {
                    std::thread::yield_now();
                }
            }
            assert_eq!(got, vec![11, 12], "{kind}");
            assert!(b.try_recv().unwrap().is_none(), "{kind}: queue must now be empty");
        }
    }

    #[test]
    fn unbatched_sends_count_one_frame_per_envelope_and_self_sends_none() {
        for kind in TransportKind::ALL {
            let stats = CommStats::new(2);
            let mut fabric = kind.fabric::<u64>(2, BatchConfig::disabled(), Arc::clone(&stats));
            let b = fabric.pop().unwrap();
            let a = fabric.pop().unwrap();
            a.send(1, 1).unwrap();
            a.send(0, 2).unwrap(); // self: delivered, never a wire frame
            a.send(1, 3).unwrap();
            let _ = b.recv().unwrap();
            let _ = a.recv().unwrap();
            let _ = b.recv().unwrap();
            assert_eq!(stats.frames_by(0), 2, "{kind}: frames == non-self envelopes");
            assert_eq!(stats.msgs_sent_by(0), 0, "{kind}: transports never charge msgs");
        }
    }
}
