//! Criterion micro-benchmarks of the transport layer: what does really
//! serializing every envelope (bytes backend) or shipping it over real
//! localhost sockets (tcp backend) cost over pointer-passing (loopback),
//! and how fast is the wire codec itself on the hot payload shapes of
//! Distributed NE?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dne_runtime::{
    BatchConfig, Cluster, CollectiveTopology, TransportKind, WireDecode, WireEncode,
};
use std::hint::black_box;

/// Lock-step all-to-all of `Vec<u64>` payloads — the dominant traffic
/// pattern of every partitioner iteration — on each backend.
fn bench_exchange_backends(c: &mut Criterion) {
    for (label, payload_len) in [("small_8", 8usize), ("bulk_4096", 4096)] {
        let mut group = c.benchmark_group(format!("exchange_20x_{label}"));
        group.sample_size(10);
        group.throughput(Throughput::Bytes((20 * 4 * 4 * payload_len * 8) as u64));
        for kind in TransportKind::ALL {
            group.bench_function(BenchmarkId::from_parameter(kind), |b| {
                b.iter(|| {
                    Cluster::with_transport(4, kind).run::<Vec<u64>, _, _>(|ctx| {
                        let payload: Vec<u64> = (0..payload_len as u64).collect();
                        for _ in 0..20 {
                            let got = ctx.exchange(|_dst| payload.clone());
                            black_box(got);
                        }
                    })
                })
            });
        }
        group.finish();
    }
}

/// The frame-coalescing sweep over real sockets: every rank pushes a
/// fixed stream of small envelopes to every peer, with `DNE_COMM_BATCH`
/// auto-flushing every 1 (off) / 8 / 64 / 512 envelopes. Logical traffic
/// is identical across the sweep — only the physical frame count (and
/// with it the per-frame write/read/syscall overhead) changes, so the
/// wall-clock spread is the price of one-envelope-per-frame framing. The
/// per-destination stream shrinks with P (`2048 / P` envelopes) to keep
/// the total socket traffic roughly constant as the mesh widens.
fn bench_coalescing_sweep(c: &mut Criterion) {
    for p in [4usize, 16, 64] {
        let per_dst = 2048 / p;
        let mut group = c.benchmark_group(format!("coalesce_tcp_p{p}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements((per_dst * (p - 1) * p) as u64));
        for batch in [1usize, 8, 64, 512] {
            group.bench_function(BenchmarkId::from_parameter(batch), |b| {
                b.iter(|| {
                    Cluster::with_transport(p, TransportKind::Tcp)
                        .with_comm_batch(BatchConfig::msgs(batch))
                        .run::<Vec<u64>, _, _>(|ctx| {
                            let payload: Vec<u64> = (0..8u64).collect();
                            for dst in (0..p).filter(|&d| d != ctx.rank()) {
                                for _ in 0..per_dst {
                                    ctx.send(dst, payload.clone());
                                }
                            }
                            for _ in 0..per_dst * (p - 1) {
                                black_box(ctx.recv());
                            }
                        })
                })
            });
        }
        group.finish();
    }
}

/// Collectives are one u64 per link on every backend; the serializing
/// backends pay an encode/decode per word, tcp adds the socket round.
fn bench_collectives_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_reduce_100x_p8");
    group.sample_size(10);
    for kind in TransportKind::ALL {
        group.bench_function(BenchmarkId::from_parameter(kind), |b| {
            b.iter(|| {
                Cluster::with_transport(8, kind).run::<u64, _, _>(|ctx| {
                    let mut acc = 0u64;
                    for i in 0..100 {
                        acc = acc.wrapping_add(ctx.all_reduce_sum_u64(i));
                    }
                    black_box(acc)
                })
            })
        });
    }
    group.finish();
}

/// Collective topology comparison at the paper's machine counts: the same
/// 20 all-reduce rounds under flat, binomial-tree, and recursive-doubling
/// schedules at P ∈ {4, 16, 64}. Flat serializes P−1 sends per rank per
/// round; tree and recursive-doubling trade that for log-depth schedules
/// (see `CollectiveTopology::rank_traffic` for the exact byte model) —
/// this measures what that buys in wall-clock as the fabric widens.
fn bench_collective_topologies(c: &mut Criterion) {
    for p in [4usize, 16, 64] {
        let mut group = c.benchmark_group(format!("all_reduce_20x_p{p}_topology"));
        group.sample_size(10);
        for topo in CollectiveTopology::ALL {
            group.bench_function(BenchmarkId::from_parameter(topo), |b| {
                b.iter(|| {
                    Cluster::with_transport(p, TransportKind::Loopback)
                        .with_collectives(topo)
                        .run::<u64, _, _>(|ctx| {
                            let mut acc = 0u64;
                            for i in 0..20 {
                                acc = acc.wrapping_add(ctx.all_reduce_sum_u64(i));
                            }
                            black_box(acc)
                        })
                })
            });
        }
        group.finish();
    }
}

/// The raw codec, isolated from threading: encode and decode throughput of
/// the bulk `Vec<u64>` fast path.
fn bench_codec(c: &mut Criterion) {
    let payload: Vec<u64> = (0..65_536u64).collect();
    let encoded = payload.to_wire();
    let mut group = c.benchmark_group("codec_512KiB");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode", |b| b.iter(|| black_box(payload.to_wire())));
    group.bench_function("decode", |b| {
        b.iter(|| black_box(Vec::<u64>::from_wire(&encoded).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_exchange_backends,
    bench_coalescing_sweep,
    bench_collectives_backends,
    bench_collective_topologies,
    bench_codec
);
criterion_main!(benches);
