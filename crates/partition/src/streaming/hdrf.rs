//! HDRF — High-Degree Replicated First (Petroni et al., CIKM 2015).
//!
//! Stream-based partitioning for power-law graphs (paper §2.2 and Table 4's
//! "HDRF" rows). For every edge `e{u,v}` HDRF scores each partition
//!
//! ```text
//! C(p) = C_rep(p) + λ · C_bal(p)
//! C_rep(p) = g(u,p) + g(v,p),  g(w,p) = [p ∈ A(w)] · (1 + (1 − θ(w)))
//! θ(w)     = d(w) / (d(u) + d(v))
//! C_bal(p) = (maxsize − size(p)) / (ε + maxsize − minsize)
//! ```
//!
//! and places the edge on the arg-max. The degree-weighted term prefers
//! replicating the *higher*-degree endpoint (it will be replicated anyway),
//! which is the defining idea of the method.
//!
//! Adaptation note: the original uses degrees *observed so far* in the
//! stream; we have the whole graph in memory, so exact degrees are used —
//! this only strengthens the heuristic and is the variant the NE/SNE paper
//! also benchmarks against.

use crate::assignment::{EdgeAssignment, PartitionId};
use crate::streaming::StreamState;
use crate::traits::EdgePartitioner;
use dne_graph::hash::SplitMix64;
use dne_graph::Graph;

/// HDRF streaming partitioner.
#[derive(Debug, Clone)]
pub struct HdrfPartitioner {
    seed: u64,
    /// Balance weight λ (HDRF paper default 1.0; larger values trade
    /// replication for balance).
    pub lambda: f64,
    /// Numerical-stability constant ε in the balance term.
    pub epsilon: f64,
}

impl HdrfPartitioner {
    /// Seeded constructor with the paper defaults (λ = 1, ε = 1).
    pub fn new(seed: u64) -> Self {
        Self { seed, lambda: 1.0, epsilon: 1.0 }
    }

    /// Override the balance weight λ.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }
}

impl EdgePartitioner for HdrfPartitioner {
    fn name(&self) -> String {
        "HDRF".into()
    }

    fn partition(&self, g: &Graph, k: PartitionId) -> EdgeAssignment {
        let mut state = StreamState::new(g.num_vertices() as usize, k as usize);
        let mut order: Vec<u64> = (0..g.num_edges()).collect();
        let mut rng = SplitMix64::new(self.seed ^ 0x4844_5246); // "HDRF"
        for i in (1..order.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        let mut parts = vec![0 as PartitionId; g.num_edges() as usize];
        for e in order {
            let (u, v) = g.edge(e);
            let (du, dv) = (g.degree(u) as f64, g.degree(v) as f64);
            let theta_u = du / (du + dv);
            let theta_v = 1.0 - theta_u;
            let maxsize = state.sizes.iter().copied().max().unwrap_or(0) as f64;
            let minsize = state.sizes.iter().copied().min().unwrap_or(0) as f64;
            let mut best = 0 as PartitionId;
            let mut best_score = f64::NEG_INFINITY;
            for p in 0..k {
                let in_u = state.vparts[u as usize].binary_search(&p).is_ok();
                let in_v = state.vparts[v as usize].binary_search(&p).is_ok();
                let g_u = if in_u { 1.0 + (1.0 - theta_u) } else { 0.0 };
                let g_v = if in_v { 1.0 + (1.0 - theta_v) } else { 0.0 };
                let c_bal =
                    (maxsize - state.sizes[p as usize] as f64) / (self.epsilon + maxsize - minsize);
                let score = g_u + g_v + self.lambda * c_bal;
                if score > best_score {
                    best_score = score;
                    best = p;
                }
            }
            parts[e as usize] = best;
            state.place(u, v, best);
        }
        EdgeAssignment::new(parts, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_based::RandomPartitioner;
    use crate::quality::PartitionQuality;
    use dne_graph::gen;

    #[test]
    fn beats_random_on_power_law() {
        let g = gen::chung_lu(3000, 20_000, 2.3, 2);
        let qh = PartitionQuality::measure(&g, &HdrfPartitioner::new(1).partition(&g, 16));
        let qr = PartitionQuality::measure(&g, &RandomPartitioner::new(1).partition(&g, 16));
        assert!(
            qh.replication_factor < qr.replication_factor,
            "HDRF {} should beat Random {}",
            qh.replication_factor,
            qr.replication_factor
        );
    }

    #[test]
    fn balance_term_keeps_partitions_even() {
        let g = gen::rmat(&gen::RmatConfig::graph500(9, 8, 5));
        let q = PartitionQuality::measure(&g, &HdrfPartitioner::new(1).partition(&g, 8));
        assert!(q.edge_balance < 1.5, "edge balance {}", q.edge_balance);
    }

    #[test]
    fn higher_lambda_improves_balance() {
        let g = gen::chung_lu(2000, 12_000, 2.2, 4);
        let loose = HdrfPartitioner::new(1).with_lambda(0.05).partition(&g, 8);
        let tight = HdrfPartitioner::new(1).with_lambda(4.0).partition(&g, 8);
        let ql = PartitionQuality::measure(&g, &loose);
        let qt = PartitionQuality::measure(&g, &tight);
        assert!(qt.edge_balance <= ql.edge_balance + 1e-9);
    }

    #[test]
    fn deterministic() {
        let g = gen::cycle(30);
        assert_eq!(
            HdrfPartitioner::new(3).partition(&g, 3),
            HdrfPartitioner::new(3).partition(&g, 3)
        );
    }
}
