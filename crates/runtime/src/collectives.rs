//! MPI-style collectives: barrier, all-gather, all-reduce.
//!
//! Algorithm 1 of the paper uses `Barrier()` (line 9) and
//! `AllGatherSum(|Ep|)` (line 14) every iteration; the application engine
//! uses all-reduce for convergence/frontier checks. Collectives are built
//! as *real traffic* over the same [`Transport`](crate::transport::Transport)
//! fabric as point-to-point messages: a flat all-gather in which every rank
//! sends its one-word contribution to every peer and collects one word from
//! each (the self-send is free and keeps indexing uniform). On the bytes
//! backend those words are genuinely serialized and decoded like any other
//! envelope.
//!
//! Round alignment comes from the same argument as
//! [`crate::Ctx::exchange`]: per-link FIFO order plus one-message-per-rank
//! collection keeps back-to-back collectives race-free even when peers run
//! ahead.
//!
//! Byte accounting: each collective charges `8·(P−1)` bytes to every
//! participant — on the loopback backend as `P−1` estimated 8-byte sends,
//! on the bytes backend as `P−1` actually-encoded 8-byte frames. The total
//! matches what a flat MPI all-gather of one word would move.

use std::sync::Arc;

use crate::comm::CommEndpoint;
use crate::stats::CommStats;
use crate::transport::TransportKind;

/// Per-rank collective-communication endpoint for one cluster run.
pub struct Collectives {
    comm: CommEndpoint<u64>,
}

impl Collectives {
    /// Build the `n` connected collective endpoints of a run at once,
    /// sharing the run's byte accounting.
    pub fn fabric(kind: TransportKind, n: usize, stats: Arc<CommStats>) -> Vec<Collectives> {
        CommEndpoint::fabric(kind, n, stats).into_iter().map(|comm| Collectives { comm }).collect()
    }

    /// This endpoint's rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Number of participants.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.comm.nprocs()
    }

    /// Flat all-gather: contribute `value`, receive the full vector of
    /// contributions indexed by rank.
    pub fn all_gather_u64(&mut self, value: u64) -> Vec<u64> {
        for dst in 0..self.nprocs() {
            self.comm.send(dst, value);
        }
        self.comm.recv_one_from_each()
    }

    /// Barrier: returns once every participant has arrived.
    pub fn barrier(&mut self) {
        self.all_gather_u64(0);
    }

    /// Sum-reduce a `u64` across all participants.
    pub fn all_reduce_sum_u64(&mut self, value: u64) -> u64 {
        self.all_gather_u64(value).iter().sum()
    }

    /// Max-reduce a `u64` across all participants.
    pub fn all_reduce_max_u64(&mut self, value: u64) -> u64 {
        self.all_gather_u64(value).into_iter().max().unwrap_or(0)
    }

    /// Sum-reduce an `f64` (transported via bit pattern, summed at reader).
    pub fn all_reduce_sum_f64(&mut self, value: f64) -> f64 {
        self.all_gather_u64(value.to_bits()).iter().map(|&b| f64::from_bits(b)).sum()
    }

    /// Logical OR across participants (any participant true ⇒ all see true).
    pub fn all_reduce_any(&mut self, value: bool) -> bool {
        self.all_reduce_sum_u64(value as u64) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(kind: TransportKind, n: usize, f: impl Fn(usize, &mut Collectives) + Sync) {
        let stats = CommStats::new(n);
        let fabric = Collectives::fabric(kind, n, stats);
        std::thread::scope(|s| {
            for mut coll in fabric {
                let f = &f;
                s.spawn(move || f(coll.rank(), &mut coll));
            }
        });
    }

    fn both(n: usize, f: impl Fn(usize, &mut Collectives) + Sync) {
        run_on(TransportKind::Loopback, n, &f);
        run_on(TransportKind::Bytes, n, &f);
    }

    #[test]
    fn all_gather_returns_rank_indexed_values() {
        both(4, |rank, coll| {
            let got = coll.all_gather_u64((rank * 10) as u64);
            assert_eq!(got, vec![0, 10, 20, 30]);
        });
    }

    #[test]
    fn repeated_rounds_do_not_mix() {
        both(3, |rank, coll| {
            for round in 0..50u64 {
                let got = coll.all_gather_u64(round * 100 + rank as u64);
                assert_eq!(got, vec![round * 100, round * 100 + 1, round * 100 + 2]);
            }
        });
    }

    #[test]
    fn reductions() {
        both(4, |rank, coll| {
            assert_eq!(coll.all_reduce_sum_u64(2), 8);
            assert_eq!(coll.all_reduce_max_u64(rank as u64), 3);
            let s = coll.all_reduce_sum_f64(0.5);
            assert!((s - 2.0).abs() < 1e-12);
            assert!(coll.all_reduce_any(rank == 2));
            assert!(!coll.all_reduce_any(false));
        });
    }

    #[test]
    fn single_process_collectives_are_identity() {
        both(1, |_rank, coll| {
            assert_eq!(coll.all_gather_u64(9), vec![9]);
            assert_eq!(coll.all_reduce_sum_u64(9), 9);
            coll.barrier();
        });
    }

    #[test]
    fn collectives_charge_bytes() {
        for kind in [TransportKind::Loopback, TransportKind::Bytes] {
            let stats = CommStats::new(2);
            let fabric = Collectives::fabric(kind, 2, stats.clone());
            std::thread::scope(|s| {
                for mut coll in fabric {
                    s.spawn(move || coll.barrier());
                }
            });
            // Each participant charges 8·(P−1) = 8 bytes.
            assert_eq!(stats.total_bytes(), 2 * 8, "{kind}");
        }
    }

    #[test]
    fn single_process_collectives_are_free() {
        let stats = CommStats::new(1);
        let fabric = Collectives::fabric(TransportKind::Bytes, 1, stats.clone());
        let mut coll = fabric.into_iter().next().unwrap();
        coll.barrier();
        assert_eq!(coll.all_gather_u64(3), vec![3]);
        assert_eq!(stats.total_bytes(), 0, "nprocs = 1 moves nothing over the wire");
    }
}
