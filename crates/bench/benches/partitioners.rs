//! Criterion micro-benchmarks: partitioning throughput per method on a
//! fixed skewed graph (the per-method cost behind Figure 10) plus the
//! Distributed NE ablations called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dne_core::{DistributedNe, NeConfig};
use dne_graph::gen::{rmat, RmatConfig};
use dne_partition::greedy::{NePartitioner, SnePartitioner};
use dne_partition::hash_based::{DbhPartitioner, GridPartitioner, RandomPartitioner};
use dne_partition::streaming::{GingerPartitioner, HdrfPartitioner, ObliviousPartitioner};
use dne_partition::vertex::SheepPartitioner;
use dne_partition::EdgePartitioner;
use std::hint::black_box;

fn bench_methods(c: &mut Criterion) {
    let g = rmat(&RmatConfig::graph500(11, 8, 7));
    let k = 16;
    let methods: Vec<Box<dyn EdgePartitioner>> = vec![
        Box::new(RandomPartitioner::new(7)),
        Box::new(GridPartitioner::new(7)),
        Box::new(DbhPartitioner::new(7)),
        Box::new(ObliviousPartitioner::new(7)),
        Box::new(HdrfPartitioner::new(7)),
        Box::new(GingerPartitioner::new(7)),
        Box::new(NePartitioner::new(7)),
        Box::new(SnePartitioner::new(7)),
        Box::new(SheepPartitioner::new()),
        Box::new(DistributedNe::new(NeConfig::default().with_seed(7))),
    ];
    let mut group = c.benchmark_group("partition_rmat_s11_e8_k16");
    group.sample_size(10);
    for m in methods {
        group.bench_function(BenchmarkId::from_parameter(m.name()), |b| {
            b.iter(|| black_box(m.partition(&g, k)))
        });
    }
    group.finish();
}

fn bench_dne_lambda(c: &mut Criterion) {
    // Ablation: the multi-expansion factor (Figure 6's performance side).
    let g = rmat(&RmatConfig::graph500(10, 8, 3));
    let mut group = c.benchmark_group("dne_lambda_ablation");
    group.sample_size(10);
    for lambda in [0.01, 0.1, 1.0] {
        let ne = DistributedNe::new(NeConfig::default().with_seed(3).with_lambda(lambda));
        group.bench_function(BenchmarkId::from_parameter(format!("lambda_{lambda}")), |b| {
            b.iter(|| black_box(ne.partition(&g, 8)))
        });
    }
    group.finish();
}

fn bench_dne_partition_counts(c: &mut Criterion) {
    // Figure 10(a–g) shape: Distributed NE elapsed time vs machine count.
    let g = rmat(&RmatConfig::graph500(10, 8, 5));
    let mut group = c.benchmark_group("dne_machines");
    group.sample_size(10);
    for k in [4u32, 16, 64] {
        let ne = DistributedNe::new(NeConfig::default().with_seed(5));
        group.bench_function(BenchmarkId::from_parameter(k), |b| {
            b.iter(|| black_box(ne.partition(&g, k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods, bench_dne_lambda, bench_dne_partition_counts);
criterion_main!(benches);
