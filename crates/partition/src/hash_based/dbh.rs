//! DBH — Degree-Based Hashing (Xie et al., NIPS 2014).
//!
//! "The latest hash-based approaches utilize the degree of vertices, where
//! the edge is randomly assigned so that high-degree vertices are divided
//! into more partitions than low-degree ones" (paper §2.2). DBH hashes each
//! edge by its *lower-degree* endpoint: low-degree vertices then keep all
//! their edges in one partition (no replication) while high-degree hubs —
//! which would replicate anyway — absorb the cuts. Table 1 compares its
//! theoretical bound with Distributed NE's.

use crate::assignment::{EdgeAssignment, PartitionId};
use crate::traits::EdgePartitioner;
use dne_graph::hash::mix2;
use dne_graph::Graph;

/// Degree-based hashing edge partitioner.
#[derive(Debug, Clone)]
pub struct DbhPartitioner {
    seed: u64,
}

impl DbhPartitioner {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl EdgePartitioner for DbhPartitioner {
    fn name(&self) -> String {
        "DBH".into()
    }

    fn partition(&self, g: &Graph, k: PartitionId) -> EdgeAssignment {
        EdgeAssignment::from_fn(g, k, |e| {
            let (u, v) = g.edge(e);
            // Hash the lower-degree endpoint; ties broken by smaller id so
            // the choice is deterministic.
            let anchor = if g.degree(u) < g.degree(v) || (g.degree(u) == g.degree(v) && u < v) {
                u
            } else {
                v
            };
            (mix2(self.seed, anchor) % k as u64) as PartitionId
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_based::RandomPartitioner;
    use crate::quality::PartitionQuality;
    use dne_graph::gen;

    #[test]
    fn star_spokes_never_replicate() {
        let g = gen::star(1000);
        let a = DbhPartitioner::new(1).partition(&g, 8);
        let q = PartitionQuality::measure(&g, &a);
        // Every spoke has degree 1 → anchored by itself → exactly one
        // replica each. Only the hub replicates (into ≤ 8 parts).
        assert!(q.total_replicas <= 999 + 8);
    }

    #[test]
    fn beats_random_on_power_law() {
        let g = gen::chung_lu(4000, 30_000, 2.2, 3);
        let qd = PartitionQuality::measure(&g, &DbhPartitioner::new(1).partition(&g, 16));
        let qr = PartitionQuality::measure(&g, &RandomPartitioner::new(1).partition(&g, 16));
        assert!(
            qd.replication_factor < qr.replication_factor,
            "DBH {} should beat Random {}",
            qd.replication_factor,
            qr.replication_factor
        );
    }

    #[test]
    fn valid_and_deterministic() {
        let g = gen::rmat(&gen::RmatConfig::graph500(8, 4, 2));
        let a = DbhPartitioner::new(4).partition(&g, 5);
        assert!(a.is_valid_for(&g));
        assert_eq!(a, DbhPartitioner::new(4).partition(&g, 5));
    }
}
