//! Random graph models: Erdős–Rényi G(n, m) and Chung–Lu power-law graphs.
//!
//! Erdős–Rényi graphs are the *non-skewed* random baseline used in tests and
//! property checks. Chung–Lu graphs realize a prescribed power-law degree
//! distribution `Pr[d] ∝ d^-α` — the model under which Table 1 computes the
//! expected theoretical bounds — so the benchmark harness can check the
//! closed-form expectations against sampled graphs.

use crate::hash::SplitMix64;
use crate::types::VertexId;
use crate::{EdgeListBuilder, Graph};

/// Erdős–Rényi `G(n, m)`: `m` edges sampled uniformly (after dedup the
/// result may have slightly fewer than `m` edges).
pub fn erdos_renyi(n: VertexId, m: u64, seed: u64) -> Graph {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = SplitMix64::new(seed ^ 0x4552_474E); // "ERGN"
    let mut b = EdgeListBuilder::with_capacity(m as usize);
    let mut produced = 0u64;
    let mut attempts = 0u64;
    // Cap attempts so dense requests near the complete graph still terminate.
    let max_attempts = m.saturating_mul(4).max(16);
    while produced < m && attempts < max_attempts {
        attempts += 1;
        let u = rng.next_below(n);
        let v = rng.next_below(n);
        if u != v {
            b.push(u, v);
            produced += 1;
        }
    }
    b.into_graph(n)
}

/// Chung–Lu power-law graph: vertex `i` gets weight `w_i ∝ (i+1)^(-1/(α-1))`
/// scaled so the expected edge count is `target_edges`; endpoints of each
/// edge are drawn proportionally to weight.
///
/// `alpha` is the power-law exponent (paper's Table 1 uses 2.2–2.8).
pub fn chung_lu(n: VertexId, target_edges: u64, alpha: f64, seed: u64) -> Graph {
    assert!(alpha > 2.0, "Chung-Lu needs alpha > 2 for finite mean degree");
    assert!(n >= 2);
    let mut rng = SplitMix64::new(seed ^ 0x434C_5047); // "CLPG"
    let gamma = 1.0 / (alpha - 1.0);
    // Cumulative weight table for inverse-transform sampling.
    let mut cum = Vec::with_capacity(n as usize);
    let mut total = 0.0f64;
    for i in 0..n {
        total += ((i + 1) as f64).powf(-gamma);
        cum.push(total);
    }
    let sample = |rng: &mut SplitMix64| -> VertexId {
        let x = rng.next_f64() * total;
        // Binary search the cumulative table.
        match cum.binary_search_by(|probe| probe.partial_cmp(&x).unwrap()) {
            Ok(i) | Err(i) => (i as VertexId).min(n - 1),
        }
    };
    let mut b = EdgeListBuilder::with_capacity(target_edges as usize);
    for _ in 0..target_edges {
        let u = sample(&mut rng);
        let v = sample(&mut rng);
        b.push(u, v);
    }
    b.into_graph(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_sizes() {
        let g = erdos_renyi(100, 300, 1);
        assert_eq!(g.num_vertices(), 100);
        assert!(g.num_edges() > 200 && g.num_edges() <= 300);
    }

    #[test]
    fn erdos_renyi_terminates_when_dense() {
        // Request more edges than exist in K_10 (45).
        let g = erdos_renyi(10, 1000, 2);
        assert!(g.num_edges() <= 45);
    }

    #[test]
    fn chung_lu_is_skewed() {
        let g = chung_lu(2000, 10_000, 2.2, 3);
        let mean = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            g.max_degree() as f64 > 8.0 * mean,
            "expected a heavy head: max {} vs mean {mean}",
            g.max_degree()
        );
    }

    #[test]
    fn chung_lu_deterministic() {
        let a = chung_lu(500, 2000, 2.5, 7);
        let b = chung_lu(500, 2000, 2.5, 7);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn higher_alpha_less_skew() {
        let heavy = chung_lu(4000, 20_000, 2.1, 5);
        let light = chung_lu(4000, 20_000, 2.9, 5);
        assert!(heavy.max_degree() > light.max_degree());
    }
}
