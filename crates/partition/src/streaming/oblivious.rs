//! Oblivious greedy edge placement (PowerGraph, Gonzalez et al., OSDI 2012).
//!
//! Each edge is placed by the coordination-free greedy rules of PowerGraph's
//! "Oblivious" mode, using only the placement history `A(·)` and partition
//! sizes:
//!
//! 1. `A(u) ∩ A(v) ≠ ∅` → least-loaded partition in the intersection;
//! 2. both non-empty, no intersection → least-loaded partition from the set
//!    of the endpoint with more *remaining* (unplaced) edges — the endpoint
//!    that will cause more future replication gets to keep its locality;
//! 3. exactly one non-empty → least-loaded partition in it;
//! 4. both empty → globally least-loaded partition.

use crate::assignment::{EdgeAssignment, PartitionId};
use crate::streaming::StreamState;
use crate::traits::EdgePartitioner;
use dne_graph::hash::SplitMix64;
use dne_graph::Graph;

/// PowerGraph "Oblivious" greedy streaming partitioner.
#[derive(Debug, Clone)]
pub struct ObliviousPartitioner {
    seed: u64,
}

impl ObliviousPartitioner {
    /// Seeded constructor (the seed shuffles the edge stream order, which
    /// is how repeated runs differ in the original system).
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl EdgePartitioner for ObliviousPartitioner {
    fn name(&self) -> String {
        "Oblivious".into()
    }

    fn partition(&self, g: &Graph, k: PartitionId) -> EdgeAssignment {
        let mut state = StreamState::new(g.num_vertices() as usize, k as usize);
        let mut remaining: Vec<u64> = g.vertices().map(|v| g.degree(v)).collect();
        let mut order: Vec<u64> = (0..g.num_edges()).collect();
        // Stream order: seeded shuffle (canonical order would correlate with
        // vertex ids and flatter the heuristic).
        let mut rng = SplitMix64::new(self.seed ^ 0x0B11_0B11);
        for i in (1..order.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        let mut parts = vec![0 as PartitionId; g.num_edges() as usize];
        for e in order {
            let (u, v) = g.edge(e);
            let au = &state.vparts[u as usize];
            let av = &state.vparts[v as usize];
            let p = match (au.is_empty(), av.is_empty()) {
                (false, false) => {
                    let inter = StreamState::intersect(au, av);
                    if !inter.is_empty() {
                        state.least_loaded(&inter)
                    } else if remaining[u as usize] >= remaining[v as usize] {
                        state.least_loaded(au)
                    } else {
                        state.least_loaded(av)
                    }
                }
                (false, true) => state.least_loaded(au),
                (true, false) => state.least_loaded(av),
                (true, true) => state.least_loaded(&[]),
            };
            parts[e as usize] = p;
            state.place(u, v, p);
            remaining[u as usize] -= 1;
            remaining[v as usize] -= 1;
        }
        EdgeAssignment::new(parts, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_based::RandomPartitioner;
    use crate::quality::PartitionQuality;
    use dne_graph::gen;

    #[test]
    fn beats_random_hashing_on_skewed_graph() {
        let g = gen::rmat(&gen::RmatConfig::graph500(10, 8, 3));
        let qo = PartitionQuality::measure(&g, &ObliviousPartitioner::new(1).partition(&g, 16));
        let qr = PartitionQuality::measure(&g, &RandomPartitioner::new(1).partition(&g, 16));
        assert!(
            qo.replication_factor < qr.replication_factor,
            "Oblivious {} should beat Random {}",
            qo.replication_factor,
            qr.replication_factor
        );
    }

    #[test]
    fn keeps_reasonable_edge_balance() {
        let g = gen::rmat(&gen::RmatConfig::graph500(9, 8, 4));
        let q = PartitionQuality::measure(&g, &ObliviousPartitioner::new(2).partition(&g, 8));
        assert!(q.edge_balance < 2.0, "edge balance {} too skewed", q.edge_balance);
    }

    #[test]
    fn valid_and_deterministic() {
        let g = gen::cycle(64);
        let a = ObliviousPartitioner::new(7).partition(&g, 4);
        assert!(a.is_valid_for(&g));
        assert_eq!(a, ObliviousPartitioner::new(7).partition(&g, 4));
    }

    #[test]
    fn clique_in_one_partition_when_it_fits() {
        // A small clique streamed greedily mostly stays together.
        let g = gen::complete(8);
        let a = ObliviousPartitioner::new(3).partition(&g, 4);
        let q = PartitionQuality::measure(&g, &a);
        // RF should be far below the Random expectation (~ min(k, n/…)).
        assert!(q.replication_factor < 3.0);
    }
}
