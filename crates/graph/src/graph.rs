//! The CSR graph type shared by every partitioner and application.

use crate::types::{Edge, EdgeId, VertexId};
use crate::HeapSize;

/// An undirected, unweighted graph in compressed sparse row (CSR) form.
///
/// Storage (paper §4: "the core components of the graph are stored in CSR"):
///
/// * `edges[e]` — the canonical endpoint pair of edge `e` (`u < v`), sorted.
/// * `offsets[v] .. offsets[v+1]` — the adjacency slice of vertex `v`.
/// * `adj_v[i]` / `adj_e[i]` — the neighbor and the global edge id of the
///   `i`-th incident arc. Every edge contributes one arc at each endpoint,
///   so `adj_v.len() == 2 * edges.len()`.
///
/// Invariants (checked in debug builds and by tests):
/// * edges are canonical (`u < v`), strictly sorted, and self-loop free;
/// * `offsets` is non-decreasing with `offsets[0] == 0` and
///   `offsets[n] == 2|E|`;
/// * `adj_e[i]` always names an edge incident to the owning vertex.
///
/// Equality compares every CSR component array, so two graphs compare equal
/// exactly when they are byte-identical — the property the parallel
/// ingestion tests assert against the sequential build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    num_vertices: VertexId,
    edges: Box<[Edge]>,
    offsets: Box<[u64]>,
    adj_v: Box<[VertexId]>,
    adj_e: Box<[EdgeId]>,
}

impl Graph {
    /// Build from a canonical (sorted, deduplicated, loop-free) edge list.
    ///
    /// Prefer [`crate::EdgeListBuilder`] which establishes those properties.
    ///
    /// # Panics
    /// If an endpoint is out of range, a self loop is present, or the list is
    /// not strictly sorted.
    pub fn from_canonical_edges(num_vertices: VertexId, edges: Vec<Edge>) -> Self {
        let n = num_vertices as usize;
        let m = edges.len();
        for w in edges.windows(2) {
            assert!(w[0] < w[1], "edge list must be strictly sorted/deduplicated");
        }
        let mut degrees = vec![0u64; n];
        for &(u, v) in &edges {
            assert!(u < v, "edges must be canonical (u < v, no self loops)");
            assert!((v as usize) < n, "endpoint {v} out of range (n = {n})");
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degrees[v];
        }
        let total = offsets[n] as usize;
        debug_assert_eq!(total, 2 * m);
        let mut adj_v = vec![0 as VertexId; total];
        let mut adj_e = vec![0 as EdgeId; total];
        let mut cursor = offsets.clone();
        for (eid, &(u, v)) in edges.iter().enumerate() {
            let cu = cursor[u as usize] as usize;
            adj_v[cu] = v;
            adj_e[cu] = eid as EdgeId;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            adj_v[cv] = u;
            adj_e[cv] = eid as EdgeId;
            cursor[v as usize] += 1;
        }
        Self {
            num_vertices,
            edges: edges.into_boxed_slice(),
            offsets: offsets.into_boxed_slice(),
            adj_v: adj_v.into_boxed_slice(),
            adj_e: adj_e.into_boxed_slice(),
        }
    }

    /// Build from a canonical edge list like [`Self::from_canonical_edges`],
    /// using up to `threads` threads for validation, degree counting, and
    /// the adjacency fill (see `crate::parallel` for the scheme).
    ///
    /// The result is byte-identical to the sequential constructor for every
    /// thread count; `threads == 1` and small inputs take the sequential
    /// path directly.
    ///
    /// # Panics
    /// As [`Self::from_canonical_edges`], with the same messages.
    pub fn from_canonical_edges_parallel(
        num_vertices: VertexId,
        edges: Vec<Edge>,
        threads: usize,
    ) -> Self {
        if threads <= 1 || edges.len() < crate::parallel::PAR_MIN_ITEMS {
            return Self::from_canonical_edges(num_vertices, edges);
        }
        let csr = crate::parallel::build_csr_parallel(num_vertices, &edges, threads);
        Self {
            num_vertices,
            edges: edges.into_boxed_slice(),
            offsets: csr.offsets.into_boxed_slice(),
            adj_v: csr.adj_v.into_boxed_slice(),
            adj_e: csr.adj_e.into_boxed_slice(),
        }
    }

    /// Number of vertices `|V|` (ids are `0..num_vertices`).
    #[inline]
    pub fn num_vertices(&self) -> VertexId {
        self.num_vertices
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Average number of edges per vertex (`|E| / |V|`, the paper's
    /// "edge factor" is `2|E|/|V|`... no: Graph500's edge factor counts
    /// generated edges per vertex, i.e. `|E|/|V|` before dedup; we report the
    /// post-dedup density here).
    #[inline]
    pub fn density(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices as f64
        }
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The canonical endpoints of edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e as usize]
    }

    /// All edges in canonical order (edge id == slice index).
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterate `(neighbor, edge_id)` pairs incident to `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.adj_v[lo..hi].iter().copied().zip(self.adj_e[lo..hi].iter().copied())
    }

    /// Neighbor vertex ids of `v` (no edge ids).
    #[inline]
    pub fn neighbor_vertices(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.adj_v[lo..hi]
    }

    /// Incident edge ids of `v`.
    #[inline]
    pub fn incident_edges(&self, v: VertexId) -> &[EdgeId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.adj_e[lo..hi]
    }

    /// Iterate all vertex ids.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices
    }

    /// Maximum degree over all vertices (0 for empty graphs).
    pub fn max_degree(&self) -> u64 {
        (0..self.num_vertices).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// The other endpoint of edge `e` as seen from `v`.
    ///
    /// # Panics
    /// In debug builds if `v` is not an endpoint of `e`.
    #[inline]
    pub fn opposite(&self, e: EdgeId, v: VertexId) -> VertexId {
        let (a, b) = self.edge(e);
        debug_assert!(v == a || v == b, "vertex {v} is not an endpoint of edge {e}");
        if v == a {
            b
        } else {
            a
        }
    }
}

impl HeapSize for Graph {
    fn heap_bytes(&self) -> usize {
        self.edges.heap_bytes()
            + self.offsets.heap_bytes()
            + self.adj_v.heap_bytes()
            + self.adj_e.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeListBuilder;

    fn triangle_plus_tail() -> Graph {
        // 0-1, 1-2, 0-2 (triangle), 2-3 (tail)
        let mut b = EdgeListBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        b.into_graph(4)
    }

    #[test]
    fn csr_roundtrip_small() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        let n2: Vec<_> = g.neighbor_vertices(2).to_vec();
        assert_eq!(n2.len(), 3);
        assert!(n2.contains(&0) && n2.contains(&1) && n2.contains(&3));
    }

    #[test]
    fn adjacency_edge_ids_are_consistent() {
        let g = triangle_plus_tail();
        for v in g.vertices() {
            for (nbr, e) in g.neighbors(v) {
                let (a, b) = g.edge(e);
                assert!((a == v && b == nbr) || (a == nbr && b == v));
                assert_eq!(g.opposite(e, v), nbr);
            }
        }
    }

    #[test]
    fn sum_of_degrees_is_twice_edges() {
        let g = triangle_plus_tail();
        let total: u64 = g.vertices().map(|v| g.degree(v)).sum();
        assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_canonical_edges(0, vec![]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let mut b = EdgeListBuilder::new();
        b.push(0, 1);
        let g = b.into_graph(5);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbor_vertices(3), &[] as &[VertexId]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_endpoint() {
        Graph::from_canonical_edges(2, vec![(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn rejects_unsorted_edges() {
        Graph::from_canonical_edges(4, vec![(1, 2), (0, 1)]);
    }

    #[test]
    fn heap_bytes_is_positive_for_nonempty() {
        let g = triangle_plus_tail();
        assert!(g.heap_bytes() > 0);
    }
}
