//! Incremental (dynamic-graph) edge partitioning — the paper's §8 future
//! work: "the extension to more complicated graph structures, such as
//! dynamic graphs … will be investigated".
//!
//! [`IncrementalVertexCut`] maintains a vertex-cut partitioning under edge
//! insertions using the same replication-free placement rule that drives
//! NE's two-hop heuristic (Condition 5), in the spirit of Leopard (Huang &
//! Abadi, VLDB 2016):
//!
//! 1. if the endpoints already share partitions, place the edge in the
//!    least-loaded shared partition (zero new replicas);
//! 2. else if either endpoint is known, place it in the least-loaded
//!    partition among theirs (one new replica);
//! 3. else place it in the least-loaded partition overall (two replicas).
//!
//! A capacity cap `α·E[t]/|P|` (recomputed as the graph grows) keeps the
//! balance constraint of Equation 2 holding *at every prefix* of the
//! stream. Static Distributed NE output can seed the state, so a graph
//! partitioned offline keeps its quality as it grows online.

use crate::assignment::{EdgeAssignment, PartitionId};
use dne_graph::{Graph, VertexId};

/// Online maintainer of a vertex-cut edge partitioning.
#[derive(Debug, Clone)]
pub struct IncrementalVertexCut {
    k: PartitionId,
    /// Imbalance factor α for the rolling capacity.
    pub alpha: f64,
    /// `A(v)`: sorted partition sets per vertex (grown on demand).
    vparts: Vec<Vec<PartitionId>>,
    /// `|E_p|` per partition.
    sizes: Vec<u64>,
    /// Partition of every edge, in insertion order.
    log: Vec<PartitionId>,
}

impl IncrementalVertexCut {
    /// Empty state for `k` partitions.
    pub fn new(k: PartitionId) -> Self {
        assert!(k >= 1);
        Self { k, alpha: 1.1, vparts: Vec::new(), sizes: vec![0; k as usize], log: Vec::new() }
    }

    /// Seed from a static partitioning (e.g. a Distributed NE run), so the
    /// online phase extends offline quality instead of starting cold.
    pub fn from_assignment(g: &Graph, assignment: &EdgeAssignment) -> Self {
        let mut s = Self::new(assignment.num_partitions());
        s.vparts = vec![Vec::new(); g.num_vertices() as usize];
        for e in 0..g.num_edges() {
            let p = assignment.part_of(e);
            let (u, v) = g.edge(e);
            s.note_member(u, p);
            s.note_member(v, p);
            s.sizes[p as usize] += 1;
            s.log.push(p);
        }
        s
    }

    fn note_member(&mut self, v: VertexId, p: PartitionId) {
        if self.vparts.len() <= v as usize {
            self.vparts.resize(v as usize + 1, Vec::new());
        }
        let set = &mut self.vparts[v as usize];
        if let Err(pos) = set.binary_search(&p) {
            set.insert(pos, p);
        }
    }

    fn parts_of(&self, v: VertexId) -> &[PartitionId] {
        self.vparts.get(v as usize).map(|s| s.as_slice()).unwrap_or(&[])
    }

    /// Rolling capacity: `α·(|E|+1)/|P|` plus a small additive slack, so
    /// the Equation 2 constraint holds asymptotically at every prefix while
    /// tiny streams can still co-locate (a hard per-prefix cap would force
    /// a triangle across three partitions).
    fn capacity(&self) -> u64 {
        (self.alpha * (self.log.len() as f64 + 1.0) / self.k as f64).ceil() as u64 + 8
    }

    /// Insert edge `(u, v)`; returns the partition it was placed in.
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> PartitionId {
        let cap = self.capacity();
        let open = |p: PartitionId, sizes: &[u64]| sizes[p as usize] < cap;
        let pick_min = |cands: &mut dyn Iterator<Item = PartitionId>, sizes: &[u64]| {
            cands.filter(|&p| open(p, sizes)).min_by_key(|&p| (sizes[p as usize], p))
        };
        let pu = self.parts_of(u);
        let pv = self.parts_of(v);
        // Rule 1: shared partitions (no new replicas).
        let shared: Vec<PartitionId> =
            pu.iter().copied().filter(|p| pv.binary_search(p).is_ok()).collect();
        let choice = pick_min(&mut shared.iter().copied(), &self.sizes)
            // Rule 2: one endpoint known (one new replica).
            .or_else(|| {
                let union: Vec<PartitionId> = {
                    let mut x: Vec<PartitionId> = pu.iter().chain(pv.iter()).copied().collect();
                    x.sort_unstable();
                    x.dedup();
                    x
                };
                pick_min(&mut union.into_iter(), &self.sizes)
            })
            // Rule 3: anywhere (two new replicas), ignoring the cap as the
            // final fallback so insertion always succeeds.
            .or_else(|| pick_min(&mut (0..self.k), &self.sizes))
            .unwrap_or_else(|| {
                (0..self.k).min_by_key(|&p| (self.sizes[p as usize], p)).expect("k >= 1")
            });
        self.note_member(u, choice);
        self.note_member(v, choice);
        self.sizes[choice as usize] += 1;
        self.log.push(choice);
        choice
    }

    /// Number of edges inserted (or seeded) so far.
    pub fn num_edges(&self) -> u64 {
        self.log.len() as u64
    }

    /// Current replication factor over the vertices seen so far.
    pub fn replication_factor(&self) -> f64 {
        let seen = self.vparts.iter().filter(|s| !s.is_empty()).count();
        if seen == 0 {
            return 0.0;
        }
        let replicas: usize = self.vparts.iter().map(|s| s.len()).sum();
        replicas as f64 / seen as f64
    }

    /// Current edge balance `max/mean`.
    pub fn edge_balance(&self) -> f64 {
        let total: u64 = self.sizes.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.k as f64;
        *self.sizes.iter().max().unwrap() as f64 / mean
    }

    /// The full insertion-order assignment log (edge i → partition).
    pub fn assignment_log(&self) -> &[PartitionId] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dne_graph::gen;

    #[test]
    fn cold_start_stays_balanced() {
        let g = gen::rmat(&gen::RmatConfig::graph500(9, 8, 1));
        let mut inc = IncrementalVertexCut::new(8);
        for &(u, v) in g.edges() {
            inc.insert(u, v);
        }
        assert_eq!(inc.num_edges(), g.num_edges());
        assert!(inc.edge_balance() <= 1.12, "balance {}", inc.edge_balance());
        assert!(inc.replication_factor() >= 1.0);
    }

    #[test]
    fn shared_partition_rule_avoids_replication() {
        let mut inc = IncrementalVertexCut::new(4);
        inc.insert(0, 1); // both new → some partition p
        let p = inc.assignment_log()[0];
        // A triangle edge whose endpoints are both in p must stay in p.
        inc.insert(1, 2);
        inc.insert(0, 2);
        let rf = inc.replication_factor();
        assert!(rf <= 1.34, "triangle should stay nearly unreplicated, rf {rf}");
        let _ = p;
    }

    #[test]
    fn seeding_from_static_partition_preserves_quality() {
        use crate::quality::PartitionQuality;
        use crate::traits::EdgePartitioner;
        let g = gen::rmat(&gen::RmatConfig::graph500(9, 8, 3));
        let a = crate::greedy::NePartitioner::new(3).partition(&g, 8);
        let q_static = PartitionQuality::measure(&g, &a);
        let mut inc = IncrementalVertexCut::from_assignment(&g, &a);
        let rf_seeded = inc.replication_factor();
        // Seeded RF counts only vertices with edges — same as the metric.
        let covered = g.vertices().filter(|&v| g.degree(v) > 0).count() as f64;
        let expected = q_static.total_replicas as f64 / covered;
        assert!((rf_seeded - expected).abs() < 1e-9);
        // Insert a batch of fresh edges between existing vertices: RF must
        // grow slowly (most insertions hit rule 1/2).
        let before = inc.replication_factor();
        let mut rng = dne_graph::hash::SplitMix64::new(7);
        for _ in 0..1000 {
            let u = rng.next_below(g.num_vertices());
            let v = rng.next_below(g.num_vertices());
            if u != v {
                inc.insert(u, v);
            }
        }
        let after = inc.replication_factor();
        assert!(after < before * 1.5, "online growth exploded: {before} -> {after}");
    }

    #[test]
    fn online_beats_random_placement() {
        // The defining claim of locality-aware dynamic partitioning.
        let g = gen::rmat(&gen::RmatConfig::graph500(10, 8, 5));
        let mut inc = IncrementalVertexCut::new(8);
        for &(u, v) in g.edges() {
            inc.insert(u, v);
        }
        use crate::hash_based::RandomPartitioner;
        use crate::quality::PartitionQuality;
        use crate::traits::EdgePartitioner;
        let random = RandomPartitioner::new(5).partition(&g, 8);
        let q_random = PartitionQuality::measure(&g, &random);
        assert!(
            inc.replication_factor() < q_random.replication_factor,
            "incremental {} should beat random {}",
            inc.replication_factor(),
            q_random.replication_factor
        );
    }

    #[test]
    fn empty_state_metrics() {
        let inc = IncrementalVertexCut::new(4);
        assert_eq!(inc.replication_factor(), 0.0);
        assert_eq!(inc.edge_balance(), 1.0);
        assert_eq!(inc.num_edges(), 0);
    }
}
