//! Minimal aligned-table and TSV output helpers for the bench binaries.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A simple column-aligned text table that can also be dumped as TSV into
/// `bench_results/` for EXPERIMENTS.md.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render aligned to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.header);
        println!("{}", widths.iter().map(|w| "-".repeat(*w + 2)).collect::<String>());
        for row in &self.rows {
            line(row);
        }
    }

    /// Write as TSV under `bench_results/<name>.tsv` (relative to the
    /// workspace root when run via cargo).
    pub fn write_tsv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.tsv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        Ok(path)
    }
}

/// Format a float with 2 decimals (the paper's RF precision).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a duration in seconds with 3 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Parse the common `quick`/`full` mode argument (default quick) and
/// report the run configuration: the transport backend selected via
/// `DNE_TRANSPORT`, the envelope-coalescing policy selected via
/// `DNE_COMM_BATCH`, and the graph-storage backend selected via
/// `DNE_GRAPH_STORAGE` (every simulated cluster / chunked-file opener in
/// the binaries honors them).
pub fn parse_mode() -> bool {
    let quick = !std::env::args().any(|a| a == "full");
    let transport = dne_runtime::TransportKind::from_env();
    let batch = dne_runtime::BatchConfig::from_env();
    let batch = if batch.enabled() { format!("{}", batch.max_msgs) } else { "off".into() };
    let storage = dne_graph::StorageKind::from_env();
    if quick {
        eprintln!(
            "[mode: quick — pass `full` for the paper-scale sweep | transport: {transport} | batch: {batch} | storage: {storage}]"
        );
    } else {
        eprintln!(
            "[mode: full — this can take a while | transport: {transport} | batch: {batch} | storage: {storage}]"
        );
    }
    quick
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_align() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(vec!["x".into(), "y".into()]);
        t.print(); // smoke: must not panic
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_arity() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
