#![deny(missing_docs)]
//! # dne-runtime — simulated distributed message-passing runtime
//!
//! The paper runs Distributed NE with IntelMPI on 4–256 physical machines
//! (§7.1, Table 3). This crate substitutes that substrate with a faithful
//! in-process simulation:
//!
//! * every simulated **machine** is an OS thread ([`Cluster::run`] spawns
//!   `P` of them and joins their results);
//! * the **interconnect** is a pluggable [`Transport`] fabric of FIFO links
//!   with per-link byte accounting ([`CommStats`]) — this is what the
//!   Table 5 "COM" column measures. Three backends exist:
//!   [`TransportKind::Loopback`] moves values by pointer and charges the
//!   [`WireSize`] estimate; [`TransportKind::Bytes`] really serializes
//!   every envelope through the [`WireEncode`]/[`WireDecode`] codec into
//!   length-prefixed little-endian frames and charges the actual encoded
//!   bytes; [`TransportKind::Tcp`] carries those same frames over real
//!   localhost `TcpStream`s, bootstrapped by a rendezvous handshake — and
//!   the same socket endpoint powers genuinely multi-process clusters
//!   ([`tcp::TcpProcessCluster`], driven by the `dne-tcp-worker` binary).
//!   The codec guarantees estimate == actual, so all backends report
//!   identical communication volumes — the serializing backends *prove*
//!   it. Select with [`Cluster::with_transport`] or the `DNE_TRANSPORT`
//!   environment variable (`loopback` | `bytes` | `tcp`). Transport
//!   failures (a dead peer, an undecodable frame) surface as typed
//!   [`TransportError`]s, not panics. Small same-destination envelopes
//!   can be coalesced into multi-message frames ([`BatchConfig`], the
//!   `DNE_COMM_BATCH` environment variable): logical message/byte
//!   accounting and results are bit-identical with batching on or off,
//!   only the physical frame count ([`CommStats::total_frames`]) and
//!   syscall count change;
//! * **collectives** (barrier, all-gather, all-reduce over `u64`/`f64`)
//!   match the MPI primitives the paper's pseudo-code uses (`Barrier()` in
//!   Algorithm 1 line 9, `AllGatherSum` in line 14) and are themselves
//!   real traffic over the transport fabric, scheduled by a pluggable
//!   [`CollectiveTopology`]: `Flat` (the reference: depth 1, `8·(P−1)`
//!   bytes per rank), `Binomial` tree (depth `2·log₂P`, `2·(P−1)`
//!   messages in total), or `RecursiveDoubling` (depth `log₂P`,
//!   `log₂P` messages per rank) — selected with
//!   [`Cluster::with_collectives`] or the `DNE_COLLECTIVES` environment
//!   variable (`flat` | `tree` | `recursive-doubling`). Every topology
//!   produces bit-identical results (reductions fold the same
//!   rank-indexed vector in rank order) and exact, published byte
//!   accounting ([`CollectiveTopology::rank_traffic`]);
//! * **memory accounting** ([`MemoryTracker`]) reproduces the paper's "mem
//!   score" methodology (§7.3): processes report their live heap bytes at
//!   phase boundaries, and the tracker keeps the snapshot at which the
//!   *total across processes* peaks.
//!
//! ## Why this preserves the paper's behaviour
//!
//! Distributed NE's *quality* is transport-independent: partitioning
//! decisions depend only on message contents exchanged in lock-step rounds,
//! and the codec round-trips contents exactly. The *performance story*
//! (iteration counts, communication volume, imbalance between expansion
//! processes) is preserved because those are algorithmic quantities this
//! runtime measures directly.
//!
//! ## Determinism
//!
//! All cross-process interaction in this workspace goes through the
//! lock-step [`Ctx::exchange`] primitive or the collectives, both of which
//! deliver results indexed by source rank. Algorithms built on them are
//! deterministic under a fixed seed even though threads run concurrently —
//! a property the integration tests rely on — and produce identical results
//! on either transport backend.
//!
//! ## Quick start
//!
//! ```
//! use dne_runtime::{Cluster, CollectiveTopology, TransportKind};
//!
//! // Four simulated machines sum their ranks with an all-reduce, with
//! // every envelope genuinely serialized through the wire codec.
//! let out = Cluster::with_transport(4, TransportKind::Bytes)
//!     .with_collectives(CollectiveTopology::Flat)
//!     .run::<u64, _, _>(|ctx| ctx.all_reduce_sum_u64(ctx.rank() as u64));
//! assert_eq!(out.results, vec![6, 6, 6, 6]);
//! // The flat topology charges 8·(P−1) bytes per participant; the tree
//! // and recursive-doubling topologies charge their own published
//! // per-rank costs and return bit-identical results.
//! assert_eq!(out.comm.total_bytes(), 4 * 3 * 8);
//! let rd = Cluster::with_transport(4, TransportKind::Bytes)
//!     .with_collectives(CollectiveTopology::RecursiveDoubling)
//!     .run::<u64, _, _>(|ctx| ctx.all_reduce_sum_u64(ctx.rank() as u64));
//! assert_eq!(rd.results, out.results);
//! assert_eq!(rd.comm.total_bytes(), CollectiveTopology::RecursiveDoubling.total_traffic(4).0);
//! ```

pub mod cluster;
pub mod collectives;
pub mod comm;
pub mod frame;
pub mod memory;
#[cfg(unix)]
mod poll;
pub mod service;
pub mod stats;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use cluster::{Cluster, ClusterOutcome, Ctx};
pub use collectives::{CollMsg, CollectiveTopology, Collectives, PendingGather};
pub use frame::{FrameItem, FramedReader};
pub use memory::{peak_rss_bytes, reset_peak_rss, MemoryReport, MemoryTracker};
pub use service::{
    parse_server_addr, server_addr_from_env, Service, ServiceReply, ServiceStats, WireClient,
    WireServer, SERVER_ADDR_ENV,
};
pub use stats::CommStats;
pub use tcp::{TcpProcessCluster, TcpSession, TcpTransport, EPOCH_ANY};
pub use transport::{
    BatchConfig, BytesTransport, LoopbackTransport, Transport, TransportError, TransportKind,
    DEFAULT_BATCH_BYTES,
};
pub use wire::{WireDecode, WireEncode, WireError, WireReader, WireSize};
