//! The vertex-cut (GAS-style) execution engine.

use std::time::Duration;

use dne_graph::hash::mix2;
use dne_graph::{EdgeId, Graph, VertexId};
use dne_partition::{EdgeAssignment, PartitionId};
use dne_runtime::{Cluster, CollectiveTopology, TransportKind};
use parking_lot::Mutex;

/// How partial accumulators combine (the `⊕` of the GAS gather phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combine {
    /// Minimum (SSSP distances, WCC labels).
    Min,
    /// Sum (PageRank mass).
    Sum,
}

/// A vertex program in the restricted f64-valued form all three paper
/// applications fit.
#[derive(Clone)]
pub struct VertexProgram {
    /// Application name for reports ("SSSP", "WCC", "PageRank").
    pub name: &'static str,
    /// Accumulator combiner.
    pub combine: Combine,
    /// Initial vertex value (given vertex id, its degree, and the
    /// program parameter — e.g. the SSSP source).
    pub init: fn(VertexId, u64, f64) -> f64,
    /// Free-form program parameter forwarded to `init` (function pointers
    /// cannot capture; this keeps programs `Copy`-able across machines).
    pub param: f64,
    /// Contribution sent along an edge from a vertex with value `x` and
    /// degree `d`.
    pub edge_fn: fn(x: f64, d: u64) -> f64,
    /// Master update: old value + gathered accumulator → new value.
    pub apply: fn(old: f64, acc: Option<f64>) -> f64,
    /// Run exactly this many supersteps (PageRank); `None` = run until no
    /// vertex changes (SSSP, WCC).
    pub fixed_supersteps: Option<u64>,
    /// Only gather along edges whose source changed last superstep
    /// (frontier semantics for SSSP/WCC; PageRank gathers everything).
    pub frontier_only: bool,
}

/// Result of one distributed application run (one Table 5 cell group).
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Application name.
    pub name: String,
    /// Supersteps executed.
    pub supersteps: u64,
    /// Wall-clock of the parallel section ("ET").
    pub elapsed: Duration,
    /// Total bytes moved between machines ("COM").
    pub comm_bytes: u64,
    /// Workload balance `max_p busy_p / mean_p busy_p` ("WB").
    pub workload_balance: f64,
    /// Final vertex values indexed by vertex id (masters' truth).
    pub values: Vec<f64>,
}

/// Wire message of the engine: `(vertex, payload)` pairs.
type AppMsg = Vec<(VertexId, f64)>;

/// The engine: executes vertex programs over an edge partitioning on a
/// simulated cluster with one machine per partition.
pub struct Engine<'g> {
    g: &'g Graph,
    assignment: &'g EdgeAssignment,
    /// Replica partition lists per vertex (sorted; built once).
    replicas: Vec<Vec<PartitionId>>,
    /// Master partition per vertex (`u32::MAX` for isolated vertices).
    masters: Vec<PartitionId>,
    /// Edge ids grouped by owning partition.
    edges_by_part: Vec<Vec<EdgeId>>,
    /// Transport backend of the simulated cluster the programs run on;
    /// `None` resolves `DNE_TRANSPORT` at run time.
    transport: Option<TransportKind>,
    /// Collective topology of the simulated cluster; `None` resolves
    /// `DNE_COLLECTIVES` at run time. Application results are
    /// bit-identical under every topology.
    collectives: Option<CollectiveTopology>,
}

impl<'g> Engine<'g> {
    /// Build the engine's routing tables (the equivalent of a vertex-cut
    /// system's loading phase, excluded from "ET" like the paper excludes
    /// initialization).
    pub fn new(g: &'g Graph, assignment: &'g EdgeAssignment) -> Self {
        assert!(assignment.is_valid_for(g), "assignment does not match graph");
        let k = assignment.num_partitions() as usize;
        let mut replicas: Vec<Vec<PartitionId>> = vec![Vec::new(); g.num_vertices() as usize];
        let mut stamp = vec![u64::MAX; k];
        for v in g.vertices() {
            for &e in g.incident_edges(v) {
                let p = assignment.part_of(e);
                if stamp[p as usize] != v {
                    stamp[p as usize] = v;
                    replicas[v as usize].push(p);
                }
            }
            replicas[v as usize].sort_unstable();
        }
        let masters: Vec<PartitionId> = replicas
            .iter()
            .enumerate()
            .map(|(v, reps)| {
                if reps.is_empty() {
                    PartitionId::MAX
                } else {
                    // Random (hashed) replica as master, as in PowerGraph.
                    reps[(mix2(0x4D41_5354_4552, v as u64) % reps.len() as u64) as usize]
                }
            })
            .collect();
        Self {
            g,
            assignment,
            replicas,
            masters,
            edges_by_part: assignment.edges_by_partition(),
            transport: None,
            collectives: None,
        }
    }

    /// Select the transport backend explicitly (overrides `DNE_TRANSPORT`;
    /// application results and comm accounting are identical under both).
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Select the collective topology explicitly (overrides
    /// `DNE_COLLECTIVES`; application results are bit-identical under
    /// every topology — only the convergence collectives' schedule
    /// changes).
    pub fn with_collectives(mut self, collectives: CollectiveTopology) -> Self {
        self.collectives = Some(collectives);
        self
    }

    /// Replication factor as the engine sees it (sanity hook for tests).
    pub fn replication_factor(&self) -> f64 {
        let total: usize = self.replicas.iter().map(|r| r.len()).sum();
        total as f64 / self.g.num_vertices() as f64
    }

    /// Run a vertex program to completion and report metrics + values.
    pub fn run(&self, prog: &VertexProgram) -> AppRun {
        let k = self.assignment.num_partitions() as usize;
        let g = self.g;
        let busy_times: Vec<Mutex<Duration>> = (0..k).map(|_| Mutex::new(Duration::ZERO)).collect();
        let transport = self.transport.unwrap_or_else(TransportKind::from_env);
        let collectives = self.collectives.unwrap_or_else(CollectiveTopology::from_env);
        let outcome = Cluster::with_transport(k, transport)
            .with_collectives(collectives)
            .run::<AppMsg, (Vec<(VertexId, f64)>, u64), _>(|ctx| {
                let rank = ctx.rank();
                let t_busy = std::time::Instant::now;
                let mut busy = Duration::ZERO;
                // ---- Local structures (loading phase).
                let my_edges = &self.edges_by_part[rank];
                let mut verts: Vec<VertexId> = Vec::with_capacity(my_edges.len() * 2);
                for &e in my_edges {
                    let (u, v) = g.edge(e);
                    verts.push(u);
                    verts.push(v);
                }
                verts.sort_unstable();
                verts.dedup();
                let local_of: dne_graph::hash::FastMap<VertexId, u32> =
                    verts.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
                let n_local = verts.len();
                let mut value: Vec<f64> =
                    verts.iter().map(|&v| (prog.init)(v, g.degree(v), prog.param)).collect();
                let deg: Vec<u64> = verts.iter().map(|&v| g.degree(v)).collect();
                let mut changed: Vec<bool> = vec![true; n_local]; // superstep 0: all fresh
                let mut acc: Vec<Option<f64>> = vec![None; n_local];
                let combine = |a: Option<f64>, x: f64| -> f64 {
                    match (prog.combine, a) {
                        (Combine::Min, Some(v)) => v.min(x),
                        (Combine::Sum, Some(v)) => v + x,
                        (_, None) => x,
                    }
                };
                let mut supersteps = 0u64;
                loop {
                    supersteps += 1;
                    let t0 = t_busy();
                    // ---- Gather along local edges.
                    acc.iter_mut().for_each(|a| *a = None);
                    for &e in my_edges {
                        let (u, v) = g.edge(e);
                        let (lu, lv) = (local_of[&u] as usize, local_of[&v] as usize);
                        if !prog.frontier_only || changed[lu] {
                            acc[lv] = Some(combine(acc[lv], (prog.edge_fn)(value[lu], deg[lu])));
                        }
                        if !prog.frontier_only || changed[lv] {
                            acc[lu] = Some(combine(acc[lu], (prog.edge_fn)(value[lv], deg[lv])));
                        }
                    }
                    // ---- Mirror → master partials.
                    let mut partials: Vec<AppMsg> = vec![Vec::new(); k];
                    for lv in 0..n_local {
                        if let Some(a) = acc[lv] {
                            let v = verts[lv];
                            let master = self.masters[v as usize] as usize;
                            if master != rank {
                                partials[master].push((v, a));
                                acc[lv] = None; // master-side combining only
                            }
                        }
                    }
                    busy += t0.elapsed();
                    let incoming = ctx.exchange(|dst| std::mem::take(&mut partials[dst]));
                    let t1 = t_busy();
                    for msg in incoming {
                        for (v, a) in msg {
                            let lv = local_of[&v] as usize;
                            acc[lv] = Some(combine(acc[lv], a));
                        }
                    }
                    // ---- Apply at masters; collect updates for mirrors.
                    let mut updates: Vec<AppMsg> = vec![Vec::new(); k];
                    let mut any_changed = false;
                    changed.iter_mut().for_each(|c| *c = false);
                    for lv in 0..n_local {
                        let v = verts[lv];
                        if self.masters[v as usize] as usize != rank {
                            continue;
                        }
                        let fresh = (prog.apply)(value[lv], acc[lv]);
                        let moved = if prog.fixed_supersteps.is_some() {
                            true // PageRank pushes every superstep
                        } else {
                            fresh != value[lv]
                        };
                        if fresh != value[lv] {
                            any_changed = true;
                            changed[lv] = true;
                        }
                        value[lv] = fresh;
                        if moved {
                            for &rp in &self.replicas[v as usize] {
                                if rp as usize != rank {
                                    updates[rp as usize].push((v, fresh));
                                }
                            }
                        }
                    }
                    busy += t1.elapsed();
                    let incoming = ctx.exchange(|dst| std::mem::take(&mut updates[dst]));
                    let t2 = t_busy();
                    for msg in incoming {
                        for (v, x) in msg {
                            let lv = local_of[&v] as usize;
                            if value[lv] != x {
                                changed[lv] = true;
                            }
                            value[lv] = x;
                        }
                    }
                    busy += t2.elapsed();
                    // ---- Convergence.
                    let done = match prog.fixed_supersteps {
                        Some(n) => supersteps >= n,
                        None => !ctx.all_reduce_any(any_changed),
                    };
                    if done {
                        break;
                    }
                    assert!(supersteps < 100_000, "vertex program failed to converge");
                }
                *busy_times[rank].lock() = busy;
                // Return mastered values plus the superstep count (identical on
                // every machine thanks to the collective convergence check).
                let mastered = (0..n_local)
                    .filter(|&lv| self.masters[verts[lv] as usize] as usize == rank)
                    .map(|lv| (verts[lv], value[lv]))
                    .collect();
                (mastered, supersteps)
            });
        // Assemble global values (isolated vertices keep their init value).
        let mut values: Vec<f64> =
            (0..g.num_vertices()).map(|v| (prog.init)(v, 0, prog.param)).collect();
        for (per_rank, _) in &outcome.results {
            for &(v, x) in per_rank {
                values[v as usize] = x;
            }
        }
        let supersteps = outcome.results.first().map(|&(_, s)| s).unwrap_or(0);
        let busy: Vec<f64> = busy_times.iter().map(|b| b.lock().as_secs_f64()).collect();
        let mean_busy = busy.iter().sum::<f64>() / busy.len() as f64;
        let max_busy = busy.iter().cloned().fold(0.0, f64::max);
        AppRun {
            name: prog.name.to_string(),
            supersteps,
            elapsed: outcome.elapsed,
            comm_bytes: outcome.comm.total_bytes(),
            workload_balance: if mean_busy > 0.0 { max_busy / mean_busy } else { 1.0 },
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dne_graph::gen;
    use dne_partition::hash_based::RandomPartitioner;
    use dne_partition::EdgePartitioner;

    fn engine_fixture(k: u32) -> (Graph, EdgeAssignment) {
        let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 5));
        let a = RandomPartitioner::new(5).partition(&g, k);
        (g, a)
    }

    #[test]
    fn replication_factor_matches_quality_metric() {
        let (g, a) = engine_fixture(4);
        let engine = Engine::new(&g, &a);
        let q = dne_partition::PartitionQuality::measure(&g, &a);
        // The engine counts replicas only for vertices with edges; the
        // quality metric does the same (isolated vertices appear in no
        // partition). The two must agree exactly.
        let engine_total = engine.replication_factor() * g.num_vertices() as f64;
        assert!((engine_total - q.total_replicas as f64).abs() < 1e-6);
    }

    #[test]
    fn masters_are_valid_replicas() {
        let (g, a) = engine_fixture(4);
        let engine = Engine::new(&g, &a);
        for v in g.vertices() {
            let m = engine.masters[v as usize];
            if g.degree(v) == 0 {
                assert_eq!(m, PartitionId::MAX, "isolated vertex {v} must have no master");
            } else {
                assert!(
                    engine.replicas[v as usize].contains(&m),
                    "master of {v} must be one of its replicas"
                );
            }
        }
    }

    #[test]
    fn single_partition_runs_without_communication_overhead() {
        let (g, a0) = engine_fixture(1);
        let engine = Engine::new(&g, &a0);
        let run = engine.wcc();
        // One machine: mirror→master and master→mirror rounds carry nothing.
        assert_eq!(run.comm_bytes, 0, "k=1 must be communication-free");
        assert!(run.supersteps >= 1);
    }

    #[test]
    fn workload_balance_at_least_one() {
        let (g, a) = engine_fixture(4);
        let run = Engine::new(&g, &a).pagerank(3);
        assert!(run.workload_balance >= 1.0 - 1e-9);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn rejects_mismatched_assignment() {
        let g1 = gen::cycle(10);
        let g2 = gen::cycle(20);
        let a = RandomPartitioner::new(1).partition(&g1, 2);
        let _ = Engine::new(&g2, &a);
    }
}
