//! Table 6 reproduction: replication factor on non-skewed road networks.
//!
//! Paper findings to reproduce: the direct optimizers (ParMETIS-like,
//! Sheep-like, XtraPuLP-like, Distributed NE) all land near RF = 1.0 on
//! road networks, while the hash family stays at 2–4 — i.e. Distributed NE
//! is *also* fine on non-skewed graphs, but classic vertex partitioning is
//! already good there (the paper's point in §7.7).

use dne_bench::datasets::road_networks;
use dne_bench::suite::full_roster;
use dne_bench::table::{f2, parse_mode, Table};
use dne_partition::PartitionQuality;

fn main() {
    let quick = parse_mode();
    let k = 64;
    let mut table = Table::new(&["network", "|V|", "|E|", "method", "RF"]);
    for (name, g) in road_networks(quick) {
        eprintln!("{name}: |V|={} |E|={}", g.num_vertices(), g.num_edges());
        for m in full_roster(13) {
            let a = m.partition(&g, k);
            let q = PartitionQuality::measure(&g, &a);
            table.row(vec![
                name.into(),
                g.num_vertices().to_string(),
                g.num_edges().to_string(),
                m.name(),
                f2(q.replication_factor),
            ]);
        }
    }
    println!("\n=== Table 6: RF on road networks (|P| = {k}) ===");
    table.print();
    if let Ok(p) = table.write_tsv("table6_roads") {
        eprintln!("wrote {}", p.display());
    }
}
