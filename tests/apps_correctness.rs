//! End-to-end correctness of the distributed application engine: for any
//! partitioning method, SSSP/WCC/PageRank results must equal the
//! sequential references — partitioning changes performance, never
//! answers.
#![allow(clippy::needless_range_loop)]

use distributed_ne::apps::{pagerank_reference, sssp_reference, wcc_reference, Engine};
use distributed_ne::core::{DistributedNe, NeConfig};
use distributed_ne::graph::gen;
use distributed_ne::partition::hash_based::{GridPartitioner, RandomPartitioner};
use distributed_ne::partition::streaming::HdrfPartitioner;
use distributed_ne::partition::{EdgeAssignment, EdgePartitioner};
use distributed_ne::prelude::*;
use proptest::prelude::*;

fn assignments(g: &Graph, k: u32) -> Vec<(String, EdgeAssignment)> {
    vec![
        ("Random".into(), RandomPartitioner::new(3).partition(g, k)),
        ("Grid".into(), GridPartitioner::new(3).partition(g, k)),
        ("HDRF".into(), HdrfPartitioner::new(3).partition(g, k)),
        (
            "DistributedNE".into(),
            DistributedNe::new(NeConfig::default().with_seed(3)).partition(g, k),
        ),
    ]
}

#[test]
fn sssp_agrees_with_bfs_for_every_partitioner() {
    let g = gen::rmat(&gen::RmatConfig::graph500(8, 6, 1));
    let want = sssp_reference(&g, 0);
    for (name, a) in assignments(&g, 6) {
        let run = Engine::new(&g, &a).sssp(0);
        for v in 0..g.num_vertices() as usize {
            if g.degree(v as u64) > 0 {
                assert_eq!(run.values[v], want[v], "{name}: vertex {v}");
            }
        }
    }
}

#[test]
fn wcc_agrees_with_reference_on_disconnected_graph() {
    let g = gen::ring_complete(7);
    let want = wcc_reference(&g);
    for (name, a) in assignments(&g, 5) {
        let run = Engine::new(&g, &a).wcc();
        assert_eq!(run.values, want, "{name}");
    }
}

#[test]
fn pagerank_agrees_within_fp_tolerance() {
    let g = gen::rmat(&gen::RmatConfig::graph500(7, 6, 9));
    let want = pagerank_reference(&g, 15);
    for (name, a) in assignments(&g, 4) {
        let run = Engine::new(&g, &a).pagerank(15);
        for v in 0..g.num_vertices() as usize {
            if g.degree(v as u64) > 0 {
                assert!(
                    (run.values[v] - want[v]).abs() < 1e-8,
                    "{name}: vertex {v}: {} vs {}",
                    run.values[v],
                    want[v]
                );
            }
        }
    }
}

#[test]
fn better_partitions_move_fewer_bytes() {
    // Table 5's causal chain: lower RF ⇒ lower COM, measured on PageRank
    // (the communication-heavy app).
    let g = gen::rmat(&gen::RmatConfig::graph500(10, 12, 5));
    let k = 8;
    let random = RandomPartitioner::new(5).partition(&g, k);
    let dne = DistributedNe::new(NeConfig::default().with_seed(5)).partition(&g, k);
    let com_random = Engine::new(&g, &random).pagerank(5).comm_bytes;
    let com_dne = Engine::new(&g, &dne).pagerank(5).comm_bytes;
    assert!(com_dne < com_random, "D.NE comm {com_dne} should be below Random {com_random}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// WCC correctness over random graphs and partition counts.
    #[test]
    fn wcc_random_graphs(n in 20u64..120, m in 20u64..300, seed in 0u64..500, k in 2u32..6) {
        let g = gen::erdos_renyi(n, m, seed);
        prop_assume!(g.num_edges() > 0);
        let a = RandomPartitioner::new(seed).partition(&g, k);
        let run = Engine::new(&g, &a).wcc();
        prop_assert_eq!(run.values, wcc_reference(&g));
    }
}
