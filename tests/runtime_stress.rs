//! Stress and property tests of the simulated cluster: the lock-step
//! exchange and the collectives must stay aligned under adversarial
//! round patterns — the foundation of Distributed NE's determinism —
//! on every (transport × topology) pair, sockets and tree schedules
//! included.

mod common;

use common::{cluster, transport_topology_pairs};
use distributed_ne::runtime::Cluster;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary interleavings of exchanges and collectives stay aligned:
    /// every machine observes identical round payloads — on every
    /// (transport × topology) pair, every case.
    #[test]
    fn mixed_rounds_stay_aligned(
        nprocs in 2usize..6,
        rounds in 1u64..40,
        seed in 0u64..1000,
    ) {
        for (kind, topo) in transport_topology_pairs() {
        let out = cluster(nprocs, kind, topo).run::<u64, _, _>(|ctx| {
            let mut checksum = 0u64;
            for r in 0..rounds {
                // Pseudo-random choice of primitive per round, identical on
                // all machines (depends only on r and seed).
                match (seed + r) % 3 {
                    0 => {
                        let got = ctx.exchange(|dst| r * 1000 + dst as u64);
                        // From src we must receive r*1000 + our rank.
                        for (src, &x) in got.iter().enumerate() {
                            assert_eq!(x, r * 1000 + ctx.rank() as u64, "src {src}");
                        }
                        checksum = checksum.wrapping_add(got.iter().sum::<u64>());
                    }
                    1 => {
                        let total = ctx.all_reduce_sum_u64(r);
                        assert_eq!(total, r * ctx.nprocs() as u64);
                        checksum = checksum.wrapping_add(total);
                    }
                    _ => {
                        let all = ctx.all_gather_u64(ctx.rank() as u64);
                        let want: Vec<u64> = (0..ctx.nprocs() as u64).collect();
                        assert_eq!(all, want);
                        checksum = checksum.wrapping_add(all.iter().sum::<u64>());
                    }
                }
            }
            checksum
        });
        // All machines computed the same number of rounds; checksums agree
        // up to the rank-dependent exchange term, so just assert they all
        // finished (the asserts inside are the real checks).
        prop_assert_eq!(out.results.len(), nprocs);
        }
    }

    /// Byte accounting is exact for deterministic traffic on every
    /// (transport × topology) pair: the point-to-point part is fixed and
    /// the barrier costs exactly the topology's published per-collective
    /// total.
    #[test]
    fn comm_accounting_is_exact(nprocs in 2usize..5, msgs in 1u64..30) {
        for (kind, topo) in transport_topology_pairs() {
        let out = cluster(nprocs, kind, topo).run::<u64, _, _>(|ctx| {
            // Every machine sends `msgs` u64s to its right neighbor.
            let right = (ctx.rank() + 1) % ctx.nprocs();
            for i in 0..msgs {
                ctx.send(right, i);
            }
            for _ in 0..msgs {
                let _ = ctx.recv();
            }
            ctx.barrier();
        });
        // nprocs * msgs point-to-point u64s (8B each, none to self) plus
        // one barrier at the topology's published cost.
        let p2p = nprocs as u64 * msgs * 8;
        let (barrier, _) = topo.total_traffic(nprocs);
        prop_assert_eq!(out.comm.total_bytes(), p2p + barrier, "{}/{}", kind, topo);
        }
    }
}

#[test]
fn deep_exchange_pipeline_does_not_deadlock() {
    // Machines race ahead by many rounds; the per-source pending buffers
    // must keep rounds aligned without deadlock.
    Cluster::new(4).run::<u64, _, _>(|ctx| {
        for round in 0..2000u64 {
            let got = ctx.exchange(|_| round);
            assert!(got.iter().all(|&r| r == round));
        }
    });
}

#[test]
fn wide_cluster_smoke() {
    // 64 machines, a few collective rounds — the Table 4/5 configuration,
    // on whatever transport/topology the environment selects.
    let out = Cluster::new(64).run::<u64, _, _>(|ctx| {
        let sum = ctx.all_reduce_sum_u64(1);
        assert_eq!(sum, 64);
        ctx.barrier();
        ctx.rank() as u64
    });
    assert_eq!(out.results.len(), 64);
}

#[test]
fn wide_cluster_collectives_work_under_every_topology() {
    // The Table 4/5 scale on each topology explicitly (loopback keeps the
    // 64-thread sweep cheap); deeper schedules must not deadlock or
    // misroute at log₂64 = 6 rounds.
    for topo in common::TOPOLOGIES {
        let out = cluster(64, distributed_ne::runtime::TransportKind::Loopback, topo)
            .run::<u64, _, _>(|ctx| {
                let all = ctx.all_gather_u64(ctx.rank() as u64);
                let want: Vec<u64> = (0..64).collect();
                assert_eq!(all, want);
                ctx.all_reduce_max_u64(ctx.rank() as u64)
            });
        assert!(out.results.iter().all(|&m| m == 63), "{topo}");
        let (coll_bytes, coll_msgs) = topo.total_traffic(64);
        assert_eq!(out.comm.total_bytes(), 2 * coll_bytes, "{topo}");
        assert_eq!(out.comm.total_msgs(), 2 * coll_msgs, "{topo}");
    }
}

#[test]
fn panic_in_one_machine_propagates() {
    let result = std::panic::catch_unwind(|| {
        Cluster::new(2).run::<u64, _, _>(|ctx| {
            if ctx.rank() == 1 {
                panic!("injected failure");
            }
            // Rank 0 exits without waiting (no collectives after the
            // panic), so the run can join and propagate.
        });
    });
    assert!(result.is_err(), "the injected panic must surface to the caller");
}
