//! The vertex-cut (GAS-style) execution engine.

use std::time::Duration;

use dne_graph::hash::mix2;
use dne_graph::{EdgeId, Graph, VertexId};
use dne_partition::{EdgeAssignment, PartitionId};
use dne_runtime::{BatchConfig, Cluster, CollectiveTopology, Ctx, TransportError, TransportKind};

/// How partial accumulators combine (the `⊕` of the GAS gather phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combine {
    /// Minimum (SSSP distances, BFS levels, WCC labels).
    Min,
    /// Sum (PageRank mass).
    Sum,
}

/// A vertex program in the restricted f64-valued form the value-propagation
/// applications (BFS, SSSP, WCC, PageRank) fit.
#[derive(Clone)]
pub struct VertexProgram {
    /// Application name for reports ("SSSP", "WCC", "PageRank").
    pub name: &'static str,
    /// Accumulator combiner.
    pub combine: Combine,
    /// Initial vertex value (given vertex id, its degree, and the
    /// program parameter — e.g. the SSSP source).
    pub init: fn(VertexId, u64, f64) -> f64,
    /// Free-form program parameter forwarded to `init` (function pointers
    /// cannot capture; this keeps programs `Copy`-able across machines).
    pub param: f64,
    /// Contribution sent along an edge from a vertex with value `x` and
    /// degree `d`.
    pub edge_fn: fn(x: f64, d: u64) -> f64,
    /// Master update: old value + gathered accumulator → new value.
    pub apply: fn(old: f64, acc: Option<f64>) -> f64,
    /// Run exactly this many supersteps (PageRank); `None` = run until no
    /// vertex changes (BFS, SSSP, WCC).
    pub fixed_supersteps: Option<u64>,
    /// Only gather along edges whose source changed last superstep
    /// (frontier semantics for BFS/SSSP/WCC; PageRank gathers everything).
    pub frontier_only: bool,
}

/// Result of one distributed application run (one Table 5 cell group).
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Application name.
    pub name: String,
    /// Supersteps (value-propagation programs) or exchange rounds
    /// (adjacency kernels) executed.
    pub supersteps: u64,
    /// Wall-clock of the parallel section ("ET").
    pub elapsed: Duration,
    /// Total bytes moved between machines ("COM").
    pub comm_bytes: u64,
    /// Total messages moved between machines.
    pub comm_msgs: u64,
    /// Workload balance `max_p busy_p / mean_p busy_p` ("WB").
    pub workload_balance: f64,
    /// Final vertex values indexed by vertex id (masters' truth).
    pub values: Vec<f64>,
    /// Kernel-level scalar, where the kernel defines one: the global
    /// triangle count for `Triangles`, `None` for every other kernel.
    pub aggregate: Option<f64>,
}

/// Wire message of the value-propagation programs: `(vertex, payload)`
/// pairs.
pub type AppMsg = Vec<(VertexId, f64)>;

/// Wire message of the adjacency kernels (triangles, LCC): `(vertex,
/// word-list)` blocks — neighbor lists in the adjacency rounds, singleton
/// triangle counts in the count round.
pub type AdjMsg = Vec<(VertexId, Vec<u64>)>;

/// Per-rank outcome of one value-propagation program
/// ([`Engine::run_rank`]).
#[derive(Debug, Clone)]
pub struct RankRun {
    /// `(vertex, value)` for every vertex mastered by this rank.
    pub mastered: Vec<(VertexId, f64)>,
    /// Supersteps executed (identical on every rank — the convergence
    /// check is collective).
    pub supersteps: u64,
    /// Compute time outside the blocking communication calls.
    pub busy: Duration,
}

/// Per-rank outcome of the adjacency kernel
/// ([`Engine::run_triangles_rank`]).
#[derive(Debug, Clone)]
pub struct TriangleRankRun {
    /// `(vertex, exact triangle count)` for every vertex mastered by this
    /// rank.
    pub mastered: Vec<(VertexId, u64)>,
    /// Global `Σ_e |N(u) ∩ N(v)|` = 3 × the global triangle count
    /// (identical on every rank — it is an all-reduce result).
    pub triple_total: u64,
    /// Exchange rounds executed (the adjacency kernel always runs 3).
    pub rounds: u64,
    /// Compute time outside the blocking communication calls.
    pub busy: Duration,
}

/// The engine: executes graph kernels over an edge partitioning on a
/// simulated cluster with one machine per partition.
pub struct Engine<'g> {
    g: &'g Graph,
    assignment: &'g EdgeAssignment,
    /// Replica partition lists per vertex (sorted; built once).
    replicas: Vec<Vec<PartitionId>>,
    /// Master partition per vertex (`u32::MAX` for isolated vertices).
    masters: Vec<PartitionId>,
    /// Owned edges per partition with cached endpoints `(e, u, v)` —
    /// collected by the same sequential scan that builds the replica
    /// tables, so kernels never random-access the storage backend (the
    /// chunk-streamed backend keeps no adjacency and serves random reads
    /// through a one-chunk cache).
    edges_by_part: Vec<Vec<(EdgeId, VertexId, VertexId)>>,
    /// Transport backend of the simulated cluster the programs run on;
    /// `None` resolves `DNE_TRANSPORT` at run time.
    transport: Option<TransportKind>,
    /// Collective topology of the simulated cluster; `None` resolves
    /// `DNE_COLLECTIVES` at run time. Application results are
    /// bit-identical under every topology.
    collectives: Option<CollectiveTopology>,
    /// Envelope-coalescing policy of the point-to-point fabric; `None`
    /// resolves `DNE_COMM_BATCH` at run time. Application results and
    /// logical message/byte accounting are bit-identical with coalescing
    /// on or off — only the physical frame count changes.
    comm_batch: Option<BatchConfig>,
}

impl<'g> Engine<'g> {
    /// Build the engine's routing tables (the equivalent of a vertex-cut
    /// system's loading phase, excluded from "ET" like the paper excludes
    /// initialization).
    ///
    /// The tables come from **one sequential edge scan**
    /// ([`Graph::for_each_edge`]), so the engine runs on every storage
    /// backend — including chunk-streamed graphs that keep no adjacency
    /// arrays.
    pub fn new(g: &'g Graph, assignment: &'g EdgeAssignment) -> Self {
        assert!(assignment.is_valid_for(g), "assignment does not match graph");
        let k = assignment.num_partitions() as usize;
        let mut replicas: Vec<Vec<PartitionId>> = vec![Vec::new(); g.num_vertices() as usize];
        let mut edges_by_part: Vec<Vec<(EdgeId, VertexId, VertexId)>> = vec![Vec::new(); k];
        g.for_each_edge(|e, u, v| {
            let p = assignment.part_of(e);
            edges_by_part[p as usize].push((e, u, v));
            for w in [u, v] {
                let reps = &mut replicas[w as usize];
                // Replica lists are at most k long; a linear probe beats a
                // set at every realistic partition count.
                if !reps.contains(&p) {
                    reps.push(p);
                }
            }
        });
        replicas.iter_mut().for_each(|r| r.sort_unstable());
        let masters: Vec<PartitionId> = replicas
            .iter()
            .enumerate()
            .map(|(v, reps)| {
                if reps.is_empty() {
                    PartitionId::MAX
                } else {
                    // Random (hashed) replica as master, as in PowerGraph.
                    reps[(mix2(0x4D41_5354_4552, v as u64) % reps.len() as u64) as usize]
                }
            })
            .collect();
        Self {
            g,
            assignment,
            replicas,
            masters,
            edges_by_part,
            transport: None,
            collectives: None,
            comm_batch: None,
        }
    }

    /// Select the transport backend explicitly (overrides `DNE_TRANSPORT`;
    /// application results and comm accounting are identical under both).
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Select the collective topology explicitly (overrides
    /// `DNE_COLLECTIVES`; application results are bit-identical under
    /// every topology — only the convergence collectives' schedule
    /// changes).
    pub fn with_collectives(mut self, collectives: CollectiveTopology) -> Self {
        self.collectives = Some(collectives);
        self
    }

    /// Select the envelope-coalescing policy explicitly (overrides
    /// `DNE_COMM_BATCH`; application results and logical comm accounting
    /// are bit-identical with coalescing on or off).
    pub fn with_comm_batch(mut self, batch: BatchConfig) -> Self {
        self.comm_batch = Some(batch);
        self
    }

    /// Replication factor as the engine sees it (sanity hook for tests).
    pub fn replication_factor(&self) -> f64 {
        let total: usize = self.replicas.iter().map(|r| r.len()).sum();
        total as f64 / self.g.num_vertices() as f64
    }

    /// The cluster every kernel runs on: one machine per partition, with
    /// the configured (or environment-resolved) transport and topology.
    fn cluster(&self) -> Cluster {
        let k = self.assignment.num_partitions() as usize;
        let transport = self.transport.unwrap_or_else(TransportKind::from_env);
        let collectives = self.collectives.unwrap_or_else(CollectiveTopology::from_env);
        let batch = self.comm_batch.unwrap_or_else(BatchConfig::from_env);
        Cluster::with_transport(k, transport).with_collectives(collectives).with_comm_batch(batch)
    }

    /// The local vertex table of `rank`: the sorted distinct endpoints of
    /// its owned edges plus the id→slot map.
    fn local_verts(&self, rank: usize) -> (Vec<VertexId>, dne_graph::hash::FastMap<VertexId, u32>) {
        let my_edges = &self.edges_by_part[rank];
        let mut verts: Vec<VertexId> = Vec::with_capacity(my_edges.len() * 2);
        for &(_, u, v) in my_edges {
            verts.push(u);
            verts.push(v);
        }
        verts.sort_unstable();
        verts.dedup();
        let local_of = verts.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
        (verts, local_of)
    }

    /// One rank's share of a value-propagation program, over an explicit
    /// [`Ctx`] — the fallible seam the in-process [`Engine::run`] wraps
    /// and the fault-injection tests drive directly. `ctx.nprocs()` must
    /// equal the assignment's partition count.
    pub fn run_rank(
        &self,
        ctx: &mut Ctx<AppMsg>,
        prog: &VertexProgram,
    ) -> Result<RankRun, TransportError> {
        let k = self.assignment.num_partitions() as usize;
        assert_eq!(ctx.nprocs(), k, "cluster size must equal the partition count");
        let rank = ctx.rank();
        let g = self.g;
        let t_busy = std::time::Instant::now;
        let mut busy = Duration::ZERO;
        // ---- Local structures (loading phase).
        let my_edges = &self.edges_by_part[rank];
        let (verts, local_of) = self.local_verts(rank);
        let n_local = verts.len();
        let mut value: Vec<f64> =
            verts.iter().map(|&v| (prog.init)(v, g.degree(v), prog.param)).collect();
        let deg: Vec<u64> = verts.iter().map(|&v| g.degree(v)).collect();
        let mut changed: Vec<bool> = vec![true; n_local]; // superstep 0: all fresh
        let mut acc: Vec<Option<f64>> = vec![None; n_local];
        let combine = |a: Option<f64>, x: f64| -> f64 {
            match (prog.combine, a) {
                (Combine::Min, Some(v)) => v.min(x),
                (Combine::Sum, Some(v)) => v + x,
                (_, None) => x,
            }
        };
        let mut supersteps = 0u64;
        loop {
            supersteps += 1;
            let t0 = t_busy();
            // ---- Gather along local edges.
            acc.iter_mut().for_each(|a| *a = None);
            for &(_, u, v) in my_edges {
                let (lu, lv) = (local_of[&u] as usize, local_of[&v] as usize);
                if !prog.frontier_only || changed[lu] {
                    acc[lv] = Some(combine(acc[lv], (prog.edge_fn)(value[lu], deg[lu])));
                }
                if !prog.frontier_only || changed[lv] {
                    acc[lu] = Some(combine(acc[lu], (prog.edge_fn)(value[lv], deg[lv])));
                }
            }
            // ---- Mirror → master partials.
            let mut partials: Vec<AppMsg> = vec![Vec::new(); k];
            for lv in 0..n_local {
                if let Some(a) = acc[lv] {
                    let v = verts[lv];
                    let master = self.masters[v as usize] as usize;
                    if master != rank {
                        partials[master].push((v, a));
                        acc[lv] = None; // master-side combining only
                    }
                }
            }
            busy += t0.elapsed();
            // Frames from machines that are ahead of us arrived while we
            // were gathering; move them into the per-source queues so the
            // blocking exchange starts warm (same below, before every
            // blocking call that follows a compute section).
            let _ = ctx.try_drain_ready()?;
            let incoming = ctx.try_exchange(|dst| std::mem::take(&mut partials[dst]))?;
            let t1 = t_busy();
            for msg in incoming {
                for (v, a) in msg {
                    let lv = local_of[&v] as usize;
                    acc[lv] = Some(combine(acc[lv], a));
                }
            }
            // ---- Apply at masters; collect updates for mirrors.
            let mut updates: Vec<AppMsg> = vec![Vec::new(); k];
            let mut any_changed = false;
            changed.iter_mut().for_each(|c| *c = false);
            for lv in 0..n_local {
                let v = verts[lv];
                if self.masters[v as usize] as usize != rank {
                    continue;
                }
                let fresh = (prog.apply)(value[lv], acc[lv]);
                let moved = if prog.fixed_supersteps.is_some() {
                    true // PageRank pushes every superstep
                } else {
                    fresh != value[lv]
                };
                if fresh != value[lv] {
                    any_changed = true;
                    changed[lv] = true;
                }
                value[lv] = fresh;
                if moved {
                    for &rp in &self.replicas[v as usize] {
                        if rp as usize != rank {
                            updates[rp as usize].push((v, fresh));
                        }
                    }
                }
            }
            busy += t1.elapsed();
            let _ = ctx.try_drain_ready()?;
            let incoming = ctx.try_exchange(|dst| std::mem::take(&mut updates[dst]))?;
            let t2 = t_busy();
            for msg in incoming {
                for (v, x) in msg {
                    let lv = local_of[&v] as usize;
                    if value[lv] != x {
                        changed[lv] = true;
                    }
                    value[lv] = x;
                }
            }
            busy += t2.elapsed();
            // ---- Convergence.
            let done = match prog.fixed_supersteps {
                Some(n) => supersteps >= n,
                None => !ctx.try_all_reduce_any(any_changed)?,
            };
            if done {
                break;
            }
            assert!(supersteps < 100_000, "vertex program failed to converge");
        }
        // Return mastered values plus the superstep count (identical on
        // every machine thanks to the collective convergence check).
        let mastered = (0..n_local)
            .filter(|&lv| self.masters[verts[lv] as usize] as usize == rank)
            .map(|lv| (verts[lv], value[lv]))
            .collect();
        Ok(RankRun { mastered, supersteps, busy })
    }

    /// Run a vertex program to completion and report metrics + values.
    pub fn run(&self, prog: &VertexProgram) -> AppRun {
        let g = self.g;
        let outcome = self.cluster().run::<AppMsg, RankRun, _>(|ctx| {
            let rank = ctx.rank();
            self.run_rank(ctx, prog).unwrap_or_else(|e| {
                panic!("{}: transport failure on machine {rank}: {e}", prog.name)
            })
        });
        // Assemble global values (isolated vertices keep their init value).
        let mut values: Vec<f64> =
            (0..g.num_vertices()).map(|v| (prog.init)(v, 0, prog.param)).collect();
        for rr in &outcome.results {
            for &(v, x) in &rr.mastered {
                values[v as usize] = x;
            }
        }
        let supersteps = outcome.results.first().map(|rr| rr.supersteps).unwrap_or(0);
        let busy: Vec<Duration> = outcome.results.iter().map(|rr| rr.busy).collect();
        AppRun {
            name: prog.name.to_string(),
            supersteps,
            elapsed: outcome.elapsed,
            comm_bytes: outcome.comm.total_bytes(),
            comm_msgs: outcome.comm.total_msgs(),
            workload_balance: workload_balance(&busy),
            values,
            aggregate: None,
        }
    }

    /// One rank's share of the **adjacency kernel** that powers
    /// [`Engine::triangles`] and [`Engine::lcc`], over an explicit
    /// [`Ctx`] — fallible, like [`Engine::run_rank`].
    ///
    /// Three exchange rounds, all in exact `u64` arithmetic:
    ///
    /// 1. **fragments, mirror → master** — each partition's owned edges
    ///    induce a fragment of every endpoint's neighbor list; the
    ///    fragments of one vertex are disjoint across partitions (each
    ///    edge is owned exactly once), so the master's union is the exact
    ///    neighbor set, which it sorts;
    /// 2. **full lists, master → mirrors** — every replica ends up with
    ///    the complete sorted `N(v)` of its local vertices;
    /// 3. **counts, mirror → master** — each partition intersects
    ///    `N(u) ∩ N(v)` for its owned edges `(u, v)`, charging the count
    ///    to both endpoints; masters sum the per-partition charges. A
    ///    vertex's charge counts every triangle through it twice (once
    ///    per incident triangle edge), so the master halves it.
    ///
    /// A final all-reduce publishes `Σ_e |N(u) ∩ N(v)|` — three times the
    /// global triangle count — to every rank.
    pub fn run_triangles_rank(
        &self,
        ctx: &mut Ctx<AdjMsg>,
    ) -> Result<TriangleRankRun, TransportError> {
        let k = self.assignment.num_partitions() as usize;
        assert_eq!(ctx.nprocs(), k, "cluster size must equal the partition count");
        let rank = ctx.rank();
        let t_busy = std::time::Instant::now;
        let mut busy = Duration::ZERO;
        let my_edges = &self.edges_by_part[rank];
        let (verts, local_of) = self.local_verts(rank);
        let n_local = verts.len();
        let t0 = t_busy();
        // Local adjacency fragments from the owned edges.
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n_local];
        for &(_, u, v) in my_edges {
            adj[local_of[&u] as usize].push(v);
            adj[local_of[&v] as usize].push(u);
        }
        // ---- Round 1: ship fragments to masters.
        let mut partials: Vec<AdjMsg> = vec![Vec::new(); k];
        for lv in 0..n_local {
            let v = verts[lv];
            if self.masters[v as usize] as usize != rank {
                partials[self.masters[v as usize] as usize].push((v, std::mem::take(&mut adj[lv])));
            }
        }
        busy += t0.elapsed();
        // As in `run_rank`: drain frames that arrived during the compute
        // section before each blocking exchange.
        let _ = ctx.try_drain_ready()?;
        let incoming = ctx.try_exchange(|dst| std::mem::take(&mut partials[dst]))?;
        let t1 = t_busy();
        for msg in incoming {
            for (v, frag) in msg {
                adj[local_of[&v] as usize].extend(frag);
            }
        }
        // ---- Round 2: masters sort the full lists and broadcast them to
        // their mirrors.
        let mut updates: Vec<AdjMsg> = vec![Vec::new(); k];
        for lv in 0..n_local {
            let v = verts[lv];
            if self.masters[v as usize] as usize != rank {
                continue;
            }
            adj[lv].sort_unstable();
            debug_assert_eq!(adj[lv].len() as u64, self.g.degree(v), "fragments must be disjoint");
            for &rp in &self.replicas[v as usize] {
                if rp as usize != rank {
                    updates[rp as usize].push((v, adj[lv].clone()));
                }
            }
        }
        busy += t1.elapsed();
        let _ = ctx.try_drain_ready()?;
        let incoming = ctx.try_exchange(|dst| std::mem::take(&mut updates[dst]))?;
        let t2 = t_busy();
        for msg in incoming {
            for (v, full) in msg {
                adj[local_of[&v] as usize] = full;
            }
        }
        // ---- Count common neighbors per owned edge (sorted-merge
        // intersection), charging both endpoints.
        let mut tri = vec![0u64; n_local];
        let mut triple_local = 0u64;
        for &(_, u, v) in my_edges {
            let (lu, lv) = (local_of[&u] as usize, local_of[&v] as usize);
            let t = sorted_intersection_count(&adj[lu], &adj[lv]);
            tri[lu] += t;
            tri[lv] += t;
            triple_local += t;
        }
        // ---- Round 3: ship the charges to masters.
        let mut partials: Vec<AdjMsg> = vec![Vec::new(); k];
        for lv in 0..n_local {
            let v = verts[lv];
            let master = self.masters[v as usize] as usize;
            if master != rank && tri[lv] > 0 {
                partials[master].push((v, vec![tri[lv]]));
            }
        }
        busy += t2.elapsed();
        let _ = ctx.try_drain_ready()?;
        let incoming = ctx.try_exchange(|dst| std::mem::take(&mut partials[dst]))?;
        let t3 = t_busy();
        for msg in incoming {
            for (v, charge) in msg {
                tri[local_of[&v] as usize] += charge.iter().sum::<u64>();
            }
        }
        let mastered: Vec<(VertexId, u64)> = (0..n_local)
            .filter(|&lv| self.masters[verts[lv] as usize] as usize == rank)
            .map(|lv| {
                debug_assert_eq!(tri[lv] % 2, 0, "each triangle is charged twice per vertex");
                (verts[lv], tri[lv] / 2)
            })
            .collect();
        busy += t3.elapsed();
        let triple_total = ctx.try_all_reduce_sum_u64(triple_local)?;
        Ok(TriangleRankRun { mastered, triple_total, rounds: 3, busy })
    }

    /// Shared driver of the adjacency kernels: run the exact triangle
    /// count and map each master's `(count, degree)` to the kernel value.
    fn run_adjacency(&self, name: &'static str, map: fn(u64, u64) -> f64) -> AppRun {
        let g = self.g;
        let outcome = self.cluster().run::<AdjMsg, TriangleRankRun, _>(|ctx| {
            let rank = ctx.rank();
            self.run_triangles_rank(ctx)
                .unwrap_or_else(|e| panic!("{name}: transport failure on machine {rank}: {e}"))
        });
        // Vertices with no edges (isolated) score 0 in both kernels.
        let mut values: Vec<f64> = vec![0.0; g.num_vertices() as usize];
        for rr in &outcome.results {
            for &(v, t) in &rr.mastered {
                values[v as usize] = map(t, g.degree(v));
            }
        }
        let triple_total = outcome.results.first().map(|rr| rr.triple_total).unwrap_or(0);
        debug_assert_eq!(triple_total % 3, 0, "every triangle has exactly three edges");
        let rounds = outcome.results.first().map(|rr| rr.rounds).unwrap_or(0);
        let busy: Vec<Duration> = outcome.results.iter().map(|rr| rr.busy).collect();
        AppRun {
            name: name.to_string(),
            supersteps: rounds,
            elapsed: outcome.elapsed,
            comm_bytes: outcome.comm.total_bytes(),
            comm_msgs: outcome.comm.total_msgs(),
            workload_balance: workload_balance(&busy),
            values,
            aggregate: Some((triple_total / 3) as f64),
        }
    }

    /// Distributed exact triangle counting: `values[v]` is the number of
    /// triangles through `v` (an exact integer stored in f64), and
    /// [`AppRun::aggregate`] is the global triangle count
    /// (`Σ_v values[v] / 3` — each triangle has three corners).
    pub fn triangles(&self) -> AppRun {
        self.run_adjacency("Triangles", |t, _d| t as f64)
    }

    /// Distributed local clustering coefficient:
    /// `lcc(v) = 2·T(v) / (d(v)·(d(v)−1))` for `d(v) ≥ 2`, else 0 —
    /// always in `[0, 1]` on this simple undirected graph. Computed from
    /// the exact distributed triangle counts, with the final division as
    /// the single floating-point step (the same expression the reference
    /// evaluates).
    pub fn lcc(&self) -> AppRun {
        self.run_adjacency("LCC", lcc_value)
    }
}

/// The one floating-point expression of the LCC kernel, shared verbatim
/// with [`crate::apps::lcc_reference`] so distributed and reference values
/// round identically.
pub(crate) fn lcc_value(triangles: u64, degree: u64) -> f64 {
    if degree < 2 {
        0.0
    } else {
        (2.0 * triangles as f64) / ((degree * (degree - 1)) as f64)
    }
}

/// `|a ∩ b|` for sorted slices (merge scan).
fn sorted_intersection_count(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// `max/mean` of the per-machine busy times (1.0 when idle everywhere).
fn workload_balance(busy: &[Duration]) -> f64 {
    let secs: Vec<f64> = busy.iter().map(|b| b.as_secs_f64()).collect();
    let mean = secs.iter().sum::<f64>() / secs.len().max(1) as f64;
    let max = secs.iter().cloned().fold(0.0, f64::max);
    if mean > 0.0 {
        max / mean
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dne_graph::gen;
    use dne_partition::hash_based::RandomPartitioner;
    use dne_partition::EdgePartitioner;

    fn engine_fixture(k: u32) -> (Graph, EdgeAssignment) {
        let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 5));
        let a = RandomPartitioner::new(5).partition(&g, k);
        (g, a)
    }

    #[test]
    fn replication_factor_matches_quality_metric() {
        let (g, a) = engine_fixture(4);
        let engine = Engine::new(&g, &a);
        let q = dne_partition::PartitionQuality::measure(&g, &a);
        // The engine counts replicas only for vertices with edges; the
        // quality metric does the same (isolated vertices appear in no
        // partition). The two must agree exactly.
        let engine_total = engine.replication_factor() * g.num_vertices() as f64;
        assert!((engine_total - q.total_replicas as f64).abs() < 1e-6);
    }

    #[test]
    fn masters_are_valid_replicas() {
        let (g, a) = engine_fixture(4);
        let engine = Engine::new(&g, &a);
        for v in g.vertices() {
            let m = engine.masters[v as usize];
            if g.degree(v) == 0 {
                assert_eq!(m, PartitionId::MAX, "isolated vertex {v} must have no master");
            } else {
                assert!(
                    engine.replicas[v as usize].contains(&m),
                    "master of {v} must be one of its replicas"
                );
            }
        }
    }

    #[test]
    fn single_partition_runs_without_communication_overhead() {
        let (g, a0) = engine_fixture(1);
        let engine = Engine::new(&g, &a0);
        let run = engine.wcc();
        // One machine: mirror→master and master→mirror rounds carry nothing.
        assert_eq!(run.comm_bytes, 0, "k=1 must be communication-free");
        assert!(run.supersteps >= 1);
        // The adjacency kernel's all-reduce is also free at k=1.
        assert_eq!(engine.triangles().comm_bytes, 0, "k=1 triangles must be communication-free");
    }

    #[test]
    fn workload_balance_at_least_one() {
        let (g, a) = engine_fixture(4);
        let run = Engine::new(&g, &a).pagerank(3);
        assert!(run.workload_balance >= 1.0 - 1e-9);
    }

    #[test]
    fn triangle_charges_are_consistent() {
        let (g, a) = engine_fixture(4);
        let run = Engine::new(&g, &a).triangles();
        let total = run.aggregate.expect("triangles publishes an aggregate");
        let per_vertex: f64 = run.values.iter().sum();
        assert_eq!(per_vertex, 3.0 * total, "each triangle has three corners");
        assert!(run.comm_msgs > 0, "k=4 must communicate");
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn rejects_mismatched_assignment() {
        let g1 = gen::cycle(10);
        let g2 = gen::cycle(20);
        let a = RandomPartitioner::new(1).partition(&g1, 2);
        let _ = Engine::new(&g2, &a);
    }
}
