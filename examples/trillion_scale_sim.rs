//! Weak-scaling demonstration toward the trillion-edge setting
//! (paper §7.4 / Figure 10(j), scaled down).
//!
//! The paper fixes 2^22 vertices per machine and grows the machine count
//! ×4 per step up to Scale30 / edge-factor 1024 — one trillion edges on
//! 256 machines in 69.7 minutes. This example runs the same experimental
//! design at laptop scale (2^10 vertices per simulated machine) and prints
//! the quantity the paper uses to explain the linear time growth: the
//! share of runtime spent in vertex selection, which rises with machine
//! count because expansion rates diverge between partitions.
//!
//! Run with: `cargo run --release --example trillion_scale_sim`

use distributed_ne::prelude::*;

fn main() {
    let verts_per_machine = 10u32; // log2; the paper uses 22
    let ef = 16u64;
    // Input graphs are built through the parallel ingestion path — at the
    // scales this sweep targets, generation + CSR build dominates
    // wall-clock long before the partitioner does. The output is
    // byte-identical to the serial `rmat` at every thread count.
    let threads = default_ingest_threads();
    println!(
        "weak scaling: 2^{verts_per_machine} vertices/machine, edge factor {ef} (paper: 2^22 and up to 1024); ingesting on {threads} thread(s)"
    );
    println!(
        "\n{:>9} {:>9} {:>10} {:>8} {:>10} {:>16}",
        "machines", "|V|", "|E|", "iters", "time_s", "selection_share"
    );
    for machines in [4u32, 16, 64] {
        let scale = verts_per_machine + machines.ilog2();
        let graph = rmat_parallel(&RmatConfig::graph500(scale, ef, 9), threads);
        let ne = DistributedNe::new(NeConfig::default().with_seed(9));
        let (assignment, stats) = ne.partition_with_stats(&graph, machines);
        let q = PartitionQuality::measure(&graph, &assignment);
        println!(
            "{:>9} {:>9} {:>10} {:>8} {:>10.3} {:>15.1}%  (RF {:.2})",
            machines,
            graph.num_vertices(),
            graph.num_edges(),
            stats.iterations,
            stats.elapsed.as_secs_f64(),
            100.0 * stats.selection_share(),
            q.replication_factor
        );
    }
    println!(
        "\nAs machines grow at fixed per-machine load, elapsed time rises\n\
         and vertex selection takes a growing share — the bottleneck the\n\
         paper measures at 30.3% on 256 machines (§7.4)."
    );
}
