//! Cross-crate properties of the transport layer and wire codec: the
//! loopback (pointer-passing, estimated bytes), bytes (real serialization,
//! exact bytes), and tcp (the same frames over real localhost sockets)
//! backends must be observationally identical — same partitioning results,
//! same application results, same communication accounting — and the codec
//! must reject malformed frames with errors, not panics.

mod common;

use common::{cluster, transport_topology_pairs};
use distributed_ne::core::{DistributedNe, NeConfig, NeMsg};
use distributed_ne::graph::gen;
use distributed_ne::partition::{EdgePartitioner, PartitionQuality};
use distributed_ne::runtime::{TransportKind, WireDecode, WireEncode, WireSize};
use proptest::prelude::*;

// ---------------------------------------------------------------- codec --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every NeMsg shape encodes to exactly its WireSize estimate and
    /// round-trips losslessly — the invariant that makes loopback byte
    /// accounting exact.
    #[test]
    fn nemsg_estimate_equals_actual_and_roundtrips(
        vertices in prop::collection::vec(0u64..u64::MAX, 0..50),
        pairs in prop::collection::vec((0u64..u64::MAX, 0u32..u32::MAX), 0..50),
        boundary in prop::collection::vec((0u64..u64::MAX, 0u64..1 << 40), 0..50),
        edges in prop::collection::vec(0u64..u64::MAX, 0..50),
        budget in 0u64..u64::MAX,
        free in 0u64..u64::MAX,
    ) {
        let msgs = [
            NeMsg::Select { vertices, random_budget: budget },
            NeMsg::Sync { pairs },
            NeMsg::Result { boundary, edges, free_edges: free },
        ];
        for msg in msgs {
            let bytes = msg.to_wire();
            prop_assert_eq!(bytes.len(), msg.wire_bytes(), "estimate != encoded for {:?}", msg);
            prop_assert_eq!(NeMsg::from_wire(&bytes).unwrap(), msg);
        }
    }

    /// The apps-engine message type ((vertex, value) pair lists) obeys the
    /// same invariant through the generic codec impls. Values are drawn as
    /// raw bit patterns so NaNs and infinities are exercised too.
    #[test]
    fn app_msg_estimate_equals_actual_and_roundtrips(
        raw in prop::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..100),
    ) {
        let msg: Vec<(u64, f64)> =
            raw.into_iter().map(|(v, bits)| (v, f64::from_bits(bits))).collect();
        let bytes = msg.to_wire();
        prop_assert_eq!(bytes.len(), msg.wire_bytes());
        let back = Vec::<(u64, f64)>::from_wire(&bytes).unwrap();
        prop_assert_eq!(back.len(), msg.len());
        for ((v0, x0), (v1, x1)) in msg.iter().zip(&back) {
            prop_assert_eq!(v0, v1);
            prop_assert_eq!(x0.to_bits(), x1.to_bits(), "f64 must round-trip bit-exactly");
        }
    }

    /// Fuzz: truncating a valid frame anywhere yields an error, never a
    /// panic; so does flipping the tag byte to garbage.
    #[test]
    fn truncated_and_corrupt_frames_error_not_panic(
        vertices in prop::collection::vec(0u64..u64::MAX, 0..20),
        cut_seed in 0usize..usize::MAX,
        tag_off in 0u8..253,
    ) {
        let msg = NeMsg::Select { vertices, random_budget: 1 };
        let bytes = msg.to_wire();
        let cut = cut_seed % bytes.len(); // bytes.len() >= 17, never empty
        prop_assert!(NeMsg::from_wire(&bytes[..cut]).is_err());
        let mut corrupt = bytes.clone();
        corrupt[0] = 3 + tag_off;
        prop_assert!(NeMsg::from_wire(&corrupt).is_err());
    }
}

// ------------------------------------------------------ runtime behavior --

#[test]
fn zero_length_payload_rounds_work_on_every_pair() {
    // Empty vectors (the common "nothing for you this round" envelope)
    // still frame, ship, and account correctly: each costs exactly its
    // 8-byte length prefix — on every (transport × topology) pair.
    for (kind, topo) in transport_topology_pairs() {
        let out = cluster(3, kind, topo).run::<Vec<u64>, _, _>(|ctx| {
            for _ in 0..4 {
                let got = ctx.exchange(|_| Vec::new());
                assert_eq!(got, vec![Vec::new(), Vec::new(), Vec::new()]);
            }
            ctx.barrier();
        });
        // 4 rounds × 3 ranks × 2 non-self links × 8-byte prefix, plus one
        // barrier at the topology's published per-collective cost.
        let (barrier, _) = topo.total_traffic(3);
        assert_eq!(out.comm.total_bytes(), 4 * 3 * 2 * 8 + barrier, "{kind}/{topo}");
    }
}

#[test]
fn single_machine_collectives_and_exchange_on_every_pair() {
    for (kind, topo) in transport_topology_pairs() {
        let out = cluster(1, kind, topo).run::<Vec<u64>, _, _>(|ctx| {
            let got = ctx.exchange(|_| vec![1, 2, 3]);
            assert_eq!(got, vec![vec![1, 2, 3]]);
            ctx.barrier();
            assert_eq!(ctx.all_gather_u64(9), vec![9]);
            assert_eq!(ctx.all_reduce_max_u64(4), 4);
            assert!(!ctx.all_reduce_any(false));
            ctx.all_reduce_sum_u64(7)
        });
        assert_eq!(out.results, vec![7]);
        assert_eq!(out.comm.total_bytes(), 0, "{kind}/{topo}: nprocs = 1 moves nothing");
    }
}

// ------------------------------------------- end-to-end paper workloads --

#[test]
fn distributed_ne_is_transport_invariant() {
    // The acceptance property: identical assignments, iteration counts and
    // (thanks to estimate == actual) identical comm accounting under every
    // transport — including real sockets — across several graph shapes.
    let graphs = [
        ("rmat", gen::rmat(&gen::RmatConfig::graph500(8, 6, 5))),
        ("star", gen::star(64)),
        ("path", gen::path(100)),
    ];
    for (name, g) in &graphs {
        let run = |kind| {
            DistributedNe::new(NeConfig::default().with_seed(11).with_transport(kind))
                .partition_with_stats(g, 4)
        };
        let (a_loop, s_loop) = run(TransportKind::Loopback);
        for kind in [TransportKind::Bytes, TransportKind::Tcp] {
            let (a_kind, s_kind) = run(kind);
            assert_eq!(a_loop, a_kind, "{name}/{kind}: assignments must match across transports");
            assert_eq!(s_loop.iterations, s_kind.iterations, "{name}/{kind}: iteration counts");
            assert_eq!(s_loop.comm_bytes, s_kind.comm_bytes, "{name}/{kind}: comm accounting");
            assert_eq!(s_loop.comm_msgs, s_kind.comm_msgs, "{name}/{kind}: message counts");
            let q_loop = PartitionQuality::measure(g, &a_loop);
            let q_kind = PartitionQuality::measure(g, &a_kind);
            assert_eq!(q_loop.replication_factor, q_kind.replication_factor, "{name}/{kind}: RF");
        }
    }
}

#[test]
fn app_engine_is_transport_invariant() {
    use distributed_ne::apps::Engine;
    let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 3));
    let a = DistributedNe::new(NeConfig::default().with_seed(3)).partition(&g, 4);
    let run = |kind| {
        let engine = Engine::new(&g, &a).with_transport(kind);
        (engine.wcc(), engine.pagerank(5))
    };
    let (wcc_loop, pr_loop) = run(TransportKind::Loopback);
    for kind in [TransportKind::Bytes, TransportKind::Tcp] {
        let (wcc_kind, pr_kind) = run(kind);
        for (l, b) in [(&wcc_loop, &wcc_kind), (&pr_loop, &pr_kind)] {
            assert_eq!(l.supersteps, b.supersteps, "{}/{kind}: supersteps", l.name);
            assert_eq!(l.comm_bytes, b.comm_bytes, "{}/{kind}: comm accounting", l.name);
            assert_eq!(l.values.len(), b.values.len());
            for (x, y) in l.values.iter().zip(&b.values) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{}/{kind}: values must be bit-identical",
                    l.name
                );
            }
        }
    }
}

#[test]
fn killed_tcp_peer_fails_the_run_with_a_typed_error() {
    // Fault injection end-to-end: one machine of a TCP cluster dies
    // abnormally mid-run; the sibling machines observe a typed transport
    // disconnect (surfaced through the infallible Ctx wrappers as a panic
    // naming the dead peer), never a silent hang.
    use distributed_ne::runtime::Cluster;
    let result = std::panic::catch_unwind(|| {
        Cluster::with_transport(3, TransportKind::Tcp).run::<u64, _, _>(|ctx| {
            if ctx.rank() == 1 {
                panic!("injected failure"); // unwinds: endpoint drops mid-protocol
            }
            // The survivors' next collective cannot complete.
            ctx.all_gather_u64(ctx.rank() as u64);
        });
    });
    assert!(result.is_err(), "the dead peer must abort the run");
}
