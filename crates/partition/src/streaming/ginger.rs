//! Hybrid Ginger (PowerLyra, Chen et al., EuroSys 2015).
//!
//! PowerLyra's best partitioner: start from hybrid hashing, then improve the
//! placement of *low-degree* vertices with a Fennel-derived objective —
//! move a low-degree vertex's anchor to the partition holding most of its
//! neighbors, minus a load penalty, so its whole edge bundle migrates with
//! it. High-degree vertices keep their hash placement (they replicate
//! regardless).
//!
//! Adaptation note: the original operates on directed in-edges inside a live
//! system; this re-implementation keeps the algorithmic core — hybrid
//! anchoring + Fennel-scored refinement sweeps of low-degree anchors with a
//! combined vertex/edge balance penalty — on undirected graphs.

use crate::assignment::{EdgeAssignment, PartitionId};
use crate::traits::EdgePartitioner;
use dne_graph::hash::mix2;
use dne_graph::Graph;

/// PowerLyra "Hybrid Ginger" partitioner.
#[derive(Debug, Clone)]
pub struct GingerPartitioner {
    seed: u64,
    /// Degree threshold θ separating low from high-degree vertices.
    pub threshold: u64,
    /// Number of refinement sweeps over the low-degree vertices.
    pub sweeps: usize,
    /// Balance-penalty weight γ in the Fennel-style objective.
    pub gamma: f64,
}

impl GingerPartitioner {
    /// Seeded constructor with PowerLyra-flavoured defaults.
    pub fn new(seed: u64) -> Self {
        Self { seed, threshold: 100, sweeps: 3, gamma: 1.5 }
    }

    /// Override the number of refinement sweeps.
    pub fn with_sweeps(mut self, sweeps: usize) -> Self {
        self.sweeps = sweeps;
        self
    }
}

impl EdgePartitioner for GingerPartitioner {
    fn name(&self) -> String {
        "HybridGinger".into()
    }

    fn partition(&self, g: &Graph, k: PartitionId) -> EdgeAssignment {
        let n = g.num_vertices() as usize;
        let kk = k as usize;
        let is_low = |v: u64| g.degree(v) <= self.threshold;
        // Anchor of every vertex: initially its hybrid hash cell.
        let mut anchor: Vec<PartitionId> =
            (0..n).map(|v| (mix2(self.seed, v as u64) % k as u64) as PartitionId).collect();
        // Loads for the balance penalty: vertices anchored and edges pulled
        // along (a low vertex drags ~deg(v) edges with its anchor).
        let mut vload = vec![0f64; kk];
        let mut eload = vec![0f64; kk];
        for v in 0..n as u64 {
            vload[anchor[v as usize] as usize] += 1.0;
            eload[anchor[v as usize] as usize] += g.degree(v) as f64;
        }
        let avg_v = n as f64 / kk as f64;
        let avg_e = (2 * g.num_edges()) as f64 / kk as f64;
        let mut nbr_counts = vec![0f64; kk];
        for _ in 0..self.sweeps {
            for v in 0..n as u64 {
                if !is_low(v) {
                    continue;
                }
                nbr_counts.iter_mut().for_each(|c| *c = 0.0);
                for &u in g.neighbor_vertices(v) {
                    // Low neighbors attract with weight 1 (their bundle can
                    // co-locate); high neighbors attract weakly (replicated
                    // anyway, but an edge to them still lands somewhere).
                    let w = if is_low(u) { 1.0 } else { 0.3 };
                    nbr_counts[anchor[u as usize] as usize] += w;
                }
                let old = anchor[v as usize] as usize;
                let deg = g.degree(v) as f64;
                let mut best = old;
                let mut best_score = f64::NEG_INFINITY;
                for p in 0..kk {
                    // Fennel-style: neighbor affinity minus marginal load
                    // cost of hosting this vertex (and its edge bundle).
                    let score = nbr_counts[p]
                        - self.gamma * (vload[p] / avg_v + (eload[p] + deg) / avg_e) / 2.0;
                    if score > best_score + 1e-12 {
                        best_score = score;
                        best = p;
                    }
                }
                if best != old {
                    anchor[v as usize] = best as PartitionId;
                    vload[old] -= 1.0;
                    vload[best] += 1.0;
                    eload[old] -= deg;
                    eload[best] += deg;
                }
            }
        }
        // Final edge placement: hybrid rule over the refined anchors.
        EdgeAssignment::from_fn(g, k, |e| {
            let (u, v) = g.edge(e);
            let (lo, hi) = if g.degree(u) <= g.degree(v) { (u, v) } else { (v, u) };
            if is_low(lo) {
                anchor[lo as usize]
            } else {
                anchor[hi as usize]
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_based::HybridHashPartitioner;
    use crate::quality::PartitionQuality;
    use dne_graph::gen;

    #[test]
    fn refinement_improves_on_plain_hybrid() {
        let g = gen::rmat(&gen::RmatConfig::graph500(10, 8, 6));
        let qh = PartitionQuality::measure(&g, &HybridHashPartitioner::new(1).partition(&g, 16));
        let qg = PartitionQuality::measure(&g, &GingerPartitioner::new(1).partition(&g, 16));
        assert!(
            qg.replication_factor < qh.replication_factor,
            "Ginger {} should beat HybridHash {}",
            qg.replication_factor,
            qh.replication_factor
        );
    }

    #[test]
    fn zero_sweeps_equals_hybrid_anchoring() {
        let g = gen::cycle(40);
        let a = GingerPartitioner::new(1).with_sweeps(0).partition(&g, 4);
        assert!(a.is_valid_for(&g));
    }

    #[test]
    fn valid_and_deterministic() {
        let g = gen::rmat(&gen::RmatConfig::graph500(8, 4, 9));
        let a = GingerPartitioner::new(5).partition(&g, 8);
        assert!(a.is_valid_for(&g));
        assert_eq!(a, GingerPartitioner::new(5).partition(&g, 8));
    }

    #[test]
    fn two_cliques_mostly_separate() {
        let g = gen::two_cliques_bridge(12);
        let a = GingerPartitioner::new(2).partition(&g, 2);
        let q = PartitionQuality::measure(&g, &a);
        // Good refinement should land close to the ideal cut (RF ≈ 1).
        assert!(q.replication_factor < 1.6, "RF {}", q.replication_factor);
    }
}
