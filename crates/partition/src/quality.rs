//! Partitioning-quality metrics: replication factor and balance.
//!
//! * **Replication factor** (paper Equation 1):
//!   `RF = (1/|V|) · Σ_{p∈P} |V(E_p)|` — the primary quality metric of the
//!   whole evaluation (Figures 8, Table 4, Table 5's "RF" column, Table 6).
//! * **Balance** (paper §7.6): `B({x_p}) = max_p x_p / mean_p x_p`; applied
//!   to `|E_p|` (edge balance, "EB") and `|V(E_p)|` (vertex balance, "VB").
//!
//! `measure` runs in `O(Σ deg(v))` using a stamp array instead of per-vertex
//! hash sets — no allocation in the inner loop.

use crate::assignment::EdgeAssignment;
use dne_graph::hash::FastSet;
use dne_graph::Graph;

/// Quality summary of one edge partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionQuality {
    /// Replication factor `RF ≥ 1` (1.0 = no vertex is replicated).
    pub replication_factor: f64,
    /// Edge balance `max |E_p| / mean |E_p|` (1.0 = perfectly balanced).
    pub edge_balance: f64,
    /// Vertex balance `max |V(E_p)| / mean |V(E_p)|`.
    pub vertex_balance: f64,
    /// `|E_p|` per partition.
    pub edge_counts: Vec<u64>,
    /// `|V(E_p)|` per partition.
    pub vertex_counts: Vec<u64>,
    /// `Σ_p |V(E_p)|` (total vertex replicas, numerator of RF).
    pub total_replicas: u64,
}

impl PartitionQuality {
    /// Measure the quality of `assignment` on `g`.
    ///
    /// # Panics
    /// If the assignment does not cover exactly `g`'s edges.
    pub fn measure(g: &Graph, assignment: &EdgeAssignment) -> Self {
        assert!(assignment.is_valid_for(g), "assignment does not match graph");
        let k = assignment.num_partitions() as usize;
        let mut edge_counts = vec![0u64; k];
        for &p in assignment.as_slice() {
            edge_counts[p as usize] += 1;
        }
        // |V(E_p)|: for each vertex, count each distinct incident partition
        // once.
        let mut vertex_counts = vec![0u64; k];
        if g.has_adjacency() {
            // Adjacency walk: edges of a vertex are visited consecutively,
            // so stamp[p] == v+1 marks "already counted for this vertex" —
            // no allocation in the inner loop.
            let mut stamp = vec![0u64; k];
            for v in g.vertices() {
                let marker = v + 1;
                for &e in g.incident_edges(v) {
                    let p = assignment.part_of(e) as usize;
                    if stamp[p] != marker {
                        stamp[p] = marker;
                        vertex_counts[p] += 1;
                    }
                }
            }
        } else {
            // Adjacency-free storage (chunk-streamed): one sequential edge
            // scan, deduplicating (vertex, partition) pairs in a hash set.
            // O(total replicas) memory instead of the adjacency arrays the
            // out-of-core backend deliberately avoids.
            let mut seen: FastSet<(u64, u32)> = FastSet::default();
            g.for_each_edge(|e, u, v| {
                let p = assignment.part_of(e);
                if seen.insert((u, p)) {
                    vertex_counts[p as usize] += 1;
                }
                if seen.insert((v, p)) {
                    vertex_counts[p as usize] += 1;
                }
            });
        }
        let total_replicas: u64 = vertex_counts.iter().sum();
        let nv = g.num_vertices();
        let balance = |xs: &[u64]| -> f64 {
            let max = xs.iter().copied().max().unwrap_or(0) as f64;
            let mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
            if mean == 0.0 {
                1.0
            } else {
                max / mean
            }
        };
        PartitionQuality {
            replication_factor: if nv == 0 { 0.0 } else { total_replicas as f64 / nv as f64 },
            edge_balance: balance(&edge_counts),
            vertex_balance: balance(&vertex_counts),
            edge_counts,
            vertex_counts,
            total_replicas,
        }
    }

    /// Whether the balance constraint `max_p |E_p| < α·|E|/|P|` (paper
    /// Equation 2) holds for the given imbalance factor `alpha`.
    pub fn satisfies_balance(&self, alpha: f64) -> bool {
        let total: u64 = self.edge_counts.iter().sum();
        let k = self.edge_counts.len() as f64;
        let cap = alpha * total as f64 / k;
        self.edge_counts.iter().all(|&c| (c as f64) <= cap.ceil())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::EdgeAssignment;
    use dne_graph::gen;

    #[test]
    fn single_partition_has_rf_one_for_connected_graph() {
        let g = gen::complete(5);
        let a = EdgeAssignment::new(vec![0; g.num_edges() as usize], 1);
        let q = PartitionQuality::measure(&g, &a);
        assert!((q.replication_factor - 1.0).abs() < 1e-12);
        assert_eq!(q.edge_balance, 1.0);
        assert_eq!(q.total_replicas, 5);
    }

    #[test]
    fn star_split_replicates_hub() {
        // Star with hub 0 and 4 spokes; 2 partitions with 2 edges each.
        let g = gen::star(5);
        let a = EdgeAssignment::new(vec![0, 0, 1, 1], 2);
        let q = PartitionQuality::measure(&g, &a);
        // V(E_0) = {0, s1, s2}, V(E_1) = {0, s3, s4} → 6 replicas / 5 verts.
        assert_eq!(q.total_replicas, 6);
        assert!((q.replication_factor - 6.0 / 5.0).abs() < 1e-12);
        assert_eq!(q.vertex_counts, vec![3, 3]);
    }

    #[test]
    fn worst_case_rf_on_path() {
        // Path 0-1-2: edges (0,1),(1,2) in different partitions → vertex 1
        // replicated.
        let g = gen::path(3);
        let a = EdgeAssignment::new(vec![0, 1], 2);
        let q = PartitionQuality::measure(&g, &a);
        assert_eq!(q.total_replicas, 4);
        assert!((q.replication_factor - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn balance_constraint_check() {
        let g = gen::cycle(8);
        let balanced = EdgeAssignment::from_fn(&g, 4, |e| (e % 4) as u32);
        let q = PartitionQuality::measure(&g, &balanced);
        assert!(q.satisfies_balance(1.0));
        let skewed = EdgeAssignment::from_fn(&g, 4, |e| if e < 5 { 0 } else { (e % 4) as u32 });
        let q2 = PartitionQuality::measure(&g, &skewed);
        assert!(!q2.satisfies_balance(1.1));
        assert!(q2.edge_balance > 2.0);
    }

    #[test]
    fn streamed_storage_measures_identically() {
        // The adjacency-free scan path must agree exactly with the stamp
        // walk. Round-trip the graph through a chunked file opened with
        // the chunk-streamed backend (no adjacency arrays) and re-measure.
        let g = gen::rmat(&gen::RmatConfig::graph500(6, 6, 11));
        let a = EdgeAssignment::from_fn(&g, 5, |e| (e % 5) as u32);
        let q = PartitionQuality::measure(&g, &a);
        let dir = std::env::temp_dir().join("dne_partition_quality_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("streamed.chunks");
        dne_graph::io::write_chunked(&g, &p, 7).unwrap();
        let s = dne_graph::io::open_chunk_streamed(&p).unwrap();
        assert!(!s.has_adjacency());
        assert_eq!(PartitionQuality::measure(&s, &a), q);
    }

    #[test]
    fn rf_lower_bound_is_one_when_all_vertices_covered() {
        // Any partitioning of a graph without isolated vertices has RF >= 1.
        let g = gen::rmat(&gen::RmatConfig::graph500(7, 8, 3));
        let a = EdgeAssignment::from_fn(&g, 8, |e| (e % 8) as u32);
        let q = PartitionQuality::measure(&g, &a);
        // Isolated vertices (degree 0) reduce RF below 1 in principle; RMAT
        // may have them, so only check positivity and sanity here.
        assert!(q.replication_factor > 0.0);
        assert!(q.total_replicas >= g.vertices().filter(|&v| g.degree(v) > 0).count() as u64);
    }
}
