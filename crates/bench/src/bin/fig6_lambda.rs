//! Figure 6 reproduction: number of iterations and replication factor as a
//! function of the expansion factor λ (32 partitions, 4 mid-size graphs).
//!
//! Paper findings to reproduce: iterations decrease roughly linearly in
//! log-λ (fewer than ~10 iterations at λ = 1); RF is flat-to-slightly-
//! decreasing from λ = 1e-4 to 1e-1 and degrades at λ = 1.0, motivating
//! the default λ = 0.1.

use dne_bench::datasets;
use dne_bench::table::{f2, parse_mode, Table};
use dne_core::{DistributedNe, NeConfig};
use dne_partition::PartitionQuality;

fn main() {
    let quick = parse_mode();
    let k = 32;
    let lambdas = [1e-4, 1e-3, 1e-2, 1e-1, 1.0];
    let mut table = Table::new(&["dataset", "lambda", "iterations", "RF"]);
    for d in datasets::midsize() {
        let g = if quick { d.build_quick() } else { d.build() };
        eprintln!("{}: |V|={} |E|={}", d.name, g.num_vertices(), g.num_edges());
        for &lambda in &lambdas {
            let ne = DistributedNe::new(NeConfig::default().with_seed(7).with_lambda(lambda));
            let (a, stats) = ne.partition_with_stats(&g, k);
            let q = PartitionQuality::measure(&g, &a);
            table.row(vec![
                d.name.to_string(),
                format!("{lambda:.0e}"),
                stats.iterations.to_string(),
                f2(q.replication_factor),
            ]);
        }
    }
    println!("\n=== Figure 6: iterations and RF vs expansion factor (|P| = {k}) ===");
    table.print();
    if let Ok(p) = table.write_tsv("fig6_lambda") {
        eprintln!("wrote {}", p.display());
    }
}
