//! Spinner-like balanced label propagation (Martella et al., ICDE 2017).
//!
//! "Spinner is the state-of-the-art hash-based vertex partitioning method,
//! where vertices are assigned randomly followed by the iterative
//! refinements based on Label Propagation" (paper §7.1). The initial random
//! assignment is what limits its final quality — the paper groups it with
//! the hash-based family for exactly this reason, and Figure 8 shows it
//! behind the direct methods.

use crate::assignment::PartitionId;
use crate::traits::VertexPartitioner;
use crate::vertex::label_propagation_refine;
use dne_graph::hash::mix2;
use dne_graph::Graph;

/// Spinner-style vertex partitioner: random init + balanced LP.
#[derive(Debug, Clone)]
pub struct SpinnerPartitioner {
    seed: u64,
    /// Maximum label-propagation sweeps (Spinner default ~ tens).
    pub sweeps: usize,
    /// Capacity slack for the balance penalty (Spinner's c ≈ 1.05).
    pub slack: f64,
}

impl SpinnerPartitioner {
    /// Seeded constructor with Spinner-flavoured defaults.
    pub fn new(seed: u64) -> Self {
        Self { seed, sweeps: 30, slack: 1.05 }
    }
}

impl VertexPartitioner for SpinnerPartitioner {
    fn name(&self) -> String {
        "Spinner-like".into()
    }

    fn partition_vertices(&self, g: &Graph, k: PartitionId) -> Vec<PartitionId> {
        // Random initial assignment — the defining (and limiting) step.
        let mut labels: Vec<PartitionId> =
            (0..g.num_vertices()).map(|v| (mix2(self.seed, v) % k as u64) as PartitionId).collect();
        label_propagation_refine(g, &mut labels, k as usize, self.sweeps, self.slack);
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::PartitionQuality;
    use crate::traits::{EdgePartitioner, VertexToEdge};
    use dne_graph::gen;

    #[test]
    fn labels_in_range_and_deterministic() {
        let g = gen::rmat(&gen::RmatConfig::graph500(8, 4, 1));
        let s = SpinnerPartitioner::new(3);
        let l1 = s.partition_vertices(&g, 8);
        let l2 = s.partition_vertices(&g, 8);
        assert_eq!(l1, l2);
        assert!(l1.iter().all(|&p| p < 8));
    }

    #[test]
    fn beats_pure_random_conversion_on_clustered_graph() {
        let g = gen::two_cliques_bridge(16);
        let spinner = VertexToEdge::new(SpinnerPartitioner::new(1), 1);
        let qs = PartitionQuality::measure(&g, &spinner.partition(&g, 2));
        // Ideal RF ≈ 1.03; LP should find the clique structure.
        assert!(qs.replication_factor < 1.5, "RF {}", qs.replication_factor);
    }

    #[test]
    fn respects_edge_capacity_roughly() {
        let g = gen::rmat(&gen::RmatConfig::graph500(9, 8, 2));
        let labels = SpinnerPartitioner::new(2).partition_vertices(&g, 4);
        let mut deg_loads = [0u64; 4];
        for v in g.vertices() {
            deg_loads[labels[v as usize] as usize] += g.degree(v);
        }
        let mean = deg_loads.iter().sum::<u64>() as f64 / 4.0;
        let max = *deg_loads.iter().max().unwrap() as f64;
        assert!(max / mean < 1.6, "degree-load balance {}", max / mean);
    }
}
