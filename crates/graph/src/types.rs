//! Fundamental identifier types shared across the workspace.
//!
//! Vertex and edge identifiers are 64-bit to match the paper's target scale
//! (a trillion-edge graph has `2^30` vertices and `2^40` edges; 32 bits would
//! overflow on edge ids). The simulated experiments in this repository run at
//! reduced scale but keep the trillion-capable types so the library is usable
//! as-released.

/// Global vertex identifier. Vertices of a [`crate::Graph`] are numbered
/// `0..num_vertices` densely.
pub type VertexId = u64;

/// Global edge identifier. Edges of a [`crate::Graph`] are numbered
/// `0..num_edges` densely, in canonical sorted order of their endpoint pair.
pub type EdgeId = u64;

/// Sentinel for "no vertex". Never a valid id of a constructed graph.
pub const INVALID_VERTEX: VertexId = VertexId::MAX;

/// An undirected edge expressed as its canonical endpoint pair `(u, v)` with
/// `u < v`. Self loops are rejected at build time, so `u != v` always holds
/// for edges stored in a [`crate::Graph`].
pub type Edge = (VertexId, VertexId);

/// Canonicalize an endpoint pair so that the smaller id comes first.
///
/// ```
/// use dne_graph::types::canonical;
/// assert_eq!(canonical(7, 3), (3, 7));
/// assert_eq!(canonical(3, 7), (3, 7));
/// ```
#[inline]
pub fn canonical(u: VertexId, v: VertexId) -> Edge {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_orders_endpoints() {
        assert_eq!(canonical(1, 2), (1, 2));
        assert_eq!(canonical(2, 1), (1, 2));
        assert_eq!(canonical(5, 5), (5, 5));
        assert_eq!(canonical(0, VertexId::MAX), (0, VertexId::MAX));
    }
}
