//! The CSR graph type shared by every partitioner and application.

use std::sync::Arc;

use crate::storage::{GraphStorage, InMemoryCsr, StorageKind};
use crate::types::{Edge, EdgeId, VertexId};
use crate::HeapSize;

/// An undirected, unweighted graph in compressed sparse row (CSR) form,
/// served by a pluggable [`GraphStorage`] backend.
///
/// Logical layout (paper §4: "the core components of the graph are stored
/// in CSR") — identical across backends:
///
/// * `edges[e]` — the canonical endpoint pair of edge `e` (`u < v`), sorted.
/// * `offsets[v] .. offsets[v+1]` — the adjacency slice of vertex `v`.
/// * `adj_v[i]` / `adj_e[i]` — the neighbor and the global edge id of the
///   `i`-th incident arc. Every edge contributes one arc at each endpoint,
///   so `adj_v.len() == 2 * edges.len()`.
///
/// Invariants (checked in debug builds and by tests):
/// * edges are canonical (`u < v`), strictly sorted, and self-loop free;
/// * `offsets` is non-decreasing with `offsets[0] == 0` and
///   `offsets[n] == 2|E|`;
/// * `adj_e[i]` always names an edge incident to the owning vertex.
///
/// Where those arrays *live* is the backend's business
/// ([`StorageKind`]): on the heap (the default), in a read-only
/// memory-mapped file, or never materialized at all (chunk-streamed).
/// Backends are capability-graded — [`Self::edges`] needs a contiguous
/// in-memory slice and the adjacency accessors need adjacency arrays;
/// each documents the panic it raises on a backend that cannot serve it.
/// The portable way to touch every edge on any backend is
/// [`Self::edge_iter`] / [`Self::for_each_edge`].
///
/// Equality compares `|V|`, `|E|`, and the canonical edge streams, so two
/// graphs compare equal exactly when they describe the same graph — CSR
/// adjacency is a pure function of the canonical edge list, and backends
/// are compared by content, not by representation. `Clone` shares the
/// (immutable) backend instead of deep-copying it.
#[derive(Clone)]
pub struct Graph {
    storage: Arc<dyn GraphStorage>,
}

impl Graph {
    /// Build from a canonical (sorted, deduplicated, loop-free) edge list
    /// on the in-memory backend.
    ///
    /// Prefer [`crate::EdgeListBuilder`] which establishes those properties.
    ///
    /// # Panics
    /// If an endpoint is out of range, a self loop is present, or the list is
    /// not strictly sorted.
    pub fn from_canonical_edges(num_vertices: VertexId, edges: Vec<Edge>) -> Self {
        Self::from_storage(Arc::new(InMemoryCsr::from_canonical_edges(num_vertices, edges)))
    }

    /// Build from a canonical edge list like [`Self::from_canonical_edges`],
    /// using up to `threads` threads for validation, degree counting, and
    /// the adjacency fill (see `crate::parallel` for the scheme).
    ///
    /// The result is byte-identical to the sequential constructor for every
    /// thread count; `threads == 1` and small inputs take the sequential
    /// path directly.
    ///
    /// # Panics
    /// As [`Self::from_canonical_edges`], with the same messages.
    pub fn from_canonical_edges_parallel(
        num_vertices: VertexId,
        edges: Vec<Edge>,
        threads: usize,
    ) -> Self {
        if threads <= 1 || edges.len() < crate::parallel::PAR_MIN_ITEMS {
            return Self::from_canonical_edges(num_vertices, edges);
        }
        let csr = crate::parallel::build_csr_parallel(num_vertices, &edges, threads);
        Self::from_storage(Arc::new(InMemoryCsr {
            num_vertices,
            edges: edges.into_boxed_slice(),
            offsets: csr.offsets.into_boxed_slice(),
            adj_v: csr.adj_v.into_boxed_slice(),
            adj_e: csr.adj_e.into_boxed_slice(),
        }))
    }

    /// Wrap an already-built storage backend. This is how the out-of-core
    /// openers in [`crate::io`] construct graphs; it also lets downstream
    /// code plug in its own [`GraphStorage`] implementation.
    pub fn from_storage(storage: Arc<dyn GraphStorage>) -> Self {
        Self { storage }
    }

    /// Which storage backend serves this graph.
    #[inline]
    pub fn storage_kind(&self) -> StorageKind {
        self.storage.kind()
    }

    /// The backend itself (for capability probing or storage-aware code).
    #[inline]
    pub fn storage(&self) -> &Arc<dyn GraphStorage> {
        &self.storage
    }

    /// Whether this backend can serve the adjacency accessors
    /// ([`Self::neighbors`], [`Self::neighbor_vertices`],
    /// [`Self::incident_edges`]). `false` only for chunk-streamed storage.
    #[inline]
    pub fn has_adjacency(&self) -> bool {
        self.storage.has_adjacency()
    }

    /// Live heap bytes owned by the storage backend right now — what the
    /// mem-score accounting charges for holding the graph. In-memory CSR
    /// reports its full arrays; mmap reports 0 (pages belong to the OS);
    /// chunk-streamed reports its frame index plus the one cached chunk.
    #[inline]
    pub fn resident_bytes(&self) -> usize {
        self.storage.resident_bytes()
    }

    /// Number of vertices `|V|` (ids are `0..num_vertices`).
    #[inline]
    pub fn num_vertices(&self) -> VertexId {
        self.storage.num_vertices()
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.storage.num_edges()
    }

    /// Average number of edges per vertex (`|E| / |V|`, the paper's
    /// "edge factor" is `2|E|/|V|`... no: Graph500's edge factor counts
    /// generated edges per vertex, i.e. `|E|/|V|` before dedup; we report the
    /// post-dedup density here).
    #[inline]
    pub fn density(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Degree of vertex `v`. Available on every backend (chunk-streamed
    /// storage computes all degrees lazily with one extra pass).
    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.storage.degree(v)
    }

    /// The canonical endpoints of edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.storage.edge(e)
    }

    /// All edges in canonical order (edge id == slice index).
    ///
    /// # Panics
    /// If the backend holds no contiguous in-memory edge array (mmap,
    /// chunk-streamed). Use [`Self::edge_iter`] or
    /// [`Self::for_each_edge`] for backend-agnostic edge scans.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        self.storage.edge_slice().unwrap_or_else(|| {
            panic!(
                "Graph::edges() needs a contiguous in-memory edge slice, which {} storage \
                 does not keep; use edge_iter()/for_each_edge() instead",
                self.storage.kind()
            )
        })
    }

    /// Iterate every edge in canonical order on any backend. The iterator
    /// pulls blocks of edges from the storage, so a chunk-streamed graph
    /// is traversed with bounded memory.
    ///
    /// # Panics
    /// On disk-backed storage, if the underlying file fails mid-iteration
    /// (see the failure-semantics contract on [`GraphStorage`]). Use
    /// [`Self::try_for_each_edge`] to observe I/O errors instead.
    pub fn edge_iter(&self) -> EdgeIter<'_> {
        EdgeIter {
            storage: self.storage.as_ref(),
            buf: Vec::new(),
            pos: 0,
            next_block: 0,
            num_edges: self.num_edges(),
        }
    }

    /// Visit every edge in canonical order as `f(edge_id, u, v)` on any
    /// backend — the bulk-scan primitive the distributed partitioner uses.
    ///
    /// # Panics
    /// On an I/O failure of disk-backed storage; use
    /// [`Self::try_for_each_edge`] to handle that as an error.
    pub fn for_each_edge(&self, f: impl FnMut(EdgeId, VertexId, VertexId)) {
        self.try_for_each_edge(f)
            .unwrap_or_else(|e| panic!("edge scan failed on {} storage: {e}", self.storage.kind()));
    }

    /// Fallible [`Self::for_each_edge`]: visits every edge in canonical
    /// order, surfacing storage I/O problems as errors.
    pub fn try_for_each_edge(
        &self,
        mut f: impl FnMut(EdgeId, VertexId, VertexId),
    ) -> std::io::Result<()> {
        self.storage.try_for_each_edge(&mut f)
    }

    /// Iterate `(neighbor, edge_id)` pairs incident to `v`.
    ///
    /// # Panics
    /// On a backend without adjacency arrays (chunk-streamed); check
    /// [`Self::has_adjacency`] first when the backend is caller-chosen.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let (adj_v, adj_e) = self.adjacency_or_panic(v);
        adj_v.iter().copied().zip(adj_e.iter().copied())
    }

    /// Neighbor vertex ids of `v` (no edge ids).
    ///
    /// # Panics
    /// As [`Self::neighbors`].
    #[inline]
    pub fn neighbor_vertices(&self, v: VertexId) -> &[VertexId] {
        self.adjacency_or_panic(v).0
    }

    /// Incident edge ids of `v`.
    ///
    /// # Panics
    /// As [`Self::neighbors`].
    #[inline]
    pub fn incident_edges(&self, v: VertexId) -> &[EdgeId] {
        self.adjacency_or_panic(v).1
    }

    #[inline]
    fn adjacency_or_panic(&self, v: VertexId) -> (&[VertexId], &[EdgeId]) {
        self.storage.adjacency(v).unwrap_or_else(|| {
            panic!(
                "adjacency of vertex {v} is unavailable: {} storage keeps no adjacency \
                 arrays (check Graph::has_adjacency, or materialize the graph first)",
                self.storage.kind()
            )
        })
    }

    /// Iterate all vertex ids.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices()
    }

    /// Maximum degree over all vertices (0 for empty graphs).
    pub fn max_degree(&self) -> u64 {
        (0..self.num_vertices()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// The other endpoint of edge `e` as seen from `v`.
    ///
    /// # Panics
    /// In debug builds if `v` is not an endpoint of `e`.
    #[inline]
    pub fn opposite(&self, e: EdgeId, v: VertexId) -> VertexId {
        let (a, b) = self.edge(e);
        debug_assert!(v == a || v == b, "vertex {v} is not an endpoint of edge {e}");
        if v == a {
            b
        } else {
            a
        }
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("storage", &self.storage.kind())
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges())
            .finish()
    }
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.num_vertices() == other.num_vertices()
            && self.num_edges() == other.num_edges()
            && self.edge_iter().eq(other.edge_iter())
    }
}

impl Eq for Graph {}

/// Block-buffered iterator over a graph's canonical edge stream — the
/// backend-agnostic counterpart of slicing [`Graph::edges`]. Created by
/// [`Graph::edge_iter`].
#[derive(Debug)]
pub struct EdgeIter<'a> {
    storage: &'a dyn GraphStorage,
    buf: Vec<Edge>,
    pos: usize,
    next_block: EdgeId,
    num_edges: u64,
}

impl Iterator for EdgeIter<'_> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        loop {
            if self.pos < self.buf.len() {
                let e = self.buf[self.pos];
                self.pos += 1;
                return Some(e);
            }
            if self.next_block >= self.num_edges {
                return None;
            }
            self.storage.read_edge_block(self.next_block, &mut self.buf);
            debug_assert!(!self.buf.is_empty());
            self.next_block += self.buf.len() as u64;
            self.pos = 0;
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.buf.len() - self.pos) as u64 + (self.num_edges - self.next_block);
        (left as usize, Some(left as usize))
    }
}

impl ExactSizeIterator for EdgeIter<'_> {}

impl HeapSize for Graph {
    fn heap_bytes(&self) -> usize {
        self.storage.resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeListBuilder;

    fn triangle_plus_tail() -> Graph {
        // 0-1, 1-2, 0-2 (triangle), 2-3 (tail)
        let mut b = EdgeListBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        b.into_graph(4)
    }

    #[test]
    fn csr_roundtrip_small() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        let n2: Vec<_> = g.neighbor_vertices(2).to_vec();
        assert_eq!(n2.len(), 3);
        assert!(n2.contains(&0) && n2.contains(&1) && n2.contains(&3));
    }

    #[test]
    fn adjacency_edge_ids_are_consistent() {
        let g = triangle_plus_tail();
        for v in g.vertices() {
            for (nbr, e) in g.neighbors(v) {
                let (a, b) = g.edge(e);
                assert!((a == v && b == nbr) || (a == nbr && b == v));
                assert_eq!(g.opposite(e, v), nbr);
            }
        }
    }

    #[test]
    fn sum_of_degrees_is_twice_edges() {
        let g = triangle_plus_tail();
        let total: u64 = g.vertices().map(|v| g.degree(v)).sum();
        assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_canonical_edges(0, vec![]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edge_iter().count(), 0);
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let mut b = EdgeListBuilder::new();
        b.push(0, 1);
        let g = b.into_graph(5);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbor_vertices(3), &[] as &[VertexId]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_endpoint() {
        Graph::from_canonical_edges(2, vec![(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn rejects_unsorted_edges() {
        Graph::from_canonical_edges(4, vec![(1, 2), (0, 1)]);
    }

    #[test]
    fn heap_bytes_is_positive_for_nonempty() {
        let g = triangle_plus_tail();
        assert!(g.heap_bytes() > 0);
    }

    #[test]
    fn default_backend_is_in_memory_with_full_capabilities() {
        let g = triangle_plus_tail();
        assert_eq!(g.storage_kind(), StorageKind::InMemory);
        assert!(g.has_adjacency());
        assert_eq!(g.resident_bytes(), g.heap_bytes());
    }

    #[test]
    fn edge_iter_matches_edge_slice_and_scan() {
        let g = triangle_plus_tail();
        let from_iter: Vec<Edge> = g.edge_iter().collect();
        assert_eq!(from_iter.as_slice(), g.edges());
        assert_eq!(g.edge_iter().len(), g.num_edges() as usize);
        let mut from_scan = Vec::new();
        g.for_each_edge(|e, u, v| {
            assert_eq!(e as usize, from_scan.len());
            from_scan.push((u, v));
        });
        assert_eq!(from_scan, from_iter);
    }

    #[test]
    fn clone_shares_storage_and_compares_equal() {
        let g = triangle_plus_tail();
        let c = g.clone();
        assert!(Arc::ptr_eq(g.storage(), c.storage()));
        assert_eq!(g, c);
        let other = Graph::from_canonical_edges(4, vec![(0, 1), (1, 2)]);
        assert_ne!(g, other);
    }
}
