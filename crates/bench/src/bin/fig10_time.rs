//! Figure 10 reproduction: elapsed partitioning time.
//!
//! Sub-experiments (select with an argument; default runs all):
//! * `real`  — Fig 10(a–g): time vs number of machines on the stand-ins;
//! * `ef`    — Fig 10(h): time vs RMAT edge factor at |P| = 64;
//! * `scale` — Fig 10(i): time vs RMAT scale at a fixed edge factor;
//! * `weak`  — Fig 10(j): weak scaling toward the trillion-edge setting
//!   (fixed vertices/machine, machine count swept ×4; the paper reaches
//!   Scale30/EF1024 on 256 machines — we run the same design scaled down
//!   and report the vertex-selection share of runtime, whose growth is the
//!   paper's explanation for the linear time increase).
//!
//! Baselines: ParMETIS-like / Sheep-like / XtraPuLP-like are sequential
//! re-implementations, so their absolute times are not cluster times; the
//! comparison shows the *shape* (how D.NE's time scales with machines,
//! edge factor and graph scale).

use std::time::Instant;

use dne_bench::datasets::{self, DATASETS};
use dne_bench::table::{parse_mode, secs, Table};
use dne_core::{DistributedNe, NeConfig};
use dne_graph::gen::{rmat_parallel, RmatConfig};
use dne_graph::parallel::default_ingest_threads;
use dne_graph::Graph;
use dne_partition::vertex::{MetisLikePartitioner, SheepPartitioner, XtraPulpPartitioner};
use dne_partition::{EdgePartitioner, VertexToEdge};

fn baselines(seed: u64) -> Vec<Box<dyn EdgePartitioner>> {
    vec![
        Box::new(VertexToEdge::new(MetisLikePartitioner::new(seed), seed)),
        Box::new(SheepPartitioner::new()),
        Box::new(VertexToEdge::new(XtraPulpPartitioner::new(seed), seed)),
    ]
}

fn time_all(name: &str, g: &Graph, k: u32, table: &mut Table) {
    let ne = DistributedNe::new(NeConfig::default().with_seed(9));
    let (_, stats) = ne.partition_with_stats(g, k);
    table.row(vec![
        name.into(),
        k.to_string(),
        "DistributedNE".into(),
        secs(stats.elapsed),
        stats.iterations.to_string(),
    ]);
    for b in baselines(9) {
        let t = Instant::now();
        let _ = b.partition(g, k);
        table.row(vec![name.into(), k.to_string(), b.name(), secs(t.elapsed()), "-".into()]);
    }
}

fn run_real(quick: bool) {
    let ks: &[u32] = if quick { &[4, 16, 64] } else { &[4, 8, 16, 32, 64] };
    let sets: Vec<&datasets::Dataset> =
        if quick { datasets::midsize() } else { DATASETS.iter().collect() };
    let mut table = Table::new(&["dataset", "|P|", "method", "time_s", "iterations"]);
    for d in sets {
        let g = if quick { d.build_quick() } else { d.build() };
        eprintln!("{}: |E|={}", d.name, g.num_edges());
        for &k in ks {
            time_all(d.name, &g, k, &mut table);
        }
    }
    println!("\n=== Figure 10(a-g): elapsed time vs machines ===");
    table.print();
    let _ = table.write_tsv("fig10_real");
}

fn run_ef(quick: bool) {
    let scale = if quick { 12 } else { 14 };
    let efs: &[u64] = if quick { &[4, 16, 64] } else { &[4, 16, 64, 256] };
    let mut table = Table::new(&["graph", "|P|", "method", "time_s", "iterations"]);
    for &ef in efs {
        let g = rmat_parallel(&RmatConfig::graph500(scale, ef, 5), default_ingest_threads());
        eprintln!("RMAT s{scale} ef{ef}: |E|={}", g.num_edges());
        time_all(&format!("RMAT-s{scale}-ef{ef}"), &g, 64, &mut table);
    }
    println!("\n=== Figure 10(h): elapsed time vs edge factor (|P| = 64) ===");
    table.print();
    let _ = table.write_tsv("fig10_ef");
}

fn run_scale(quick: bool) {
    let scales: &[u32] = if quick { &[11, 12, 13] } else { &[12, 13, 14] };
    let ef = if quick { 32 } else { 64 };
    let mut table = Table::new(&["graph", "|P|", "method", "time_s", "iterations"]);
    for &s in scales {
        let g = rmat_parallel(&RmatConfig::graph500(s, ef, 5), default_ingest_threads());
        eprintln!("RMAT s{s} ef{ef}: |E|={}", g.num_edges());
        time_all(&format!("RMAT-s{s}-ef{ef}"), &g, 64, &mut table);
    }
    println!("\n=== Figure 10(i): elapsed time vs graph scale (EF {ef}, |P| = 64) ===");
    table.print();
    let _ = table.write_tsv("fig10_scale");
}

fn run_weak(quick: bool) {
    // Fixed vertices per machine; machines ×4 per step (paper: 2^22/machine,
    // machines ∈ {4,16,64,256}, EF up to 1024 ⇒ the trillion-edge run).
    let verts_per_machine: u32 = if quick { 9 } else { 11 }; // log2
    let machines: &[u32] = if quick { &[4, 16, 64] } else { &[4, 16, 64, 256] };
    let efs: &[u64] = if quick { &[4, 16] } else { &[4, 16, 64] };
    let mut table =
        Table::new(&["machines", "EF", "|E|", "time_s", "iterations", "selection_share"]);
    for &ef in efs {
        for &p in machines {
            let scale = verts_per_machine + p.ilog2();
            let g = rmat_parallel(&RmatConfig::graph500(scale, ef, 5), default_ingest_threads());
            let ne = DistributedNe::new(NeConfig::default().with_seed(9));
            let (_, stats) = ne.partition_with_stats(&g, p);
            table.row(vec![
                p.to_string(),
                ef.to_string(),
                g.num_edges().to_string(),
                secs(stats.elapsed),
                stats.iterations.to_string(),
                format!("{:.1}%", 100.0 * stats.selection_share()),
            ]);
            eprintln!("machines {p} ef {ef}: done in {:?}", stats.elapsed);
        }
    }
    println!("\n=== Figure 10(j): weak scaling (2^{verts_per_machine} vertices/machine) ===",);
    table.print();
    let _ = table.write_tsv("fig10_weak");
}

fn main() {
    let quick = parse_mode();
    let which: Vec<String> =
        std::env::args().skip(1).filter(|a| a != "full" && a != "quick").collect();
    let all = which.is_empty();
    if all || which.iter().any(|w| w == "real") {
        run_real(quick);
    }
    if all || which.iter().any(|w| w == "ef") {
        run_ef(quick);
    }
    if all || which.iter().any(|w| w == "scale") {
        run_scale(quick);
    }
    if all || which.iter().any(|w| w == "weak") {
        run_weak(quick);
    }
}
