//! Configuration of a Distributed NE run.

use std::path::PathBuf;

use dne_runtime::{BatchConfig, CollectiveTopology, TransportKind};

/// Per-round checkpointing policy: every `every` completed rounds each
/// rank writes a `DNESNAP1` snapshot of its machine state (see
/// [`crate::snapshot`]) into `dir`, keeping the two most recent rounds so
/// a restarted job can agree on the newest round *every* rank completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Write a snapshot every this many completed rounds (≥ 1).
    pub every: u64,
    /// Directory the per-rank snapshot files live in (created on demand).
    pub dir: PathBuf,
}

impl CheckpointPolicy {
    /// Environment variable holding the round interval.
    pub const EVERY_ENV_VAR: &'static str = "DNE_CHECKPOINT_EVERY";
    /// Environment variable overriding the snapshot directory.
    pub const DIR_ENV_VAR: &'static str = "DNE_CHECKPOINT_DIR";
    /// Snapshot directory used when `DNE_CHECKPOINT_DIR` is unset.
    pub const DEFAULT_DIR: &'static str = "dne_checkpoints";

    /// Checkpoint every `every` rounds into `dir`.
    pub fn new(every: u64, dir: impl Into<PathBuf>) -> Self {
        assert!(every >= 1, "checkpoint interval must be at least 1 round");
        Self { every, dir: dir.into() }
    }

    /// The policy `DNE_CHECKPOINT_EVERY` / `DNE_CHECKPOINT_DIR` describe:
    /// `None` when `DNE_CHECKPOINT_EVERY` is unset or empty (checkpointing
    /// off, the default).
    ///
    /// # Panics
    /// Panics on a malformed value (zero, non-numeric, non-Unicode),
    /// naming the accepted form — a misconfigured run must fail loudly
    /// before it silently runs without fault tolerance.
    pub fn from_env() -> Option<Self> {
        let every = match std::env::var(Self::EVERY_ENV_VAR) {
            Ok(v) if !v.trim().is_empty() => v.trim().parse::<u64>().ok().filter(|&n| n >= 1),
            Err(std::env::VarError::NotUnicode(raw)) => panic!(
                "invalid {}: non-Unicode value {raw:?} (expected a round count >= 1)",
                Self::EVERY_ENV_VAR
            ),
            _ => return None,
        }
        .unwrap_or_else(|| panic!("invalid {}: expected a round count >= 1", Self::EVERY_ENV_VAR));
        let dir = match std::env::var(Self::DIR_ENV_VAR) {
            Ok(v) if !v.trim().is_empty() => PathBuf::from(v),
            Err(std::env::VarError::NotUnicode(raw)) => {
                panic!("invalid {}: non-Unicode value {raw:?}", Self::DIR_ENV_VAR)
            }
            _ => PathBuf::from(Self::DEFAULT_DIR),
        };
        Some(Self { every, dir })
    }
}

/// Tunable parameters of Distributed NE. Defaults follow the paper's
/// experimental setting (§7.1): imbalance factor `α = 1.1`, expansion factor
/// `λ = 0.1`.
#[derive(Debug, Clone)]
pub struct NeConfig {
    /// Imbalance factor `α ≥ 1` in the capacity constraint
    /// `max_p |E_p| < α·|E|/|P|` (Equation 2).
    pub alpha: f64,
    /// Expansion factor `0 < λ ≤ 1` of multi-expansion (Algorithm 4): each
    /// iteration expands `k = ⌈λ·|B_p|⌉` minimum-`D_rest` boundary vertices.
    /// `λ → 0` degenerates to single-vertex expansion (Algorithm 1); the
    /// paper picks 0.1 "to maximize the performance and quality" (Figure 6).
    pub lambda: f64,
    /// RNG seed: drives the 2D-hash salts, seed-vertex choices and random
    /// restarts. Equal seeds ⇒ identical partitions (the runtime's
    /// lock-step exchanges make the whole algorithm deterministic).
    pub seed: u64,
    /// Report per-machine live heap bytes to the runtime each iteration
    /// (the Figure 9 "mem score" accounting). Small overhead; on by default.
    pub track_memory: bool,
    /// Consecutive no-progress iterations tolerated before the leftover
    /// trickle kicks in (isolated edges assigned to the least-loaded
    /// partition). The paper leaves this corner unspecified; see DESIGN.md
    /// §6.5.
    pub stall_limit: u32,
    /// Transport backend of the simulated cluster: `Loopback` moves
    /// messages by pointer with estimated byte accounting, `Bytes` really
    /// serializes every envelope and charges exact bytes, `Tcp` carries
    /// the same frames over real localhost sockets. Partitioning results
    /// are identical under all three. `None` (the default) resolves the
    /// `DNE_TRANSPORT` environment variable at partition time (loopback
    /// when unset), so constructing a config never touches the environment.
    pub transport: Option<TransportKind>,
    /// Collective aggregation topology of the simulated cluster: `Flat`
    /// all-gathers (the reference), `Binomial` tree, or
    /// `RecursiveDoubling` — partitioning results are bit-identical under
    /// all three; only the collectives' message/byte schedule changes.
    /// `None` (the default) resolves the `DNE_COLLECTIVES` environment
    /// variable at partition time (flat when unset).
    pub collectives: Option<CollectiveTopology>,
    /// Coalescing policy for point-to-point envelopes: small
    /// same-destination messages are packed into multi-message frames,
    /// cutting the physical frame (and syscall) count without changing
    /// logical message/byte accounting or results. `None` (the default)
    /// resolves the `DNE_COMM_BATCH` environment variable at partition
    /// time (disabled when unset), so constructing a config never touches
    /// the environment.
    pub comm_batch: Option<BatchConfig>,
    /// Cap on boundary vertices expanded per iteration (the frontier
    /// budget). Multi-expansion normally pops `⌈λ·|B_p|⌉` vertices; on a
    /// memory-constrained machine running out-of-core storage that
    /// fan-out — and the selection/allocation traffic it generates — is
    /// the dominant transient working set, so bounding it trades
    /// iterations for peak memory. `None` (the default) keeps the paper's
    /// unbounded behavior and bit-identical results.
    pub frontier_budget: Option<u64>,
    /// Per-round checkpointing of the machine state for elastic fault
    /// tolerance (see [`crate::snapshot`]). `None` (the default) resolves
    /// `DNE_CHECKPOINT_EVERY` / `DNE_CHECKPOINT_DIR` at partition time
    /// (checkpointing off when unset), so constructing a config never
    /// touches the environment. Checkpointing never changes results: the
    /// snapshot write is a pure observer of the round loop.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Fault injection for recovery testing: the rank panics at the end of
    /// the given completed round (after its checkpoint write), simulating
    /// a mid-run crash. `None` (the default) resolves `DNE_FAULT_ROUND` at
    /// partition time (no fault when unset). Only ever set on the rank
    /// under test.
    pub fault_round: Option<u64>,
}

impl Default for NeConfig {
    fn default() -> Self {
        Self {
            alpha: 1.1,
            lambda: 0.1,
            seed: 0,
            track_memory: true,
            stall_limit: 3,
            transport: None,
            collectives: None,
            comm_batch: None,
            frontier_budget: None,
            checkpoint: None,
            fault_round: None,
        }
    }
}

impl NeConfig {
    /// Paper defaults with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the imbalance factor `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha >= 1.0, "alpha must be >= 1.0");
        self.alpha = alpha;
        self
    }

    /// Override the expansion factor `λ`.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0, 1]");
        self.lambda = lambda;
        self
    }

    /// Disable per-iteration memory reporting.
    pub fn without_memory_tracking(mut self) -> Self {
        self.track_memory = false;
        self
    }

    /// Select the transport backend explicitly (overrides `DNE_TRANSPORT`).
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = Some(transport);
        self
    }

    /// The backend a run will use: the explicit choice if one was made,
    /// otherwise whatever `DNE_TRANSPORT` says right now.
    pub fn resolved_transport(&self) -> TransportKind {
        self.transport.unwrap_or_else(TransportKind::from_env)
    }

    /// Select the collective topology explicitly (overrides
    /// `DNE_COLLECTIVES`).
    pub fn with_collectives(mut self, collectives: CollectiveTopology) -> Self {
        self.collectives = Some(collectives);
        self
    }

    /// The collective topology a run will use: the explicit choice if one
    /// was made, otherwise whatever `DNE_COLLECTIVES` says right now.
    pub fn resolved_collectives(&self) -> CollectiveTopology {
        self.collectives.unwrap_or_else(CollectiveTopology::from_env)
    }

    /// Select the envelope-coalescing policy explicitly (overrides
    /// `DNE_COMM_BATCH`). Pass [`BatchConfig::disabled`] to force classic
    /// one-frame-per-envelope behavior regardless of the environment.
    pub fn with_comm_batch(mut self, batch: BatchConfig) -> Self {
        self.comm_batch = Some(batch);
        self
    }

    /// The coalescing policy a run will use: the explicit choice if one
    /// was made, otherwise whatever `DNE_COMM_BATCH` says right now.
    pub fn resolved_comm_batch(&self) -> BatchConfig {
        self.comm_batch.unwrap_or_else(BatchConfig::from_env)
    }

    /// Cap the number of boundary vertices expanded per iteration (must be
    /// at least 1). See [`NeConfig::frontier_budget`].
    pub fn with_frontier_budget(mut self, budget: u64) -> Self {
        assert!(budget >= 1, "frontier budget must be at least 1");
        self.frontier_budget = Some(budget);
        self
    }

    /// Checkpoint the machine state every `every` rounds into `dir`
    /// (overrides `DNE_CHECKPOINT_EVERY` / `DNE_CHECKPOINT_DIR`).
    pub fn with_checkpoint(mut self, every: u64, dir: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint = Some(CheckpointPolicy::new(every, dir));
        self
    }

    /// The checkpoint policy a run will use: the explicit choice if one
    /// was made, otherwise whatever `DNE_CHECKPOINT_EVERY` /
    /// `DNE_CHECKPOINT_DIR` say right now (`None` = checkpointing off).
    pub fn resolved_checkpoint(&self) -> Option<CheckpointPolicy> {
        self.checkpoint.clone().or_else(CheckpointPolicy::from_env)
    }

    /// Inject a crash: panic at the end of completed round `round`
    /// (overrides `DNE_FAULT_ROUND`). Recovery-testing only.
    pub fn with_fault_round(mut self, round: u64) -> Self {
        assert!(round >= 1, "fault round must be at least 1");
        self.fault_round = Some(round);
        self
    }

    /// The injected fault round a run will use: the explicit choice if one
    /// was made, otherwise whatever `DNE_FAULT_ROUND` says right now
    /// (`None` = no injected fault).
    ///
    /// # Panics
    /// Panics on a malformed `DNE_FAULT_ROUND` (zero, non-numeric,
    /// non-Unicode), naming the accepted form.
    pub fn resolved_fault_round(&self) -> Option<u64> {
        self.fault_round.or_else(|| match std::env::var("DNE_FAULT_ROUND") {
            Ok(v) if !v.trim().is_empty() => {
                Some(
                    v.trim().parse::<u64>().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                        panic!("invalid DNE_FAULT_ROUND: expected a round >= 1")
                    }),
                )
            }
            Err(std::env::VarError::NotUnicode(raw)) => {
                panic!("invalid DNE_FAULT_ROUND: non-Unicode value {raw:?}")
            }
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = NeConfig::default();
        assert_eq!(c.alpha, 1.1);
        assert_eq!(c.lambda, 0.1);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn rejects_zero_lambda() {
        let _ = NeConfig::default().with_lambda(0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_sub_one_alpha() {
        let _ = NeConfig::default().with_alpha(0.5);
    }

    #[test]
    fn builders_compose() {
        let c = NeConfig::default()
            .with_seed(9)
            .with_alpha(1.2)
            .with_lambda(1.0)
            .with_transport(TransportKind::Bytes)
            .with_collectives(CollectiveTopology::Binomial)
            .with_comm_batch(BatchConfig::msgs(64));
        assert_eq!(c.seed, 9);
        assert_eq!(c.alpha, 1.2);
        assert_eq!(c.lambda, 1.0);
        assert_eq!(c.transport, Some(TransportKind::Bytes));
        assert_eq!(c.resolved_transport(), TransportKind::Bytes);
        assert_eq!(c.collectives, Some(CollectiveTopology::Binomial));
        assert_eq!(c.resolved_collectives(), CollectiveTopology::Binomial);
        assert_eq!(c.comm_batch, Some(BatchConfig::msgs(64)));
        assert_eq!(c.resolved_comm_batch(), BatchConfig::msgs(64));
    }

    #[test]
    fn default_does_not_read_the_environment() {
        // `Default` must be pure: the env vars are only consulted when a
        // run resolves the backend/topology, never at construction.
        assert_eq!(NeConfig::default().transport, None);
        assert_eq!(NeConfig::default().collectives, None);
        assert_eq!(NeConfig::default().comm_batch, None);
        assert_eq!(NeConfig::default().checkpoint, None);
        assert_eq!(NeConfig::default().fault_round, None);
    }

    #[test]
    fn checkpoint_builder_overrides_environment() {
        let c = NeConfig::default().with_checkpoint(3, "/tmp/snaps");
        let policy = c.resolved_checkpoint().expect("explicit policy");
        assert_eq!(policy.every, 3);
        assert_eq!(policy.dir, std::path::PathBuf::from("/tmp/snaps"));
    }

    #[test]
    #[should_panic(expected = "checkpoint interval")]
    fn rejects_zero_checkpoint_interval() {
        let _ = CheckpointPolicy::new(0, "x");
    }

    #[test]
    fn fault_round_builder() {
        let c = NeConfig::default().with_fault_round(5);
        assert_eq!(c.resolved_fault_round(), Some(5));
    }
}
