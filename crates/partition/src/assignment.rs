//! The output type of every edge partitioner: a dense edge → partition map.

use dne_graph::{EdgeId, Graph, HeapSize};

/// Partition identifier. The paper's experiments go up to `|P| = 1024`;
/// `u32` leaves ample headroom while keeping assignments compact.
pub type PartitionId = u32;

/// Sentinel for "not (yet) assigned". Final assignments never contain it.
pub const UNASSIGNED: PartitionId = PartitionId::MAX;

/// A complete `|P|`-way edge partitioning of a graph: `parts[e]` is the
/// partition of edge `e`. Because edge partitions are *disjoint covers* of
/// `E` (paper §2.1), a plain dense vector is the lossless representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeAssignment {
    parts: Vec<PartitionId>,
    num_partitions: PartitionId,
}

impl EdgeAssignment {
    /// Wrap a dense assignment vector.
    ///
    /// # Panics
    /// If any entry is `>= num_partitions` (including [`UNASSIGNED`]).
    pub fn new(parts: Vec<PartitionId>, num_partitions: PartitionId) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        for (e, &p) in parts.iter().enumerate() {
            assert!(p < num_partitions, "edge {e} has invalid partition {p}");
        }
        Self { parts, num_partitions }
    }

    /// Build by evaluating `f` for every edge of `g`.
    pub fn from_fn(
        g: &Graph,
        num_partitions: PartitionId,
        mut f: impl FnMut(EdgeId) -> PartitionId,
    ) -> Self {
        let parts = (0..g.num_edges()).map(&mut f).collect();
        Self::new(parts, num_partitions)
    }

    /// Number of partitions `|P|`.
    #[inline]
    pub fn num_partitions(&self) -> PartitionId {
        self.num_partitions
    }

    /// Number of edges covered.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.parts.len() as u64
    }

    /// Partition of edge `e`.
    #[inline]
    pub fn part_of(&self, e: EdgeId) -> PartitionId {
        self.parts[e as usize]
    }

    /// The raw dense vector (index = edge id).
    #[inline]
    pub fn as_slice(&self) -> &[PartitionId] {
        &self.parts
    }

    /// `|E_p|` for every partition `p`, indexed by partition id.
    pub fn edge_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_partitions as usize];
        for &p in &self.parts {
            counts[p as usize] += 1;
        }
        counts
    }

    /// Edge ids grouped per partition (order: ascending edge id).
    pub fn edges_by_partition(&self) -> Vec<Vec<EdgeId>> {
        let mut out = vec![Vec::new(); self.num_partitions as usize];
        for (e, &p) in self.parts.iter().enumerate() {
            out[p as usize].push(e as EdgeId);
        }
        out
    }

    /// Check that this assignment covers exactly the edges of `g`.
    pub fn is_valid_for(&self, g: &Graph) -> bool {
        self.parts.len() as u64 == g.num_edges()
    }

    /// Order-sensitive 64-bit fingerprint of the full assignment
    /// (partition count and every edge's partition, in edge-id order).
    /// Two assignments compare equal iff they fingerprint equal, up to
    /// hash collisions — the equivalence suites use this to compare runs
    /// across storage and transport backends without shipping whole
    /// vectors around.
    pub fn fingerprint(&self) -> u64 {
        let mut h = dne_graph::hash::mix64(self.num_partitions as u64 ^ self.parts.len() as u64);
        for &p in &self.parts {
            h = dne_graph::hash::mix2(h, p as u64);
        }
        h
    }
}

impl HeapSize for EdgeAssignment {
    fn heap_bytes(&self) -> usize {
        self.parts.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dne_graph::gen;

    #[test]
    fn counts_and_grouping_agree() {
        let g = gen::cycle(6);
        let a = EdgeAssignment::new(vec![0, 1, 0, 1, 2, 2], 3);
        assert!(a.is_valid_for(&g));
        assert_eq!(a.edge_counts(), vec![2, 2, 2]);
        let groups = a.edges_by_partition();
        assert_eq!(groups[0], vec![0, 2]);
        assert_eq!(groups[2], vec![4, 5]);
    }

    #[test]
    fn from_fn_round_robin() {
        let g = gen::path(5);
        let a = EdgeAssignment::from_fn(&g, 2, |e| (e % 2) as PartitionId);
        assert_eq!(a.part_of(0), 0);
        assert_eq!(a.part_of(3), 1);
        assert_eq!(a.num_edges(), 4);
    }

    #[test]
    fn fingerprint_is_order_sensitive_and_stable() {
        let a = EdgeAssignment::new(vec![0, 1, 2], 3);
        let b = EdgeAssignment::new(vec![0, 1, 2], 3);
        let c = EdgeAssignment::new(vec![2, 1, 0], 3);
        let d = EdgeAssignment::new(vec![0, 1, 2], 4);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    #[should_panic(expected = "invalid partition")]
    fn rejects_out_of_range_partition() {
        EdgeAssignment::new(vec![0, 5], 3);
    }

    #[test]
    #[should_panic(expected = "invalid partition")]
    fn rejects_unassigned_sentinel() {
        EdgeAssignment::new(vec![UNASSIGNED], 3);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_zero_partitions() {
        EdgeAssignment::new(vec![], 0);
    }
}
