//! Figure 9 reproduction: memory consumption ("mem score" — peak live
//! bytes across all processes, normalized by |E|) of the four high-quality
//! methods: Distributed NE, ParMETIS-like, Sheep-like, XtraPuLP-like.
//!
//! Paper findings to reproduce:
//! * Distributed NE has the lowest mem score (vertices replicated, edges
//!   unique, CSR + functional metadata — §7.3);
//! * ParMETIS's multilevel hierarchy replicates the graph per level and is
//!   the most expensive;
//! * Distributed NE's score *decreases* as the edge factor grows (duplicate
//!   compaction; Fig 9(b)).
//!
//! Measurement notes: Distributed NE and ParMETIS-like are measured
//! (tracked live bytes / recorded level hierarchy); Sheep-like and
//! XtraPuLP-like are analytic (their state is a handful of flat arrays).
//! Our sequential re-implementations of the vertex partitioners do not
//! replicate edges across machines the way the real distributed systems
//! do, so the paper's order-of-magnitude gap compresses to a smaller — but
//! same-direction — gap here (see EXPERIMENTS.md).

use dne_bench::datasets::{self, DATASETS};
use dne_bench::table::{f2, parse_mode, Table};
use dne_core::{DistributedNe, NeConfig};
use dne_graph::gen::{rmat_parallel, RmatConfig};
use dne_graph::parallel::default_ingest_threads;
use dne_graph::{io, Graph, StorageKind};
use dne_partition::vertex::MetisLikePartitioner;
use dne_partition::VertexPartitioner;

/// Route a generated graph through the `DNE_GRAPH_STORAGE` backend: with
/// the in-memory default this is the identity, otherwise the graph is
/// spilled to a chunked file in the temp dir and reopened through the
/// selected backend, so the whole figure measures out-of-core storage
/// (partitioning results are bit-identical either way).
fn with_env_storage(g: Graph, name: &str) -> Graph {
    let kind = StorageKind::from_env();
    if kind == StorageKind::InMemory {
        return g;
    }
    let dir = std::env::temp_dir().join("dne_fig9_storage");
    std::fs::create_dir_all(&dir).expect("create fig9 scratch dir");
    let path = dir.join(format!("{name}.chunks"));
    io::write_chunked(&g, &path, 1 << 16).expect("spill graph to chunked file");
    drop(g); // free the in-memory CSR before the backend under test opens
    io::open_chunked_with(&path, kind).unwrap_or_else(|e| panic!("reopen {name} as {kind}: {e}"))
}

/// Run `work` with a freshly reset kernel RSS high-water mark and return
/// the peak resident set it drove, formatted in MiB — or `-` where the
/// procfs interface is unavailable. `VmHWM` is monotonic over the process
/// lifetime, so the reset (via `/proc/self/clear_refs`) is what makes
/// back-to-back per-method measurements meaningful.
fn measured_rss<T>(work: impl FnOnce() -> T) -> (T, String) {
    let reset = dne_runtime::reset_peak_rss();
    let out = work();
    let cell = match dne_runtime::peak_rss_bytes() {
        Some(bytes) if reset => f2(bytes as f64 / (1024.0 * 1024.0)),
        _ => "-".into(),
    };
    (out, cell)
}

fn mem_rows(name: &str, g: &Graph, k: u32, table: &mut Table) {
    let m = g.num_edges();
    let n = g.num_vertices();
    let storage = g.storage_kind().to_string();
    // Distributed NE: logical bytes from the runtime's memory tracker
    // (includes each rank's share of the graph's resident bytes), plus the
    // kernel-observed peak RSS of the whole run as an external check.
    let ne = DistributedNe::new(NeConfig::default().with_seed(3));
    let ((_, stats), rss) = measured_rss(|| ne.partition_with_stats(g, k));
    table.row(vec![
        name.into(),
        k.to_string(),
        "DistributedNE".into(),
        storage.clone(),
        f2(stats.mem_score),
        rss,
    ]);
    // ParMETIS-like: input CSR + measured multilevel hierarchy. The
    // vertex partitioners walk adjacency, which the chunk-streamed
    // backend deliberately lacks — skip the row there.
    if g.has_adjacency() {
        let metis = MetisLikePartitioner::new(3);
        let (_, rss) = measured_rss(|| metis.partition_vertices(g, k));
        let metis_bytes = g.resident_bytes() + metis.peak_memory_bytes();
        table.row(vec![
            name.into(),
            k.to_string(),
            "ParMETIS-like".into(),
            storage.clone(),
            f2(metis_bytes as f64 / m as f64),
            rss,
        ]);
    } else {
        eprintln!("{name}: skipping ParMETIS-like ({storage} storage keeps no adjacency)");
    }
    // Sheep-like: input CSR + rank/parent/owned/children/tour arrays
    // (analytic — nothing runs, so no RSS measurement).
    let sheep_bytes = g.resident_bytes() + 32 * n as usize + 4 * m as usize;
    table.row(vec![
        name.into(),
        k.to_string(),
        "Sheep-like".into(),
        storage.clone(),
        f2(sheep_bytes as f64 / m as f64),
        "-".into(),
    ]);
    // XtraPuLP-like: input CSR + labels/queues/loads (analytic).
    let xp_bytes = g.resident_bytes() + 16 * n as usize;
    table.row(vec![
        name.into(),
        k.to_string(),
        "XtraPuLP-like".into(),
        storage,
        f2(xp_bytes as f64 / m as f64),
        "-".into(),
    ]);
}

fn main() {
    let quick = parse_mode();
    let k = if quick { 16 } else { 64 };
    let mut table =
        Table::new(&["graph", "|P|", "method", "storage", "mem score (B/edge)", "peak RSS (MiB)"]);
    // Fig 9(a): real-world stand-ins.
    let sets: Vec<&datasets::Dataset> =
        if quick { datasets::midsize() } else { DATASETS.iter().collect() };
    for d in sets {
        let g = with_env_storage(if quick { d.build_quick() } else { d.build() }, d.name);
        eprintln!("{}: |E|={}", d.name, g.num_edges());
        mem_rows(d.name, &g, k, &mut table);
    }
    // Fig 9(b): RMAT, growing edge factor — D.NE's score should drop.
    let efs: &[u64] = if quick { &[4, 16, 64] } else { &[4, 16, 64, 256] };
    let scale = if quick { 12 } else { 14 };
    for &ef in efs {
        let name = format!("RMAT-s{scale}-ef{ef}");
        let g = with_env_storage(
            rmat_parallel(&RmatConfig::graph500(scale, ef, 5), default_ingest_threads()),
            &name,
        );
        eprintln!("{name}: |E|={}", g.num_edges());
        mem_rows(&name, &g, k, &mut table);
    }
    println!("\n=== Figure 9: memory consumption (bytes per edge at peak) ===");
    table.print();
    if let Ok(p) = table.write_tsv("fig9_memory") {
        eprintln!("wrote {}", p.display());
    }
}
