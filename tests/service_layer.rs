//! Cross-crate properties of the partitioning service layer: the lookup
//! protocol's codec must round-trip losslessly and reject malformed
//! bytes with typed errors (never panics), the sharded index must answer
//! exactly like a linear scan of the assignment at every shard count,
//! and the full client → server → index round trip over real sockets
//! must reproduce the offline answers byte for byte.

use distributed_ne::graph::{EdgeListBuilder, Graph};
use distributed_ne::partition::{
    EdgeAssignment, EdgePartitioner, PartitionId, ShardedAssignmentIndex,
};
use distributed_ne::runtime::{WireDecode, WireEncode, WireSize};
use dne_bench::lookup::{AssignmentService, LookupRequest, LookupResponse};
use proptest::prelude::*;

/// Build a graph and a valid assignment from raw proptest fuel: endpoint
/// pairs over a small vertex universe (self loops and duplicates are
/// compacted away by the builder) plus one partition choice per surviving
/// edge.
fn graph_and_assignment(
    pairs: &[(u64, u64)],
    parts: &[PartitionId],
    k: PartitionId,
) -> (Graph, EdgeAssignment) {
    let mut b = EdgeListBuilder::new();
    b.extend_edges(pairs.iter().copied());
    let edges = b.finish();
    let n = edges.iter().map(|&(_, v)| v + 1).max().unwrap_or(0);
    let assigned: Vec<PartitionId> =
        edges.iter().enumerate().map(|(e, _)| parts[e % parts.len()] % k).collect();
    (Graph::from_canonical_edges(n, edges), EdgeAssignment::new(assigned, k))
}

// ---------------------------------------------------------------- codec --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every request/response shape encodes to exactly its size estimate
    /// and round-trips losslessly through the wire codec.
    #[test]
    fn lookup_codec_estimate_equals_actual_and_roundtrips(
        u in 0u64..u64::MAX,
        v in 0u64..u64::MAX,
        part in 0u32..u32::MAX,
        owner_raw in (0u64..u64::MAX, 0u32..u32::MAX, 0u8..2),
        replicas in prop::collection::vec(0u32..u32::MAX, 0..40),
        counts_raw in (0u64..u64::MAX, 0u64..u64::MAX, 0u8..2),
        bits in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
    ) {
        let requests = [
            LookupRequest::LookupEdge { u, v },
            LookupRequest::ReplicaSet { v },
            LookupRequest::PartStats { part },
            LookupRequest::Fingerprint,
            LookupRequest::Shutdown,
        ];
        for req in requests {
            let bytes = req.to_wire();
            prop_assert_eq!(bytes.len(), req.wire_bytes(), "estimate != actual for {:?}", req);
            prop_assert_eq!(LookupRequest::from_wire(&bytes).unwrap(), req);
        }
        let owner = (owner_raw.2 == 1).then_some((owner_raw.0, owner_raw.1));
        let counts = (counts_raw.2 == 1).then_some((counts_raw.0, counts_raw.1));
        let responses = [
            LookupResponse::Owner { owner },
            LookupResponse::Replicas { parts: replicas },
            LookupResponse::PartStats { counts, rf_bits: bits.0, eb_bits: bits.1 },
            LookupResponse::Fingerprint {
                fingerprint: bits.2,
                num_partitions: part,
                num_edges: u,
            },
            LookupResponse::ShuttingDown,
        ];
        for resp in responses {
            let bytes = resp.to_wire();
            prop_assert_eq!(bytes.len(), resp.wire_bytes(), "estimate != actual for {:?}", resp);
            prop_assert_eq!(LookupResponse::from_wire(&bytes).unwrap(), resp);
        }
    }

    /// Fuzz: truncating a valid message anywhere, appending trailing
    /// garbage, or flipping the tag byte yields a typed error — never a
    /// panic, never a bogus success.
    #[test]
    fn corrupt_lookup_messages_error_not_panic(
        v in 0u64..u64::MAX,
        replicas in prop::collection::vec(0u32..u32::MAX, 0..20),
        cut_seed in 0usize..usize::MAX,
        tag_off in 0u8..251,
        junk in 1usize..9,
    ) {
        let req = LookupRequest::ReplicaSet { v };
        let resp = LookupResponse::Replicas { parts: replicas };
        let (req_bytes, resp_bytes) = (req.to_wire(), resp.to_wire());
        // Truncation at any prefix (both messages are at least 1 byte).
        prop_assert!(LookupRequest::from_wire(&req_bytes[..cut_seed % req_bytes.len()]).is_err());
        prop_assert!(
            LookupResponse::from_wire(&resp_bytes[..cut_seed % resp_bytes.len()]).is_err()
        );
        // Trailing bytes beyond a complete message are rejected.
        let mut long = req_bytes.clone();
        long.extend(vec![0u8; junk]);
        prop_assert!(LookupRequest::from_wire(&long).is_err());
        // Tags outside the 5-variant vocabulary are rejected.
        let mut corrupt = req_bytes.clone();
        corrupt[0] = 5 + tag_off;
        prop_assert!(LookupRequest::from_wire(&corrupt).is_err());
        let mut corrupt = resp_bytes.clone();
        corrupt[0] = 5 + tag_off;
        prop_assert!(LookupResponse::from_wire(&corrupt).is_err());
    }
}

// ---------------------------------------------------------------- index --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The sharded index answers exactly like a linear scan of the
    /// assignment — owner of every edge (queried in both endpoint
    /// orders), replica set of every vertex — at shard counts 1, 2, 8.
    #[test]
    fn sharded_index_matches_linear_scan(
        pairs in prop::collection::vec((0u64..48, 0u64..48), 1..120),
        parts in prop::collection::vec(0u32..8, 1..16),
        k in 1u32..8,
    ) {
        let (g, a) = graph_and_assignment(&pairs, &parts, k);
        for shards in [1usize, 2, 8] {
            let idx = ShardedAssignmentIndex::build(&g, &a, shards);
            // Owners: every real edge answers its (edge id, partition);
            // endpoint order must not matter.
            g.for_each_edge(|e, u, v| {
                assert_eq!(idx.owner_of(u, v), Some((e, a.part_of(e))), "{shards} shards");
                assert_eq!(idx.owner_of(v, u), idx.owner_of(u, v));
            });
            // Replica sets: the ascending set of partitions touching the
            // vertex, recomputed here by linear scan.
            for x in 0..g.num_vertices() {
                let mut scan: Vec<PartitionId> = Vec::new();
                g.for_each_edge(|e, u, v| {
                    if (u == x || v == x) && !scan.contains(&a.part_of(e)) {
                        scan.push(a.part_of(e));
                    }
                });
                scan.sort_unstable();
                prop_assert_eq!(idx.replica_set(x), &scan[..], "vertex {} at {} shards", x, shards);
            }
            // Absent edges miss; the fingerprint is the assignment's.
            prop_assert_eq!(idx.owner_of(1_000_000, 2_000_000), None);
            prop_assert_eq!(idx.fingerprint(), a.fingerprint());
        }
    }
}

// ----------------------------------------------------------- end-to-end --

/// Full stack on real sockets: a `WireServer` serving an
/// `AssignmentService` answers every request byte-identically to the
/// offline `answer()` path, across two sequential client connections,
/// then shuts down cleanly on request.
#[cfg(unix)]
#[test]
fn lookup_service_over_sockets_matches_offline_answers() {
    use distributed_ne::graph::gen;
    use distributed_ne::runtime::{WireClient, WireServer};

    let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 9));
    let a = distributed_ne::core::DistributedNe::new(
        distributed_ne::core::NeConfig::default().with_seed(9),
    )
    .partition(&g, 3);
    let offline = AssignmentService::new(ShardedAssignmentIndex::build(&g, &a, 4));

    let server = WireServer::bind(&"127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = server.local_addr();
    let serving = std::thread::spawn(move || {
        let mut svc = AssignmentService::new(ShardedAssignmentIndex::build(&g, &a, 4));
        server.serve(&mut svc).unwrap()
    });

    let requests: Vec<LookupRequest> = (0..200)
        .map(|i| {
            let r = distributed_ne::graph::hash::mix2(9, i);
            match r % 4 {
                0 => LookupRequest::ReplicaSet { v: r >> 2 & 0xff },
                1 => LookupRequest::PartStats { part: (r >> 2 & 3) as PartitionId },
                2 => LookupRequest::Fingerprint,
                _ => LookupRequest::LookupEdge { u: r >> 2 & 0xff, v: r >> 10 & 0xff },
            }
        })
        .collect();
    for _conn in 0..2 {
        let mut client = WireClient::<LookupRequest, LookupResponse>::connect(addr).unwrap();
        for req in &requests {
            let got = client.call(req).unwrap();
            assert_eq!(got.to_wire(), offline.answer(req).to_wire(), "{req:?}");
        }
    }

    let mut closer = WireClient::<LookupRequest, LookupResponse>::connect(addr).unwrap();
    assert_eq!(closer.call(&LookupRequest::Shutdown).unwrap(), LookupResponse::ShuttingDown);
    let stats = serving.join().unwrap();
    assert_eq!(stats.requests, 2 * requests.len() as u64 + 1);
    assert_eq!(stats.protocol_errors, 0);
}
