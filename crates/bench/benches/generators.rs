//! Criterion micro-benchmarks of the graph substrate: RMAT generation
//! throughput (the workload generator behind every synthetic experiment)
//! and CSR construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dne_graph::gen::{rmat, RmatConfig};
use dne_graph::Graph;
use std::hint::black_box;

fn bench_rmat(c: &mut Criterion) {
    let mut group = c.benchmark_group("rmat_generation");
    group.sample_size(10);
    for scale in [10u32, 12, 14] {
        let cfg = RmatConfig::graph500(scale, 8, 1);
        group.throughput(Throughput::Elements(cfg.num_samples()));
        group.bench_function(BenchmarkId::from_parameter(format!("scale{scale}")), |b| {
            b.iter(|| black_box(rmat(&cfg)))
        });
    }
    group.finish();
}

fn bench_csr_build(c: &mut Criterion) {
    let g = rmat(&RmatConfig::graph500(13, 8, 2));
    let edges: Vec<_> = g.edges().to_vec();
    let n = g.num_vertices();
    let mut group = c.benchmark_group("csr_build");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_edges()));
    group.bench_function("from_canonical_edges", |b| {
        b.iter_batched(
            || edges.clone(),
            |e| black_box(Graph::from_canonical_edges(n, e)),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_dedup(c: &mut Criterion) {
    // The duplicate-compaction pass (§7.3): high-EF RMAT streams contain
    // many duplicate samples.
    let cfg = RmatConfig::graph500(10, 64, 3);
    let mut group = c.benchmark_group("edge_dedup");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cfg.num_samples()));
    group.bench_function("builder_finish_high_ef", |b| {
        b.iter(|| {
            // Regenerate raw samples each iteration: the cost measured is
            // sample + canonicalize + sort + dedup, the full ingest path.
            black_box(rmat(&cfg)).num_edges()
        })
    });
    group.finish();
}

fn bench_neighbor_scan(c: &mut Criterion) {
    let g = rmat(&RmatConfig::graph500(13, 8, 4));
    let mut group = c.benchmark_group("neighbor_scan");
    group.throughput(Throughput::Elements(2 * g.num_edges()));
    group.bench_function("full_adjacency_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in g.vertices() {
                for (u, e) in g.neighbors(v) {
                    acc = acc.wrapping_add(u).wrapping_add(e);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rmat, bench_csr_build, bench_dedup, bench_neighbor_scan);
criterion_main!(benches);
