#![deny(missing_docs)]
//! # distributed-ne — umbrella crate
//!
//! Re-exports the whole Distributed NE workspace behind one dependency, and
//! hosts the runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`).
//!
//! A reproduction of: Hanai et al., *Distributed Edge Partitioning for
//! Trillion-edge Graphs*, PVLDB 12(13), 2019.
//!
//! ## Quick start
//!
//! ```
//! use distributed_ne::prelude::*;
//!
//! // 1. Generate (or load) a skewed graph.
//! let graph = rmat(&RmatConfig::graph500(10, 8, 42));
//!
//! // 2. Partition its edges across 8 simulated machines with Distributed NE.
//! let partitioner = DistributedNe::new(NeConfig::default().with_seed(42));
//! let assignment = partitioner.partition(&graph, 8);
//!
//! // 3. Inspect quality.
//! let q = PartitionQuality::measure(&graph, &assignment);
//! assert!(q.replication_factor >= 1.0);
//! assert!(q.replication_factor <= (graph.num_edges() + graph.num_vertices() + 8) as f64
//!     / graph.num_vertices() as f64);
//! ```

pub use dne_apps as apps;
pub use dne_core as core;
pub use dne_graph as graph;
pub use dne_partition as partition;
pub use dne_runtime as runtime;

/// Convenient glob-import surface for examples and downstream quick starts.
pub mod prelude {
    pub use dne_core::{DistributedNe, NeConfig};
    pub use dne_graph::gen::{rmat, rmat_parallel, road_grid, RmatConfig};
    pub use dne_graph::parallel::default_ingest_threads;
    pub use dne_graph::{EdgeListBuilder, Graph, GraphStorage, StorageKind, VertexId};
    pub use dne_partition::{EdgeAssignment, EdgePartitioner, PartitionQuality};
}
