//! Canonicalizing edge-list builder.
//!
//! Every path into a [`crate::Graph`] goes through [`EdgeListBuilder`]: the
//! generators, the IO readers, and test fixtures. The builder enforces the
//! paper's graph model (§2.1): undirected, unweighted, no self loops, no
//! parallel edges. Duplicate compaction also reproduces the paper's
//! observation (§7.3) that RMAT graphs with a high edge factor contain many
//! duplicate samples which Distributed NE compacts — we compact once at build
//! time so all partitioners see the same deduplicated graph.

use crate::types::{canonical, Edge, VertexId};

/// Incrementally collects raw endpoint pairs and finalizes them into a
/// canonical, sorted, deduplicated edge list.
///
/// ```
/// use dne_graph::EdgeListBuilder;
/// let mut b = EdgeListBuilder::new();
/// b.push(1, 0);
/// b.push(0, 1); // duplicate (other direction)
/// b.push(2, 2); // self loop — dropped
/// b.push(1, 2);
/// let edges = b.finish();
/// assert_eq!(edges, vec![(0, 1), (1, 2)]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct EdgeListBuilder {
    raw: Vec<Edge>,
}

impl EdgeListBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder with reserved capacity for `n` raw pairs.
    pub fn with_capacity(n: usize) -> Self {
        Self { raw: Vec::with_capacity(n) }
    }

    /// Append one endpoint pair (any order; self loops are dropped later).
    #[inline]
    pub fn push(&mut self, u: VertexId, v: VertexId) {
        self.raw.push(canonical(u, v));
    }

    /// Append many endpoint pairs.
    pub fn extend_edges(&mut self, it: impl IntoIterator<Item = (VertexId, VertexId)>) {
        for (u, v) in it {
            self.push(u, v);
        }
    }

    /// Number of raw (pre-dedup) pairs collected so far.
    pub fn raw_len(&self) -> usize {
        self.raw.len()
    }

    /// Finalize: drop self loops, sort canonically, deduplicate.
    pub fn finish(mut self) -> Vec<Edge> {
        self.raw.retain(|&(u, v)| u != v);
        self.raw.sort_unstable();
        self.raw.dedup();
        self.raw
    }

    /// Finalize like [`Self::finish`] using up to `threads` threads: the raw
    /// vector is split into per-thread chunks, each chunk compacted and
    /// sorted in parallel, and the sorted runs merge-deduplicated pairwise.
    ///
    /// The output is byte-identical to [`Self::finish`] for every thread
    /// count (it is the sorted set of canonical pairs); `threads == 1` takes
    /// the sequential path directly.
    pub fn finish_parallel(self, threads: usize) -> Vec<Edge> {
        crate::parallel::sort_dedup_parallel(self.raw, threads)
    }

    /// Finalize directly into a [`crate::Graph`] using up to `threads`
    /// threads for both canonicalization ([`Self::finish_parallel`]) and CSR
    /// construction ([`crate::Graph::from_canonical_edges_parallel`]).
    ///
    /// Byte-identical to [`Self::into_graph`] for every thread count.
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn build_parallel(self, num_vertices: VertexId, threads: usize) -> crate::Graph {
        let edges = self.finish_parallel(threads);
        crate::Graph::from_canonical_edges_parallel(num_vertices, edges, threads)
    }

    /// Like [`Self::build_parallel`] but sized by the maximum endpoint seen
    /// (`max + 1` vertices), mirroring [`Self::into_graph_auto`].
    pub fn build_parallel_auto(self, threads: usize) -> crate::Graph {
        let edges = self.finish_parallel(threads);
        let n = edges.iter().map(|&(_, v)| v + 1).max().unwrap_or(0);
        crate::Graph::from_canonical_edges_parallel(n, edges, threads)
    }

    /// Finalize directly into a [`crate::Graph`] with `num_vertices`
    /// vertices. Panics if any endpoint is `>= num_vertices`.
    pub fn into_graph(self, num_vertices: VertexId) -> crate::Graph {
        crate::Graph::from_canonical_edges(num_vertices, self.finish())
    }

    /// Finalize into a [`crate::Graph`] sized by the maximum endpoint seen
    /// (`max + 1` vertices). An empty builder yields an empty graph.
    pub fn into_graph_auto(self) -> crate::Graph {
        let edges = self.finish();
        let n = edges.iter().map(|&(_, v)| v + 1).max().unwrap_or(0);
        crate::Graph::from_canonical_edges(n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let mut b = EdgeListBuilder::new();
        for _ in 0..5 {
            b.push(3, 1);
            b.push(1, 3);
        }
        b.push(0, 0);
        b.push(4, 4);
        b.push(0, 2);
        assert_eq!(b.raw_len(), 13);
        let e = b.finish();
        assert_eq!(e, vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn empty_builder_yields_empty_graph() {
        let g = EdgeListBuilder::new().into_graph_auto();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn auto_sizing_uses_max_endpoint() {
        let mut b = EdgeListBuilder::new();
        b.push(0, 9);
        let g = b.into_graph_auto();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn sorted_output() {
        let mut b = EdgeListBuilder::new();
        b.push(5, 4);
        b.push(1, 0);
        b.push(3, 2);
        let e = b.finish();
        assert!(e.windows(2).all(|w| w[0] < w[1]));
    }
}
