//! Sharded in-memory assignment index: the lookup-serving view of an
//! [`EdgeAssignment`].
//!
//! A finished partition is only useful when a downstream system can ask
//! "which machine owns edge `(u, v)`?" without replaying the partitioner.
//! [`ShardedAssignmentIndex`] answers that query — plus the replication
//! set of a vertex and per-partition quality stats — from hash-sharded
//! maps built in one sequential edge scan, so it works unchanged on every
//! `DNE_GRAPH_STORAGE` backend, including the adjacency-free
//! chunk-streamed one.
//!
//! Sharding uses the workspace's existing edge hash
//! ([`dne_graph::hash::mix2`]) masked to a power-of-two shard count (the
//! `DNE_SERVER_SHARDS` knob), so a future sharded *server* can route a
//! lookup to the right shard from the key alone. The index fingerprints
//! to exactly [`EdgeAssignment::fingerprint`], which is how `dne-client`
//! proves a remote server answers for the same partition it computed
//! offline.

use crate::assignment::{EdgeAssignment, PartitionId};
use dne_graph::hash::{mix2, FastMap};
use dne_graph::{EdgeId, Graph, VertexId};

/// Environment variable consulted by [`shards_from_env`].
pub const SERVER_SHARDS_ENV: &str = "DNE_SERVER_SHARDS";

/// What a valid shard count looks like — quoted by every parse error.
const SHARD_FORMS: &str = "a power-of-two shard count like 1, 8, or 64";

/// Parse a shard count: a positive power of two.
pub fn parse_shards(s: &str) -> Result<usize, String> {
    let t = s.trim();
    let n: usize = t.parse().map_err(|e| format!("{e} (expected {SHARD_FORMS})"))?;
    if n == 0 || !n.is_power_of_two() {
        return Err(format!("{n} is not a power of two (expected {SHARD_FORMS})"));
    }
    Ok(n)
}

/// Read the shard count from `DNE_SERVER_SHARDS`. Unset or empty means 8.
///
/// # Panics
/// Panics on a value that is not a positive power of two (or not
/// Unicode), naming the valid form — a typo like `DNE_SERVER_SHARDS=12`
/// must fail loudly, not silently serve from a default.
pub fn shards_from_env() -> usize {
    match std::env::var(SERVER_SHARDS_ENV) {
        Ok(v) if !v.trim().is_empty() => {
            parse_shards(&v).unwrap_or_else(|e| panic!("invalid {SERVER_SHARDS_ENV} {v:?}: {e}"))
        }
        Err(std::env::VarError::NotUnicode(raw)) => {
            panic!(
                "invalid {SERVER_SHARDS_ENV}: non-Unicode value {raw:?} (expected {SHARD_FORMS})"
            )
        }
        _ => 8,
    }
}

/// The shard an edge key belongs to, out of `shards` (a power of two).
#[inline]
fn edge_shard(u: VertexId, v: VertexId, shards: usize) -> usize {
    (mix2(u.min(v), u.max(v)) & (shards as u64 - 1)) as usize
}

/// The shard a vertex key belongs to.
#[inline]
fn vertex_shard(v: VertexId, shards: usize) -> usize {
    (dne_graph::hash::mix64(v) & (shards as u64 - 1)) as usize
}

/// One shard's maps: owner-of-edge and replica-set-of-vertex.
#[derive(Default)]
struct Shard {
    /// Unordered endpoint pair `(min, max)` → `(edge id, partition)`.
    /// Multi-edges collapse to the lowest edge id (deterministic, and the
    /// one a linear scan finds first).
    edges: FastMap<(VertexId, VertexId), (EdgeId, PartitionId)>,
    /// Vertex → sorted ascending list of partitions whose edge set
    /// touches it (the replication set of paper Equation 1).
    replicas: FastMap<VertexId, Vec<PartitionId>>,
}

/// An [`EdgeAssignment`] indexed for serving: owner-of-edge, replication
/// set of a vertex, and per-partition stats, behind power-of-two hash
/// shards (see the module docs).
pub struct ShardedAssignmentIndex {
    shards: Vec<Shard>,
    edge_counts: Vec<u64>,
    replica_counts: Vec<u64>,
    num_vertices: u64,
    num_edges: u64,
    num_partitions: PartitionId,
    fingerprint: u64,
}

impl ShardedAssignmentIndex {
    /// Index `assignment` over the edges of `g` into `shards` shards.
    ///
    /// One sequential [`Graph::for_each_edge`] scan — no adjacency
    /// arrays — so any storage backend can feed it.
    ///
    /// # Panics
    /// If `shards` is not a positive power of two, or the assignment does
    /// not cover exactly `g`'s edges.
    pub fn build(g: &Graph, assignment: &EdgeAssignment, shards: usize) -> Self {
        assert!(
            shards > 0 && shards.is_power_of_two(),
            "shard count {shards} is not a positive power of two"
        );
        assert!(assignment.is_valid_for(g), "assignment does not match graph");
        let k = assignment.num_partitions() as usize;
        let mut out = Self {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            edge_counts: assignment.edge_counts(),
            replica_counts: vec![0u64; k],
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
            num_partitions: assignment.num_partitions(),
            fingerprint: assignment.fingerprint(),
        };
        g.for_each_edge(|e, u, v| {
            let p = assignment.part_of(e);
            let key = (u.min(v), u.max(v));
            let slot = out.shards[edge_shard(u, v, shards)].edges.entry(key).or_insert((e, p));
            if e < slot.0 {
                *slot = (e, p);
            }
            for end in [u, v] {
                let set = out.shards[vertex_shard(end, shards)].replicas.entry(end).or_default();
                if !set.contains(&p) {
                    set.push(p);
                }
            }
        });
        for shard in &mut out.shards {
            for set in shard.replicas.values_mut() {
                set.sort_unstable();
                for &p in set.iter() {
                    out.replica_counts[p as usize] += 1;
                }
            }
        }
        out
    }

    /// The partition owning edge `{u, v}` (endpoint order irrelevant),
    /// with the edge id that established it, or `None` when the graph has
    /// no such edge. Multi-edges answer with their lowest edge id.
    pub fn owner_of(&self, u: VertexId, v: VertexId) -> Option<(EdgeId, PartitionId)> {
        let key = (u.min(v), u.max(v));
        self.shards[edge_shard(u, v, self.shards.len())].edges.get(&key).copied()
    }

    /// The replication set of vertex `v`: every partition whose edge set
    /// touches it, ascending. Empty for vertices no edge touches.
    pub fn replica_set(&self, v: VertexId) -> &[PartitionId] {
        self.shards[vertex_shard(v, self.shards.len())]
            .replicas
            .get(&v)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// `|E_p|` for partition `p` (`None` when `p` is out of range).
    pub fn edge_count(&self, p: PartitionId) -> Option<u64> {
        self.edge_counts.get(p as usize).copied()
    }

    /// `|V(E_p)|` for partition `p` (`None` when `p` is out of range).
    pub fn replica_count(&self, p: PartitionId) -> Option<u64> {
        self.replica_counts.get(p as usize).copied()
    }

    /// `Σ_p |V(E_p)|` — the numerator of the replication factor.
    pub fn total_replicas(&self) -> u64 {
        self.replica_counts.iter().sum()
    }

    /// Replication factor `RF = total replicas / |V|` (paper Equation 1).
    pub fn replication_factor(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.total_replicas() as f64 / self.num_vertices as f64
        }
    }

    /// Edge balance `max_p |E_p| / mean_p |E_p|` (paper §7.6).
    pub fn edge_balance(&self) -> f64 {
        let max = self.edge_counts.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.num_edges as f64 / self.edge_counts.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Number of partitions `|P|`.
    pub fn num_partitions(&self) -> PartitionId {
        self.num_partitions
    }

    /// Number of indexed edges.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Number of vertices of the indexed graph.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Number of hash shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The indexed assignment's fingerprint — equal to
    /// [`EdgeAssignment::fingerprint`] of the assignment this index was
    /// built from, which is how remote lookups are proven to be served
    /// from the right partition.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::PartitionQuality;
    use dne_graph::gen;

    fn rmat_with_assignment() -> (Graph, EdgeAssignment) {
        let g = gen::rmat(&gen::RmatConfig::graph500(7, 8, 17));
        let a = EdgeAssignment::from_fn(&g, 5, |e| ((e * 7 + 3) % 5) as PartitionId);
        (g, a)
    }

    #[test]
    fn owner_matches_linear_scan_at_every_shard_count() {
        let (g, a) = rmat_with_assignment();
        for shards in [1usize, 2, 8] {
            let idx = ShardedAssignmentIndex::build(&g, &a, shards);
            g.for_each_edge(|e, u, v| {
                let (hit, part) = idx.owner_of(u, v).expect("indexed edge");
                assert_eq!(part, a.part_of(hit));
                // The lowest edge id with these endpoints wins.
                let mut lowest = e;
                g.for_each_edge(|e2, u2, v2| {
                    if (u2.min(v2), u2.max(v2)) == (u.min(v), u.max(v)) && e2 < lowest {
                        lowest = e2;
                    }
                });
                assert_eq!(hit, lowest, "edge ({u},{v})");
                // Endpoint order must not matter.
                assert_eq!(idx.owner_of(v, u), idx.owner_of(u, v));
            });
        }
    }

    #[test]
    fn replica_sets_and_stats_match_quality_measure() {
        let (g, a) = rmat_with_assignment();
        let q = PartitionQuality::measure(&g, &a);
        let idx = ShardedAssignmentIndex::build(&g, &a, 4);
        assert_eq!(idx.total_replicas(), q.total_replicas);
        assert!((idx.replication_factor() - q.replication_factor).abs() < 1e-12);
        assert!((idx.edge_balance() - q.edge_balance).abs() < 1e-12);
        for p in 0..a.num_partitions() {
            assert_eq!(idx.edge_count(p), Some(q.edge_counts[p as usize]));
            assert_eq!(idx.replica_count(p), Some(q.vertex_counts[p as usize]));
        }
        assert_eq!(idx.edge_count(a.num_partitions()), None);
        // Replica sets are sorted and consistent with ownership.
        for v in g.vertices() {
            let set = idx.replica_set(v);
            assert!(set.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
        }
    }

    #[test]
    fn fingerprint_matches_the_assignment() {
        let (g, a) = rmat_with_assignment();
        for shards in [1usize, 8] {
            assert_eq!(
                ShardedAssignmentIndex::build(&g, &a, shards).fingerprint(),
                a.fingerprint()
            );
        }
    }

    #[test]
    fn missing_edges_and_untouched_vertices_answer_empty() {
        let g = gen::path(4); // edges (0,1) (1,2) (2,3)
        let a = EdgeAssignment::new(vec![0, 1, 0], 2);
        let idx = ShardedAssignmentIndex::build(&g, &a, 2);
        assert_eq!(idx.owner_of(0, 1), Some((0, 0)));
        assert_eq!(idx.owner_of(3, 2), Some((2, 0)));
        assert_eq!(idx.owner_of(0, 3), None);
        assert_eq!(idx.replica_set(1), &[0, 1]);
        assert_eq!(idx.replica_set(99), &[] as &[PartitionId]);
    }

    #[test]
    fn streamed_storage_builds_an_identical_index() {
        let (g, a) = rmat_with_assignment();
        let mem = ShardedAssignmentIndex::build(&g, &a, 8);
        let dir = std::env::temp_dir().join("dne_index_streamed_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("g.chunks");
        dne_graph::io::write_chunked(&g, &p, 9).unwrap();
        let s = dne_graph::io::open_chunk_streamed(&p).unwrap();
        assert!(!s.has_adjacency());
        let streamed = ShardedAssignmentIndex::build(&s, &a, 8);
        assert_eq!(streamed.fingerprint(), mem.fingerprint());
        assert_eq!(streamed.total_replicas(), mem.total_replicas());
        g.for_each_edge(|_, u, v| {
            assert_eq!(streamed.owner_of(u, v), mem.owner_of(u, v));
        });
    }

    #[test]
    fn shard_parsing_is_strict() {
        assert_eq!(parse_shards("8"), Ok(8));
        assert_eq!(parse_shards(" 1 "), Ok(1));
        assert!(parse_shards("12").unwrap_err().contains("power of two"));
        assert!(parse_shards("0").unwrap_err().contains("power of two"));
        assert!(parse_shards("eight").unwrap_err().contains("power-of-two"));
    }

    #[test]
    #[should_panic(expected = "not a positive power of two")]
    fn build_rejects_non_power_of_two_shards() {
        let (g, a) = rmat_with_assignment();
        ShardedAssignmentIndex::build(&g, &a, 3);
    }
}
