//! The TCP socket fabric: the wire frames of the bytes backend carried
//! over real `TcpStream`s, between threads or between OS processes.
//!
//! # Topology and bootstrap
//!
//! A fabric of `P` endpoints is a full localhost mesh: one TCP connection
//! per unordered rank pair, built by a rendezvous protocol:
//!
//! 1. **Rendezvous** — rank 0 listens on a known address (the
//!    [`TcpRendezvous`]). Every rank `r > 0` first binds its own
//!    ephemeral mesh listener, then dials rank 0 and sends a hello
//!    (`[u32 magic][u8 fabric][u32 rank][u16 listen port]`).
//! 2. **Roster** — once all `P − 1` hellos arrived, rank 0 answers each
//!    peer with the roster (`[u32 magic][u32 nprocs][u16 port × (P − 1)]`)
//!    mapping every nonzero rank to its mesh listener port. The
//!    rendezvous connection itself becomes the `0 ↔ r` mesh link.
//! 3. **Mesh** — each rank `i > 0` dials the listeners of ranks
//!    `1..i` (sending a hello so the acceptor learns who called) and
//!    accepts one connection from each rank `i+1..P`.
//!
//! The `fabric` byte lets one rendezvous listener serve several fabrics
//! (a cluster run builds two: point-to-point and collectives); hellos
//! that arrive for a fabric not currently being collected are stashed,
//! so process startup order cannot wedge the bootstrap. The collectives
//! mesh's fabric id additionally encodes the collective topology, so
//! processes that resolved different `DNE_COLLECTIVES` values fail the
//! bootstrap with a typed error naming the disagreement instead of
//! deadlocking at the first barrier. Every bootstrap step carries a
//! deadline — a peer that never shows up is a
//! [`TransportError::Bootstrap`], not a hang.
//!
//! # Framing
//!
//! Data frames are exactly the bytes-backend format:
//! `[u64 payload len][u32 src][payload]`, little-endian. The
//! [`FramedReader`] reassembles them from the byte stream, immune to
//! short reads and coalesced frames, bounding the length prefix by
//! [`MAX_FRAME_PAYLOAD`] and by the bytes that actually arrive (a
//! truncated connection is a typed error, never an unbounded allocation
//! or a forever-block). A length prefix of `u64::MAX` is the *goodbye
//! frame*: endpoints send it on every link when dropped, which is how
//! peers distinguish a graceful teardown (reader retires silently) from
//! a killed process (EOF without goodbye ⇒
//! [`TransportError::Disconnected`] surfaces from `recv`).
//!
//! # Accounting
//!
//! `send` reports the encoded payload length exactly like the bytes
//! backend, so `comm_bytes`/`comm_msgs` are identical across loopback,
//! bytes, and tcp for identical traffic — the cross-transport equality
//! tests assert this end-to-end.

use std::io::{self, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::cluster::Ctx;
use crate::collectives::{CollMsg, CollectiveTopology, Collectives};
use crate::comm::CommEndpoint;
use crate::memory::MemoryTracker;
use crate::stats::CommStats;
use crate::transport::{decode_frame, encode_frame, Transport, TransportError, FRAME_HEADER_BYTES};

pub use crate::transport::MAX_FRAME_PAYLOAD;
use crate::wire::{WireDecode, WireEncode};

/// Handshake magic ("DNE1") opening every bootstrap message.
const MAGIC: u32 = 0x444E_4531;

/// Length-prefix sentinel marking a goodbye frame.
const BYE_LEN: u64 = u64::MAX;

/// Payloads are read in chunks of this size, so even an in-bound length
/// prefix only ever allocates ahead of the stream by one chunk.
const READ_CHUNK: usize = 1 << 20;

/// How long any single bootstrap step (dial, hello, roster, accept) may
/// take before the bootstrap fails with a typed error.
const BOOTSTRAP_TIMEOUT: Duration = Duration::from_secs(60);

/// Fabric id of the point-to-point mesh in a cluster session.
const FABRIC_P2P: u8 = 0;

/// First fabric id of the collectives meshes: the collective topology is
/// baked into the fabric id (`FABRIC_COLL_BASE + topology index`), so a
/// cluster whose processes disagree on `DNE_COLLECTIVES` fails the
/// bootstrap with a typed error naming the disagreement instead of
/// deadlocking at the first barrier.
const FABRIC_COLL_BASE: u8 = 1;

/// The collectives-mesh fabric id of `topology`.
fn coll_fabric(topology: CollectiveTopology) -> u8 {
    let idx = CollectiveTopology::ALL.iter().position(|t| *t == topology).expect("topology in ALL");
    FABRIC_COLL_BASE + idx as u8
}

/// Human-readable name of a fabric id, for bootstrap errors.
fn fabric_name(fabric: u8) -> String {
    if fabric == FABRIC_P2P {
        "point-to-point".into()
    } else {
        match CollectiveTopology::ALL.get((fabric - FABRIC_COLL_BASE) as usize) {
            Some(t) => format!("{t}-collectives"),
            None => format!("unknown fabric {fabric}"),
        }
    }
}

/// Whether a fabric id names a collectives mesh (of any topology).
fn is_coll_fabric(fabric: u8) -> bool {
    fabric >= FABRIC_COLL_BASE
        && ((fabric - FABRIC_COLL_BASE) as usize) < CollectiveTopology::ALL.len()
}

/// Two collectives fabrics that differ can only mean the cluster's
/// processes resolved different `DNE_COLLECTIVES` values.
fn topology_disagreement(theirs: u8, ours: u8) -> TransportError {
    bootstrap_err(format!(
        "a peer bootstrapped the {} mesh while this process expects the {} mesh — \
         the cluster's processes disagree on the collective topology \
         (check DNE_COLLECTIVES in every process's environment)",
        fabric_name(theirs),
        fabric_name(ours)
    ))
}

fn io_err(context: impl Into<String>, error: io::Error) -> TransportError {
    TransportError::Io { context: context.into(), error }
}

fn bootstrap_err(detail: impl Into<String>) -> TransportError {
    TransportError::Bootstrap { detail: detail.into() }
}

// ---------------------------------------------------------------- framing --

/// One item pulled off a framed byte stream.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameItem {
    /// A payload frame tagged with the source rank its header claims.
    Frame {
        /// Source rank from the frame header.
        src: u32,
        /// The raw encoded payload (codec bytes, header stripped).
        payload: Vec<u8>,
    },
    /// The goodbye marker of a graceful shutdown.
    Bye {
        /// Source rank from the goodbye header.
        src: u32,
    },
}

/// Read until `buf` is full or the stream ends; returns the bytes filled.
fn read_full<R: Read + ?Sized>(r: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Reassembles length-prefixed wire frames from a byte stream.
///
/// Handles the two realities of stream sockets that the in-process
/// channel backends never see: *short reads* (one frame arriving in many
/// pieces) and *coalesced frames* (many frames arriving in one read).
/// Every malformed condition — EOF between frames, EOF mid-frame, a
/// length prefix beyond [`MAX_FRAME_PAYLOAD`] — is a typed error.
pub struct FramedReader<R> {
    inner: R,
}

impl<R: Read> FramedReader<R> {
    /// Wrap a byte stream.
    pub fn new(inner: R) -> Self {
        Self { inner }
    }

    /// Read the next frame, blocking as needed.
    ///
    /// EOF cleanly between frames yields
    /// [`TransportError::Disconnected`] (the caller knows which peer the
    /// stream belongs to); EOF anywhere inside a frame, or an oversized
    /// length prefix, yields [`TransportError::Frame`].
    pub fn read_frame(&mut self) -> Result<FrameItem, TransportError> {
        let mut header = [0u8; FRAME_HEADER_BYTES];
        let filled = read_full(&mut self.inner, &mut header)
            .map_err(|e| io_err("reading frame header", e))?;
        if filled == 0 {
            // Stream ended at a frame boundary without a goodbye frame:
            // the peer vanished rather than shutting down.
            return Err(TransportError::Disconnected { peer: None });
        }
        if filled < FRAME_HEADER_BYTES {
            return Err(TransportError::Frame {
                src: None,
                detail: format!(
                    "stream ended mid-header after {filled} of {FRAME_HEADER_BYTES} bytes"
                ),
            });
        }
        let len = u64::from_le_bytes(header[0..8].try_into().expect("8-byte slice"));
        let src = u32::from_le_bytes(header[8..12].try_into().expect("4-byte slice"));
        if len == BYE_LEN {
            return Ok(FrameItem::Bye { src });
        }
        if len > MAX_FRAME_PAYLOAD {
            return Err(TransportError::Frame {
                src: Some(src as usize),
                detail: format!(
                    "length prefix {len} exceeds the {MAX_FRAME_PAYLOAD}-byte frame bound"
                ),
            });
        }
        // Read the payload chunk by chunk so the allocation is bounded by
        // the bytes that actually arrive, not by what the prefix claims.
        let len = len as usize;
        let mut payload = Vec::new();
        while payload.len() < len {
            let chunk = READ_CHUNK.min(len - payload.len());
            let start = payload.len();
            payload.resize(start + chunk, 0);
            let got = read_full(&mut self.inner, &mut payload[start..])
                .map_err(|e| io_err("reading frame payload", e))?;
            if got < chunk {
                return Err(TransportError::Frame {
                    src: Some(src as usize),
                    detail: format!(
                        "stream ended mid-frame: length prefix claims {len} payload bytes, \
                         only {} arrived",
                        start + got
                    ),
                });
            }
        }
        Ok(FrameItem::Frame { src, payload })
    }
}

/// The 12-byte goodbye frame of rank `src`.
fn bye_frame(src: usize) -> [u8; FRAME_HEADER_BYTES] {
    let mut f = [0u8; FRAME_HEADER_BYTES];
    f[0..8].copy_from_slice(&BYE_LEN.to_le_bytes());
    f[8..12].copy_from_slice(&(src as u32).to_le_bytes());
    f
}

// -------------------------------------------------------------- bootstrap --

/// Hello: `[u32 magic][u8 fabric][u32 rank][u16 listen port]`.
const HELLO_BYTES: usize = 11;

fn write_hello(s: &mut impl Write, fabric: u8, rank: u32, port: u16) -> io::Result<()> {
    let mut buf = [0u8; HELLO_BYTES];
    buf[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    buf[4] = fabric;
    buf[5..9].copy_from_slice(&rank.to_le_bytes());
    buf[9..11].copy_from_slice(&port.to_le_bytes());
    s.write_all(&buf)
}

fn read_hello(s: &mut impl Read) -> Result<(u8, u32, u16), TransportError> {
    let mut buf = [0u8; HELLO_BYTES];
    s.read_exact(&mut buf).map_err(|e| io_err("reading bootstrap hello", e))?;
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4-byte slice"));
    if magic != MAGIC {
        return Err(bootstrap_err(format!(
            "bad hello magic {magic:#010x} (expected {MAGIC:#010x}) — \
             is something else talking to the rendezvous port?"
        )));
    }
    let fabric = buf[4];
    let rank = u32::from_le_bytes(buf[5..9].try_into().expect("4-byte slice"));
    let port = u16::from_le_bytes(buf[9..11].try_into().expect("2-byte slice"));
    Ok((fabric, rank, port))
}

fn write_roster(s: &mut impl Write, nprocs: usize, ports: &[u16]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(8 + ports.len() * 2);
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&(nprocs as u32).to_le_bytes());
    for p in ports {
        buf.extend_from_slice(&p.to_le_bytes());
    }
    s.write_all(&buf)
}

fn read_roster(s: &mut impl Read, nprocs: usize) -> Result<Vec<u16>, TransportError> {
    let mut head = [0u8; 8];
    s.read_exact(&mut head).map_err(|e| io_err("reading bootstrap roster", e))?;
    let magic = u32::from_le_bytes(head[0..4].try_into().expect("4-byte slice"));
    if magic != MAGIC {
        return Err(bootstrap_err(format!("bad roster magic {magic:#010x}")));
    }
    let n = u32::from_le_bytes(head[4..8].try_into().expect("4-byte slice")) as usize;
    if n != nprocs {
        return Err(bootstrap_err(format!(
            "cluster size disagreement: rendezvous says {n} processes, this rank expects {nprocs}"
        )));
    }
    let mut ports = vec![0u8; (nprocs - 1) * 2];
    s.read_exact(&mut ports).map_err(|e| io_err("reading bootstrap roster ports", e))?;
    Ok(ports.chunks_exact(2).map(|c| u16::from_le_bytes([c[0], c[1]])).collect())
}

/// The rendezvous point of a TCP fabric: rank 0's listener, which peers
/// dial to exchange rank handshakes before the mesh is built.
///
/// One rendezvous can bootstrap several fabrics in sequence (a cluster
/// session builds a point-to-point mesh and a collectives mesh); hellos
/// arriving early for a later fabric are stashed, so peer startup order
/// does not matter.
pub struct TcpRendezvous {
    listener: TcpListener,
    addr: SocketAddr,
    stash: Vec<(u8, u32, u16, TcpStream)>,
}

impl TcpRendezvous {
    /// Bind the rendezvous listener (e.g. `"127.0.0.1:0"` for an
    /// ephemeral port, or a fixed `host:port` peers were told to dial).
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self { listener, addr, stash: Vec::new() })
    }

    /// The bound address peers must dial.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accept hellos until every rank `1..nprocs` reported in for
    /// `fabric`; returns `(rank, mesh port, stream)` sorted by rank.
    fn collect(
        &mut self,
        fabric: u8,
        nprocs: usize,
    ) -> Result<Vec<(u32, u16, TcpStream)>, TransportError> {
        let mut slots: Vec<Option<(u16, TcpStream)>> = (0..nprocs).map(|_| None).collect();
        let mut place = |rank: u32, port: u16, stream: TcpStream| -> Result<(), TransportError> {
            let slot = slots.get_mut(rank as usize).filter(|_| rank >= 1).ok_or_else(|| {
                bootstrap_err(format!("hello from out-of-range rank {rank} (nprocs {nprocs})"))
            })?;
            if slot.is_some() {
                return Err(bootstrap_err(format!("two hellos from rank {rank}")));
            }
            *slot = Some((port, stream));
            Ok(())
        };
        let mut remaining = nprocs - 1;
        // Serve hellos stashed by an earlier fabric's collection first.
        let mut i = 0;
        while i < self.stash.len() {
            if self.stash[i].0 == fabric {
                let (_, rank, port, stream) = self.stash.remove(i);
                place(rank, port, stream)?;
                remaining -= 1;
            } else if is_coll_fabric(self.stash[i].0) && is_coll_fabric(fabric) {
                // A stashed collectives hello for a *different* topology:
                // fail loudly now, not via a barrier deadlock later.
                return Err(topology_disagreement(self.stash[i].0, fabric));
            } else {
                i += 1;
            }
        }
        let deadline = Instant::now() + BOOTSTRAP_TIMEOUT;
        self.listener
            .set_nonblocking(true)
            .map_err(|e| io_err("configuring rendezvous listener", e))?;
        while remaining > 0 {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .and_then(|()| stream.set_read_timeout(Some(BOOTSTRAP_TIMEOUT)))
                        .map_err(|e| io_err("configuring rendezvous connection", e))?;
                    let (f, rank, port) = read_hello(&mut stream)?;
                    stream
                        .set_read_timeout(None)
                        .map_err(|e| io_err("configuring rendezvous connection", e))?;
                    if f == fabric {
                        place(rank, port, stream)?;
                        remaining -= 1;
                    } else if is_coll_fabric(f) && is_coll_fabric(fabric) {
                        return Err(topology_disagreement(f, fabric));
                    } else {
                        self.stash.push((f, rank, port, stream));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(bootstrap_err(format!(
                            "timed out waiting for {remaining} of {} peers to dial the \
                             rendezvous at {}",
                            nprocs - 1,
                            self.addr
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(io_err("accepting rendezvous connection", e)),
            }
        }
        self.listener
            .set_nonblocking(false)
            .map_err(|e| io_err("configuring rendezvous listener", e))?;
        Ok(slots
            .into_iter()
            .enumerate()
            .filter_map(|(rank, s)| s.map(|(port, stream)| (rank as u32, port, stream)))
            .collect())
    }
}

/// Rank 0's side of one fabric bootstrap: collect hellos, answer rosters,
/// keep the rendezvous connections as mesh links.
fn host_endpoint<M>(
    rv: &mut TcpRendezvous,
    fabric: u8,
    nprocs: usize,
) -> Result<TcpTransport<M>, TransportError>
where
    M: Send + WireEncode + WireDecode + 'static,
{
    if nprocs == 1 {
        return Ok(TcpTransport::solo());
    }
    let peers = rv.collect(fabric, nprocs)?;
    let ports: Vec<u16> = peers.iter().map(|&(_, port, _)| port).collect();
    let mut links: Vec<Option<TcpStream>> = (0..nprocs).map(|_| None).collect();
    for (rank, _, mut stream) in peers {
        write_roster(&mut stream, nprocs, &ports).map_err(|e| io_err("sending roster", e))?;
        links[rank as usize] = Some(stream);
    }
    Ok(TcpTransport::from_links(0, nprocs, links))
}

/// Dial `addr` until it accepts or the bootstrap deadline passes.
fn connect_with_retry(addr: SocketAddr) -> Result<TcpStream, TransportError> {
    let deadline = Instant::now() + BOOTSTRAP_TIMEOUT;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() > deadline {
                    return Err(io_err(format!("dialing rendezvous {addr}"), e));
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// A nonzero rank's side of one fabric bootstrap: dial the rendezvous,
/// learn the roster, then complete the mesh (dial lower ranks, accept
/// higher ranks).
fn connect_endpoint<M>(
    addr: SocketAddr,
    fabric: u8,
    rank: usize,
    nprocs: usize,
) -> Result<TcpTransport<M>, TransportError>
where
    M: Send + WireEncode + WireDecode + 'static,
{
    assert!(rank >= 1 && rank < nprocs, "connect_endpoint is for ranks 1..nprocs");
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| io_err("binding mesh listener", e))?;
    let my_port =
        listener.local_addr().map_err(|e| io_err("reading mesh listener address", e))?.port();
    let mut rendezvous = connect_with_retry(addr)?;
    write_hello(&mut rendezvous, fabric, rank as u32, my_port)
        .map_err(|e| io_err("sending hello", e))?;
    rendezvous
        .set_read_timeout(Some(BOOTSTRAP_TIMEOUT))
        .map_err(|e| io_err("configuring rendezvous connection", e))?;
    let ports = read_roster(&mut rendezvous, nprocs)?;
    rendezvous
        .set_read_timeout(None)
        .map_err(|e| io_err("configuring rendezvous connection", e))?;
    let mut links: Vec<Option<TcpStream>> = (0..nprocs).map(|_| None).collect();
    links[0] = Some(rendezvous);
    // Dial every lower nonzero rank's mesh listener.
    for j in 1..rank {
        let mut s = TcpStream::connect(("127.0.0.1", ports[j - 1]))
            .map_err(|e| io_err(format!("dialing mesh listener of rank {j}"), e))?;
        write_hello(&mut s, fabric, rank as u32, 0).map_err(|e| io_err("sending mesh hello", e))?;
        links[j] = Some(s);
    }
    // Accept one connection from every higher rank (any arrival order).
    // The accept itself is bounded by the bootstrap deadline too: a peer
    // that dies between its rendezvous hello and its mesh dial must
    // surface as a bootstrap error here, not wedge this rank forever.
    listener.set_nonblocking(true).map_err(|e| io_err("configuring mesh listener", e))?;
    let deadline = Instant::now() + BOOTSTRAP_TIMEOUT;
    for _ in rank + 1..nprocs {
        let mut s = loop {
            match listener.accept() {
                Ok((s, _)) => break s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(bootstrap_err(format!(
                            "timed out waiting for higher ranks to dial rank {rank}'s mesh \
                             listener"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(io_err("accepting mesh connection", e)),
            }
        };
        s.set_nonblocking(false)
            .and_then(|()| s.set_read_timeout(Some(BOOTSTRAP_TIMEOUT)))
            .map_err(|e| io_err("configuring mesh connection", e))?;
        let (f, peer, _) = read_hello(&mut s)?;
        s.set_read_timeout(None).map_err(|e| io_err("configuring mesh connection", e))?;
        if f != fabric {
            if is_coll_fabric(f) && is_coll_fabric(fabric) {
                return Err(topology_disagreement(f, fabric));
            }
            return Err(bootstrap_err(format!(
                "mesh hello for fabric {f} arrived on fabric {fabric}'s listener"
            )));
        }
        let peer = peer as usize;
        if peer <= rank || peer >= nprocs {
            return Err(bootstrap_err(format!(
                "mesh hello from unexpected rank {peer} (this is rank {rank} of {nprocs})"
            )));
        }
        if links[peer].is_some() {
            return Err(bootstrap_err(format!("two mesh connections from rank {peer}")));
        }
        links[peer] = Some(s);
    }
    Ok(TcpTransport::from_links(rank, nprocs, links))
}

// -------------------------------------------------------------- endpoint --

/// What a link's reader thread delivers into the endpoint's event queue.
enum Event<M> {
    /// A decoded envelope from a peer (or a self-send).
    Frame(usize, M),
    /// The peer said goodbye: graceful teardown, the link is retired.
    Bye,
    /// The link failed: dirty EOF, framing violation, or decode error.
    Fault(TransportError),
}

/// `Read` over a shared socket (both halves use the same fd; `&TcpStream`
/// implements `Read`/`Write`, so no descriptor duplication is needed).
struct ArcRead(Arc<TcpStream>);

impl Read for ArcRead {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        (&*self.0).read(buf)
    }
}

/// One endpoint of the TCP socket fabric.
///
/// Holds the write half of one `TcpStream` per peer; a detached reader
/// thread per link reassembles frames (via [`FramedReader`]), decodes
/// them, and queues `(src, msg)` envelopes. `recv` surfaces a peer that
/// died without its goodbye frame as [`TransportError::Disconnected`]
/// instead of blocking forever, and returns the same error when every
/// peer is gone and nothing remains queued.
pub struct TcpTransport<M> {
    rank: usize,
    nprocs: usize,
    /// Write half per peer (`None` at the self index).
    writers: Vec<Option<Mutex<Arc<TcpStream>>>>,
    events_tx: Sender<Event<M>>,
    events_rx: Receiver<Event<M>>,
    /// Links whose reader is still delivering (decremented per Bye/Fault).
    live: Mutex<usize>,
}

impl<M> TcpTransport<M>
where
    M: Send + WireEncode + WireDecode + 'static,
{
    /// Build all `n` connected endpoints of an in-process fabric: machine
    /// threads bridged by real localhost sockets, bootstrapped through
    /// the same rendezvous protocol spawned worker processes use.
    ///
    /// # Panics
    /// Panics when the localhost mesh cannot be built (ports exhausted,
    /// loopback unavailable) — an environment failure, not an input
    /// condition. Multi-process callers use [`TcpProcessCluster`], which
    /// returns errors instead.
    pub fn fabric(n: usize) -> Vec<Self> {
        Self::try_fabric(n).unwrap_or_else(|e| panic!("failed to build localhost TCP fabric: {e}"))
    }

    /// Fallible variant of [`TcpTransport::fabric`].
    pub fn try_fabric(n: usize) -> Result<Vec<Self>, TransportError> {
        assert!(n >= 1, "fabric needs at least one endpoint");
        if n == 1 {
            return Ok(vec![Self::solo()]);
        }
        let mut rv = TcpRendezvous::bind("127.0.0.1:0")
            .map_err(|e| io_err("binding in-process rendezvous", e))?;
        let addr = rv.local_addr();
        std::thread::scope(|scope| {
            let dialers: Vec<_> = (1..n)
                .map(|r| scope.spawn(move || connect_endpoint::<M>(addr, FABRIC_P2P, r, n)))
                .collect();
            let mut out = Vec::with_capacity(n);
            out.push(host_endpoint::<M>(&mut rv, FABRIC_P2P, n)?);
            for d in dialers {
                out.push(
                    d.join()
                        .map_err(|_| bootstrap_err("in-process bootstrap thread panicked"))??,
                );
            }
            Ok(out)
        })
    }

    /// The trivial 1-endpoint fabric: no sockets, self-sends only.
    fn solo() -> Self {
        let (events_tx, events_rx) = unbounded();
        Self { rank: 0, nprocs: 1, writers: vec![None], events_tx, events_rx, live: Mutex::new(0) }
    }

    /// Assemble an endpoint from its bootstrapped mesh links, spawning
    /// one detached reader thread per link.
    fn from_links(rank: usize, nprocs: usize, links: Vec<Option<TcpStream>>) -> Self {
        let (events_tx, events_rx) = unbounded();
        let mut live = 0;
        let writers = links
            .into_iter()
            .enumerate()
            .map(|(peer, link)| {
                link.map(|stream| {
                    let _ = stream.set_nodelay(true);
                    let shared = Arc::new(stream);
                    let tx = events_tx.clone();
                    let read_half = Arc::clone(&shared);
                    live += 1;
                    std::thread::Builder::new()
                        .name(format!("dne-tcp-{rank}<-{peer}"))
                        .spawn(move || reader_loop(peer, read_half, tx))
                        .expect("spawning tcp reader thread");
                    Mutex::new(shared)
                })
            })
            .collect();
        Self { rank, nprocs, writers, events_tx, events_rx, live: Mutex::new(live) }
    }
}

impl<M> TcpTransport<M> {
    /// Simulate an abnormal death for fault-injection tests: slam every
    /// link shut (no goodbye frames), exactly as a killed process would.
    /// Peers observe [`TransportError::Disconnected`] from `recv`.
    pub fn abort(&self) {
        for w in self.writers.iter().flatten() {
            let _ = w.lock().shutdown(Shutdown::Both);
        }
    }
}

/// Per-link reader: reassemble frames, decode, queue. Exits on goodbye,
/// fault, or when the owning endpoint is dropped (queue disconnect).
fn reader_loop<M: Send + WireDecode>(peer: usize, stream: Arc<TcpStream>, tx: Sender<Event<M>>) {
    let mut frames = FramedReader::new(BufReader::with_capacity(64 << 10, ArcRead(stream)));
    loop {
        let event = match frames.read_frame() {
            Ok(FrameItem::Frame { src, payload }) => {
                if src as usize != peer {
                    Event::Fault(TransportError::Frame {
                        src: Some(peer),
                        detail: format!(
                            "frame claims source rank {src} on the link from rank {peer}"
                        ),
                    })
                } else {
                    match M::from_wire(&payload) {
                        Ok(msg) => Event::Frame(peer, msg),
                        Err(error) => Event::Fault(TransportError::Decode { src: peer, error }),
                    }
                }
            }
            Ok(FrameItem::Bye { .. }) => Event::Bye,
            Err(TransportError::Disconnected { .. }) => {
                Event::Fault(TransportError::Disconnected { peer: Some(peer) })
            }
            Err(TransportError::Frame { detail, .. }) => {
                Event::Fault(TransportError::Frame { src: Some(peer), detail })
            }
            Err(e) => Event::Fault(e),
        };
        let stop = matches!(event, Event::Bye | Event::Fault(_));
        if tx.send(event).is_err() || stop {
            return;
        }
    }
}

impl<M> Transport<M> for TcpTransport<M>
where
    M: Send + WireEncode + WireDecode + 'static,
{
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn nprocs(&self) -> usize {
        self.nprocs
    }

    fn send(&self, dst: usize, msg: M) -> Result<usize, TransportError> {
        let frame = encode_frame(self.rank, &msg);
        let wire = frame.len() - FRAME_HEADER_BYTES;
        // Enforce the frame bound at the sender (as every backend does):
        // shipping a gigabyte only for the receiver to reject it as
        // stream corruption would waste the transfer and misattribute a
        // legitimate (if oversized) message.
        crate::transport::check_payload_bound(wire, self.rank)?;
        if dst == self.rank {
            // Self-sends round-trip through the codec like any other
            // envelope (matching the bytes backend) but skip the socket.
            let envelope = decode_frame(&frame)?;
            self.events_tx
                .send(Event::Frame(envelope.0, envelope.1))
                .expect("own event queue outlives the endpoint");
        } else {
            let writer = self.writers[dst].as_ref().expect("non-self destinations have links");
            let guard = writer.lock();
            let mut w: &TcpStream = &guard;
            w.write_all(&frame).map_err(|error| TransportError::Io {
                context: format!("sending {}-byte frame to rank {dst}", frame.len()),
                error,
            })?;
        }
        Ok(wire)
    }

    fn recv(&self) -> Result<(usize, M), TransportError> {
        loop {
            let event = if *self.live.lock() == 0 {
                // Every link has retired: only already-queued envelopes
                // (including self-sends) can satisfy this receive. An
                // empty queue means blocking would never return.
                match self.events_rx.try_recv() {
                    Ok(ev) => ev,
                    Err(_) => return Err(TransportError::Disconnected { peer: None }),
                }
            } else {
                self.events_rx.recv().expect("events channel held open by this endpoint")
            };
            match event {
                Event::Frame(src, msg) => return Ok((src, msg)),
                Event::Bye => *self.live.lock() -= 1,
                Event::Fault(e) => {
                    *self.live.lock() -= 1;
                    return Err(e);
                }
            }
        }
    }
}

impl<M> Drop for TcpTransport<M> {
    fn drop(&mut self) {
        // Graceful teardown: a goodbye frame then a write-side FIN on
        // every link, so peers can tell this shutdown from a crash. A
        // drop that happens while this thread is *panicking* is a crash,
        // not a shutdown — skip the goodbye and slam the links, so peers
        // observe a typed disconnect instead of blocking on a machine
        // that will never speak again.
        if std::thread::panicking() {
            self.abort();
            return;
        }
        let bye = bye_frame(self.rank);
        for w in self.writers.iter().flatten() {
            let guard = w.lock();
            let mut s: &TcpStream = &guard;
            let _ = s.write_all(&bye);
            let _ = guard.shutdown(Shutdown::Write);
        }
    }
}

// --------------------------------------------------------- multi-process --

/// One rank of a TCP cluster whose machines are *real OS processes*.
///
/// Rank 0 [`host`](TcpProcessCluster::host)s the rendezvous; every other
/// process [`join`](TcpProcessCluster::join)s it.
/// [`connect`](TcpProcessCluster::connect) then bootstraps the two meshes
/// of a cluster session (point-to-point and collectives) and hands back a
/// [`TcpSession`] whose [`Ctx`] offers the exact API that in-process
/// `Cluster::run` closures receive — the same per-rank algorithm code
/// drives both. See the `dne-tcp-worker` binary for the full workflow.
pub struct TcpProcessCluster {
    rank: usize,
    nprocs: usize,
    rendezvous: Option<TcpRendezvous>,
    addr: SocketAddr,
}

impl TcpProcessCluster {
    /// Become rank 0: bind the rendezvous listener at `bind_addr`
    /// (`"127.0.0.1:0"` picks an ephemeral port; advertise
    /// [`addr`](TcpProcessCluster::addr) to the other processes).
    pub fn host(nprocs: usize, bind_addr: &str) -> Result<Self, TransportError> {
        assert!(nprocs >= 1, "cluster needs at least one process");
        let rendezvous = TcpRendezvous::bind(bind_addr)
            .map_err(|e| io_err(format!("binding rendezvous at {bind_addr}"), e))?;
        let addr = rendezvous.local_addr();
        Ok(Self { rank: 0, nprocs, rendezvous: Some(rendezvous), addr })
    }

    /// Become rank `rank` (`1..nprocs`), dialing the rendezvous `addr`
    /// that rank 0 advertised.
    pub fn join(rank: usize, nprocs: usize, addr: &str) -> Result<Self, TransportError> {
        assert!(rank >= 1 && rank < nprocs, "join is for ranks 1..nprocs");
        let addr = addr
            .parse()
            .map_err(|e| bootstrap_err(format!("invalid rendezvous address {addr:?}: {e}")))?;
        Ok(Self { rank, nprocs, rendezvous: None, addr })
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processes in the cluster.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The rendezvous address (for rank 0: the bound listener address to
    /// advertise to joining processes).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bootstrap both meshes and build this rank's cluster context, with
    /// the collective topology resolved from the `DNE_COLLECTIVES`
    /// environment variable (flat when unset — every process of a cluster
    /// must agree, which environment inheritance gives for free).
    ///
    /// Blocks until every process of the cluster has connected (bounded
    /// by the bootstrap deadline). The session's [`CommStats`] and
    /// [`MemoryTracker`] are process-local: only this rank's row is
    /// populated — aggregate across ranks with a collective after the
    /// algorithm finishes, as `dne-tcp-worker` does.
    pub fn connect<M>(self) -> Result<TcpSession<M>, TransportError>
    where
        M: Send + WireEncode + WireDecode + 'static,
    {
        self.connect_with_collectives(CollectiveTopology::from_env())
    }

    /// [`TcpProcessCluster::connect`] with an explicit collective
    /// topology. Every process of the cluster must pass the same value:
    /// the topology is baked into the collectives mesh's fabric id, so a
    /// disagreement fails the bootstrap with a typed
    /// [`TransportError::Bootstrap`] naming both topologies instead of
    /// deadlocking at the first barrier.
    pub fn connect_with_collectives<M>(
        mut self,
        topology: CollectiveTopology,
    ) -> Result<TcpSession<M>, TransportError>
    where
        M: Send + WireEncode + WireDecode + 'static,
    {
        let stats = CommStats::new(self.nprocs);
        let memory = MemoryTracker::new(self.nprocs);
        let coll_id = coll_fabric(topology);
        let (p2p, coll): (TcpTransport<M>, TcpTransport<CollMsg>) = match self.rendezvous.as_mut() {
            Some(rv) => (
                host_endpoint(rv, FABRIC_P2P, self.nprocs)?,
                host_endpoint(rv, coll_id, self.nprocs)?,
            ),
            None => (
                connect_endpoint(self.addr, FABRIC_P2P, self.rank, self.nprocs)?,
                connect_endpoint(self.addr, coll_id, self.rank, self.nprocs)?,
            ),
        };
        let comm = CommEndpoint::from_transport(Box::new(p2p), Arc::clone(&stats));
        let collectives = Collectives::from_transport(Box::new(coll), topology, Arc::clone(&stats));
        let ctx = Ctx::from_parts(comm, collectives, Arc::clone(&memory));
        Ok(TcpSession { ctx, comm: stats, memory })
    }
}

/// A connected per-process cluster session (see [`TcpProcessCluster`]).
pub struct TcpSession<M> {
    /// The per-rank cluster context — the same API in-process
    /// `Cluster::run` closures receive.
    pub ctx: Ctx<M>,
    /// Process-local communication accounting (this rank's row only).
    pub comm: Arc<CommStats>,
    /// Process-local memory accounting (this rank's row only).
    pub memory: Arc<MemoryTracker>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireSize;

    // ------------------------------------------------- framed reader --

    /// Adversarial `Read` that trickles one byte per call — the worst
    /// possible short-read schedule.
    struct OneByte<R>(R);

    impl<R: Read> Read for OneByte<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(1);
            self.0.read(&mut buf[..n])
        }
    }

    #[test]
    fn coalesced_frames_split_correctly() {
        // Three frames delivered in one contiguous buffer must come back
        // as three distinct items.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_frame(0, &7u64));
        bytes.extend_from_slice(&encode_frame(1, &vec![1u64, 2, 3]));
        bytes.extend_from_slice(&bye_frame(0));
        let mut r = FramedReader::new(io::Cursor::new(bytes));
        assert_eq!(
            r.read_frame().unwrap(),
            FrameItem::Frame { src: 0, payload: 7u64.to_le_bytes().to_vec() }
        );
        match r.read_frame().unwrap() {
            FrameItem::Frame { src: 1, payload } => {
                assert_eq!(Vec::<u64>::from_wire(&payload).unwrap(), vec![1, 2, 3]);
            }
            other => panic!("expected frame from rank 1, got {other:?}"),
        }
        assert_eq!(r.read_frame().unwrap(), FrameItem::Bye { src: 0 });
    }

    #[test]
    fn short_reads_reassemble_frames() {
        let mut bytes = Vec::new();
        let payload: Vec<u64> = (0..100).collect();
        bytes.extend_from_slice(&encode_frame(2, &payload));
        bytes.extend_from_slice(&encode_frame(2, &vec![9u64]));
        let mut r = FramedReader::new(OneByte(io::Cursor::new(bytes)));
        for want in [payload, vec![9u64]] {
            match r.read_frame().unwrap() {
                FrameItem::Frame { src: 2, payload } => {
                    assert_eq!(Vec::<u64>::from_wire(&payload).unwrap(), want);
                }
                other => panic!("expected data frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn eof_between_frames_is_disconnect() {
        let bytes = encode_frame(0, &5u64);
        let mut r = FramedReader::new(io::Cursor::new(bytes));
        r.read_frame().unwrap();
        let err = r.read_frame().unwrap_err();
        assert!(matches!(err, TransportError::Disconnected { .. }), "{err}");
    }

    #[test]
    fn truncated_header_and_payload_error_cleanly() {
        // A stream that ends mid-header.
        let frame = encode_frame(0, &5u64);
        let mut r = FramedReader::new(io::Cursor::new(frame[..7].to_vec()));
        let err = r.read_frame().unwrap_err();
        assert!(matches!(err, TransportError::Frame { .. }), "mid-header: {err}");
        // A stream that ends mid-payload: errors instead of blocking or
        // over-allocating.
        let mut r = FramedReader::new(io::Cursor::new(frame[..frame.len() - 3].to_vec()));
        let err = r.read_frame().unwrap_err();
        match err {
            TransportError::Frame { src: Some(0), detail } => {
                assert!(detail.contains("mid-frame"), "{detail}");
            }
            other => panic!("expected mid-frame error from rank 0, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_bounded() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut r = FramedReader::new(io::Cursor::new(bytes));
        match r.read_frame().unwrap_err() {
            TransportError::Frame { detail, .. } => assert!(detail.contains("exceeds"), "{detail}"),
            other => panic!("expected framing error, got {other:?}"),
        }
    }

    #[test]
    fn absurd_length_prefix_does_not_allocate_ahead_of_the_stream() {
        // In-bound but huge claim with a near-empty stream: must error
        // after at most one read chunk of allocation, quickly.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAX_FRAME_PAYLOAD.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 100]);
        let mut r = FramedReader::new(io::Cursor::new(bytes));
        let err = r.read_frame().unwrap_err();
        assert!(matches!(err, TransportError::Frame { .. }), "{err}");
    }

    // ---------------------------------------------------- socket fabric --

    #[test]
    fn fabric_delivers_with_exact_accounting() {
        let mut eps = TcpTransport::<Vec<u64>>::fabric(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let payload: Vec<u64> = (0..500).collect();
        let wire = a.send(1, payload.clone()).unwrap();
        assert_eq!(wire, payload.wire_bytes());
        assert_eq!(b.recv().unwrap(), (0, payload));
    }

    #[test]
    fn per_link_fifo_order_over_sockets() {
        let mut eps = TcpTransport::<u64>::fabric(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..200 {
            a.send(1, i).unwrap();
        }
        for i in 0..200 {
            assert_eq!(b.recv().unwrap(), (0, i));
        }
    }

    #[test]
    fn killed_peer_surfaces_as_transport_error() {
        // Rank 1 dies abnormally (no goodbye): rank 0's next receive must
        // be a typed disconnect naming the peer — not a hang, not a panic.
        let mut eps = TcpTransport::<u64>::fabric(3);
        let _c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        b.abort();
        match a.recv() {
            Err(TransportError::Disconnected { peer: Some(1) }) => {}
            other => panic!("expected disconnect from rank 1, got {other:?}"),
        }
    }

    #[test]
    fn graceful_shutdown_drains_then_reports_all_gone() {
        // Frames sent before a graceful drop must still be received;
        // afterwards recv reports that nothing can arrive instead of
        // blocking forever.
        let mut eps = TcpTransport::<u64>::fabric(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        b.send(0, 41).unwrap();
        b.send(0, 42).unwrap();
        drop(b);
        assert_eq!(a.recv().unwrap(), (1, 41));
        assert_eq!(a.recv().unwrap(), (1, 42));
        match a.recv() {
            Err(TransportError::Disconnected { peer: None }) => {}
            other => panic!("expected all-gone disconnect, got {other:?}"),
        }
    }

    #[test]
    fn self_sends_work_without_sockets() {
        let eps = TcpTransport::<u64>::fabric(1);
        let a = &eps[0];
        assert_eq!(a.send(0, 9).unwrap(), 8);
        assert_eq!(a.recv().unwrap(), (0, 9));
        // Nothing queued and no links: recv must error, not block.
        assert!(matches!(a.recv(), Err(TransportError::Disconnected { peer: None })));
    }

    #[test]
    fn four_endpoint_mesh_all_to_all() {
        let eps = TcpTransport::<u64>::fabric(4);
        std::thread::scope(|s| {
            for ep in eps {
                s.spawn(move || {
                    for dst in 0..4 {
                        ep.send(dst, (ep.rank() * 10 + dst) as u64).unwrap();
                    }
                    let mut got = vec![0u64; 4];
                    for _ in 0..4 {
                        let (src, v) = ep.recv().unwrap();
                        got[src] = v;
                    }
                    let want: Vec<u64> = (0..4).map(|src| (src * 10 + ep.rank()) as u64).collect();
                    assert_eq!(got, want);
                });
            }
        });
    }

    // -------------------------------------------------- process cluster --

    #[test]
    fn topology_disagreement_fails_bootstrap_with_a_typed_error() {
        // One process exports a different DNE_COLLECTIVES than the rest:
        // the bootstrap itself must reject the cluster (typed, prompt)
        // rather than letting the first barrier deadlock forever.
        let n = 2;
        let host = TcpProcessCluster::host(n, "127.0.0.1:0").unwrap();
        let addr = host.addr().to_string();
        std::thread::scope(|s| {
            let h = s.spawn(move || host.connect_with_collectives::<u64>(CollectiveTopology::Flat));
            let j = s.spawn(move || {
                TcpProcessCluster::join(1, n, &addr)
                    .unwrap()
                    .connect_with_collectives::<u64>(CollectiveTopology::Binomial)
            });
            let host_err = match h.join().unwrap() {
                Err(e) => e,
                Ok(_) => panic!("host must reject the topology disagreement"),
            };
            assert!(
                host_err.to_string().contains("DNE_COLLECTIVES"),
                "error must point at the misconfiguration: {host_err}"
            );
            assert!(j.join().unwrap().is_err(), "the joiner must fail too, not hang");
        });
    }

    #[test]
    fn process_cluster_bootstrap_and_collectives() {
        // Exercise the exact host/join/connect path worker processes use
        // (threads stand in for processes; the code path is identical),
        // under every collective topology.
        for topo in CollectiveTopology::ALL {
            let n = 3;
            let host = TcpProcessCluster::host(n, "127.0.0.1:0").unwrap();
            let addr = host.addr().to_string();
            std::thread::scope(|s| {
                let mut handles =
                    vec![s.spawn(move || host.connect_with_collectives::<Vec<u64>>(topo).unwrap())];
                for rank in 1..n {
                    let addr = addr.clone();
                    handles.push(s.spawn(move || {
                        TcpProcessCluster::join(rank, n, &addr)
                            .unwrap()
                            .connect_with_collectives::<Vec<u64>>(topo)
                            .unwrap()
                    }));
                }
                let mut runners = Vec::new();
                for h in handles {
                    let mut session = h.join().unwrap();
                    runners.push(s.spawn(move || {
                        let rank = session.ctx.rank() as u64;
                        let sum = session.ctx.try_all_reduce_sum_u64(rank).unwrap();
                        assert_eq!(sum, 3);
                        let got = session.ctx.try_exchange(|dst| vec![rank, dst as u64]).unwrap();
                        for (src, msg) in got.iter().enumerate() {
                            assert_eq!(msg, &vec![src as u64, rank]);
                        }
                        session.ctx.try_barrier().unwrap();
                        // Per-process accounting: only this rank's row moves.
                        let rank = session.ctx.rank();
                        (rank, session.comm.bytes_sent_by(rank))
                    }));
                }
                for r in runners {
                    let (rank, bytes) = r.join().unwrap();
                    // Each rank: 2 collective rounds at the topology's
                    // published per-rank cost plus one exchange with two
                    // non-self 24-byte payloads.
                    let (coll_bytes, _) = topo.rank_traffic(rank, n);
                    assert_eq!(bytes, 2 * coll_bytes + 2 * 24, "{topo} rank {rank}");
                }
            });
        }
    }
}
