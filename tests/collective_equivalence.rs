//! The cross-topology equivalence harness — the acceptance gate for the
//! pluggable collective topologies.
//!
//! One shared driver runs `DistributedNe` and the application engine
//! under **every** (transport × topology) pair and asserts the results
//! are bit-identical to the flat/loopback reference: assignment
//! fingerprint, iteration counts, replication factor, edge balance, and
//! application values. Communication totals are checked *exactly* against
//! each topology's published per-collective cost
//! (`CollectiveTopology::total_traffic`): the point-to-point traffic is
//! topology-independent, so
//! `comm(T) = comm(Flat) + rounds · (coll(T) − coll(Flat))`.
//!
//! Property tests then fuzz the collective primitives themselves: for
//! arbitrary `P ∈ 1..=17` (non-power-of-two ranks included — the classic
//! recursive-doubling edge case) and random payloads, the tree and
//! recursive-doubling all-gather/all-reduce must agree with the flat
//! reference and charge exactly the published per-rank traffic, on both
//! the loopback and bytes backends.
//!
//! Finally, fault injection: a rank killed mid-collective under the tcp
//! backend must surface a typed `TransportError` at every survivor, for
//! every topology — never a hang.

mod common;

use common::{transport_topology_pairs, TOPOLOGIES};
use distributed_ne::apps::Engine;
use distributed_ne::core::{DistributedNe, NeConfig};
use distributed_ne::graph::gen;
use distributed_ne::graph::hash::mix2;
use distributed_ne::partition::{EdgePartitioner, PartitionQuality};
use distributed_ne::runtime::{
    CollMsg, CollectiveTopology, Collectives, CommStats, TcpTransport, TransportError,
    TransportKind,
};
use proptest::prelude::*;

// ------------------------------------------------ closed-form accounting --

/// The documented closed-form per-collective totals (bytes, messages) at
/// the paper-scale rank counts — including the non-power-of-two P = 7.
/// These literals are the ARCHITECTURE.md table; `total_traffic` must
/// reproduce them, and measured traffic must reproduce `total_traffic`.
const EXPECTED_TOTALS: [(usize, [(u64, u64); 3]); 4] = [
    // P,  [Flat,          Binomial,      RecursiveDoubling]
    (4, [(96, 12), (128, 6), (96, 8)]),
    (7, [(336, 42), (408, 12), (360, 14)]),
    (16, [(1920, 240), (2176, 30), (1920, 64)]),
    (64, [(32256, 4032), (33792, 126), (32256, 384)]),
];

#[test]
fn per_collective_totals_match_the_documented_closed_forms() {
    for (p, per_topo) in EXPECTED_TOTALS {
        for (topo, want) in TOPOLOGIES.into_iter().zip(per_topo) {
            assert_eq!(topo.total_traffic(p), want, "{topo} at P={p}");
        }
    }
}

#[test]
fn measured_collective_traffic_matches_the_closed_forms() {
    // One barrier per rank on the estimating and the serializing
    // in-process backends: CommStats must land exactly on the documented
    // totals, and each rank exactly on its rank_traffic share.
    for (p, per_topo) in EXPECTED_TOTALS {
        for kind in [TransportKind::Loopback, TransportKind::Bytes] {
            for (topo, (want_bytes, want_msgs)) in TOPOLOGIES.into_iter().zip(per_topo) {
                let stats = CommStats::new(p);
                let fabric = Collectives::fabric(kind, topo, p, stats.clone());
                std::thread::scope(|s| {
                    for mut coll in fabric {
                        s.spawn(move || coll.barrier().unwrap());
                    }
                });
                assert_eq!(stats.total_bytes(), want_bytes, "{kind}/{topo} P={p} bytes");
                assert_eq!(stats.total_msgs(), want_msgs, "{kind}/{topo} P={p} msgs");
                for rank in 0..p {
                    let (b, m) = topo.rank_traffic(rank, p);
                    assert_eq!(stats.bytes_sent_by(rank), b, "{kind}/{topo} P={p} rank {rank}");
                    assert_eq!(stats.msgs_sent_by(rank), m, "{kind}/{topo} P={p} rank {rank}");
                }
            }
        }
    }
}

// --------------------------------------------------- equivalence harness --

/// Order-insensitive fingerprint of an edge assignment: hash each
/// partition's sorted edge set, then fold the per-partition hashes — the
/// same construction `dne-tcp-worker` uses for its multi-process gate.
fn assignment_fingerprint(a: &distributed_ne::partition::EdgeAssignment) -> u64 {
    let per_part: Vec<u64> = a
        .edges_by_partition()
        .into_iter()
        .map(|mut edges| {
            edges.sort_unstable();
            edges.iter().fold(0x444E_4531u64, |h, &e| mix2(h, e))
        })
        .collect();
    per_part.iter().fold(0x4D45_5348u64, |h, &f| mix2(h, f))
}

#[test]
fn distributed_ne_is_equivalent_across_every_transport_topology_pair() {
    // The headline driver: identical partitioning under all 9 pairs, with
    // exactly-predicted communication totals per topology.
    let graphs = [
        ("rmat", gen::rmat(&gen::RmatConfig::graph500(8, 6, 5))),
        ("star", gen::star(64)),
        ("path", gen::path(100)),
    ];
    let k = 4u32;
    for (name, g) in &graphs {
        let run = |kind, topo| {
            DistributedNe::new(
                NeConfig::default().with_seed(11).with_transport(kind).with_collectives(topo),
            )
            .partition_with_stats(g, k)
        };
        let (a_ref, s_ref) = run(TransportKind::Loopback, CollectiveTopology::Flat);
        let q_ref = PartitionQuality::measure(g, &a_ref);
        let fp_ref = assignment_fingerprint(&a_ref);
        let rounds = s_ref.collective_rounds;
        assert!(rounds > 0, "{name}: the NE loop must synchronize with collectives");
        // Point-to-point traffic is what remains after stripping the flat
        // collectives from the flat reference totals.
        let (flat_cb, flat_cm) = CollectiveTopology::Flat.total_traffic(k as usize);
        let p2p_bytes = s_ref.comm_bytes - rounds * flat_cb;
        let p2p_msgs = s_ref.comm_msgs - rounds * flat_cm;
        for (kind, topo) in transport_topology_pairs() {
            let (a, s) = run(kind, topo);
            let label = format!("{name}/{kind}/{topo}");
            assert_eq!(a, a_ref, "{label}: assignments must be bit-identical");
            assert_eq!(assignment_fingerprint(&a), fp_ref, "{label}: assignment fingerprint");
            assert_eq!(s.iterations, s_ref.iterations, "{label}: iteration count");
            assert_eq!(s.collective_rounds, rounds, "{label}: collective round count");
            let q = PartitionQuality::measure(g, &a);
            assert_eq!(q.replication_factor, q_ref.replication_factor, "{label}: RF");
            assert_eq!(q.edge_balance, q_ref.edge_balance, "{label}: EB");
            // Exact per-topology communication totals.
            let (cb, cm) = topo.total_traffic(k as usize);
            assert_eq!(s.comm_bytes, p2p_bytes + rounds * cb, "{label}: comm bytes");
            assert_eq!(s.comm_msgs, p2p_msgs + rounds * cm, "{label}: comm msgs");
        }
    }
}

#[test]
fn app_engine_is_equivalent_across_every_transport_topology_pair() {
    let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 3));
    let k = 4u32;
    let a = DistributedNe::new(NeConfig::default().with_seed(3)).partition(&g, k);
    let run = |kind, topo| {
        let engine = Engine::new(&g, &a).with_transport(kind).with_collectives(topo);
        (engine.wcc(), engine.pagerank(5))
    };
    let (wcc_ref, pr_ref) = run(TransportKind::Loopback, CollectiveTopology::Flat);
    let (flat_cb, _) = CollectiveTopology::Flat.total_traffic(k as usize);
    for (kind, topo) in transport_topology_pairs() {
        let (wcc, pr) = run(kind, topo);
        for (l, r) in [(&wcc_ref, &wcc), (&pr_ref, &pr)] {
            let label = format!("{}/{kind}/{topo}", l.name);
            assert_eq!(l.supersteps, r.supersteps, "{label}: supersteps");
            assert_eq!(l.values.len(), r.values.len(), "{label}: value count");
            for (x, y) in l.values.iter().zip(&r.values) {
                assert_eq!(x.to_bits(), y.to_bits(), "{label}: values must be bit-identical");
            }
        }
        // WCC runs one all_reduce_any per superstep: its comm shifts by
        // exactly supersteps · Δ(per-collective bytes). PageRank runs a
        // fixed superstep count with no collectives at all, so its comm
        // is identical under every topology.
        let (cb, _) = topo.total_traffic(k as usize);
        let want_wcc = wcc_ref.comm_bytes - wcc_ref.supersteps * flat_cb + wcc_ref.supersteps * cb;
        assert_eq!(wcc.comm_bytes, want_wcc, "WCC/{kind}/{topo}: comm bytes");
        assert_eq!(pr.comm_bytes, pr_ref.comm_bytes, "PageRank/{kind}/{topo}: comm bytes");
    }
}

// ------------------------------------------------------- property tests --

/// Run one collective program on a raw fabric, one thread per rank,
/// returning the per-rank outcomes in rank order.
fn run_fabric<R: Send>(
    kind: TransportKind,
    topo: CollectiveTopology,
    n: usize,
    stats: std::sync::Arc<CommStats>,
    f: impl Fn(usize, &mut Collectives) -> R + Sync,
) -> Vec<R> {
    let fabric = Collectives::fabric(kind, topo, n, stats);
    std::thread::scope(|s| {
        let handles: Vec<_> = fabric
            .into_iter()
            .map(|mut coll| {
                let f = &f;
                s.spawn(move || f(coll.rank(), &mut coll))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Tree and recursive-doubling all-gather/all-reduce agree with the
    /// flat reference for arbitrary rank counts 1..=17 (non-power-of-two
    /// included) and random payload words — results bit-identical, and
    /// every rank charged exactly its published traffic — on both the
    /// loopback and bytes backends.
    #[test]
    fn collectives_agree_with_flat_reference(
        // Words bounded so a 17-rank sum cannot overflow (the production
        // collectives sum edge counts and use a plain checked sum).
        values in prop::collection::vec(0u64..(1 << 59), 1usize..18),
    ) {
        let p = values.len();
        // Full-range f64 bit patterns (NaNs and infinities included),
        // derived from the bounded words.
        let fbits: Vec<u64> =
            values.iter().map(|&v| v.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        // The flat reference semantics, computed locally: the gathered
        // vector is the rank-indexed contributions; every reduction folds
        // it in rank order.
        let want_gather = values.clone();
        let want_sum: u64 = values.iter().sum();
        let want_max: u64 = values.iter().copied().max().unwrap_or(0);
        let want_f64: u64 =
            fbits.iter().map(|&b| f64::from_bits(b)).sum::<f64>().to_bits();
        for kind in [TransportKind::Loopback, TransportKind::Bytes] {
            for topo in CollectiveTopology::ALL {
                let stats = CommStats::new(p);
                let (values, fbits) = (&values, &fbits);
                let out = run_fabric(kind, topo, p, stats.clone(), |rank, coll| {
                    let v = values[rank];
                    let gathered = coll.all_gather_u64(v).unwrap();
                    let sum = coll.all_reduce_sum_u64(v).unwrap();
                    let max = coll.all_reduce_max_u64(v).unwrap();
                    let fsum = coll.all_reduce_sum_f64(f64::from_bits(fbits[rank])).unwrap();
                    let any = coll.all_reduce_any(v % 2 == 0).unwrap();
                    (gathered, sum, max, fsum.to_bits(), any)
                });
                let want_any = values.iter().any(|&v| v % 2 == 0);
                for (rank, (gathered, sum, max, fbits, any)) in out.into_iter().enumerate() {
                    let label = format!("{kind}/{topo} P={p} rank {rank}");
                    prop_assert_eq!(&gathered, &want_gather, "{}: all_gather", label);
                    prop_assert_eq!(sum, want_sum, "{}: sum", label);
                    prop_assert_eq!(max, want_max, "{}: max", label);
                    prop_assert_eq!(fbits, want_f64, "{}: f64 sum must be bit-identical", label);
                    prop_assert_eq!(any, want_any, "{}: any", label);
                }
                // Five collectives ran; each rank charged 5× its share.
                for rank in 0..p {
                    let (b, m) = topo.rank_traffic(rank, p);
                    prop_assert_eq!(stats.bytes_sent_by(rank), 5 * b);
                    prop_assert_eq!(stats.msgs_sent_by(rank), 5 * m);
                    prop_assert_eq!(stats.collectives_by(rank), 5);
                }
            }
        }
    }
}

// -------------------------------------------------------- fault injection --

#[test]
fn killed_rank_mid_collective_is_a_typed_error_under_every_topology() {
    // Extend the PR-4 `abort()` hook across topologies: rank 1 of a
    // 3-rank tcp collectives fabric dies abnormally (sockets slammed, no
    // goodbye frames — exactly what a killed process looks like). Both
    // survivors' next collective must surface a typed `TransportError`
    // (`Disconnected` from a closed stream, or `Io` when the schedule has
    // the survivor writing into the dead socket) — never a hang and never
    // a panic, whichever schedule the topology runs.
    for topo in CollectiveTopology::ALL {
        let stats = CommStats::new(3);
        let mut links = TcpTransport::<CollMsg>::fabric(3);
        let victim = links.remove(1);
        victim.abort();
        drop(victim); // goodbye writes fail silently on the dead sockets
        let survivors: Vec<Collectives> = links
            .into_iter()
            .map(|l| Collectives::from_transport(Box::new(l), topo, stats.clone()))
            .collect();
        std::thread::scope(|s| {
            for mut coll in survivors {
                s.spawn(move || {
                    let rank = coll.rank();
                    let err = coll
                        .all_gather_u64(rank as u64)
                        .expect_err("a dead peer cannot satisfy a 3-rank collective");
                    assert!(
                        matches!(
                            err,
                            TransportError::Disconnected { .. } | TransportError::Io { .. }
                        ),
                        "{topo} rank {rank}: expected a typed disconnect/io error, got {err}"
                    );
                });
            }
        });
    }
}

#[test]
fn panicking_machine_fails_tcp_collectives_for_every_topology() {
    // End-to-end through the cluster layer: one machine of a tcp cluster
    // unwinds mid-run; under every topology the survivors observe the
    // failure (surfaced through the infallible Ctx wrappers as a panic
    // naming the transport error) instead of hanging.
    for topo in TOPOLOGIES {
        let result = std::panic::catch_unwind(|| {
            common::cluster(3, TransportKind::Tcp, topo).run::<u64, _, _>(|ctx| {
                if ctx.rank() == 1 {
                    panic!("injected failure");
                }
                ctx.all_gather_u64(ctx.rank() as u64);
            });
        });
        assert!(result.is_err(), "{topo}: the dead peer must abort the run");
    }
}
