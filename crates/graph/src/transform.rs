//! Graph transformations: induced subgraphs, component extraction,
//! degree filtering.
//!
//! Library utilities a downstream user of the partitioner needs for data
//! preparation (the paper's datasets are commonly reduced to their largest
//! connected component before partitioning experiments).

use std::collections::VecDeque;

use crate::types::VertexId;
use crate::{EdgeListBuilder, Graph};

/// The subgraph induced by `keep[v] == true`, with vertices renumbered
/// densely. Returns the graph and the mapping `new id → old id`.
pub fn induced_subgraph(g: &Graph, keep: &[bool]) -> (Graph, Vec<VertexId>) {
    assert_eq!(keep.len() as u64, g.num_vertices());
    let mut new_of = vec![VertexId::MAX; keep.len()];
    let mut old_of = Vec::new();
    for v in g.vertices() {
        if keep[v as usize] {
            new_of[v as usize] = old_of.len() as VertexId;
            old_of.push(v);
        }
    }
    let mut b = EdgeListBuilder::new();
    for &(u, v) in g.edges() {
        if keep[u as usize] && keep[v as usize] {
            b.push(new_of[u as usize], new_of[v as usize]);
        }
    }
    (b.into_graph(old_of.len() as VertexId), old_of)
}

/// Connected-component labels (smallest member id per component).
pub fn component_labels(g: &Graph) -> Vec<VertexId> {
    let n = g.num_vertices() as usize;
    let mut label = vec![VertexId::MAX; n];
    for start in g.vertices() {
        if label[start as usize] != VertexId::MAX {
            continue;
        }
        label[start as usize] = start;
        let mut q = VecDeque::from([start]);
        while let Some(v) = q.pop_front() {
            for &u in g.neighbor_vertices(v) {
                if label[u as usize] == VertexId::MAX {
                    label[u as usize] = start;
                    q.push_back(u);
                }
            }
        }
    }
    label
}

/// Extract the largest connected component (by vertex count), renumbered
/// densely. Ties break toward the smaller component label.
pub fn largest_component(g: &Graph) -> (Graph, Vec<VertexId>) {
    let labels = component_labels(g);
    let mut counts = crate::hash::FastMap::default();
    for &l in &labels {
        *counts.entry(l).or_insert(0u64) += 1;
    }
    let best = counts
        .iter()
        .max_by_key(|&(&l, &c)| (c, std::cmp::Reverse(l)))
        .map(|(&l, _)| l)
        .unwrap_or(0);
    let keep: Vec<bool> = labels.iter().map(|&l| l == best).collect();
    induced_subgraph(g, &keep)
}

/// Drop vertices with degree below `min_degree` (a single pass — repeated
/// application reaches the k-core).
pub fn filter_min_degree(g: &Graph, min_degree: u64) -> (Graph, Vec<VertexId>) {
    let keep: Vec<bool> = g.vertices().map(|v| g.degree(v) >= min_degree).collect();
    induced_subgraph(g, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = gen::complete(5);
        let keep = vec![true, true, true, false, false];
        let (sub, old_of) = induced_subgraph(&g, &keep);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3); // triangle among {0,1,2}
        assert_eq!(old_of, vec![0, 1, 2]);
    }

    #[test]
    fn component_labels_on_two_components() {
        let g = gen::ring_complete(4); // clique 0..4 + ring 4..10
        let labels = component_labels(&g);
        assert!(labels[0..4].iter().all(|&l| l == 0));
        assert!(labels[4..].iter().all(|&l| l == 4));
    }

    #[test]
    fn largest_component_extracts_ring() {
        // ring_complete(4): clique has 4 vertices, ring has 6 → ring wins.
        let g = gen::ring_complete(4);
        let (lcc, old_of) = largest_component(&g);
        assert_eq!(lcc.num_vertices(), 6);
        assert_eq!(lcc.num_edges(), 6);
        assert!(old_of.iter().all(|&v| v >= 4));
    }

    #[test]
    fn min_degree_filter_peels_spokes() {
        let g = gen::star(10);
        let (core, _) = filter_min_degree(&g, 2);
        // Only the hub has degree >= 2, and alone it has no edges.
        assert_eq!(core.num_vertices(), 1);
        assert_eq!(core.num_edges(), 0);
    }

    #[test]
    fn filter_keeps_everything_at_zero_threshold() {
        let g = gen::cycle(12);
        let (same, old_of) = filter_min_degree(&g, 0);
        assert_eq!(same.num_vertices(), 12);
        assert_eq!(same.num_edges(), 12);
        assert_eq!(old_of.len(), 12);
    }

    #[test]
    fn isolated_vertices_form_singleton_components() {
        let mut b = EdgeListBuilder::new();
        b.push(0, 1);
        let g = b.into_graph(4); // vertices 2, 3 isolated
        let labels = component_labels(&g);
        assert_eq!(labels, vec![0, 0, 2, 3]);
    }
}
