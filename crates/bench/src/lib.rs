#![deny(missing_docs)]
//! # dne-bench — benchmark harness for the Distributed NE reproduction
//!
//! One runnable binary per table/figure of the paper's evaluation (§7):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig6_lambda` | Figure 6 — iterations & RF vs expansion factor λ |
//! | `table1_bounds` | Table 1 — theoretical bounds on power-law graphs |
//! | `fig8_quality` | Figure 8(a–j) — replication factor across methods |
//! | `fig9_memory` | Figure 9 — memory consumption (mem score) |
//! | `fig10_time` | Figure 10(a–j) — elapsed time & trillion-edge weak scaling |
//! | `table4_sequential` | Table 4 — vs sequential HDRF/NE/SNE |
//! | `table5_apps` | Table 5 — SSSP/WCC/PageRank over partitions |
//! | `table6_roads` | Table 6 — non-skewed road networks |
//! | `run_all` | everything above, quick preset, TSV output |
//! | `oocore_smoke` | out-of-core storage demo: partition under `ulimit -v` |
//!
//! Most binaries accept `quick` (default) or `full` as the first argument;
//! `full` uses larger stand-ins and more configurations and can take tens
//! of minutes.
//!
//! The library part hosts the [`datasets`] registry (scaled stand-ins for
//! the paper's real-world graphs — see DESIGN.md §3 for the substitution
//! argument) and small table/TSV helpers shared by the binaries.
//!
//! ## Quick start
//!
//! ```
//! use dne_bench::{suite, DATASETS};
//!
//! // The seven Table 2 stand-ins, in the paper's figure order.
//! assert_eq!(DATASETS.len(), 7);
//! assert_eq!(DATASETS[0].name, "Pokec");
//!
//! // The Figure 8 roster: nine distributed methods, ready to partition.
//! let roster = suite::figure8_roster(42);
//! assert_eq!(roster.len(), 9);
//! ```

pub mod datasets;
pub mod lookup;
pub mod suite;
pub mod table;

pub use datasets::{Dataset, DATASETS};
