//! `dne-client` — load generator and verification harness for
//! `dne-server`.
//!
//! ```text
//! dne-client [quick|full]                    # spawn a sibling dne-server, bench, verify
//! dne-client bench <addr> <scale> <degree> <seed> <parts> [lookups-per-conn]
//! ```
//!
//! The default mode spawns `dne-server serve` (the binary next to this
//! one), waits for its address/fingerprint markers, then drives
//! `DNE_CLIENT_CONNS` concurrent connections × a per-connection lookup
//! count with a pipelined request window. Every response is compared
//! **byte-for-byte** against the answer of an offline
//! [`AssignmentService`] built from the same deterministic spec — the
//! same code path the server answers from — so a single flipped bit
//! anywhere in the partition, index, codec, framing, or transport fails
//! the run. `bench` skips the spawn and drives an already-running server
//! (the spec arguments must match the server's).
//!
//! Output: a latency/throughput row (p50/p99 microseconds, aggregate
//! lookups/s) printed and written to `bench_results/lookup_service.tsv`.
//! Exit status is non-zero on any mismatch, making the binary its own
//! acceptance gate — CI runs it as the server smoke step.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Instant;

use dne_bench::lookup::{conns_from_env, AssignmentService, LookupRequest, LookupResponse};
use dne_bench::table::Table;
use dne_core::{DistributedNe, NeConfig};
use dne_graph::hash::mix2;
use dne_graph::{gen, Graph};
use dne_partition::{shards_from_env, PartitionId, ShardedAssignmentIndex};
use dne_runtime::{WireClient, WireEncode};

/// Stdout markers printed by `dne-server` (scraped by the launcher).
const ADDR_TAG: &str = "DNE_SERVER_ADDR";
const FPRINT_TAG: &str = "DNE_SERVER_FPRINT";

/// In-flight requests per connection: deep enough to hide the socket
/// round trip, shallow enough that tail latency stays meaningful.
const WINDOW: usize = 64;

/// Benchmark spec: the graph/partition parameters (which must match the
/// server's) plus the per-connection lookup count.
#[derive(Clone, Copy)]
struct Spec {
    scale: u32,
    degree: u32,
    seed: u64,
    parts: u32,
    lookups_per_conn: u64,
}

impl Spec {
    /// The acceptance-gate preset: scale-16 RMAT, ≥ 8 connections.
    fn quick() -> Self {
        Spec { scale: 16, degree: 8, seed: 42, parts: 4, lookups_per_conn: 25_000 }
    }

    fn full() -> Self {
        Spec { scale: 18, degree: 8, seed: 42, parts: 8, lookups_per_conn: 50_000 }
    }

    fn graph(&self) -> Graph {
        gen::rmat(&gen::RmatConfig::graph500(self.scale, self.degree as u64, self.seed))
    }
}

/// The deterministic request stream of connection `conn`: a mix of edge
/// lookups (mostly hits), vertex replica sets, per-part stats (including
/// out-of-range parts), and guaranteed-miss probes. Both sides of the
/// verification derive the stream from `(seed, conn, i)` alone.
fn request(spec: &Spec, g: &Graph, conn: u64, i: u64) -> LookupRequest {
    let r = mix2(mix2(spec.seed, conn), i);
    let pick = r >> 3;
    match r % 8 {
        0..=4 => {
            let (u, v) = g.edge(pick % g.num_edges());
            // Exercise both endpoint orders.
            if r & 8 == 0 {
                LookupRequest::LookupEdge { u, v }
            } else {
                LookupRequest::LookupEdge { u: v, v: u }
            }
        }
        5 => LookupRequest::ReplicaSet { v: pick % g.num_vertices() },
        6 => LookupRequest::PartStats { part: (pick % (spec.parts as u64 + 1)) as PartitionId },
        // Vertices beyond |V| never appear in the graph: a guaranteed
        // miss, answered `None` by index and server alike.
        _ => LookupRequest::LookupEdge { u: g.num_vertices() + pick, v: pick },
    }
}

/// Drive one connection: `n` pipelined lookups, each response compared
/// byte-for-byte with the offline answer. Returns the per-request
/// latencies in microseconds.
fn drive_conn(
    addr: &str,
    spec: &Spec,
    g: &Graph,
    offline: &AssignmentService,
    conn: u64,
) -> Result<Vec<f64>, String> {
    let mut client = WireClient::<LookupRequest, LookupResponse>::connect(addr)
        .map_err(|e| format!("conn {conn}: {e}"))?;
    let n = spec.lookups_per_conn;
    let mut latencies = Vec::with_capacity(n as usize);
    let mut inflight: VecDeque<(u32, Instant, Vec<u8>)> = VecDeque::with_capacity(WINDOW);
    let settle = |client: &mut WireClient<LookupRequest, LookupResponse>,
                  inflight: &mut VecDeque<(u32, Instant, Vec<u8>)>,
                  latencies: &mut Vec<f64>|
     -> Result<(), String> {
        let (want_seq, sent_at, expected) = inflight.pop_front().expect("inflight nonempty");
        let (seq, resp) = client.recv().map_err(|e| format!("conn {conn}: {e}"))?;
        if seq != want_seq {
            return Err(format!("conn {conn}: response seq {seq}, expected {want_seq}"));
        }
        let got = resp.to_wire();
        if got != expected {
            return Err(format!(
                "conn {conn}: response for seq {seq} diverges from the offline answer\n  \
                 got:      {got:?}\n  expected: {expected:?}"
            ));
        }
        latencies.push(sent_at.elapsed().as_secs_f64() * 1e6);
        Ok(())
    };
    for i in 0..n {
        let req = request(spec, g, conn, i);
        let expected = offline.answer(&req).to_wire();
        let seq = client.send(&req).map_err(|e| format!("conn {conn}: {e}"))?;
        inflight.push_back((seq, Instant::now(), expected));
        if inflight.len() >= WINDOW {
            settle(&mut client, &mut inflight, &mut latencies)?;
        }
    }
    while !inflight.is_empty() {
        settle(&mut client, &mut inflight, &mut latencies)?;
    }
    Ok(latencies)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let i = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[i]
}

/// Bench an already-listening server at `addr` and verify every byte.
/// Returns the aggregate lookups/s.
fn bench(addr: &str, spec: Spec) -> Result<f64, String> {
    let conns = conns_from_env();
    eprintln!(
        "[dne-client: building the offline reference (scale {}, {} parts)…]",
        spec.scale, spec.parts
    );
    let g = spec.graph();
    let ne = DistributedNe::new(NeConfig::default().with_seed(spec.seed));
    let (assignment, _) = ne.partition_with_stats(&g, spec.parts);
    let fingerprint = assignment.fingerprint();
    let offline =
        AssignmentService::new(ShardedAssignmentIndex::build(&g, &assignment, shards_from_env()));

    // The server must serve the exact assignment we computed offline.
    let mut probe = WireClient::<LookupRequest, LookupResponse>::connect(addr)
        .map_err(|e| format!("probe: {e}"))?;
    match probe.call(&LookupRequest::Fingerprint).map_err(|e| format!("probe: {e}"))? {
        LookupResponse::Fingerprint { fingerprint: served, num_partitions, num_edges } => {
            if served != fingerprint || num_partitions != spec.parts || num_edges != g.num_edges() {
                return Err(format!(
                    "server at {addr} serves a different partition: fingerprint {served:016x} \
                     ({num_partitions} parts, {num_edges} edges), offline {fingerprint:016x} \
                     ({} parts, {} edges)",
                    spec.parts,
                    g.num_edges()
                ));
            }
        }
        other => return Err(format!("probe: unexpected fingerprint response {other:?}")),
    }
    drop(probe);

    eprintln!(
        "[dne-client: {conns} connections × {} lookups, window {WINDOW}]",
        spec.lookups_per_conn
    );
    let started = Instant::now();
    let mut all: Vec<f64> = Vec::new();
    let results: Vec<Result<Vec<f64>, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let (g, offline, spec) = (&g, &offline, &spec);
                s.spawn(move || drive_conn(addr, spec, g, offline, c as u64))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("connection thread panicked")).collect()
    });
    let elapsed = started.elapsed();
    for r in results {
        all.extend(r?);
    }
    all.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let total = all.len() as f64;
    let qps = total / elapsed.as_secs_f64();

    let mut table = Table::new(&[
        "SCALE", "DEGREE", "SEED", "PARTS", "CONNS", "LOOKUPS", "P50_US", "P99_US", "QPS", "FPRINT",
    ]);
    table.row(vec![
        spec.scale.to_string(),
        spec.degree.to_string(),
        spec.seed.to_string(),
        spec.parts.to_string(),
        conns.to_string(),
        (total as u64).to_string(),
        format!("{:.1}", percentile(&all, 0.50)),
        format!("{:.1}", percentile(&all, 0.99)),
        format!("{qps:.0}"),
        format!("{fingerprint:016x}"),
    ]);
    table.print();
    if let Ok(path) = table.write_tsv("lookup_service") {
        println!("wrote {}", path.display());
    }
    println!(
        "OK: {} lookups over {conns} connections, every response byte-identical to the \
         offline assignment ({qps:.0} lookups/s)",
        total as u64
    );
    Ok(qps)
}

/// Reaper for the spawned server: kill + wait on early error returns.
struct Server(Option<Child>);

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(child) = &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Default mode: spawn a sibling `dne-server`, bench it, shut it down.
fn launch_and_bench(spec: Spec) -> Result<(), String> {
    let me = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let exe = me
        .parent()
        .ok_or("own binary has no parent directory")?
        .join(format!("dne-server{}", std::env::consts::EXE_SUFFIX));
    let mut child = Command::new(&exe)
        .args([
            "serve",
            &spec.scale.to_string(),
            &spec.degree.to_string(),
            &spec.seed.to_string(),
            &spec.parts.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawning {}: {e}", exe.display()))?;
    let mut lines = BufReader::new(child.stdout.take().expect("piped stdout")).lines();
    let mut server = Server(Some(child));
    let (mut addr, mut served_fprint) = (None, None);
    while addr.is_none() || served_fprint.is_none() {
        let line = lines
            .next()
            .ok_or("dne-server exited before advertising its address")?
            .map_err(|e| format!("reading dne-server stdout: {e}"))?;
        if let Some(a) = line.strip_prefix(ADDR_TAG) {
            addr = Some(a.trim().to_string());
        } else if let Some(f) = line.strip_prefix(FPRINT_TAG) {
            served_fprint = Some(f.trim().to_string());
        }
    }
    let addr = addr.expect("loop exits with an address");
    eprintln!("[dne-client: server at {addr}, fingerprint {}]", served_fprint.expect("checked"));

    let qps = match bench(&addr, spec) {
        Ok(qps) => qps,
        Err(e) => {
            // If the sibling server died underneath the bench, that is the
            // root cause — name it next to the connection-level symptom
            // (which itself names the in-flight request sequence window).
            if let Some(child) = &mut server.0 {
                if let Ok(Some(status)) = child.try_wait() {
                    server.0 = None;
                    return Err(format!("{e}\n  (dne-server died mid-run: {status})"));
                }
            }
            return Err(e);
        }
    };

    // Graceful teardown: ask the server to stop, then reap it.
    let mut c = WireClient::<LookupRequest, LookupResponse>::connect(addr.as_str())
        .map_err(|e| format!("shutdown: {e}"))?;
    match c.call(&LookupRequest::Shutdown).map_err(|e| format!("shutdown: {e}"))? {
        LookupResponse::ShuttingDown => {}
        other => return Err(format!("shutdown: unexpected response {other:?}")),
    }
    let mut child = server.0.take().expect("server still owned");
    let status = child.wait().map_err(|e| format!("waiting for dne-server: {e}"))?;
    if !status.success() {
        return Err(format!("dne-server exited with {status}"));
    }
    if qps <= 0.0 {
        return Err("zero lookup throughput".into());
    }
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "usage: dne-client [quick|full]\n\
         \x20      dne-client bench <addr> <scale> <degree> <seed> <parts> [lookups-per-conn]"
    );
    std::process::exit(2);
}

fn arg<T: std::str::FromStr>(args: &[String], i: usize, what: &str) -> T {
    args.get(i).and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        eprintln!("missing or invalid <{what}> argument");
        usage()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let result = match args.get(1).map(String::as_str) {
        None | Some("quick") => launch_and_bench(Spec::quick()),
        Some("full") => launch_and_bench(Spec::full()),
        Some("bench") => {
            let addr: String = arg(&args, 2, "addr");
            let mut spec = Spec {
                scale: arg(&args, 3, "scale"),
                degree: arg(&args, 4, "degree"),
                seed: arg(&args, 5, "seed"),
                parts: arg(&args, 6, "parts"),
                lookups_per_conn: Spec::quick().lookups_per_conn,
            };
            if args.len() > 7 {
                spec.lookups_per_conn = arg(&args, 7, "lookups-per-conn");
            }
            bench(&addr, spec).map(|_| ())
        }
        Some(_) => usage(),
    };
    if let Err(e) = result {
        eprintln!("dne-client: {e}");
        std::process::exit(1);
    }
}
