//! Shared helpers for the cross-crate integration suites: one place that
//! knows how to enumerate the runtime's (transport × topology) and the
//! graph crate's storage-backend matrices, so adding a backend or a
//! topology automatically widens every suite that samples it instead of
//! silently rotting a hand-copied roster.
#![allow(dead_code)] // each test binary uses a different subset

use distributed_ne::graph::{io, Graph, StorageKind};
use distributed_ne::runtime::{Cluster, CollectiveTopology, TransportKind};
use std::path::PathBuf;

/// Every transport backend, in canonical order.
pub const TRANSPORTS: [TransportKind; 3] = TransportKind::ALL;

/// Every collective topology, in canonical order.
pub const TOPOLOGIES: [CollectiveTopology; 3] = CollectiveTopology::ALL;

/// Every graph-storage backend, in canonical order.
pub const STORAGES: [StorageKind; 3] = StorageKind::ALL;

/// Every (transport × topology) pair — the full 3×3 sampling matrix.
pub fn transport_topology_pairs() -> Vec<(TransportKind, CollectiveTopology)> {
    TRANSPORTS
        .into_iter()
        .flat_map(|kind| TOPOLOGIES.into_iter().map(move |topo| (kind, topo)))
        .collect()
}

/// Every (storage × transport) pair — the 3×3 matrix the storage
/// equivalence suite drives.
pub fn storage_transport_pairs() -> Vec<(StorageKind, TransportKind)> {
    STORAGES.into_iter().flat_map(|s| TRANSPORTS.into_iter().map(move |t| (s, t))).collect()
}

/// A Latin-square sample of the full (transport × topology × storage)
/// cube: all 9 (transport, topology) pairs, with the storage axis rotated
/// so that every (transport, storage) and every (topology, storage) pair
/// also appears exactly once. 9 cells cover all 27 pairwise interactions
/// of the 3×3×3 matrix — the sampling that keeps the app-suite cell count
/// tractable in CI while leaving no two-axis combination untested.
pub fn matrix_cells() -> Vec<(TransportKind, CollectiveTopology, StorageKind)> {
    TRANSPORTS
        .into_iter()
        .enumerate()
        .flat_map(|(ti, kind)| {
            TOPOLOGIES
                .into_iter()
                .enumerate()
                .map(move |(pi, topo)| (kind, topo, STORAGES[(ti + pi) % STORAGES.len()]))
        })
        .collect()
}

/// Write `g` as a DNECHNK1 chunked file under a per-`label` scratch
/// directory and return the path. `label` must be unique per call site —
/// suites run concurrently inside one test binary, and the mmap backend
/// additionally drops a sibling `<path>.csr` cache next to the file.
pub fn materialize_chunked(g: &Graph, label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dne_integration_chunked").join(label);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join("graph.chunks");
    io::write_chunked(g, &path, 1 << 12).expect("write chunked file");
    path
}

/// Reopen a materialized chunked file with the given storage backend.
pub fn reopen(path: &std::path::Path, kind: StorageKind) -> Graph {
    io::open_chunked_with(path, kind)
        .unwrap_or_else(|e| panic!("open {} with {kind}: {e}", path.display()))
}

/// A cluster pinned to an explicit (transport, topology) pair — immune to
/// whatever `DNE_TRANSPORT` / `DNE_COLLECTIVES` the surrounding test run
/// exports.
pub fn cluster(nprocs: usize, kind: TransportKind, topo: CollectiveTopology) -> Cluster {
    Cluster::with_transport(nprocs, kind).with_collectives(topo)
}
