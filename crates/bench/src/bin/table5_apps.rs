//! Table 5 reproduction: effect of the partitioning method on distributed
//! graph applications (SSSP, WCC, PageRank).
//!
//! For each stand-in and each PowerLyra-style method (Random, 2D-Random,
//! Oblivious, Hybrid Ginger, Distributed NE) this reports:
//! * partition quality: RF / EB (edge balance) / VB (vertex balance);
//! * per application: ET (elapsed seconds), COM (bytes moved), WB
//!   (workload balance).
//!
//! Paper findings to reproduce: Distributed NE has the lowest RF and COM
//! everywhere, which translates into the best ET with the biggest margin
//! on PageRank (communication-heavy) and the smallest on SSSP
//! (communication-light); its VB is the loosest but that does not hurt ET.

use dne_apps::Engine;
use dne_bench::datasets::{self, DATASETS};
use dne_bench::suite::table5_roster;
use dne_bench::table::{f2, parse_mode, secs, Table};
use dne_partition::PartitionQuality;

fn main() {
    let quick = parse_mode();
    let k = if quick { 16 } else { 64 };
    let pr_iters = if quick { 20 } else { 100 };
    let sets: Vec<&datasets::Dataset> =
        if quick { datasets::midsize() } else { DATASETS.iter().collect() };
    let mut quality = Table::new(&["dataset", "method", "RF", "EB", "VB"]);
    let mut apps = Table::new(&["dataset", "method", "app", "ET_s", "COM_MB", "WB"]);
    for d in sets {
        let g = if quick { d.build_quick() } else { d.build() };
        eprintln!("{}: |E|={}", d.name, g.num_edges());
        for m in table5_roster(17) {
            let a = m.partition(&g, k);
            let q = PartitionQuality::measure(&g, &a);
            quality.row(vec![
                d.name.into(),
                m.name(),
                f2(q.replication_factor),
                f2(q.edge_balance),
                f2(q.vertex_balance),
            ]);
            let engine = Engine::new(&g, &a);
            let runs = [engine.sssp(0), engine.wcc(), engine.pagerank(pr_iters)];
            for run in runs {
                apps.row(vec![
                    d.name.into(),
                    m.name(),
                    run.name.clone(),
                    secs(run.elapsed),
                    format!("{:.2}", run.comm_bytes as f64 / 1e6),
                    f2(run.workload_balance),
                ]);
            }
        }
    }
    println!("\n=== Table 5 (quality): |P| = {k} ===");
    quality.print();
    println!("\n=== Table 5 (applications): SSSP / WCC / PageRank({pr_iters}) ===");
    apps.print();
    let _ = quality.write_tsv("table5_quality");
    if let Ok(p) = apps.write_tsv("table5_apps") {
        eprintln!("wrote {}", p.display());
    }
}
