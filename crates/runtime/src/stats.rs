//! Communication statistics: bytes and message counts per process.
//!
//! The Table 5 "COM" column of the paper reports total communication volume
//! in GB per application run; Figure 10's discussion attributes the linear
//! elapsed-time growth partly to communication cost. [`CommStats`]
//! accumulates both quantities per sending rank with relaxed atomics (exact
//! totals, no ordering requirements).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe per-rank communication counters.
#[derive(Debug)]
pub struct CommStats {
    bytes_sent: Vec<AtomicU64>,
    msgs_sent: Vec<AtomicU64>,
    /// Collective rounds initiated per rank (one per barrier / all-gather
    /// / all-reduce call). Topology-independent by construction, which is
    /// what lets tests turn a measured byte total into an exact
    /// per-topology expectation.
    collective_rounds: Vec<AtomicU64>,
    /// Physical wire frames emitted per rank. Without coalescing every
    /// inter-rank envelope is its own frame, so `frames == msgs`; with
    /// `DNE_COMM_BATCH` many envelopes share one multi-message frame and
    /// this counter falls while `msgs_sent` keeps counting logical
    /// envelopes. Self-sends never cross a wire and are never counted.
    frames_sent: Vec<AtomicU64>,
}

impl CommStats {
    /// Counters for `nprocs` ranks, all zero.
    pub fn new(nprocs: usize) -> Arc<Self> {
        Arc::new(Self {
            bytes_sent: (0..nprocs).map(|_| AtomicU64::new(0)).collect(),
            msgs_sent: (0..nprocs).map(|_| AtomicU64::new(0)).collect(),
            collective_rounds: (0..nprocs).map(|_| AtomicU64::new(0)).collect(),
            frames_sent: (0..nprocs).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// Charge one sent message of `bytes` bytes to `rank`.
    #[inline]
    pub fn record_send(&self, rank: usize, bytes: usize) {
        self.bytes_sent[rank].fetch_add(bytes as u64, Ordering::Relaxed);
        self.msgs_sent[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Bytes sent by `rank` so far.
    pub fn bytes_sent_by(&self, rank: usize) -> u64 {
        self.bytes_sent[rank].load(Ordering::Relaxed)
    }

    /// Messages sent by `rank` so far.
    pub fn msgs_sent_by(&self, rank: usize) -> u64 {
        self.msgs_sent[rank].load(Ordering::Relaxed)
    }

    /// Total bytes sent across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Total messages sent across all ranks.
    pub fn total_msgs(&self) -> u64 {
        self.msgs_sent.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Record `frames` physical wire frames emitted by `rank`. Called by
    /// the transports themselves (never by `CommEndpoint`): only the
    /// backend knows when envelopes were coalesced into one frame.
    #[inline]
    pub fn record_frames(&self, rank: usize, frames: u64) {
        self.frames_sent[rank].fetch_add(frames, Ordering::Relaxed);
    }

    /// Physical frames emitted by `rank` so far.
    pub fn frames_by(&self, rank: usize) -> u64 {
        self.frames_sent[rank].load(Ordering::Relaxed)
    }

    /// Total physical frames emitted across all ranks.
    pub fn total_frames(&self) -> u64 {
        self.frames_sent.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Record one collective round initiated by `rank`.
    #[inline]
    pub fn record_collective(&self, rank: usize) {
        self.collective_rounds[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Collective rounds initiated by `rank` so far.
    pub fn collectives_by(&self, rank: usize) -> u64 {
        self.collective_rounds[rank].load(Ordering::Relaxed)
    }

    /// Total collective rounds across all ranks (in a lock-step run every
    /// rank executes the same count, so this is `nprocs ×` the per-rank
    /// round count).
    pub fn total_collective_rounds(&self) -> u64 {
        self.collective_rounds.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Number of ranks tracked.
    pub fn nprocs(&self) -> usize {
        self.bytes_sent.len()
    }

    /// Snapshot of per-rank sent bytes.
    pub fn per_rank_bytes(&self) -> Vec<u64> {
        self.bytes_sent.iter().map(|a| a.load(Ordering::Relaxed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_rank() {
        let s = CommStats::new(3);
        s.record_send(0, 100);
        s.record_send(0, 50);
        s.record_send(2, 8);
        assert_eq!(s.bytes_sent_by(0), 150);
        assert_eq!(s.bytes_sent_by(1), 0);
        assert_eq!(s.bytes_sent_by(2), 8);
        assert_eq!(s.total_bytes(), 158);
        assert_eq!(s.total_msgs(), 3);
        assert_eq!(s.msgs_sent_by(0), 2);
        assert_eq!(s.per_rank_bytes(), vec![150, 0, 8]);
    }

    #[test]
    fn frames_count_independently_of_messages() {
        // 5 logical envelopes coalesced into 2 physical frames: msgs keeps
        // counting envelopes, frames counts what actually hit the wire.
        let s = CommStats::new(2);
        for _ in 0..5 {
            s.record_send(1, 10);
        }
        s.record_frames(1, 2);
        assert_eq!(s.msgs_sent_by(1), 5);
        assert_eq!(s.frames_by(1), 2);
        assert_eq!(s.frames_by(0), 0);
        assert_eq!(s.total_frames(), 2);
    }

    #[test]
    fn collective_rounds_count_per_rank() {
        let s = CommStats::new(2);
        s.record_collective(0);
        s.record_collective(0);
        s.record_collective(1);
        assert_eq!(s.collectives_by(0), 2);
        assert_eq!(s.collectives_by(1), 1);
        assert_eq!(s.total_collective_rounds(), 3);
    }

    #[test]
    fn concurrent_updates_are_exact() {
        let s = CommStats::new(4);
        std::thread::scope(|scope| {
            for r in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        s.record_send(r, 3);
                    }
                });
            }
        });
        assert_eq!(s.total_bytes(), 4 * 10_000 * 3);
        assert_eq!(s.total_msgs(), 40_000);
    }
}
