//! The Graphalytics-grade application suite: six reference-checked kernels
//! (BFS, SSSP, WCC, PageRank, LCC, Triangles) over the sampled
//! transport × topology × storage matrix.
//!
//! The structure mirrors LDBC Graphalytics' validation methodology:
//! every kernel result is checked against an independently implemented
//! sequential reference under a **stated tolerance contract**
//! ([`Kernel::tolerance`]) — bit-identical for the integer-valued kernels,
//! an asserted ULP bound for the floating-point ones. The engine runs over
//! a *reopened* storage backend (in-memory / mmap / chunk-streamed) while
//! references run on the generated in-memory graph, so the matrix also
//! gates the storage seam: same file, any backend, same answers.
//!
//! The matrix is sampled as a Latin square (`common::matrix_cells`): 9
//! cells covering all 27 pairwise axis combinations of the 3×3×3 cube.
//!
//! This file also subsumes the former `apps_correctness.rs` suite (its
//! tests are folded in verbatim below), adds cross-kernel property tests
//! (triangle counts invariant under vertex relabeling, LCC confined to
//! `[0, 1]`, BFS levels ≡ SSSP distances on unit weights), and extends the
//! PR-4/PR-5 fault-injection pattern to the new kernels: a tcp rank killed
//! mid-kernel must surface a typed `TransportError` at every survivor —
//! never a hang.
#![allow(clippy::needless_range_loop)]

mod common;

use std::collections::HashSet;

use common::{materialize_chunked, matrix_cells, reopen};
use distributed_ne::apps::engine::VertexProgram;
use distributed_ne::apps::verify::{check_values, verify_kernel, Kernel};
use distributed_ne::apps::{
    bfs_reference, lcc_reference, pagerank_reference, sssp_reference, triangle_total,
    triangles_reference, wcc_reference, AdjMsg, AppMsg, Engine,
};
use distributed_ne::core::{DistributedNe, NeConfig};
use distributed_ne::graph::hash::SplitMix64;
use distributed_ne::graph::{gen, io, EdgeListBuilder, Graph};
use distributed_ne::partition::hash_based::{GridPartitioner, RandomPartitioner};
use distributed_ne::partition::streaming::HdrfPartitioner;
use distributed_ne::partition::{EdgeAssignment, EdgePartitioner};
use distributed_ne::runtime::comm::CommEndpoint;
use distributed_ne::runtime::{
    CollMsg, CollectiveTopology, Collectives, CommStats, Ctx, MemoryTracker, TcpTransport,
    TransportError, WireDecode, WireEncode,
};
use proptest::prelude::*;

// ---------------------------------------------------------- test graphs --

/// A deliberately messy graph the canonicalizer must absorb: raw input
/// containing self-loops and duplicate edges (both dropped by
/// `EdgeListBuilder`), two separate components — a triangle-with-tail and
/// a distant 4-clique — and blocks of isolated vertices (4..10 and
/// 14..17). Exercises exactly what the old `apps_correctness.rs` suite
/// never did: disconnected structure and vertices with no edges at all,
/// on every kernel at once.
fn frayed_graph() -> Graph {
    let mut b = EdgeListBuilder::new();
    // Component 1: triangle with a tail (known LCC profile [1, 1, 1/3, 0]).
    b.extend_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
    // Raw-input noise: duplicates (both orientations) and self-loops.
    b.extend_edges([(1, 0), (2, 2), (0, 1), (3, 3)]);
    // Component 2: a 4-clique far from the BFS/SSSP source.
    b.extend_edges([(10, 11), (10, 12), (10, 13), (11, 12), (11, 13), (12, 13)]);
    b.into_graph(17)
}

/// The graph roster of the headline matrix: skewed (RMAT), uniform
/// (Erdős–Rényi), power-law with a tunable exponent (Chung-Lu), and the
/// adversarial frayed graph above.
fn suite_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("rmat", gen::rmat(&gen::RmatConfig::graph500(7, 6, 42))),
        ("erdos_renyi", gen::erdos_renyi(150, 400, 7)),
        ("chung_lu", gen::chung_lu(150, 400, 2.5, 9)),
        ("frayed", frayed_graph()),
    ]
}

// ------------------------------------------------------ headline matrix --

#[test]
fn latin_square_sample_covers_every_pairwise_combination() {
    // 9 cells, and every two-axis projection hits all 9 of its pairs —
    // the guarantee that lets the suite run 9 cells instead of 27.
    let cells = matrix_cells();
    assert_eq!(cells.len(), 9);
    let tt: HashSet<String> = cells.iter().map(|(t, p, _)| format!("{t}/{p}")).collect();
    let ts: HashSet<String> = cells.iter().map(|(t, _, s)| format!("{t}/{s}")).collect();
    let ps: HashSet<String> = cells.iter().map(|(_, p, s)| format!("{p}/{s}")).collect();
    assert_eq!(tt.len(), 9, "every transport × topology pair");
    assert_eq!(ts.len(), 9, "every transport × storage pair");
    assert_eq!(ps.len(), 9, "every topology × storage pair");
}

#[test]
fn six_kernels_match_references_across_the_sampled_matrix() {
    for (name, g) in suite_graphs() {
        let a = DistributedNe::new(NeConfig::default().with_seed(7)).partition(&g, 4);
        // References once per graph, on the in-memory original.
        let refs: Vec<(Kernel, Vec<f64>)> =
            Kernel::suite().into_iter().map(|k| (k, k.reference(&g))).collect();
        let path = materialize_chunked(&g, &format!("app_suite_matrix_{name}"));
        for (kind, topo, storage) in matrix_cells() {
            let reopened = reopen(&path, storage);
            let engine = Engine::new(&reopened, &a).with_transport(kind).with_collectives(topo);
            for (kernel, want) in &refs {
                let label = format!("{name}/{kind}/{topo}/{storage}/{}", kernel.name());
                let run = kernel.run(&engine);
                check_values(kernel.name(), &run.values, want, kernel.tolerance())
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                if *kernel == Kernel::Triangles {
                    assert_eq!(
                        run.aggregate,
                        Some(triangle_total(want)),
                        "{label}: global triangle count"
                    );
                }
            }
        }
    }
}

#[test]
fn engine_defaults_resolve_the_environment_cell() {
    // CI reruns this binary under explicit DNE_TRANSPORT /
    // DNE_COLLECTIVES / DNE_GRAPH_STORAGE exports; the env-default engine
    // over an env-opened graph must land on that cell and still match
    // every reference.
    let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 11));
    let a = DistributedNe::new(NeConfig::default().with_seed(11)).partition(&g, 4);
    let path = materialize_chunked(&g, "app_suite_env");
    let reopened = io::open_chunked_env(&path).expect("open with the env-selected backend");
    let engine = Engine::new(&reopened, &a);
    for kernel in Kernel::suite() {
        verify_kernel(kernel, &engine, &g).unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    }
}

// ------------------------- folded in from the former apps_correctness.rs --

fn assignments(g: &Graph, k: u32) -> Vec<(String, EdgeAssignment)> {
    vec![
        ("Random".into(), RandomPartitioner::new(3).partition(g, k)),
        ("Grid".into(), GridPartitioner::new(3).partition(g, k)),
        ("HDRF".into(), HdrfPartitioner::new(3).partition(g, k)),
        (
            "DistributedNE".into(),
            DistributedNe::new(NeConfig::default().with_seed(3)).partition(g, k),
        ),
    ]
}

#[test]
fn sssp_agrees_with_bfs_for_every_partitioner() {
    let g = gen::rmat(&gen::RmatConfig::graph500(8, 6, 1));
    let want = sssp_reference(&g, 0);
    for (name, a) in assignments(&g, 6) {
        let run = Engine::new(&g, &a).sssp(0);
        for v in 0..g.num_vertices() as usize {
            if g.degree(v as u64) > 0 {
                assert_eq!(run.values[v], want[v], "{name}: vertex {v}");
            }
        }
    }
}

#[test]
fn wcc_agrees_with_reference_on_disconnected_graph() {
    let g = gen::ring_complete(7);
    let want = wcc_reference(&g);
    for (name, a) in assignments(&g, 5) {
        let run = Engine::new(&g, &a).wcc();
        assert_eq!(run.values, want, "{name}");
    }
}

#[test]
fn pagerank_agrees_within_fp_tolerance() {
    let g = gen::rmat(&gen::RmatConfig::graph500(7, 6, 9));
    let want = pagerank_reference(&g, 15);
    for (name, a) in assignments(&g, 4) {
        let run = Engine::new(&g, &a).pagerank(15);
        for v in 0..g.num_vertices() as usize {
            if g.degree(v as u64) > 0 {
                assert!(
                    (run.values[v] - want[v]).abs() < 1e-8,
                    "{name}: vertex {v}: {} vs {}",
                    run.values[v],
                    want[v]
                );
            }
        }
    }
}

#[test]
fn better_partitions_move_fewer_bytes() {
    // Table 5's causal chain: lower RF ⇒ lower COM, measured on PageRank
    // (the communication-heavy app).
    let g = gen::rmat(&gen::RmatConfig::graph500(10, 12, 5));
    let k = 8;
    let random = RandomPartitioner::new(5).partition(&g, k);
    let dne = DistributedNe::new(NeConfig::default().with_seed(5)).partition(&g, k);
    let com_random = Engine::new(&g, &random).pagerank(5).comm_bytes;
    let com_dne = Engine::new(&g, &dne).pagerank(5).comm_bytes;
    assert!(com_dne < com_random, "D.NE comm {com_dne} should be below Random {com_random}");
}

// -------------------------------------------------------- property tests --

/// A seeded Fisher–Yates permutation of `0..n`.
fn permutation(n: u64, seed: u64) -> Vec<u64> {
    let mut p: Vec<u64> = (0..n).collect();
    let mut rng = SplitMix64::new(seed);
    for i in (1..p.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        p.swap(i, j);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// WCC correctness over random graphs and partition counts.
    #[test]
    fn wcc_random_graphs(n in 20u64..120, m in 20u64..300, seed in 0u64..500, k in 2u32..6) {
        let g = gen::erdos_renyi(n, m, seed);
        prop_assume!(g.num_edges() > 0);
        let a = RandomPartitioner::new(seed).partition(&g, k);
        let run = Engine::new(&g, &a).wcc();
        prop_assert_eq!(run.values, wcc_reference(&g));
    }

    /// Triangles are a structural invariant: relabeling the vertices of a
    /// graph permutes the per-vertex counts and leaves the global count
    /// unchanged. The distributed kernel on the original must therefore
    /// match the sequential reference on an independently relabeled copy,
    /// vertex-for-vertex through the permutation.
    #[test]
    fn triangle_counts_are_invariant_under_vertex_relabeling(
        n in 20u64..100, m in 20u64..250, seed in 0u64..500, k in 2u32..6,
    ) {
        let g = gen::erdos_renyi(n, m, seed);
        prop_assume!(g.num_edges() > 0);
        let perm = permutation(g.num_vertices(), seed ^ 0xA5A5);
        let mut b = EdgeListBuilder::new();
        g.for_each_edge(|_, u, v| b.push(perm[u as usize], perm[v as usize]));
        let h = b.into_graph(g.num_vertices());
        let want = triangles_reference(&h);
        let a = RandomPartitioner::new(seed).partition(&g, k);
        let run = Engine::new(&g, &a).triangles();
        prop_assert_eq!(run.aggregate, Some(triangle_total(&want)), "global count");
        for v in 0..g.num_vertices() as usize {
            prop_assert_eq!(run.values[v], want[perm[v] as usize], "vertex {}", v);
        }
    }

    /// Every LCC value is a proportion: confined to `[0, 1]` on a simple
    /// undirected graph, and bit-identical to the reference.
    #[test]
    fn lcc_stays_in_the_unit_interval(
        n in 10u64..100, m in 10u64..250, seed in 0u64..500, k in 2u32..6,
    ) {
        let g = gen::erdos_renyi(n, m, seed);
        prop_assume!(g.num_edges() > 0);
        let a = RandomPartitioner::new(seed).partition(&g, k);
        let run = Engine::new(&g, &a).lcc();
        let want = lcc_reference(&g);
        for v in 0..g.num_vertices() as usize {
            prop_assert!(
                (0.0..=1.0).contains(&run.values[v]),
                "vertex {}: lcc {} outside [0, 1]", v, run.values[v]
            );
            prop_assert_eq!(run.values[v].to_bits(), want[v].to_bits(), "vertex {}", v);
        }
    }

    /// On unit weights, BFS levels and SSSP distances are the same
    /// function — the distributed runs must agree bit-for-bit with each
    /// other and with the level-synchronous reference, from any source.
    #[test]
    fn bfs_levels_equal_sssp_distances_on_unit_weights(
        n in 10u64..100, m in 10u64..250, seed in 0u64..500, k in 2u32..6,
        src_pick in 0u64..1000,
    ) {
        let g = gen::erdos_renyi(n, m, seed);
        prop_assume!(g.num_edges() > 0);
        let source = src_pick % g.num_vertices();
        let a = RandomPartitioner::new(seed).partition(&g, k);
        let engine = Engine::new(&g, &a);
        let bfs = engine.bfs(source);
        let sssp = engine.sssp(source);
        for v in 0..g.num_vertices() as usize {
            prop_assert_eq!(
                bfs.values[v].to_bits(), sssp.values[v].to_bits(),
                "vertex {}: BFS level vs SSSP distance", v
            );
        }
        prop_assert_eq!(&bfs.values, &bfs_reference(&g, source));
    }
}

// -------------------------------------------------------- fault injection --

/// The fault fixture: a 3-partition assignment whose engine the survivors
/// drive directly over a hand-built tcp fabric.
fn fault_fixture() -> (Graph, EdgeAssignment) {
    let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 8));
    let a = RandomPartitioner::new(8).partition(&g, 3);
    (g, a)
}

/// Build the 3-rank tcp fabrics (point-to-point messages + collectives),
/// kill rank 1 the way a dead process dies (sockets slammed shut, no
/// goodbye frames), and return the two survivors' contexts.
fn surviving_ctxs<M>() -> Vec<Ctx<M>>
where
    M: Send + WireEncode + WireDecode + 'static,
{
    let stats = CommStats::new(3);
    let mem = MemoryTracker::new(3);
    let mut links = TcpTransport::<M>::fabric(3);
    let mut colls = TcpTransport::<CollMsg>::fabric(3);
    let victim = links.remove(1);
    victim.abort();
    drop(victim);
    let coll_victim = colls.remove(1);
    coll_victim.abort();
    drop(coll_victim);
    links
        .into_iter()
        .zip(colls)
        .map(|(link, coll)| {
            Ctx::from_parts(
                CommEndpoint::from_transport(Box::new(link), stats.clone()),
                Collectives::from_transport(
                    Box::new(coll),
                    CollectiveTopology::Flat,
                    stats.clone(),
                ),
                mem.clone(),
            )
        })
        .collect()
}

#[test]
fn killed_rank_mid_bfs_is_a_typed_error_not_a_hang() {
    // Rank 1 dies before BFS's first mirror→master exchange; both
    // survivors must surface a typed `TransportError` (`Disconnected` from
    // the slammed stream, or `Io` when the schedule has the survivor
    // writing into the dead socket) — never a hang, never a panic.
    let (g, a) = fault_fixture();
    let engine = Engine::new(&g, &a);
    let prog = VertexProgram::bfs(0);
    std::thread::scope(|s| {
        for mut ctx in surviving_ctxs::<AppMsg>() {
            let (engine, prog) = (&engine, &prog);
            s.spawn(move || {
                let rank = ctx.rank();
                let err = engine
                    .run_rank(&mut ctx, prog)
                    .expect_err("a dead peer cannot satisfy the mirror→master exchange");
                assert!(
                    matches!(err, TransportError::Disconnected { .. } | TransportError::Io { .. }),
                    "BFS rank {rank}: expected a typed disconnect/io error, got {err}"
                );
            });
        }
    });
}

#[test]
fn killed_rank_mid_adjacency_kernel_is_a_typed_error_not_a_hang() {
    // Triangles and LCC share the three-round adjacency kernel
    // (`run_triangles_rank`), so this one wire path covers both new apps.
    // Rank 1 dies before round 1's fragment exchange.
    let (g, a) = fault_fixture();
    let engine = Engine::new(&g, &a);
    std::thread::scope(|s| {
        for mut ctx in surviving_ctxs::<AdjMsg>() {
            let engine = &engine;
            s.spawn(move || {
                let rank = ctx.rank();
                let err = engine
                    .run_triangles_rank(&mut ctx)
                    .expect_err("a dead peer cannot satisfy the fragment exchange");
                assert!(
                    matches!(err, TransportError::Disconnected { .. } | TransportError::Io { .. }),
                    "adjacency kernel rank {rank}: expected a typed disconnect/io error, got {err}"
                );
            });
        }
    });
}
