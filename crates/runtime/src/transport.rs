//! Pluggable transport backends for the simulated interconnect.
//!
//! All traffic in the simulated cluster — point-to-point envelopes *and*
//! collective rounds — flows through the [`Transport`] trait. Three
//! backends implement it:
//!
//! * [`LoopbackTransport`] — the fast path: messages move between machine
//!   threads by pointer through crossbeam channels, and the wire cost is
//!   the [`WireSize`] *estimate*. Semantically identical to the original
//!   runtime.
//! * [`BytesTransport`] — every envelope is really serialized through the
//!   [`WireEncode`]/[`WireDecode`] codec into a length-prefixed
//!   little-endian frame, shipped as raw bytes, and decoded on receive.
//!   The wire cost charged is the *actual* encoded payload length, which
//!   makes communication-volume numbers (Table 5 "COM", Figures 9/10)
//!   exact rather than estimated.
//! * [`TcpTransport`](crate::tcp::TcpTransport) — the same frames, but
//!   carried over real `TcpStream` sockets: a full localhost mesh built by
//!   a rendezvous bootstrap (rank 0 listens, peers dial in and exchange
//!   rank handshakes). The in-process fabric bridges machine threads with
//!   real sockets; the same endpoint code also powers genuinely
//!   multi-process clusters (see [`crate::tcp::TcpProcessCluster`] and the
//!   `dne-tcp-worker` binary).
//!
//! All backends preserve the two properties every algorithm in this
//! workspace relies on: per-link FIFO order (crossbeam channels are
//! per-producer FIFO, TCP streams are ordered — the MPI non-overtaking
//! guarantee) and source-tagged envelopes.
//!
//! Backend selection is a [`TransportKind`], threaded through
//! [`crate::Cluster::with_transport`], `NeConfig` in `dne-core`, and the
//! `DNE_TRANSPORT` environment variable (`loopback` | `bytes` | `tcp`)
//! that the bench binaries and test suites honor.
//!
//! Failure surfaces as a typed [`TransportError`], never a panic: a frame
//! that fails to decode, a send into a torn-down fabric, or a vanished
//! peer is reported from [`Transport::send`]/[`Transport::recv`] as an
//! `Err` the caller can attribute to a rank. How *promptly* a vanished
//! peer is detected depends on the medium: the tcp backend observes the
//! peer's socket close (EOF without the goodbye frame) and errors on the
//! next receive, while the in-process channel backends — where a "dead
//! peer" can only mean a sibling thread already unwinding the whole run —
//! report [`TransportError::Disconnected`] once the fabric is torn down.

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::wire::{WireDecode, WireEncode, WireError, WireReader, WireSize};

/// Which transport backend a cluster run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Pointer-passing channels with estimated byte accounting (fast path).
    #[default]
    Loopback,
    /// Real serialization: every envelope is encoded to a byte frame and
    /// decoded on receive; byte accounting is exact.
    Bytes,
    /// Real sockets: the byte frames cross genuine localhost `TcpStream`s
    /// between endpoints; byte accounting is exact and identical to
    /// [`TransportKind::Bytes`].
    Tcp,
}

/// The names `TransportKind::from_str` accepts, for error messages.
const KIND_NAMES: &str = "\"loopback\", \"bytes\", or \"tcp\"";

impl TransportKind {
    /// Environment variable consulted by [`TransportKind::from_env`].
    pub const ENV_VAR: &'static str = "DNE_TRANSPORT";

    /// Every backend, in definition order — the canonical list invariance
    /// tests iterate, so adding a backend cannot silently drop it from a
    /// test suite that hand-copied the roster.
    pub const ALL: [TransportKind; 3] =
        [TransportKind::Loopback, TransportKind::Bytes, TransportKind::Tcp];

    /// Read the backend from `DNE_TRANSPORT` (`loopback` | `bytes` | `tcp`,
    /// case-insensitive, surrounding whitespace ignored). Unset or empty
    /// means [`TransportKind::Loopback`].
    ///
    /// # Panics
    /// Panics on an unrecognized or non-Unicode value, naming the valid
    /// backends — a misconfigured benchmark run (`DNE_TRANSPORT=byte`)
    /// must fail loudly before it silently measures the wrong backend.
    pub fn from_env() -> Self {
        match std::env::var(Self::ENV_VAR) {
            Ok(v) if !v.trim().is_empty() => {
                v.parse().unwrap_or_else(|e| panic!("invalid {}: {e}", Self::ENV_VAR))
            }
            Err(std::env::VarError::NotUnicode(raw)) => {
                panic!(
                    "invalid {}: non-Unicode value {raw:?} (expected {KIND_NAMES})",
                    Self::ENV_VAR
                )
            }
            _ => TransportKind::Loopback,
        }
    }

    /// Build the `n`-endpoint fabric of this backend.
    ///
    /// # Panics
    /// [`TransportKind::Tcp`] panics when the localhost socket mesh cannot
    /// be built (ports exhausted, loopback interface unavailable) — an
    /// environment failure, not an input condition.
    pub(crate) fn fabric<M>(self, n: usize) -> Vec<Box<dyn Transport<M>>>
    where
        M: Send + WireEncode + WireDecode + 'static,
    {
        match self {
            TransportKind::Loopback => LoopbackTransport::fabric(n)
                .into_iter()
                .map(|t| Box::new(t) as Box<dyn Transport<M>>)
                .collect(),
            TransportKind::Bytes => BytesTransport::fabric(n)
                .into_iter()
                .map(|t| Box::new(t) as Box<dyn Transport<M>>)
                .collect(),
            TransportKind::Tcp => crate::tcp::TcpTransport::fabric(n)
                .into_iter()
                .map(|t| Box::new(t) as Box<dyn Transport<M>>)
                .collect(),
        }
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "loopback" => Ok(TransportKind::Loopback),
            "bytes" => Ok(TransportKind::Bytes),
            "tcp" => Ok(TransportKind::Tcp),
            other => Err(format!("unknown transport {other:?} (expected {KIND_NAMES})")),
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TransportKind::Loopback => "loopback",
            TransportKind::Bytes => "bytes",
            TransportKind::Tcp => "tcp",
        })
    }
}

/// A transport-level failure, surfaced as a value instead of a panic so a
/// dead peer aborts a run with an attributable error — essential once
/// endpoints live in separate OS processes that can genuinely die.
#[derive(Debug)]
pub enum TransportError {
    /// A peer endpoint went away: its channel disconnected, its socket was
    /// reset, or its stream ended without the goodbye frame a graceful
    /// shutdown sends.
    Disconnected {
        /// The peer that vanished, when the transport can attribute it.
        peer: Option<usize>,
    },
    /// An incoming frame's payload failed wire decoding.
    Decode {
        /// Source rank of the malformed frame.
        src: usize,
        /// The underlying codec error.
        error: WireError,
    },
    /// A frame violated the framing protocol: oversized length prefix,
    /// stream truncated mid-frame, or a header that does not parse.
    Frame {
        /// Source rank, when the link it arrived on is known.
        src: Option<usize>,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A socket-level IO failure.
    Io {
        /// What the transport was doing when the error occurred.
        context: String,
        /// The underlying OS error.
        error: std::io::Error,
    },
    /// The TCP rendezvous/bootstrap protocol failed (bad magic, rank
    /// mismatch, peer count disagreement, bootstrap timeout).
    Bootstrap {
        /// Human-readable description of the failure.
        detail: String,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected { peer: Some(p) } => {
                write!(f, "peer rank {p} disconnected without goodbye")
            }
            TransportError::Disconnected { peer: None } => {
                write!(f, "all peers disconnected; no further messages can arrive")
            }
            TransportError::Decode { src, error } => {
                write!(f, "malformed frame from rank {src}: {error}")
            }
            TransportError::Frame { src: Some(s), detail } => {
                write!(f, "framing violation on link from rank {s}: {detail}")
            }
            TransportError::Frame { src: None, detail } => write!(f, "framing violation: {detail}"),
            TransportError::Io { context, error } => {
                write!(f, "io failure while {context}: {error}")
            }
            TransportError::Bootstrap { detail } => write!(f, "tcp bootstrap failed: {detail}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io { error, .. } => Some(error),
            TransportError::Decode { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// One endpoint of the simulated interconnect: the seam between the
/// runtime's messaging primitives and the medium that carries them.
///
/// `send` reports the envelope's wire size (estimated on loopback, actual
/// encoded payload on bytes/tcp) for *every* destination, including self.
/// Whether a send is chargeable is not a transport concern: accounting
/// policy (self-sends are free) lives in exactly one place, the
/// [`CommEndpoint`](crate::comm::CommEndpoint) wrapping this trait. `recv`
/// blocks for the next envelope from any source and returns it tagged with
/// the source rank.
///
/// Both operations are fallible: a vanished peer or an undecodable frame
/// is a [`TransportError`], not a panic, so callers (including worker
/// processes in a real multi-process cluster) can attribute the failure
/// and exit cleanly.
pub trait Transport<M>: Send {
    /// This endpoint's rank in `0..nprocs`.
    fn rank(&self) -> usize;

    /// Number of endpoints in the fabric.
    fn nprocs(&self) -> usize;

    /// Deliver `msg` to `dst`'s queue; returns the envelope's wire size.
    fn send(&self, dst: usize, msg: M) -> Result<usize, TransportError>;

    /// Blocking receive of the next `(source, message)` envelope.
    fn recv(&self) -> Result<(usize, M), TransportError>;
}

/// Build the fully-connected channel mesh both in-process backends share:
/// one MPMC queue per endpoint, every peer holding a cloned sender to it.
fn channel_mesh<E>(n: usize) -> Vec<(usize, Vec<Sender<E>>, Receiver<E>)> {
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| (rank, senders.clone(), receiver))
        .collect()
}

/// The pointer-passing fast path: envelopes move through typed channels,
/// wire cost is the [`WireSize`] estimate.
pub struct LoopbackTransport<M> {
    rank: usize,
    senders: Vec<Sender<(usize, M)>>,
    receiver: Receiver<(usize, M)>,
}

impl<M: Send + WireSize> LoopbackTransport<M> {
    /// Build all `n` connected loopback endpoints at once.
    pub fn fabric(n: usize) -> Vec<Self> {
        channel_mesh(n)
            .into_iter()
            .map(|(rank, senders, receiver)| Self { rank, senders, receiver })
            .collect()
    }
}

impl<M: Send + WireSize> Transport<M> for LoopbackTransport<M> {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn nprocs(&self) -> usize {
        self.senders.len()
    }

    fn send(&self, dst: usize, msg: M) -> Result<usize, TransportError> {
        let wire = msg.wire_bytes();
        check_payload_bound(wire, self.rank)?;
        self.senders[dst]
            .send((self.rank, msg))
            .map_err(|_| TransportError::Disconnected { peer: Some(dst) })?;
        Ok(wire)
    }

    fn recv(&self) -> Result<(usize, M), TransportError> {
        self.receiver.recv().map_err(|_| TransportError::Disconnected { peer: None })
    }
}

/// Frame header: `[u64 payload length][u32 source rank]`, little-endian.
pub(crate) const FRAME_HEADER_BYTES: usize = 12;

/// Upper bound on a single message's encoded payload (1 GiB). Enforced
/// identically by *every* backend's `send` — on the framing backends a
/// corrupt or adversarial length prefix must not drive the reader into a
/// giant allocation, and bounding loopback the same way keeps the three
/// backends observationally identical even at the limit.
pub const MAX_FRAME_PAYLOAD: u64 = 1 << 30;

/// Reject an outgoing payload that would exceed the frame bound.
pub(crate) fn check_payload_bound(wire: usize, src: usize) -> Result<(), TransportError> {
    if wire as u64 > MAX_FRAME_PAYLOAD {
        return Err(TransportError::Frame {
            src: Some(src),
            detail: format!(
                "outgoing message payload of {wire} bytes exceeds the \
                 {MAX_FRAME_PAYLOAD}-byte frame bound"
            ),
        });
    }
    Ok(())
}

/// Encode one envelope into its wire frame
/// (`[u64 payload len][u32 src][payload]`) — the format shared by the
/// bytes backend and the TCP socket fabric.
pub(crate) fn encode_frame<M: WireEncode>(src: usize, msg: &M) -> Vec<u8> {
    let payload_len = msg.wire_bytes();
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload_len);
    (payload_len as u64).encode(&mut frame);
    (src as u32).encode(&mut frame);
    msg.encode(&mut frame);
    debug_assert_eq!(
        frame.len(),
        FRAME_HEADER_BYTES + payload_len,
        "encoder must emit exactly wire_bytes() payload bytes"
    );
    frame
}

/// Decode one wire frame back into its envelope. Malformed frames are
/// typed errors, never panics: on the in-process bytes backend they would
/// indicate a codec bug, but the same frames cross real sockets on the
/// TCP backend, where truncation and corruption are input conditions.
pub(crate) fn decode_frame<M: WireDecode>(frame: &[u8]) -> Result<(usize, M), TransportError> {
    let mut r = WireReader::new(frame);
    let payload_len = u64::decode(&mut r).map_err(|e| TransportError::Frame {
        src: None,
        detail: format!("frame too short for length prefix: {e}"),
    })? as usize;
    let src = u32::decode(&mut r).map_err(|e| TransportError::Frame {
        src: None,
        detail: format!("frame too short for source rank: {e}"),
    })? as usize;
    if r.remaining() != payload_len {
        return Err(TransportError::Frame {
            src: Some(src),
            detail: format!(
                "length prefix mismatch: header claims {payload_len} payload bytes, \
                 {} present",
                r.remaining()
            ),
        });
    }
    let payload = r.read_bytes(payload_len).expect("payload length checked above");
    let msg = M::from_wire(payload).map_err(|error| TransportError::Decode { src, error })?;
    Ok((src, msg))
}

/// The serializing backend: every envelope becomes a length-prefixed
/// little-endian byte frame (`[u64 payload len][u32 src][payload]`).
///
/// Self-sends are encoded and decoded like any other envelope — the codec
/// round-trip is exercised for *every* message a run produces — but, as on
/// the loopback backend, they are not charged to the byte accounting (no
/// wire crossed).
pub struct BytesTransport<M> {
    rank: usize,
    senders: Vec<Sender<Vec<u8>>>,
    receiver: Receiver<Vec<u8>>,
    _msg: std::marker::PhantomData<fn() -> M>,
}

impl<M: Send + WireEncode + WireDecode> BytesTransport<M> {
    /// Build all `n` connected byte-frame endpoints at once.
    pub fn fabric(n: usize) -> Vec<Self> {
        channel_mesh(n)
            .into_iter()
            .map(|(rank, senders, receiver)| Self {
                rank,
                senders,
                receiver,
                _msg: std::marker::PhantomData,
            })
            .collect()
    }
}

impl<M: Send + WireEncode + WireDecode> Transport<M> for BytesTransport<M> {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn nprocs(&self) -> usize {
        self.senders.len()
    }

    fn send(&self, dst: usize, msg: M) -> Result<usize, TransportError> {
        let frame = encode_frame(self.rank, &msg);
        // Report the encoded payload, excluding the 12-byte frame header:
        // WireSize estimates are payload-only, and all backends must
        // account identically for identical traffic.
        let wire = frame.len() - FRAME_HEADER_BYTES;
        check_payload_bound(wire, self.rank)?;
        self.senders[dst]
            .send(frame)
            .map_err(|_| TransportError::Disconnected { peer: Some(dst) })?;
        Ok(wire)
    }

    fn recv(&self) -> Result<(usize, M), TransportError> {
        let frame =
            self.receiver.recv().map_err(|_| TransportError::Disconnected { peer: None })?;
        decode_frame(&frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parses_and_displays() {
        assert_eq!("loopback".parse::<TransportKind>().unwrap(), TransportKind::Loopback);
        assert_eq!("BYTES".parse::<TransportKind>().unwrap(), TransportKind::Bytes);
        assert_eq!("tcp".parse::<TransportKind>().unwrap(), TransportKind::Tcp);
        assert_eq!(" Tcp ".parse::<TransportKind>().unwrap(), TransportKind::Tcp);
        assert_eq!(TransportKind::Bytes.to_string(), "bytes");
        assert_eq!(TransportKind::Tcp.to_string(), "tcp");
        assert_eq!(TransportKind::default(), TransportKind::Loopback);
    }

    #[test]
    fn typos_name_every_valid_backend() {
        // The satellite bug: `DNE_TRANSPORT=byte` must be a hard error that
        // tells the operator what would have been accepted.
        let err = "byte".parse::<TransportKind>().unwrap_err();
        for name in ["loopback", "bytes", "tcp"] {
            assert!(err.contains(name), "error {err:?} must list {name}");
        }
    }

    fn delivery_roundtrip(kind: TransportKind) {
        let mut fabric = kind.fabric::<Vec<u64>>(2);
        let b = fabric.pop().unwrap();
        let a = fabric.pop().unwrap();
        let payload: Vec<u64> = (0..100).collect();
        let wire = a.send(1, payload.clone()).unwrap();
        assert_eq!(wire, payload.wire_bytes(), "charged bytes must equal wire size");
        let (src, got) = b.recv().unwrap();
        assert_eq!(src, 0);
        assert_eq!(got, payload);
    }

    #[test]
    fn loopback_delivers_and_charges_estimate() {
        delivery_roundtrip(TransportKind::Loopback);
    }

    #[test]
    fn bytes_delivers_and_charges_actual() {
        delivery_roundtrip(TransportKind::Bytes);
    }

    #[test]
    fn tcp_delivers_and_charges_actual() {
        delivery_roundtrip(TransportKind::Tcp);
    }

    #[test]
    fn self_sends_report_their_size_and_deliver() {
        // Transports always report the envelope's wire size — the
        // self-sends-are-free policy lives solely in CommEndpoint.
        for kind in TransportKind::ALL {
            let fabric = kind.fabric::<u64>(1);
            let a = &fabric[0];
            assert_eq!(a.send(0, 7).unwrap(), 8, "{kind}: size reported even for self-sends");
            assert_eq!(a.recv().unwrap(), (0, 7));
        }
    }

    #[test]
    fn frame_layout_is_length_prefixed_little_endian() {
        let frame = encode_frame(3, &0x0102_0304_0506_0708u64);
        assert_eq!(&frame[0..8], &8u64.to_le_bytes(), "payload length prefix");
        assert_eq!(&frame[8..12], &3u32.to_le_bytes(), "source rank");
        assert_eq!(&frame[12..], &0x0102_0304_0506_0708u64.to_le_bytes());
        let (src, msg) = decode_frame::<u64>(&frame).unwrap();
        assert_eq!((src, msg), (3, 0x0102_0304_0506_0708));
    }

    #[test]
    fn truncated_frame_is_a_typed_error() {
        let frame = encode_frame(0, &7u64);
        let err = decode_frame::<u64>(&frame[..frame.len() - 1]).unwrap_err();
        assert!(
            matches!(err, TransportError::Frame { .. }),
            "truncation must surface as a framing error, got {err}"
        );
    }

    #[test]
    fn undecodable_payload_names_the_source() {
        // A frame whose header is intact but whose payload is garbage for
        // the target type must attribute the decode failure to its sender.
        let frame = encode_frame(2, &vec![1u8, 2, 3]);
        match decode_frame::<Vec<u64>>(&frame) {
            Err(TransportError::Decode { src: 2, .. }) => {}
            other => panic!("expected Decode error from rank 2, got {other:?}"),
        }
    }

    #[test]
    fn loopback_send_to_dropped_fabric_errors() {
        let mut fabric = LoopbackTransport::<u64>::fabric(2);
        let _b = fabric.pop().unwrap();
        let a = fabric.pop().unwrap();
        drop(_b);
        let err = a.send(1, 5).unwrap_err();
        assert!(matches!(err, TransportError::Disconnected { peer: Some(1) }), "{err}");
    }
}
