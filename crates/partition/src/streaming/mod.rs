//! Streaming / iterative-refinement edge partitioners.
//!
//! The paper groups these as "heuristics to iteratively refine the
//! assignment after the hash partitioning" (Oblivious, Hybrid Ginger,
//! §2.2) and "streaming methods, where the input graph is represented as a
//! sequence of edges and processed one-by-one" (HDRF, §2.2). They form the
//! middle band of Figure 8's quality ordering: better than pure hashing,
//! worse than direct greedy optimization.

mod ginger;
mod hdrf;
mod oblivious;

pub use ginger::GingerPartitioner;
pub use hdrf::HdrfPartitioner;
pub use oblivious::ObliviousPartitioner;

use crate::assignment::PartitionId;

/// Shared per-vertex partition-set bookkeeping for the streaming methods:
/// `A(v)` = set of partitions vertex `v` already appears in, kept as tiny
/// sorted vectors (the replication factor *is* their average length, so
/// they stay short by construction).
#[derive(Debug)]
pub(crate) struct StreamState {
    /// `A(v)` per vertex, each sorted ascending.
    pub vparts: Vec<Vec<PartitionId>>,
    /// `|E_p|` per partition.
    pub sizes: Vec<u64>,
}

impl StreamState {
    pub(crate) fn new(num_vertices: usize, k: usize) -> Self {
        Self { vparts: vec![Vec::new(); num_vertices], sizes: vec![0; k] }
    }

    /// Record that edge `e{u,v}` went to partition `p`.
    #[inline]
    pub(crate) fn place(&mut self, u: u64, v: u64, p: PartitionId) {
        self.sizes[p as usize] += 1;
        for w in [u, v] {
            let set = &mut self.vparts[w as usize];
            if let Err(pos) = set.binary_search(&p) {
                set.insert(pos, p);
            }
        }
    }

    /// Least-loaded partition among `candidates` (deterministic tie break by
    /// smaller id). Falls back to the global least-loaded when `candidates`
    /// is empty.
    pub(crate) fn least_loaded(&self, candidates: &[PartitionId]) -> PartitionId {
        let pick = |iter: &mut dyn Iterator<Item = PartitionId>| -> PartitionId {
            iter.min_by_key(|&p| (self.sizes[p as usize], p)).expect("non-empty candidate set")
        };
        if candidates.is_empty() {
            pick(&mut (0..self.sizes.len() as PartitionId))
        } else {
            pick(&mut candidates.iter().copied())
        }
    }

    /// Sorted intersection of two partition sets.
    pub(crate) fn intersect(a: &[PartitionId], b: &[PartitionId]) -> Vec<PartitionId> {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_updates_sets_and_sizes() {
        let mut s = StreamState::new(3, 2);
        s.place(0, 1, 1);
        s.place(1, 2, 1);
        s.place(0, 2, 0);
        assert_eq!(s.sizes, vec![1, 2]);
        assert_eq!(s.vparts[0], vec![0, 1]);
        assert_eq!(s.vparts[1], vec![1]);
        assert_eq!(s.vparts[2], vec![0, 1]);
    }

    #[test]
    fn least_loaded_prefers_smaller_size_then_id() {
        let mut s = StreamState::new(1, 3);
        s.sizes = vec![5, 2, 2];
        assert_eq!(s.least_loaded(&[]), 1);
        assert_eq!(s.least_loaded(&[0, 2]), 2);
    }

    #[test]
    fn set_ops() {
        assert_eq!(StreamState::intersect(&[1, 2, 3], &[2, 3, 4]), vec![2, 3]);
        assert_eq!(StreamState::intersect(&[1], &[2]), Vec::<PartitionId>::new());
        assert_eq!(StreamState::intersect(&[], &[1]), Vec::<PartitionId>::new());
    }
}
