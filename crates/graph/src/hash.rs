//! Fast, deterministic, non-cryptographic hashing.
//!
//! Three uses in this workspace:
//!
//! 1. **Hash partitioning** — Random (1D), Grid (2D), DBH and Hybrid hashing
//!    all map vertex ids to partitions via [`mix64`]. Determinism matters:
//!    the 2D-hash initial distribution of Distributed NE computes the replica
//!    set of a vertex *functionally* from its id instead of storing metadata
//!    (paper §4), so every process must agree on the hash.
//! 2. **Hash maps/sets** — [`FastMap`]/[`FastSet`] replace SipHash with a
//!    multiply-xor hasher (the guides' FxHash recommendation, implemented
//!    in-repo because only the offline crate set is allowed).
//! 3. **Seeded pseudo-randomness** — [`SplitMix64`] provides the cheap,
//!    splittable PRNG used by the generators for per-chunk seeding.

use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit finalizer of splitmix64 — a high-quality mixing function.
///
/// ```
/// use dne_graph::hash::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(42), mix64(42));
/// ```
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combine two 64-bit values into one well-mixed value.
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b))
}

/// Minimal splittable PRNG (Steele et al., "Fast splittable pseudorandom
/// number generators"). Used where we need *many* cheap independent streams
/// (e.g. one per RMAT edge chunk) without the weight of a full `rand` RNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (Lemire's multiply-shift; slight
    /// modulo bias is irrelevant for our synthetic-workload use).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Derive an independent generator (split).
    #[inline]
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_A5A5_DEAD_BEEF)
    }

    /// Jump the stream forward by `k` draws in O(1), as if [`Self::next_u64`]
    /// had been called `k` times and the results discarded.
    ///
    /// The splitmix64 state advances by a constant per draw, which is what
    /// makes the generator's streams *chunkable*: a worker responsible for
    /// draws `[lo, hi)` of a shared logical stream seeds its own generator
    /// and advances by `lo`, reproducing exactly the values a sequential
    /// consumer would have seen — the property the parallel graph
    /// generators rely on to be byte-identical to their serial versions.
    ///
    /// ```
    /// use dne_graph::hash::SplitMix64;
    /// let mut a = SplitMix64::new(7);
    /// for _ in 0..1000 { a.next_u64(); }
    /// let mut b = SplitMix64::new(7);
    /// b.advance(1000);
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    #[inline]
    pub fn advance(&mut self, k: u64) {
        self.state = self.state.wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
}

/// FxHash-style hasher: fast multiply-rotate per word. Not HashDoS safe;
/// all keys in this workspace are internal integer ids.
#[derive(Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

const ROTATE: u32 = 5;
const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

/// `HashMap` with the fast in-repo hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;
/// `HashSet` with the fast in-repo hasher.
pub type FastSet<K> = std::collections::HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        let a = mix64(0);
        let b = mix64(1);
        assert_ne!(a, b);
        assert_eq!(mix64(0), a);
        // Successive small inputs should differ in many bits.
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn splitmix_streams_are_reproducible() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_next_below_is_in_range() {
        let mut r = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u32::MAX as u64] {
            for _ in 0..50 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn split_gives_independent_stream() {
        let mut a = SplitMix64::new(5);
        let mut c = a.split();
        // The split stream should not mirror the parent.
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn fast_map_basic() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
    }
}
