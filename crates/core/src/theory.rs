//! Theoretical analysis (paper §6): the Theorem 1 upper bound, the
//! Theorem 2 tightness construction, and the Table 1 expected bounds for
//! power-law graphs.
//!
//! ## Theorem 1
//!
//! Partitions computed by Distributed NE satisfy
//! `RF ≤ (|E| + |V| + |P|) / |V|` — proven via the potential function
//! `Φ(t) = |E_rest| + |V_rest| + |P_rest| + Σ_p |V(E_p)|`, which never
//! increases. [`upper_bound`] evaluates the bound; the integration tests
//! check every Distributed NE run against it.
//!
//! ## Table 1
//!
//! For a power-law graph with `Pr[d] = d^{-α}/ζ(α)` (`d_min = 1`), the
//! expected bound of Distributed NE is `E[UB] ≈ ½·ζ(α−1)/ζ(α) + 1`. The
//! hash-based methods admit expected replication factors under the same
//! model (Xie et al., NIPS 2014), which [`table1_row`] evaluates
//! numerically: Random and Grid by their closed forms, DBH by numerical
//! evaluation of the degree-biased anchoring model (documented
//! approximation of Xie et al.'s bound).

/// Theorem 1: `UB = (|E| + |V| + |P|) / |V|`.
pub fn upper_bound(num_edges: u64, num_vertices: u64, num_partitions: u64) -> f64 {
    assert!(num_vertices > 0, "bound undefined for empty vertex sets");
    (num_edges + num_vertices + num_partitions) as f64 / num_vertices as f64
}

/// Riemann zeta `ζ(s)` for `s > 1`, via direct summation with an
/// Euler–Maclaurin tail correction. Accurate to ~1e-10 for s ≥ 1.1.
pub fn zeta(s: f64) -> f64 {
    assert!(s > 1.0, "zeta(s) diverges for s <= 1");
    let n = 1_000_000u64;
    let mut sum = 0.0;
    for k in 1..=n {
        sum += (k as f64).powf(-s);
    }
    let nf = n as f64;
    // Tail: ∫_N^∞ x^-s dx + ½N^-s + s/12·N^-(s+1)
    sum + nf.powf(1.0 - s) / (s - 1.0) + 0.5 * nf.powf(-s) + s / 12.0 * nf.powf(-s - 1.0)
}

/// Expected Theorem-1 bound of Distributed NE on a power-law graph with
/// exponent `alpha` (paper §6: `E[UB] ≈ ½·ζ(α−1)/ζ(α) + 1`, assuming
/// `|P|/|V| ≈ 0`).
pub fn expected_bound_dne(alpha: f64) -> f64 {
    0.5 * zeta(alpha - 1.0) / zeta(alpha) + 1.0
}

/// The truncated power-law degree distribution `Pr[d] = d^{-α}/ζ(α)`
/// evaluated up to `max_d`, returned as `(degree, probability)` pairs plus
/// the tail mass beyond `max_d`.
fn degree_distribution(alpha: f64, max_d: u64) -> (Vec<f64>, f64) {
    let z = zeta(alpha);
    let probs: Vec<f64> = (1..=max_d).map(|d| (d as f64).powf(-alpha) / z).collect();
    let tail = 1.0 - probs.iter().sum::<f64>();
    (probs, tail.max(0.0))
}

/// Expected replication factor of Random (1D hash) on a power-law graph
/// (Xie et al.): `E[RF] = E_d[ p·(1 − (1 − 1/p)^{2d}) ]`.
///
/// The `2d` exponent comes from the vertex-cut systems the analysis models
/// (PowerGraph family): every undirected relationship is materialized as
/// two directed edges, each hashed independently, so a degree-`d` vertex
/// draws `2d` uniform machine samples. With this model the formula
/// reproduces the paper's Table 1 values (5.88 at α = 2.2, |P| = 256).
pub fn expected_rf_random(alpha: f64, p: u64) -> f64 {
    let pf = p as f64;
    let (probs, tail) = degree_distribution(alpha, 100_000);
    let mut e = 0.0;
    for (i, pr) in probs.iter().enumerate() {
        let d = (i + 1) as f64;
        e += pr * pf * (1.0 - (1.0 - 1.0 / pf).powf(2.0 * d));
    }
    // Degrees beyond the cutoff are effectively replicated everywhere.
    e + tail * pf
}

/// Expected replication factor of Grid (2D hash): a vertex is confined to
/// its row+column, `2√p − 1` cells, giving
/// `E[RF] = E_d[ c·(1 − (1 − 1/c)^{2d}) ]` with `c = 2√p − 1` (same
/// directed-edge model as [`expected_rf_random`]).
pub fn expected_rf_grid(alpha: f64, p: u64) -> f64 {
    let c = 2.0 * (p as f64).sqrt() - 1.0;
    let (probs, tail) = degree_distribution(alpha, 100_000);
    let mut e = 0.0;
    for (i, pr) in probs.iter().enumerate() {
        let d = (i + 1) as f64;
        e += pr * c * (1.0 - (1.0 - 1.0 / c).powf(2.0 * d));
    }
    e + tail * c
}

/// Expected replication factor of DBH under the degree-biased anchoring
/// model: each edge is hashed by its lower-degree endpoint; a vertex `v`
/// of degree `d` keeps its self-anchored edges in one partition and spreads
/// its neighbor-anchored edges (fraction `q(d)` = probability that a
/// random neighbor has degree ≤ d) over random partitions.
///
/// Numerical evaluation of the model behind Xie et al.'s Theorem 4 — an
/// approximation, not their closed form; EXPERIMENTS.md reports it next to
/// the paper's values.
pub fn expected_rf_dbh(alpha: f64, p: u64) -> f64 {
    let pf = p as f64;
    let max_d = 100_000u64;
    let (probs, tail) = degree_distribution(alpha, max_d);
    // Degree-biased neighbor distribution: Pr_nbr[d] ∝ d·Pr[d].
    let mean_d: f64 = probs.iter().enumerate().map(|(i, pr)| (i + 1) as f64 * pr).sum::<f64>();
    // q(d) = Σ_{d'<=d} d'·Pr[d'] / E[d]  (prob. a neighbor anchors the edge).
    let mut cum = 0.0;
    let mut q = Vec::with_capacity(max_d as usize);
    for (i, pr) in probs.iter().enumerate() {
        cum += (i + 1) as f64 * pr;
        q.push((cum / mean_d).min(1.0));
    }
    let mut e = 0.0;
    for (i, pr) in probs.iter().enumerate() {
        let d = (i + 1) as f64;
        // Under the directed-edge model a degree-d vertex has 2d edge
        // copies: the self-anchored ones collapse onto h(v) (one cell),
        // the neighbor-anchored ones spread over ~2·q·d independent
        // samples (each neighbor contributes its own hash; both directions
        // of a relationship share the anchor, so the effective independent
        // sample count sits between q·d and 2·q·d — we take the DBH
        // paper's per-directed-edge accounting, 2·q·d).
        let spread = 2.0 * q[i] * d;
        let own = 2.0 * d - spread;
        let distinct = (if own > 0.05 { 1.0 } else { 0.0 })
            + (pf - 1.0) * (1.0 - (1.0 - 1.0 / pf).powf(spread));
        e += pr * distinct.max(1.0).min(pf);
    }
    e + tail * pf
}

/// One row of Table 1: expected replication-factor bounds at 256 partitions
/// for `(Random, Grid, DBH, Distributed NE)`.
pub fn table1_row(alpha: f64, p: u64) -> (f64, f64, f64, f64) {
    (
        expected_rf_random(alpha, p),
        expected_rf_grid(alpha, p),
        expected_rf_dbh(alpha, p),
        expected_bound_dne(alpha),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeta_reference_values() {
        // ζ(2) = π²/6, ζ(4) = π⁴/90.
        assert!((zeta(2.0) - std::f64::consts::PI.powi(2) / 6.0).abs() < 1e-8);
        assert!((zeta(4.0) - std::f64::consts::PI.powi(4) / 90.0).abs() < 1e-8);
    }

    #[test]
    fn upper_bound_matches_formula() {
        assert_eq!(upper_bound(100, 50, 4), 154.0 / 50.0);
    }

    #[test]
    fn dne_bound_matches_table1() {
        // Paper Table 1 (256 partitions): D.NE row = 2.88, 2.12, 1.88, 1.75.
        let expect = [(2.2, 2.88), (2.4, 2.12), (2.6, 1.88), (2.8, 1.75)];
        for (alpha, want) in expect {
            let got = expected_bound_dne(alpha);
            assert!((got - want).abs() < 0.02, "alpha {alpha}: computed {got:.3}, paper {want}");
        }
    }

    #[test]
    fn hash_bounds_have_paper_ordering() {
        // Robust Table 1 claims that must hold at every α: Distributed NE
        // has the best (lowest) bound, Grid beats Random, DBH beats Random.
        // (The exact Grid/DBH crossing point depends on Xie et al.'s closed
        // form, which our DBH model only approximates — see module docs.)
        for alpha in [2.2, 2.4, 2.6, 2.8] {
            let (rand, grid, dbh, dne) = table1_row(alpha, 256);
            assert!(dne < grid && dne < dbh, "alpha {alpha}: dne {dne} must be best");
            assert!(grid < rand, "alpha {alpha}: grid {grid} < random {rand}");
            assert!(dbh < rand, "alpha {alpha}: dbh {dbh} < random {rand}");
        }
    }

    #[test]
    fn random_bound_tracks_paper_values() {
        // Paper: Random = 5.88 (α=2.2), 3.46 (2.4), 2.64 (2.6), 2.23 (2.8).
        // The directed-edge model lands within ~±35% and, critically,
        // reproduces the monotone decrease with α and the >2× spread
        // between α = 2.2 and 2.8.
        let expect = [(2.2, 5.88), (2.4, 3.46), (2.6, 2.64), (2.8, 2.23)];
        let mut prev = f64::INFINITY;
        for (alpha, want) in expect {
            let got = expected_rf_random(alpha, 256);
            assert!(
                (got - want).abs() / want < 0.35,
                "alpha {alpha}: computed {got:.3}, paper {want} (>35% off)"
            );
            assert!(got < prev, "bound must decrease with alpha");
            prev = got;
        }
    }

    #[test]
    #[should_panic(expected = "diverges")]
    fn zeta_rejects_divergent_argument() {
        zeta(1.0);
    }
}
