//! Scaled stand-ins for the paper's real-world datasets (Table 2) and the
//! RMAT families of §7.1.
//!
//! The seven real graphs (Pokec … WebUK, up to 3.7 B edges) are not
//! redistributable inside this repository, so each is replaced by a seeded
//! RMAT graph that preserves the two properties that drive partitioning
//! difficulty (paper §1/§7.2): the **density** `|E|/|V|` (matched to the
//! original within rounding) and the **skew class** (social-network vs
//! web-crawl RMAT parameters). The scale is reduced ~512× so the full
//! benchmark suite runs on one machine; the registry records the original
//! sizes for the EXPERIMENTS.md comparison.

use dne_graph::gen::{rmat_parallel, RmatConfig};
use dne_graph::parallel::default_ingest_threads;
use dne_graph::Graph;

/// Skew class of a stand-in (selects the RMAT parameterization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Skew {
    /// Friendship-graph skew (moderate head): Pokec, LiveJournal, Orkut,
    /// Friendster.
    Social,
    /// Graph500 default skew: generic power-law.
    Graph500,
    /// Web-crawl skew (heavy head): Flickr, Twitter, WebUK.
    Web,
}

/// One dataset stand-in.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Name of the original dataset it stands in for.
    pub name: &'static str,
    /// RMAT scale of the stand-in (`2^scale` vertices).
    pub scale: u32,
    /// RMAT edge factor of the stand-in (matches the original's |E|/|V|).
    pub edge_factor: u64,
    /// Skew class.
    pub skew: Skew,
    /// Original |V| (for reporting).
    pub paper_vertices: f64,
    /// Original |E| (for reporting).
    pub paper_edges: f64,
}

impl Dataset {
    /// The RMAT configuration of this stand-in at the given scale.
    pub fn config_at(&self, scale: u32) -> RmatConfig {
        let seed = self.name.bytes().fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
        match self.skew {
            Skew::Social => RmatConfig::social(scale, self.edge_factor, seed),
            Skew::Graph500 => RmatConfig::graph500(scale, self.edge_factor, seed),
            Skew::Web => RmatConfig::web(scale, self.edge_factor, seed),
        }
    }

    /// Generate the stand-in graph (deterministic per dataset — the
    /// parallel generator is byte-identical at every thread count).
    pub fn build(&self) -> Graph {
        rmat_parallel(&self.config_at(self.scale), default_ingest_threads())
    }

    /// A smaller variant for quick mode (two scales down).
    pub fn build_quick(&self) -> Graph {
        let scale = self.scale.saturating_sub(2).max(8);
        rmat_parallel(&self.config_at(scale), default_ingest_threads())
    }
}

/// The seven real-world stand-ins of the paper's Table 2, ordered as the
/// paper orders its figures (Pokec, Flickr, LiveJ., Orkut, Twitter,
/// Friendster, WebUK).
pub const DATASETS: &[Dataset] = &[
    Dataset {
        name: "Pokec",
        scale: 15,
        edge_factor: 19,
        skew: Skew::Social,
        paper_vertices: 1.63e6,
        paper_edges: 30.62e6,
    },
    Dataset {
        name: "Flickr",
        scale: 15,
        edge_factor: 14,
        skew: Skew::Web,
        paper_vertices: 2.30e6,
        paper_edges: 33.14e6,
    },
    Dataset {
        name: "LiveJ",
        scale: 15,
        edge_factor: 14,
        skew: Skew::Social,
        paper_vertices: 4.84e6,
        paper_edges: 68.47e6,
    },
    Dataset {
        name: "Orkut",
        scale: 14,
        edge_factor: 38,
        skew: Skew::Social,
        paper_vertices: 3.07e6,
        paper_edges: 117.18e6,
    },
    Dataset {
        name: "Twitter",
        scale: 15,
        edge_factor: 35,
        skew: Skew::Web,
        paper_vertices: 41.65e6,
        paper_edges: 1.46e9,
    },
    Dataset {
        name: "Friendster",
        scale: 15,
        edge_factor: 27,
        skew: Skew::Social,
        paper_vertices: 65.60e6,
        paper_edges: 1.80e9,
    },
    Dataset {
        name: "WebUK",
        scale: 15,
        edge_factor: 35,
        skew: Skew::Web,
        paper_vertices: 105.15e6,
        paper_edges: 3.72e9,
    },
];

/// Look up a dataset stand-in by (case-insensitive) name.
pub fn dataset(name: &str) -> Option<&'static Dataset> {
    DATASETS.iter().find(|d| d.name.eq_ignore_ascii_case(name))
}

/// The mid-size subset used by Figure 6 and Table 4 (Pokec, Flickr,
/// LiveJ., Orkut — the paper's "middle-scale" graphs).
pub fn midsize() -> Vec<&'static Dataset> {
    ["Pokec", "Flickr", "LiveJ", "Orkut"].iter().map(|n| dataset(n).unwrap()).collect()
}

/// Road-network stand-ins for Table 6: lattice dimensions sized to the
/// originals' |V| ratio (California 1.96M, Pennsylvania 1.08M, Texas
/// 1.37M vertices — scaled ~256×).
pub fn road_networks(quick: bool) -> Vec<(&'static str, Graph)> {
    let scale = if quick { 2 } else { 1 };
    let grid = |name: &'static str, w: u64, h: u64, seed: u64| {
        (name, dne_graph::gen::road_grid(w / scale, h / scale, 0.72, 0.02, seed))
    };
    vec![
        grid("California", 88, 88, 11),
        grid("Pennsylvania", 66, 66, 22),
        grid("Texas", 74, 74, 33),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_seven() {
        assert_eq!(DATASETS.len(), 7);
        assert!(dataset("pokec").is_some());
        assert!(dataset("WEBUK").is_some());
        assert!(dataset("nope").is_none());
    }

    #[test]
    fn stand_ins_preserve_density_ordering() {
        // Orkut (38) is denser than Pokec (19) is denser than Flickr (14),
        // mirroring the originals' |E|/|V| ordering.
        let ef = |n: &str| dataset(n).unwrap().edge_factor;
        assert!(ef("Orkut") > ef("Pokec"));
        assert!(ef("Pokec") > ef("Flickr"));
        // And the stand-in EF tracks the original ratio within rounding.
        for d in DATASETS {
            let orig = d.paper_edges / d.paper_vertices;
            assert!(
                (d.edge_factor as f64 - orig).abs() / orig < 0.25,
                "{}: EF {} vs original ratio {orig:.1}",
                d.name,
                d.edge_factor
            );
        }
    }

    #[test]
    fn quick_build_is_smaller() {
        let d = dataset("Pokec").unwrap();
        let q = d.build_quick();
        assert_eq!(q.num_vertices(), 1 << (d.scale - 2));
        assert!(q.num_edges() > 0);
    }

    #[test]
    fn road_networks_are_non_skewed() {
        for (name, g) in road_networks(true) {
            let s = dne_graph::degree::degree_stats(&g);
            assert!(s.skew < 3.0, "{name} skew {} should be small", s.skew);
        }
    }

    #[test]
    fn stand_ins_are_skewed() {
        let g = dataset("Twitter").unwrap().build_quick();
        let s = dne_graph::degree::degree_stats(&g);
        assert!(s.skew > 10.0, "Twitter stand-in skew {} should be heavy", s.skew);
    }
}
