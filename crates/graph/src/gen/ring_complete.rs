//! The ring + complete-graph construction from Theorem 2.
//!
//! The tightness proof of the upper bound (paper §6, Theorem 2) uses a graph
//! consisting of two isolated components: a complete graph `K_n` with
//! `n(n-1)/2` edges and a ring with `n(n-1)/2` vertices and edges. Under
//! `|P| = n(n-1)/2` partitions, the replication factor of a parallel
//! expansion that seeds inside the ring approaches the bound
//! `UB = (|E| + |V| + |P|) / |V|` as `n → ∞`.
//!
//! `tests/bound_properties.rs` and `dne-core::theory` use this generator to
//! validate the theorem empirically.

use crate::types::VertexId;
use crate::{EdgeListBuilder, Graph};

/// Build the Theorem-2 graph for clique size `n` (`n >= 3`).
///
/// Layout: vertices `0..n` form the complete graph; vertices
/// `n..n + n(n-1)/2` form the ring. Total `|V| = n + n(n-1)/2`,
/// `|E| = n(n-1)`.
pub fn ring_complete(n: VertexId) -> Graph {
    assert!(n >= 3, "theorem construction needs n >= 3");
    let ring_len = n * (n - 1) / 2;
    let mut b = EdgeListBuilder::with_capacity((n * (n - 1)) as usize);
    for u in 0..n {
        for v in (u + 1)..n {
            b.push(u, v);
        }
    }
    let base = n;
    for i in 0..ring_len {
        b.push(base + i, base + (i + 1) % ring_len);
    }
    b.into_graph(n + ring_len)
}

/// The number of partitions used by the Theorem-2 analysis for clique size
/// `n`: `|P| = n(n-1)/2`.
pub fn theorem2_partitions(n: VertexId) -> u64 {
    n * (n - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_theorem() {
        for n in [3u64, 4, 6, 10] {
            let g = ring_complete(n);
            assert_eq!(g.num_vertices(), n + n * (n - 1) / 2);
            assert_eq!(g.num_edges(), n * (n - 1));
        }
    }

    #[test]
    fn ring_vertices_have_degree_two() {
        let n = 5;
        let g = ring_complete(n);
        for v in n..g.num_vertices() {
            assert_eq!(g.degree(v), 2, "ring vertex {v}");
        }
        for v in 0..n {
            assert_eq!(g.degree(v), n - 1, "clique vertex {v}");
        }
    }

    #[test]
    fn components_are_disconnected() {
        let n = 4;
        let g = ring_complete(n);
        for v in 0..n {
            for u in g.neighbor_vertices(v) {
                assert!(*u < n, "clique edge must stay in clique");
            }
        }
    }
}
