//! Barabási–Albert preferential attachment — an alternative skewed-graph
//! model to RMAT.
//!
//! The paper's difficulty driver is degree skew, not the specific
//! generative process; providing a second power-law model lets the test
//! suite check that Distributed NE's quality advantage is not an RMAT
//! artifact (growth models yield exponent α ≈ 3 with different clustering
//! structure than Kronecker-style recursion).

use crate::hash::SplitMix64;
use crate::types::VertexId;
use crate::{EdgeListBuilder, Graph};

/// The sequential growth process shared by [`barabasi_albert`] and
/// [`barabasi_albert_parallel`]: preferential attachment is inherently
/// serial (each new vertex samples from the degree distribution *so far*),
/// so both variants grow the same raw edge stream and differ only in how
/// the builder finalizes it.
fn grow(n: VertexId, m: u64, seed: u64) -> EdgeListBuilder {
    assert!(m >= 1, "need at least one attachment per vertex");
    assert!(n > m, "need more vertices than attachments");
    let mut rng = SplitMix64::new(seed ^ 0x4241_6765_6E21); // "BAgen!"
    let mut b = EdgeListBuilder::with_capacity((n * m) as usize);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportional to degree (the classic implementation).
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * (n * m) as usize);
    // Seed clique over the first m+1 vertices.
    for u in 0..=m {
        for v in (u + 1)..=m {
            b.push(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (m + 1)..n {
        let mut chosen: Vec<VertexId> = Vec::with_capacity(m as usize);
        let mut guard = 0;
        while (chosen.len() as u64) < m && guard < 32 * m {
            guard += 1;
            let t = endpoints[rng.next_below(endpoints.len() as u64) as usize];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.push(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b
}

/// Barabási–Albert graph: start from a small clique, then attach each new
/// vertex to `m` existing vertices chosen proportionally to degree.
///
/// `n` total vertices, `m ≥ 1` attachments per new vertex; the seed makes
/// the growth deterministic.
pub fn barabasi_albert(n: VertexId, m: u64, seed: u64) -> Graph {
    grow(n, m, seed).into_graph(n)
}

/// Barabási–Albert graph finalized with up to `threads` threads;
/// byte-identical to [`barabasi_albert`] for every thread count.
///
/// The growth itself stays sequential (each attachment samples the degree
/// distribution produced by all previous attachments — there is no
/// independent sample stream to chunk), so this variant parallelizes the
/// expensive downstream half of ingestion: canonicalization, sort,
/// merge-dedup, and CSR construction.
pub fn barabasi_albert_parallel(n: VertexId, m: u64, seed: u64, threads: usize) -> Graph {
    grow(n, m, seed).build_parallel(n, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::degree_stats;

    #[test]
    fn sizes_are_as_expected() {
        let g = barabasi_albert(1000, 3, 1);
        assert_eq!(g.num_vertices(), 1000);
        // Clique (3·4/2 = 6) + ~3 per subsequent vertex (dedup may trim).
        assert!(g.num_edges() > 2900 && g.num_edges() <= 6 + 997 * 3);
    }

    #[test]
    fn produces_power_law_skew() {
        let g = barabasi_albert(4000, 3, 2);
        let s = degree_stats(&g);
        assert!(s.skew > 8.0, "BA graphs must be skewed, got {}", s.skew);
        assert!(s.p50 <= 2 * 3, "most vertices stay near the attachment degree");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = barabasi_albert(500, 2, 7);
        let b = barabasi_albert(500, 2, 7);
        assert_eq!(a.edges(), b.edges());
        let c = barabasi_albert(500, 2, 8);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn min_degree_is_attachment_count() {
        let g = barabasi_albert(300, 4, 3);
        // Every non-seed vertex attaches with m edges (dedup can only
        // merge parallel attempts, which `chosen` already prevents).
        let min_late = (5..300).map(|v| g.degree(v)).min().unwrap();
        assert!(min_late >= 3, "late vertices keep >= m-1 edges, got {min_late}");
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn rejects_tiny_n() {
        barabasi_albert(3, 5, 1);
    }

    #[test]
    fn parallel_is_byte_identical_to_serial() {
        // n·m > the parallel cutover so the chunked sort/merge/CSR path runs.
        let serial = barabasi_albert(3000, 3, 5);
        for threads in [1usize, 2, 8] {
            assert_eq!(serial, barabasi_albert_parallel(3000, 3, 5, threads));
        }
    }
}
