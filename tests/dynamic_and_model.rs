//! Integration tests for the extensions: the dynamic-graph incremental
//! partitioner and the analytic communication model, validated against the
//! static pipeline end to end.

use distributed_ne::apps::Engine;
use distributed_ne::core::{DistributedNe, NeConfig};
use distributed_ne::graph::gen;
use distributed_ne::partition::hash_based::RandomPartitioner;
use distributed_ne::partition::{
    estimate_comm, EdgeAssignment, EdgePartitioner, IncrementalVertexCut, PartitionQuality,
};

#[test]
fn incremental_log_is_a_valid_assignment() {
    // Replaying the insertion log as a static assignment must be valid and
    // agree with the maintainer's own metrics.
    let g = gen::rmat(&gen::RmatConfig::graph500(9, 6, 1));
    let mut inc = IncrementalVertexCut::new(6);
    for &(u, v) in g.edges() {
        inc.insert(u, v);
    }
    let assignment = EdgeAssignment::new(inc.assignment_log().to_vec(), 6);
    assert!(assignment.is_valid_for(&g));
    let q = PartitionQuality::measure(&g, &assignment);
    // The maintainer normalizes RF by vertices *seen* (it never learns of
    // isolated vertices); the static metric normalizes by |V|. Compare on
    // the shared numerator.
    let covered = g.vertices().filter(|&v| g.degree(v) > 0).count() as f64;
    assert!((q.total_replicas as f64 / covered - inc.replication_factor()).abs() < 1e-9);
    assert!((q.edge_balance - inc.edge_balance()).abs() < 1e-9);
}

#[test]
fn incremental_assignment_runs_applications_correctly() {
    // The dynamic maintainer's output drives the engine like any other.
    let g = gen::rmat(&gen::RmatConfig::graph500(8, 4, 2));
    let mut inc = IncrementalVertexCut::new(4);
    for &(u, v) in g.edges() {
        inc.insert(u, v);
    }
    let assignment = EdgeAssignment::new(inc.assignment_log().to_vec(), 4);
    let run = Engine::new(&g, &assignment).wcc();
    let want = distributed_ne::apps::wcc_reference(&g);
    assert_eq!(run.values, want);
}

#[test]
fn seeded_incremental_tracks_static_quality_class() {
    let g = gen::rmat(&gen::RmatConfig::graph500(10, 8, 3));
    let ne = DistributedNe::new(NeConfig::default().with_seed(3));
    let a = ne.partition(&g, 8);
    let q_static = PartitionQuality::measure(&g, &a);
    let inc = IncrementalVertexCut::from_assignment(&g, &a);
    // Quality metric parity between the two representations.
    let covered = g.vertices().filter(|&v| g.degree(v) > 0).count() as f64;
    let rf_expected = q_static.total_replicas as f64 / covered;
    assert!((inc.replication_factor() - rf_expected).abs() < 1e-9);
}

#[test]
fn comm_model_predicts_engine_ordering() {
    // The analytic model's ranking must match the measured PageRank COM
    // across partitioning methods — the end-to-end validation of the
    // RF → COM chain (Table 5).
    let g = gen::rmat(&gen::RmatConfig::graph500(9, 8, 5));
    let k = 8;
    let methods: Vec<(String, EdgeAssignment)> = vec![
        ("Random".into(), RandomPartitioner::new(5).partition(&g, k)),
        (
            "DistributedNE".into(),
            DistributedNe::new(NeConfig::default().with_seed(5)).partition(&g, k),
        ),
    ];
    let mut modeled = Vec::new();
    let mut measured = Vec::new();
    for (name, a) in &methods {
        modeled.push((name.clone(), estimate_comm(&g, a).bytes_per_superstep));
        measured.push((name.clone(), Engine::new(&g, a).pagerank(3).comm_bytes));
    }
    assert!(
        (modeled[0].1 > modeled[1].1) == (measured[0].1 > measured[1].1),
        "model ordering {modeled:?} must match measured ordering {measured:?}"
    );
    // And the model's absolute prediction is in the right regime: an
    // all-active superstep moves at most the modeled bytes (frontier apps
    // move less; PageRank pushes every superstep plus gather partials).
    let per_step_measured = measured[1].1 / 3;
    assert!(
        per_step_measured <= 2 * modeled[1].1,
        "measured per-step {per_step_measured} should be within 2x of model {}",
        modeled[1].1
    );
}
