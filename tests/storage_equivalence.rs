//! The cross-backend storage equivalence harness — the acceptance gate
//! for the pluggable `GraphStorage` seam.
//!
//! One shared driver materializes each graph as a DNECHNK1 chunked file,
//! reopens it with **every** storage backend (in-memory | mmap |
//! chunk-streamed), and runs `DistributedNe` under every transport: the
//! results must be bit-identical to the in-memory/loopback reference —
//! assignment fingerprint, iteration counts, replication factor, edge
//! balance, and exact communication totals. The partitioner only ever
//! touches the graph through one sequential edge scan, so *nothing* about
//! where the bytes live may leak into the algorithm.
//!
//! Property tests then fuzz the storage layer itself: for arbitrary edge
//! lists, the three backends must agree on every accessor the partition
//! stack uses (counts, `edge`, `degree`, the edge iterator) and produce
//! identical partitions and quality measurements.

mod common;

use common::{materialize_chunked, reopen, storage_transport_pairs, STORAGES};
use distributed_ne::core::{DistributedNe, NeConfig};
use distributed_ne::graph::{gen, EdgeListBuilder, StorageKind};
use distributed_ne::partition::{EdgePartitioner, PartitionQuality, UNASSIGNED};
use distributed_ne::runtime::TransportKind;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn distributed_ne_is_equivalent_across_every_storage_transport_pair() {
    let graphs = [
        ("rmat", gen::rmat(&gen::RmatConfig::graph500(8, 6, 5))),
        ("star", gen::star(64)),
        ("path", gen::path(100)),
    ];
    let k = 4u32;
    for (name, g) in &graphs {
        let path = materialize_chunked(g, &format!("ne_equiv_{name}"));
        let run = |g: &distributed_ne::graph::Graph, kind| {
            DistributedNe::new(NeConfig::default().with_seed(11).with_transport(kind))
                .partition_with_stats(g, k)
        };
        let (a_ref, s_ref) = run(g, TransportKind::Loopback);
        let q_ref = PartitionQuality::measure(g, &a_ref);
        let fp_ref = a_ref.fingerprint();
        for (storage, transport) in storage_transport_pairs() {
            let reopened = reopen(&path, storage);
            assert_eq!(reopened.storage_kind(), storage);
            let label = format!("{name}/{storage}/{transport}");
            let (a, s) = run(&reopened, transport);
            assert_eq!(a.fingerprint(), fp_ref, "{label}: assignment fingerprint");
            assert_eq!(a, a_ref, "{label}: assignments must be bit-identical");
            assert_eq!(s.iterations, s_ref.iterations, "{label}: iteration count");
            assert_eq!(s.comm_bytes, s_ref.comm_bytes, "{label}: comm bytes");
            assert_eq!(s.comm_msgs, s_ref.comm_msgs, "{label}: comm msgs");
            // Quality measured *through the backend under test* (the
            // streamed backend exercises the adjacency-free scan path).
            let q = PartitionQuality::measure(&reopened, &a);
            assert_eq!(q.replication_factor, q_ref.replication_factor, "{label}: RF");
            assert_eq!(q.edge_balance, q_ref.edge_balance, "{label}: EB");
            assert_eq!(q.vertex_balance, q_ref.vertex_balance, "{label}: VB");
        }
    }
}

#[test]
fn frontier_budget_caps_are_equivalent_across_storage_backends() {
    // The out-of-core knob: a frontier budget changes the iteration
    // schedule (more, smaller selection rounds) but must do so
    // *identically* on every backend, and the unbounded default must be
    // bit-identical to the paper's behavior.
    let g = gen::rmat(&gen::RmatConfig::graph500(8, 4, 9));
    let path = materialize_chunked(&g, "frontier_budget");
    let k = 4u32;
    for budget in [None, Some(1), Some(4), Some(1 << 20)] {
        let run = |g: &distributed_ne::graph::Graph| {
            let mut c = NeConfig::default().with_seed(3);
            if let Some(b) = budget {
                c = c.with_frontier_budget(b);
            }
            DistributedNe::new(c).partition_with_stats(g, k)
        };
        let (a_ref, s_ref) = run(&g);
        assert!(a_ref.as_slice().iter().all(|&p| p != UNASSIGNED));
        for storage in STORAGES {
            let (a, s) = run(&reopen(&path, storage));
            let label = format!("budget {budget:?} on {storage}");
            assert_eq!(a, a_ref, "{label}: assignment");
            assert_eq!(s.iterations, s_ref.iterations, "{label}: iterations");
        }
    }
    // A tight budget must still terminate and cover every edge (checked
    // above via UNASSIGNED); a huge budget is a no-op vs unbounded.
    let unbounded = DistributedNe::new(NeConfig::default().with_seed(3)).partition(&g, k);
    let huge = DistributedNe::new(NeConfig::default().with_seed(3).with_frontier_budget(u64::MAX))
        .partition(&g, k);
    assert_eq!(unbounded, huge, "u64::MAX budget must equal the unbounded default");
}

#[test]
fn mmap_cache_is_reused_and_rebuilt_on_staleness() {
    // Opening with the mmap backend drops a sibling `.csr` container;
    // reopening must reuse it (same partitions), and a *newer* chunked
    // file with different content must invalidate it.
    let g1 = gen::rmat(&gen::RmatConfig::graph500(7, 4, 1));
    let path = materialize_chunked(&g1, "mmap_cache");
    let m1 = reopen(&path, StorageKind::Mmap);
    assert_eq!(m1, g1);
    let csr = {
        let mut os = path.clone().into_os_string();
        os.push(".csr");
        std::path::PathBuf::from(os)
    };
    assert!(csr.exists(), "mmap open must leave a {} cache", csr.display());
    let cached_mtime = std::fs::metadata(&csr).unwrap().modified().unwrap();
    // Reopen: the fresh cache is reused, not rewritten.
    let m2 = reopen(&path, StorageKind::Mmap);
    assert_eq!(m2, g1);
    assert_eq!(std::fs::metadata(&csr).unwrap().modified().unwrap(), cached_mtime);
    // Rewrite the chunked file with a different graph and a strictly
    // newer mtime: the stale cache must be rebuilt, not trusted.
    let g2 = gen::star(300);
    std::thread::sleep(std::time::Duration::from_millis(20));
    distributed_ne::graph::io::write_chunked(&g2, &path, 1 << 12).unwrap();
    let m3 = reopen(&path, StorageKind::Mmap);
    assert_eq!(m3, g2, "stale cache must be rebuilt from the rewritten chunked file");
}

static PROP_CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary multigraph edge lists (duplicates and self-loops
    /// included — the builder canonicalizes) round-trip through every
    /// backend with identical accessors, partitions, and quality.
    #[test]
    fn backends_agree_on_arbitrary_graphs(
        raw in prop::collection::vec((0u64..60, 0u64..60), 1usize..300),
        k in 1u32..5,
        seed in 0u64..1000,
    ) {
        let mut b = EdgeListBuilder::new();
        b.extend_edges(raw);
        let g = b.into_graph(60);
        prop_assume!(g.num_edges() > 0);
        let case = PROP_CASE.fetch_add(1, Ordering::Relaxed);
        let path = materialize_chunked(&g, &format!("prop_{case}"));
        let (a_ref, _) = DistributedNe::new(NeConfig::default().with_seed(seed))
            .partition_with_stats(&g, k);
        let q_ref = PartitionQuality::measure(&g, &a_ref);
        for storage in STORAGES {
            let r = reopen(&path, storage);
            prop_assert_eq!(r.num_vertices(), g.num_vertices());
            prop_assert_eq!(r.num_edges(), g.num_edges());
            prop_assert!(r == g, "{} storage: edge streams must agree", storage);
            for v in [0, g.num_vertices() / 2, g.num_vertices() - 1] {
                prop_assert_eq!(r.degree(v), g.degree(v), "degree({}) on {}", v, storage);
            }
            for e in [0, g.num_edges() - 1] {
                prop_assert_eq!(r.edge(e), g.edge(e), "edge({}) on {}", e, storage);
            }
            let (a, _) = DistributedNe::new(NeConfig::default().with_seed(seed))
                .partition_with_stats(&r, k);
            prop_assert_eq!(a.fingerprint(), a_ref.fingerprint(), "{} partition", storage);
            let q = PartitionQuality::measure(&r, &a);
            prop_assert_eq!(q, q_ref.clone(), "{} quality", storage);
        }
    }
}
