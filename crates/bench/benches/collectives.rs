//! Criterion micro-benchmarks of the simulated-cluster primitives: the
//! lock-step exchange and the collectives that every Distributed NE
//! iteration pays for (the paper's barrier-cost motivation for
//! multi-expansion, §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dne_runtime::Cluster;
use std::hint::black_box;

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_100x");
    group.sample_size(10);
    for p in [2usize, 8, 16] {
        group.bench_function(BenchmarkId::from_parameter(p), |b| {
            b.iter(|| {
                Cluster::new(p).run::<u64, _, _>(|ctx| {
                    for _ in 0..100 {
                        ctx.barrier();
                    }
                })
            })
        });
    }
    group.finish();
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_100x");
    group.sample_size(10);
    for p in [2usize, 8, 16] {
        group.bench_function(BenchmarkId::from_parameter(p), |b| {
            b.iter(|| {
                Cluster::new(p).run::<Vec<u64>, _, _>(|ctx| {
                    let payload: Vec<u64> = (0..64).collect();
                    for _ in 0..100 {
                        let got = ctx.exchange(|_dst| payload.clone());
                        black_box(got);
                    }
                })
            })
        });
    }
    group.finish();
}

fn bench_all_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_reduce_100x");
    group.sample_size(10);
    for p in [4usize, 16] {
        group.bench_function(BenchmarkId::from_parameter(p), |b| {
            b.iter(|| {
                Cluster::new(p).run::<u64, _, _>(|ctx| {
                    let mut acc = 0u64;
                    for i in 0..100 {
                        acc = acc.wrapping_add(ctx.all_reduce_sum_u64(i));
                    }
                    black_box(acc)
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_barrier, bench_exchange, bench_all_reduce);
criterion_main!(benches);
