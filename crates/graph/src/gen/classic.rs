//! Small deterministic graphs used as test fixtures and worst/best cases.

use crate::types::VertexId;
use crate::{EdgeListBuilder, Graph};

/// Path graph `0 - 1 - ... - (n-1)` with `n` vertices and `n-1` edges.
pub fn path(n: VertexId) -> Graph {
    let mut b = EdgeListBuilder::with_capacity(n.saturating_sub(1) as usize);
    for v in 1..n {
        b.push(v - 1, v);
    }
    b.into_graph(n)
}

/// Cycle graph with `n >= 3` vertices and `n` edges.
///
/// # Panics
/// If `n < 3` (smaller rings degenerate into multi-edges).
pub fn cycle(n: VertexId) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut b = EdgeListBuilder::with_capacity(n as usize);
    for v in 1..n {
        b.push(v - 1, v);
    }
    b.push(n - 1, 0);
    b.into_graph(n)
}

/// Star graph: hub `0` connected to spokes `1..n`. The canonical worst case
/// for 1D hash partitioning (the hub replicates everywhere).
pub fn star(n: VertexId) -> Graph {
    assert!(n >= 2, "a star needs at least 2 vertices");
    let mut b = EdgeListBuilder::with_capacity(n as usize - 1);
    for v in 1..n {
        b.push(0, v);
    }
    b.into_graph(n)
}

/// Complete graph `K_n` with `n(n-1)/2` edges.
pub fn complete(n: VertexId) -> Graph {
    let mut b = EdgeListBuilder::with_capacity((n * n.saturating_sub(1) / 2) as usize);
    for u in 0..n {
        for v in (u + 1)..n {
            b.push(u, v);
        }
    }
    b.into_graph(n)
}

/// Two cliques of size `k` joined by a single bridge edge — the classic
/// "obvious 2-cut" fixture: any sensible 2-way partitioner should cut only
/// at the bridge.
pub fn two_cliques_bridge(k: VertexId) -> Graph {
    assert!(k >= 2);
    let mut b = EdgeListBuilder::new();
    for u in 0..k {
        for v in (u + 1)..k {
            b.push(u, v);
            b.push(k + u, k + v);
        }
    }
    b.push(k - 1, k); // bridge
    b.into_graph(2 * k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn single_vertex_path() {
        let g = path(1);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn star_shape() {
        let g = star(10);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.degree(0), 9);
        assert!((1..10).all(|v| g.degree(v) == 1));
        assert_eq!(g.max_degree(), 9);
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn bridge_fixture_shape() {
        let g = two_cliques_bridge(4);
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 2 * 6 + 1);
        assert_eq!(g.degree(3), 4); // clique internal (3) + bridge
        assert_eq!(g.degree(4), 4);
    }
}
