//! Partitioner traits and the vertex→edge partition adapter.

use crate::assignment::{EdgeAssignment, PartitionId};
use dne_graph::hash::mix2;
use dne_graph::Graph;

/// An edge partitioner: divides `E` into `k` disjoint parts (vertex-cut
/// partitioning, Figure 1(a) of the paper).
pub trait EdgePartitioner {
    /// Human-readable name used in benchmark tables.
    fn name(&self) -> String;

    /// Partition the edges of `g` into `k` parts.
    fn partition(&self, g: &Graph, k: PartitionId) -> EdgeAssignment;
}

/// A vertex partitioner: divides `V` into `k` disjoint parts (edge-cut
/// partitioning, Figure 1(b)).
pub trait VertexPartitioner {
    /// Human-readable name used in benchmark tables.
    fn name(&self) -> String;

    /// Assign every vertex of `g` to a partition; result indexed by vertex.
    fn partition_vertices(&self, g: &Graph, k: PartitionId) -> Vec<PartitionId>;
}

/// Adapter turning a [`VertexPartitioner`] into an [`EdgePartitioner`].
///
/// The paper compares against vertex partitioners (ParMETIS, Spinner,
/// XtraPuLP) by converting their output "as demonstrated in [Bourse et
/// al.]: each edge is randomly assigned to one of its adjacent vertices'
/// partitions" (§7.1). The random pick is a seeded hash of the edge, so the
/// conversion is deterministic per seed.
pub struct VertexToEdge<V> {
    inner: V,
    seed: u64,
}

impl<V: VertexPartitioner> VertexToEdge<V> {
    /// Wrap `inner` with the conversion seed.
    pub fn new(inner: V, seed: u64) -> Self {
        Self { inner, seed }
    }
}

impl<V: VertexPartitioner> EdgePartitioner for VertexToEdge<V> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn partition(&self, g: &Graph, k: PartitionId) -> EdgeAssignment {
        let vparts = self.inner.partition_vertices(g, k);
        debug_assert_eq!(vparts.len() as u64, g.num_vertices());
        EdgeAssignment::from_fn(g, k, |e| {
            let (u, v) = g.edge(e);
            // Coin flip by edge hash: endpoint u's or endpoint v's partition.
            if mix2(self.seed, mix2(u, v)) & 1 == 0 {
                vparts[u as usize]
            } else {
                vparts[v as usize]
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dne_graph::gen;

    struct AllZero;
    impl VertexPartitioner for AllZero {
        fn name(&self) -> String {
            "AllZero".into()
        }
        fn partition_vertices(&self, g: &Graph, _k: PartitionId) -> Vec<PartitionId> {
            vec![0; g.num_vertices() as usize]
        }
    }

    struct ByParity;
    impl VertexPartitioner for ByParity {
        fn name(&self) -> String {
            "ByParity".into()
        }
        fn partition_vertices(&self, g: &Graph, _k: PartitionId) -> Vec<PartitionId> {
            (0..g.num_vertices()).map(|v| (v % 2) as PartitionId).collect()
        }
    }

    #[test]
    fn conversion_respects_endpoint_partitions() {
        let g = gen::cycle(10);
        let conv = VertexToEdge::new(ByParity, 7);
        let a = conv.partition(&g, 2);
        for e in 0..g.num_edges() {
            let (u, v) = g.edge(e);
            let p = a.part_of(e);
            assert!(p == (u % 2) as u32 || p == (v % 2) as u32);
        }
    }

    #[test]
    fn degenerate_vertex_partition_converts_cleanly() {
        let g = gen::star(6);
        let conv = VertexToEdge::new(AllZero, 1);
        let a = conv.partition(&g, 2);
        assert!(a.as_slice().iter().all(|&p| p == 0));
    }

    #[test]
    fn conversion_is_deterministic_per_seed() {
        let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 1));
        let a1 = VertexToEdge::new(ByParity, 9).partition(&g, 2);
        let a2 = VertexToEdge::new(ByParity, 9).partition(&g, 2);
        assert_eq!(a1, a2);
    }
}
