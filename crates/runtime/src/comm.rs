//! Point-to-point FIFO channels between simulated machines.
//!
//! Each process owns one unbounded MPMC receiver; every peer holds a cloned
//! sender to it. Messages carry their source rank so the lock-step
//! [`crate::Ctx::exchange`] primitive can index replies by sender. Per-link
//! FIFO order is guaranteed by crossbeam channels (per-producer FIFO), which
//! is exactly the MPI non-overtaking guarantee the algorithms rely on.

use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::stats::CommStats;
use crate::wire::WireSize;

/// An envelope in flight: `(source rank, payload)`.
pub(crate) type Envelope<M> = (usize, M);

/// The per-process endpoint of the simulated interconnect.
pub struct CommEndpoint<M> {
    rank: usize,
    senders: Vec<Sender<Envelope<M>>>,
    receiver: Receiver<Envelope<M>>,
    /// Messages that arrived early (next round) while we were still
    /// collecting the current round — see `exchange` in `cluster.rs`.
    pending: Vec<VecDeque<M>>,
    stats: Arc<CommStats>,
}

impl<M: Send + WireSize> CommEndpoint<M> {
    /// Build all `n` connected endpoints at once.
    pub(crate) fn fabric(n: usize, stats: Arc<CommStats>) -> Vec<CommEndpoint<M>> {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| CommEndpoint {
                rank,
                senders: senders.clone(),
                receiver,
                pending: (0..n).map(|_| VecDeque::new()).collect(),
                stats: Arc::clone(&stats),
            })
            .collect()
    }

    /// This endpoint's rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processes in the fabric.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.senders.len()
    }

    /// Send `msg` to `dst`, charging its wire size to this rank.
    /// Self-sends are free (no wire crossing) but still delivered, so
    /// algorithms can treat all ranks uniformly.
    pub fn send(&self, dst: usize, msg: M) {
        if dst != self.rank {
            self.stats.record_send(self.rank, msg.wire_bytes());
        }
        self.senders[dst].send((self.rank, msg)).expect("receiver endpoint dropped");
    }

    /// Blocking receive of the next message from any source.
    pub fn recv(&self) -> (usize, M) {
        self.receiver.recv().expect("all sender endpoints dropped")
    }

    /// Receive exactly one message from *every* rank (including self),
    /// returning them indexed by source. Out-of-round messages (a second
    /// message from a rank that already delivered this round) are buffered
    /// for the next call — this is what makes back-to-back exchanges safe
    /// even when peers race ahead.
    pub fn recv_one_from_each(&mut self) -> Vec<M> {
        let n = self.nprocs();
        let mut slots: Vec<Option<M>> = (0..n).map(|_| None).collect();
        let mut filled = 0;
        // Serve from the pending buffers first.
        for (slot, pending) in slots.iter_mut().zip(self.pending.iter_mut()) {
            if slot.is_none() {
                if let Some(m) = pending.pop_front() {
                    *slot = Some(m);
                    filled += 1;
                }
            }
        }
        while filled < n {
            let (src, msg) = self.recv();
            if slots[src].is_none() {
                slots[src] = Some(msg);
                filled += 1;
            } else {
                self.pending[src].push_back(msg);
            }
        }
        slots.into_iter().map(|s| s.expect("slot filled")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_delivers_point_to_point() {
        let stats = CommStats::new(2);
        let mut eps = CommEndpoint::<u64>::fabric(2, stats.clone());
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, 42);
        let (src, v) = b.recv();
        assert_eq!((src, v), (0, 42));
        assert_eq!(stats.total_bytes(), 8);
    }

    #[test]
    fn self_send_is_free_but_delivered() {
        let stats = CommStats::new(1);
        let mut eps = CommEndpoint::<u64>::fabric(1, stats.clone());
        let a = eps.pop().unwrap();
        a.send(0, 7);
        assert_eq!(a.recv(), (0, 7));
        assert_eq!(stats.total_bytes(), 0);
    }

    #[test]
    fn recv_one_from_each_buffers_early_rounds() {
        let stats = CommStats::new(2);
        let mut eps = CommEndpoint::<u64>::fabric(2, stats);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        // Rank 1 races two rounds ahead before rank 0 collects round 1.
        b.send(0, 10); // round 1
        b.send(0, 20); // round 2 (early)
        a.send(0, 1); // rank 0's self message, round 1
        let round1 = a.recv_one_from_each();
        assert_eq!(round1, vec![1, 10]);
        a.send(0, 2); // self, round 2
        let round2 = a.recv_one_from_each();
        assert_eq!(round2, vec![2, 20]);
    }

    #[test]
    fn per_link_fifo_order() {
        let stats = CommStats::new(2);
        let mut eps = CommEndpoint::<u64>::fabric(2, stats);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..100 {
            a.send(1, i);
        }
        for i in 0..100 {
            assert_eq!(b.recv(), (0, i));
        }
    }
}
