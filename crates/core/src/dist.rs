//! Initial 2D-hash distribution and the allocator-local CSR subgraph
//! (paper §4, "Data Structure").
//!
//! The input graph is distributed over the `|P|` allocation processes by 2D
//! hash: processes form an `R × C` grid and edge `e{u,v}` (canonical
//! `u < v`) lands on cell `(h(u) mod R, h(v) mod C)`. Two properties the
//! paper exploits are preserved exactly:
//!
//! * **edges are unique, vertices are replicated** — conflict resolution is
//!   local to an allocator (an edge has exactly one owner), while vertex
//!   allocation ids need the sync round;
//! * **replica metadata is functional** — the replica set of vertex `x` is
//!   `row(h(x)) ∪ column(h(x))`, computed from the id, never stored
//!   ("the metadata of replicated vertices can be calculated from vertex id
//!   …, which suppresses memory space in the case of trillion-edge
//!   graphs").
//!
//! The subgraph itself is CSR over local edge slots with one allocation
//! word per edge — "stored without any memory-consuming data structure such
//! as the hash map" (§7.3); the only hash map is the global→local id
//! mapping built at load time (charged to loading, like the paper's
//! excluded deployment phase).

use dne_graph::hash::{mix2, FastMap, SplitMix64};
use dne_graph::{EdgeId, Graph, HeapSize, VertexId};

use crate::messages::Part;

/// "Unallocated" sentinel in the per-edge allocation word.
pub const FREE: Part = Part::MAX;

/// The process grid of the 2D-hash distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2D {
    rows: u32,
    cols: u32,
    salt_row: u64,
    salt_col: u64,
}

impl Grid2D {
    /// Grid for `p` processes (uses the same near-square factorization as
    /// the Grid baseline partitioner).
    pub fn new(p: u32, seed: u64) -> Self {
        let (rows, cols) = dne_partition::hash_based::grid_dims(p);
        Self { rows, cols, salt_row: seed ^ 0x2D_5F52_4F57, salt_col: seed ^ 0x2D_5F43_4F4C }
    }

    /// Number of processes `rows × cols`.
    pub fn nprocs(&self) -> u32 {
        self.rows * self.cols
    }

    /// Row index of vertex `x` (as canonical first endpoint).
    #[inline]
    pub fn row_of(&self, x: VertexId) -> u32 {
        (mix2(self.salt_row, x) % self.rows as u64) as u32
    }

    /// Column index of vertex `x` (as canonical second endpoint).
    #[inline]
    pub fn col_of(&self, x: VertexId) -> u32 {
        (mix2(self.salt_col, x) % self.cols as u64) as u32
    }

    /// Owner process of canonical edge `(u, v)`.
    #[inline]
    pub fn owner(&self, u: VertexId, v: VertexId) -> u32 {
        self.row_of(u) * self.cols + self.col_of(v)
    }

    /// Replica set of vertex `x`: every process that may own an edge
    /// incident to `x` — its whole row plus its whole column. Computed,
    /// never stored. `R + C − 1` processes.
    pub fn replicas(&self, x: VertexId) -> Vec<u32> {
        let r = self.row_of(x);
        let c = self.col_of(x);
        let mut out = Vec::with_capacity((self.rows + self.cols - 1) as usize);
        for col in 0..self.cols {
            out.push(r * self.cols + col);
        }
        for row in 0..self.rows {
            let cell = row * self.cols + c;
            if row != r {
                out.push(cell);
            }
        }
        out.sort_unstable();
        out
    }

    /// Whether process `rank` is a replica holder of vertex `x` (O(1),
    /// avoids materializing the replica vector on hot paths).
    #[inline]
    pub fn is_replica(&self, rank: u32, x: VertexId) -> bool {
        rank / self.cols == self.row_of(x) || rank % self.cols == self.col_of(x)
    }
}

/// Allocator-local subgraph: the edges owned by one allocation process in
/// CSR form, plus the mutable allocation state.
pub struct AllocatorPart {
    /// Global vertex id of each local vertex (sorted ascending).
    pub global_ids: Vec<VertexId>,
    /// Reverse map global → local (built once at load).
    local_of: FastMap<VertexId, u32>,
    /// CSR offsets over local vertices.
    offsets: Vec<u64>,
    /// Adjacency: local index of the neighbor.
    adj_nbr: Vec<u32>,
    /// Adjacency: local edge slot.
    adj_edge: Vec<u32>,
    /// Global edge id per local edge slot.
    pub edge_global: Vec<EdgeId>,
    /// Allocation word per local edge ([`FREE`] until claimed).
    pub edge_part: Vec<Part>,
    /// Remaining (unallocated) local degree per local vertex.
    pub rest: Vec<u64>,
    /// Partition memberships per local vertex (sorted, tiny).
    pub vparts: Vec<Vec<Part>>,
    /// Locally allocated edge count per partition (`SubG.NumEdges`).
    pub part_edges: Vec<u64>,
    /// Number of still-unallocated local edges.
    pub free_edges: u64,
    /// Shuffled local-vertex scan order for random restarts.
    scan_order: Vec<u32>,
    scan_cursor: usize,
}

impl AllocatorPart {
    /// Build the subgraph of `rank` by scanning the full edge stream for
    /// this rank's 2D-hash share (test convenience; the partitioner
    /// pre-buckets once and calls [`AllocatorPart::from_owned_edges`]).
    pub fn build(g: &Graph, grid: &Grid2D, rank: u32, seed: u64) -> Self {
        let mut local_edges: Vec<(EdgeId, VertexId, VertexId)> = Vec::new();
        g.for_each_edge(|e, u, v| {
            if grid.owner(u, v) == rank {
                local_edges.push((e, u, v));
            }
        });
        Self::from_owned_edges(local_edges, rank, seed)
    }

    /// Build the subgraph from a pre-bucketed list of owned global edge
    /// ids, resolving endpoints through `g` (compatibility wrapper around
    /// [`AllocatorPart::from_owned_edges`]).
    pub fn from_edges(g: &Graph, local_edges: Vec<EdgeId>, rank: u32, seed: u64) -> Self {
        let owned = local_edges
            .into_iter()
            .map(|e| {
                let (u, v) = g.edge(e);
                (e, u, v)
            })
            .collect();
        Self::from_owned_edges(owned, rank, seed)
    }

    /// Build the subgraph from this rank's pre-bucketed `(edge id, u, v)`
    /// triplets — the "initial deployment" the paper excludes from
    /// partitioning time. The triplets carry their own endpoints, so the
    /// build never reads back through the input graph: one sequential
    /// edge-stream pass over *any* storage backend (including the
    /// chunk-streamed one) is enough to deploy all allocators.
    pub fn from_owned_edges(
        local_edges: Vec<(EdgeId, VertexId, VertexId)>,
        rank: u32,
        seed: u64,
    ) -> Self {
        // Local vertex set.
        let mut verts: Vec<VertexId> = Vec::with_capacity(local_edges.len() * 2);
        for &(_, u, v) in &local_edges {
            verts.push(u);
            verts.push(v);
        }
        verts.sort_unstable();
        verts.dedup();
        let local_of: FastMap<VertexId, u32> =
            verts.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
        let n = verts.len();
        // Degrees → offsets.
        let mut deg = vec![0u64; n];
        for &(_, u, v) in &local_edges {
            deg[local_of[&u] as usize] += 1;
            deg[local_of[&v] as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let slots = offsets[n] as usize;
        let mut adj_nbr = vec![0u32; slots];
        let mut adj_edge = vec![0u32; slots];
        let mut cursor = offsets.clone();
        for (le, &(_, u, v)) in local_edges.iter().enumerate() {
            let (lu, lv) = (local_of[&u], local_of[&v]);
            let cu = cursor[lu as usize] as usize;
            adj_nbr[cu] = lv;
            adj_edge[cu] = le as u32;
            cursor[lu as usize] += 1;
            let cv = cursor[lv as usize] as usize;
            adj_nbr[cv] = lu;
            adj_edge[cv] = le as u32;
            cursor[lv as usize] += 1;
        }
        let free_edges = local_edges.len() as u64;
        let local_edges: Vec<EdgeId> = local_edges.into_iter().map(|(e, _, _)| e).collect();
        let mut scan_order: Vec<u32> = (0..n as u32).collect();
        let mut rng = SplitMix64::new(mix2(seed, rank as u64) ^ 0x41_4C4C_4F43); // "ALLOC"
        for i in (1..scan_order.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            scan_order.swap(i, j);
        }
        Self {
            global_ids: verts,
            local_of,
            offsets,
            adj_nbr,
            adj_edge,
            edge_part: vec![FREE; local_edges.len()],
            edge_global: local_edges,
            rest: deg,
            vparts: vec![Vec::new(); n],
            part_edges: Vec::new(), // sized on first use via ensure_parts
            free_edges,
            scan_order,
            scan_cursor: 0,
        }
    }

    /// Size the per-partition edge counters for `p` partitions.
    pub fn ensure_parts(&mut self, p: usize) {
        if self.part_edges.len() < p {
            self.part_edges.resize(p, 0);
        }
    }

    /// Local index of a global vertex, if present here.
    #[inline]
    pub fn local_of(&self, v: VertexId) -> Option<u32> {
        self.local_of.get(&v).copied()
    }

    /// Number of local vertices.
    pub fn num_local_vertices(&self) -> usize {
        self.global_ids.len()
    }

    /// Number of local (owned) edges.
    pub fn num_local_edges(&self) -> usize {
        self.edge_global.len()
    }

    /// Adjacency slots of local vertex `lv`: `(neighbor local idx, edge slot)`.
    #[inline]
    pub fn neighbors(&self, lv: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.offsets[lv as usize] as usize;
        let hi = self.offsets[lv as usize + 1] as usize;
        self.adj_nbr[lo..hi].iter().copied().zip(self.adj_edge[lo..hi].iter().copied())
    }

    /// Record membership `(lv, p)`; returns true if it is new.
    #[inline]
    pub fn add_membership(&mut self, lv: u32, p: Part) -> bool {
        let set = &mut self.vparts[lv as usize];
        match set.binary_search(&p) {
            Ok(_) => false,
            Err(pos) => {
                set.insert(pos, p);
                true
            }
        }
    }

    /// Whether local vertex `lv` is a member of partition `p`.
    #[inline]
    pub fn is_member(&self, lv: u32, p: Part) -> bool {
        self.vparts[lv as usize].binary_search(&p).is_ok()
    }

    /// Claim edge slot `le` for partition `p`. Returns false if already
    /// allocated (the conflict case the paper resolves locally).
    #[inline]
    pub fn claim_edge(&mut self, le: u32, p: Part) -> bool {
        if self.edge_part[le as usize] != FREE {
            return false;
        }
        self.edge_part[le as usize] = p;
        self.part_edges[p as usize] += 1;
        self.free_edges -= 1;
        true
    }

    /// Decrement the rest degree of both endpoints of edge slot `le`.
    #[inline]
    pub fn consume_rest(&mut self, lu: u32, lv: u32) {
        self.rest[lu as usize] -= 1;
        self.rest[lv as usize] -= 1;
    }

    /// Position of the random-restart scan cursor (checkpointing).
    pub fn scan_cursor(&self) -> usize {
        self.scan_cursor
    }

    /// Restore the random-restart scan cursor from a checkpoint.
    pub fn set_scan_cursor(&mut self, cursor: usize) {
        assert!(cursor <= self.scan_order.len(), "scan cursor {cursor} out of range");
        self.scan_cursor = cursor;
    }

    /// Next local vertex with unallocated edges in the shuffled scan order
    /// (the allocator-side random restart of Algorithm 1 line 7).
    pub fn random_free_vertex(&mut self) -> Option<u32> {
        self.random_free_vertex_within(u64::MAX)
    }

    /// Budget-aware random restart: the first free vertex (in the seeded
    /// shuffled order) whose remaining local degree fits `budget`, so a
    /// nearly-full partition cannot be handed a hub that blows its
    /// `α·|E|/|P|` capacity. The scan cursor only advances past exhausted
    /// vertices; over-budget vertices stay available for later (or for
    /// other partitions).
    pub fn random_free_vertex_within(&mut self, budget: u64) -> Option<u32> {
        while self.scan_cursor < self.scan_order.len() {
            let lv = self.scan_order[self.scan_cursor];
            if self.rest[lv as usize] > 0 {
                break;
            }
            self.scan_cursor += 1;
        }
        for i in self.scan_cursor..self.scan_order.len() {
            let lv = self.scan_order[i];
            let rest = self.rest[lv as usize];
            if rest > 0 && rest <= budget {
                return Some(lv);
            }
        }
        None
    }
}

impl HeapSize for AllocatorPart {
    fn heap_bytes(&self) -> usize {
        // The CSR arrays plus the mutable allocation state; the global→local
        // map is charged too (it is live through the whole run).
        self.global_ids.heap_bytes()
            + self.offsets.heap_bytes()
            + self.adj_nbr.heap_bytes()
            + self.adj_edge.heap_bytes()
            + self.edge_global.heap_bytes()
            + self.edge_part.heap_bytes()
            + self.rest.heap_bytes()
            + self.vparts.iter().map(|v| v.capacity() * 4).sum::<usize>()
            + self.part_edges.heap_bytes()
            + self.scan_order.heap_bytes()
            + self.local_of.capacity() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dne_graph::gen;

    #[test]
    fn grid_partitions_every_edge_exactly_once() {
        let g = gen::rmat(&gen::RmatConfig::graph500(8, 4, 1));
        let p = 6;
        let grid = Grid2D::new(p, 42);
        let mut seen = 0u64;
        for rank in 0..p {
            let part = AllocatorPart::build(&g, &grid, rank, 42);
            seen += part.num_local_edges() as u64;
        }
        assert_eq!(seen, g.num_edges());
    }

    #[test]
    fn replica_set_covers_all_incident_edges() {
        let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 3));
        let grid = Grid2D::new(8, 7);
        for e in 0..g.num_edges() {
            let (u, v) = g.edge(e);
            let owner = grid.owner(u, v);
            assert!(grid.replicas(u).contains(&owner), "edge owner must hold endpoint u");
            assert!(grid.replicas(v).contains(&owner), "edge owner must hold endpoint v");
            assert!(grid.is_replica(owner, u));
            assert!(grid.is_replica(owner, v));
        }
    }

    #[test]
    fn replica_count_is_row_plus_col_minus_one() {
        let grid = Grid2D::new(12, 1); // 3 x 4
        for x in 0..100u64 {
            assert_eq!(grid.replicas(x).len(), 3 + 4 - 1);
        }
    }

    #[test]
    fn is_replica_matches_replica_list() {
        let grid = Grid2D::new(8, 3);
        for x in 0..50u64 {
            let set = grid.replicas(x);
            for rank in 0..8 {
                assert_eq!(set.contains(&rank), grid.is_replica(rank, x), "vertex {x} rank {rank}");
            }
        }
    }

    #[test]
    fn local_csr_is_consistent() {
        let g = gen::complete(10);
        let grid = Grid2D::new(4, 5);
        for rank in 0..4 {
            let part = AllocatorPart::build(&g, &grid, rank, 5);
            let mut slot_seen = vec![0u32; part.num_local_edges()];
            for lv in 0..part.num_local_vertices() as u32 {
                for (nbr, le) in part.neighbors(lv) {
                    assert!(nbr != lv, "self loop in local CSR");
                    slot_seen[le as usize] += 1;
                }
            }
            // Every local edge appears in exactly two adjacency slots.
            assert!(slot_seen.iter().all(|&c| c == 2));
        }
    }

    #[test]
    fn claim_and_conflict_semantics() {
        let g = gen::cycle(8);
        let grid = Grid2D::new(1, 1);
        let mut part = AllocatorPart::build(&g, &grid, 0, 1);
        part.ensure_parts(2);
        assert!(part.claim_edge(0, 1));
        assert!(!part.claim_edge(0, 0), "second claim must fail");
        assert_eq!(part.edge_part[0], 1);
        assert_eq!(part.part_edges[1], 1);
        assert_eq!(part.free_edges, 7);
    }

    #[test]
    fn membership_dedup() {
        let g = gen::path(4);
        let grid = Grid2D::new(1, 1);
        let mut part = AllocatorPart::build(&g, &grid, 0, 1);
        assert!(part.add_membership(0, 2));
        assert!(!part.add_membership(0, 2));
        assert!(part.is_member(0, 2));
        assert!(!part.is_member(0, 1));
    }

    #[test]
    fn random_free_vertex_skips_exhausted() {
        let g = gen::path(3);
        let grid = Grid2D::new(1, 1);
        let mut part = AllocatorPart::build(&g, &grid, 0, 9);
        part.ensure_parts(1);
        // Allocate everything.
        for le in 0..part.num_local_edges() as u32 {
            let _ = part.claim_edge(le, 0);
        }
        part.rest.iter_mut().for_each(|r| *r = 0);
        assert_eq!(part.random_free_vertex(), None);
    }
}
