//! End-to-end elastic fault-tolerance smoke test: kill a rank mid-run,
//! recover both ways, and hold the results to the acceptance bars.
//!
//! The harness launches a real 4-process `dne-tcp-worker` job with
//! per-round checkpointing (`DNE_CHECKPOINT_EVERY=1`) and an injected
//! crash on rank 1 (`DNE_FAULT_ROUND=2`: it panics at the end of round 2,
//! after writing that round's checkpoint — its peers find out through the
//! broken sockets, exactly like a SIGKILL). Then:
//!
//! * **Restart path** — rank 1 is relaunched with `--rejoin`; the
//!   survivors re-rendezvous under the next bootstrap epoch and everyone
//!   resumes from the newest commonly checkpointed round. The finished
//!   job's assignment fingerprint (plus iterations, RF, EB) must be
//!   **bit-identical** to an uninterrupted in-process run of the same
//!   `(graph, k, seed)`.
//! * **Migration path** — treating rank 1 as permanently dead instead,
//!   [`migrate_dead_rank`] evacuates its partition onto the survivors
//!   straight from the checkpoint directory. Every edge must end up on a
//!   survivor and the migrated replication factor must stay within 10%
//!   of the uninterrupted run's.
//!
//! Exits nonzero on any violated bar. Run it in release (`cargo run
//! --release --bin recovery_smoke`); CI does.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use dne_core::{migrate_dead_rank, DistributedNe, NeConfig};
use dne_graph::gen::{rmat, RmatConfig};
use dne_graph::hash::mix2;
use dne_graph::{EdgeId, Graph};
use dne_partition::PartitionQuality;
use dne_runtime::TransportKind;

/// Job shape: small enough to finish in seconds, big enough that the
/// round-2 crash lands mid-expansion with plenty of rounds left.
const NPROCS: usize = 4;
const SCALE: u32 = 8;
const DEGREE: u64 = 4;
const SEED: u64 = 42;
const FAULT_ROUND: u64 = 2;
const DEAD_RANK: u32 = 1;

/// Stdout markers printed by `dne-tcp-worker` (kept in sync with it).
const ADDR_TAG: &str = "DNE_TCP_ADDR";
const ROW_TAG: &str = "DNE_TCP_ROW";

/// Hash of one partition's (sorted) edge-id set — must match
/// `dne-tcp-worker`'s per-partition fingerprint.
fn partition_fingerprint(edges: &mut [EdgeId]) -> u64 {
    edges.sort_unstable();
    edges.iter().fold(0x444E_4531u64, |h, &e| mix2(h, e))
}

/// The uninterrupted truth: same graph, same seed, in-process loopback.
struct Reference {
    iterations: u64,
    rf: f64,
    eb: f64,
    fingerprint: u64,
}

fn reference(g: &Graph) -> Reference {
    let ne = DistributedNe::new(
        NeConfig::default().with_seed(SEED).with_transport(TransportKind::Loopback),
    );
    let (assignment, stats) = ne.partition_with_stats(g, NPROCS as u32);
    let q = PartitionQuality::measure(g, &assignment);
    let fingerprint = assignment
        .edges_by_partition()
        .into_iter()
        .map(|mut edges| partition_fingerprint(&mut edges))
        .fold(0x4D45_5348u64, mix2);
    assert!(
        stats.iterations > FAULT_ROUND,
        "the job must outlive the injected fault round (got {} rounds)",
        stats.iterations
    );
    Reference {
        iterations: stats.iterations,
        rf: q.replication_factor,
        eb: q.edge_balance,
        fingerprint,
    }
}

/// The non-timing columns of a `DNE_TCP_ROW` line (TSV: transport,
/// nprocs, scale, degree, seed, iter, bytes, msgs, rf, eb, fprint).
struct Row {
    iterations: u64,
    rf: f64,
    eb: f64,
    fingerprint: u64,
}

fn parse_row(cells: &str) -> Option<Row> {
    let cols: Vec<&str> = cells.split('\t').collect();
    if cols.len() != 11 {
        return None;
    }
    Some(Row {
        iterations: cols[5].parse().ok()?,
        rf: cols[8].parse().ok()?,
        eb: cols[9].parse().ok()?,
        fingerprint: u64::from_str_radix(cols[10], 16).ok()?,
    })
}

/// Drop guard: on early error return, kill and reap whatever still runs.
struct Fleet(Vec<Child>);

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawn one `dne-tcp-worker worker` rank with checkpointing into `ckpt`.
fn spawn_rank(
    exe: &Path,
    rank: usize,
    addr: &str,
    ckpt: &Path,
    fault: Option<u64>,
    rejoin: bool,
    stdout: Stdio,
) -> Result<Child, String> {
    let mut cmd = Command::new(exe);
    cmd.args(["worker", &rank.to_string(), &NPROCS.to_string(), addr])
        .args([SCALE.to_string(), DEGREE.to_string(), SEED.to_string()])
        .env("DNE_CHECKPOINT_EVERY", "1")
        .env("DNE_CHECKPOINT_DIR", ckpt)
        .env_remove("DNE_FAULT_ROUND")
        .stdout(stdout);
    if let Some(round) = fault {
        cmd.env("DNE_FAULT_ROUND", round.to_string());
    }
    if rejoin {
        cmd.arg("--rejoin");
    }
    cmd.spawn().map_err(|e| format!("spawning rank {rank}: {e}"))
}

/// The kill-and-restart leg: returns rank 0's finished result row.
fn killed_and_restarted_row(ckpt: &Path) -> Result<Row, String> {
    let worker = std::env::current_exe()
        .map_err(|e| format!("cannot locate own binary: {e}"))?
        .with_file_name("dne-tcp-worker");
    if !worker.exists() {
        return Err(format!("{} not built (build the whole dne-bench package)", worker.display()));
    }
    let mut rank0 = spawn_rank(&worker, 0, "127.0.0.1:0", ckpt, None, false, Stdio::piped())?;
    let mut lines = BufReader::new(rank0.stdout.take().expect("piped stdout")).lines();
    let mut fleet = Fleet(vec![rank0]);
    let addr = loop {
        let line = lines
            .next()
            .ok_or("rank 0 exited before advertising its rendezvous address")?
            .map_err(|e| format!("reading rank 0 stdout: {e}"))?;
        if let Some(a) = line.strip_prefix(ADDR_TAG) {
            break a.trim().to_string();
        }
    };
    // Rank 1 carries the injected fault; 2 and 3 are healthy survivors.
    let doomed = spawn_rank(
        &worker,
        DEAD_RANK as usize,
        &addr,
        ckpt,
        Some(FAULT_ROUND),
        false,
        Stdio::null(),
    )?;
    for rank in 2..NPROCS {
        fleet.0.push(spawn_rank(&worker, rank, &addr, ckpt, None, false, Stdio::null())?);
    }
    // The injected panic must kill the process (nonzero exit) — that is
    // the whole point of the crash-teardown path.
    let status = { doomed }.wait().map_err(|e| format!("waiting for the doomed rank: {e}"))?;
    if status.success() {
        return Err("rank 1 was supposed to crash at the injected fault round".into());
    }
    eprintln!("[recovery_smoke: rank 1 died ({status}); relaunching with --rejoin]");
    fleet.0.push(spawn_rank(&worker, DEAD_RANK as usize, &addr, ckpt, None, true, Stdio::null())?);
    let row = loop {
        let line = lines
            .next()
            .ok_or("rank 0 exited without printing a result row")?
            .map_err(|e| format!("reading rank 0 stdout: {e}"))?;
        if let Some(cells) = line.strip_prefix(ROW_TAG) {
            break parse_row(cells.trim_start_matches('\t'))
                .ok_or_else(|| format!("malformed result row {line:?}"))?;
        }
    };
    let mut failure = None;
    for (i, child) in fleet.0.iter_mut().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                failure.get_or_insert(format!("surviving worker #{i} exited with {status}"));
            }
            Err(e) => {
                failure.get_or_insert(format!("waiting for worker #{i}: {e}"));
            }
        }
    }
    fleet.0.clear();
    match failure {
        None => Ok(row),
        Some(f) => Err(f),
    }
}

/// The result row prints RF/EB with 6 decimals; compare at that precision.
fn close(row_value: f64, truth: f64) -> bool {
    format!("{row_value:.6}") == format!("{truth:.6}")
}

fn run() -> Result<(), String> {
    let ckpt: PathBuf =
        std::env::temp_dir().join(format!("dne-recovery-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt);
    let g = rmat(&RmatConfig::graph500(SCALE, DEGREE, SEED));
    let truth = reference(&g);

    // ---- Leg 1: kill rank 1 mid-run, restart it, demand bit-identity.
    let row = killed_and_restarted_row(&ckpt)?;
    if row.fingerprint != truth.fingerprint {
        return Err(format!(
            "restart path diverged: fingerprint {:016x} != uninterrupted {:016x}",
            row.fingerprint, truth.fingerprint
        ));
    }
    if row.iterations != truth.iterations || !close(row.rf, truth.rf) || !close(row.eb, truth.eb) {
        return Err(format!(
            "restart path diverged: iter/RF/EB {}/{}/{} != uninterrupted {}/{}/{}",
            row.iterations, row.rf, row.eb, truth.iterations, truth.rf, truth.eb
        ));
    }
    println!(
        "restart path OK: recovered run bit-identical (fingerprint {:016x}, {} rounds)",
        row.fingerprint, row.iterations
    );

    // ---- Leg 2: treat rank 1 as permanently dead and migrate its edges
    // out of the checkpoints the killed run left behind.
    let report = migrate_dead_rank(&ckpt, &g, NPROCS as u32, SEED, DEAD_RANK)
        .map_err(|e| format!("migration failed: {e}"))?;
    for e in 0..g.num_edges() {
        if report.assignment.part_of(e) == DEAD_RANK {
            return Err(format!("edge {e} still assigned to the dead rank after migration"));
        }
    }
    if report.replication_factor > truth.rf * 1.10 {
        return Err(format!(
            "migration RF {:.6} above 110% of uninterrupted {:.6}",
            report.replication_factor, truth.rf
        ));
    }
    println!(
        "migration path OK: {} migrated + {} completed edges from round {}, \
         RF {:.6} (uninterrupted {:.6}), live EB {:.6}",
        report.migrated_edges,
        report.completed_edges,
        report.round,
        report.replication_factor,
        truth.rf,
        report.edge_balance
    );
    let _ = std::fs::remove_dir_all(&ckpt);
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("recovery_smoke: {e}");
        std::process::exit(1);
    }
    println!("OK: both recovery paths hold their acceptance bars");
}
