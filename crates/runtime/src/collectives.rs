//! MPI-style collectives over shared memory: barrier, all-gather,
//! all-reduce.
//!
//! Algorithm 1 of the paper uses `Barrier()` (line 9) and
//! `AllGatherSum(|Ep|)` (line 14) every iteration; the application engine
//! uses all-reduce for convergence/frontier checks. The implementation is a
//! generation-counted rendezvous: the last process to arrive publishes the
//! round's result and bumps the generation; everyone else waits on a condvar
//! for the bump. A process can re-enter the next collective before slow
//! peers have *read* the previous result because the publish buffer is only
//! rewritten at the *last arrival* of the next round, which cannot happen
//! until every peer has left the current one.
//!
//! Byte accounting: each collective charges `8·(P−1)` bytes to every
//! participant (the cost of a flat all-gather of one word), approximating
//! what an MPI implementation would move.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::stats::CommStats;

struct RoundState {
    arrived: usize,
    generation: u64,
    /// Scratch slots written by arriving processes.
    slots: Vec<u64>,
    /// Published result of the completed round.
    published: Vec<u64>,
}

/// Shared collective-communication context for one cluster run.
pub struct Collectives {
    state: Mutex<RoundState>,
    cv: Condvar,
    nprocs: usize,
    stats: Arc<CommStats>,
}

impl Collectives {
    /// Collectives for `nprocs` participants.
    pub fn new(nprocs: usize, stats: Arc<CommStats>) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(RoundState {
                arrived: 0,
                generation: 0,
                slots: vec![0; nprocs],
                published: vec![0; nprocs],
            }),
            cv: Condvar::new(),
            nprocs,
            stats,
        })
    }

    /// Rendezvous: deposit `value` for `rank`, wait for everyone, return the
    /// full vector of deposited values indexed by rank.
    pub fn all_gather_u64(&self, rank: usize, value: u64) -> Vec<u64> {
        if self.nprocs > 1 {
            self.stats.record_send(rank, 8 * (self.nprocs - 1));
        }
        let mut st = self.state.lock();
        st.slots[rank] = value;
        st.arrived += 1;
        if st.arrived == self.nprocs {
            st.arrived = 0;
            let slots = std::mem::take(&mut st.slots);
            st.published = slots.clone();
            st.slots = slots; // reuse the allocation for the next round
            st.generation += 1;
            self.cv.notify_all();
            st.published.clone()
        } else {
            let gen = st.generation;
            while st.generation == gen {
                self.cv.wait(&mut st);
            }
            st.published.clone()
        }
    }

    /// Barrier: all processes wait until everyone has arrived.
    pub fn barrier(&self, rank: usize) {
        self.all_gather_u64(rank, 0);
    }

    /// Sum-reduce a `u64` across all processes.
    pub fn all_reduce_sum_u64(&self, rank: usize, value: u64) -> u64 {
        self.all_gather_u64(rank, value).iter().sum()
    }

    /// Max-reduce a `u64` across all processes.
    pub fn all_reduce_max_u64(&self, rank: usize, value: u64) -> u64 {
        self.all_gather_u64(rank, value).into_iter().max().unwrap_or(0)
    }

    /// Sum-reduce an `f64` (transported via bit pattern, summed at reader).
    pub fn all_reduce_sum_f64(&self, rank: usize, value: f64) -> f64 {
        self.all_gather_u64(rank, value.to_bits()).iter().map(|&b| f64::from_bits(b)).sum()
    }

    /// Logical OR across processes (any process true ⇒ all see true).
    pub fn all_reduce_any(&self, rank: usize, value: bool) -> bool {
        self.all_reduce_sum_u64(rank, value as u64) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(n: usize, f: impl Fn(usize, &Collectives) + Sync) {
        let stats = CommStats::new(n);
        let coll = Collectives::new(n, stats);
        std::thread::scope(|s| {
            for r in 0..n {
                let coll = &coll;
                let f = &f;
                s.spawn(move || f(r, coll));
            }
        });
    }

    #[test]
    fn all_gather_returns_rank_indexed_values() {
        run_on(4, |rank, coll| {
            let got = coll.all_gather_u64(rank, (rank * 10) as u64);
            assert_eq!(got, vec![0, 10, 20, 30]);
        });
    }

    #[test]
    fn repeated_rounds_do_not_mix() {
        run_on(3, |rank, coll| {
            for round in 0..50u64 {
                let got = coll.all_gather_u64(rank, round * 100 + rank as u64);
                assert_eq!(got, vec![round * 100, round * 100 + 1, round * 100 + 2]);
            }
        });
    }

    #[test]
    fn reductions() {
        run_on(4, |rank, coll| {
            assert_eq!(coll.all_reduce_sum_u64(rank, 2), 8);
            assert_eq!(coll.all_reduce_max_u64(rank, rank as u64), 3);
            let s = coll.all_reduce_sum_f64(rank, 0.5);
            assert!((s - 2.0).abs() < 1e-12);
            assert!(coll.all_reduce_any(rank, rank == 2));
            assert!(!coll.all_reduce_any(rank, false));
        });
    }

    #[test]
    fn single_process_collectives_are_identity() {
        run_on(1, |rank, coll| {
            assert_eq!(coll.all_gather_u64(rank, 9), vec![9]);
            assert_eq!(coll.all_reduce_sum_u64(rank, 9), 9);
            coll.barrier(rank);
        });
    }

    #[test]
    fn collectives_charge_bytes() {
        let stats = CommStats::new(2);
        let coll = Collectives::new(2, stats.clone());
        std::thread::scope(|s| {
            for r in 0..2 {
                let coll = &coll;
                s.spawn(move || coll.barrier(r));
            }
        });
        assert_eq!(stats.total_bytes(), 2 * 8);
    }
}
