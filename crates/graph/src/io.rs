//! Edge-list IO: whitespace-separated text (SNAP/KONECT style), a compact
//! little-endian binary format, and a chunk-framed streaming binary format
//! for graphs too large to buffer twice.
//!
//! The paper's datasets ship as SNAP/KONECT edge lists; this module lets a
//! user of the library feed their own graphs to the partitioners. Lines
//! starting with `#` or `%` are treated as comments (SNAP and KONECT
//! conventions respectively); an optional third weight column is accepted
//! and explicitly ignored (the graph model is unweighted).
//!
//! Four on-disk formats:
//! * **text** ([`read_text_edge_list`] / [`write_text_edge_list`]) — for
//!   interchange with published datasets;
//! * **monolithic binary** ([`read_binary`] / [`write_binary`]) — magic +
//!   counts + one flat pair array, when the whole graph comfortably fits;
//! * **chunk-framed binary** ([`ChunkedGraphWriter`] / [`read_chunked`] /
//!   [`read_chunked_parallel`]) — the streaming format: edges travel in
//!   length-prefixed frames so writer and reader each hold at most one
//!   chunk beyond the final edge array itself;
//! * **on-disk CSR** (`DNECSRF1`, [`write_csr`] / [`csr_from_chunked`] /
//!   [`open_csr_mmap`]) — the full CSR arrays laid out for read-only
//!   memory mapping; see [`crate::mmap`] for the layout.
//!
//! A chunked file is also the input of the out-of-core storage backends:
//! [`open_chunked_with`] opens it under any [`StorageKind`] without the
//! caller caring which on-disk shape backs the returned [`Graph`].

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, Write};
use std::path::Path;

use crate::storage::StorageKind;
use crate::types::{Edge, VertexId};
use crate::{EdgeListBuilder, Graph};

/// Read a whitespace-separated text edge list. Vertices are renumbered
/// densely in order of first appearance so sparse external ids are fine.
pub fn read_text_edge_list(path: impl AsRef<Path>) -> io::Result<Graph> {
    let file = File::open(path)?;
    read_text_edge_list_from(BufReader::new(file))
}

/// Like [`read_text_edge_list`] but from any reader (useful for tests).
///
/// Parsing is strict: a data line must be `u v` or `u v w` where `u`/`v`
/// are unsigned integers and `w` — a weight column some SNAP/KONECT
/// exports carry — parses as a number but is **explicitly ignored** (the
/// graph model is unweighted, §2.1). Anything else (a missing endpoint, a
/// non-numeric token, a fourth column) is an `InvalidData` error naming
/// the offending 1-based line number. Note this deliberately rejects
/// KONECT's four-column temporal exports (`u v weight timestamp`) —
/// strip the trailing columns first if the timestamps carry no meaning
/// for your experiment.
pub fn read_text_edge_list_from(reader: impl BufRead) -> io::Result<Graph> {
    let mut remap = crate::hash::FastMap::default();
    let mut next_id: VertexId = 0;
    let mut intern = |raw: u64, remap: &mut crate::hash::FastMap<u64, VertexId>| -> VertexId {
        *remap.entry(raw).or_insert_with(|| {
            let id = next_id;
            next_id += 1;
            id
        })
    };
    let bad = |line_no: usize, what: String| {
        io::Error::new(io::ErrorKind::InvalidData, format!("line {line_no}: {what}"))
    };
    let mut b = EdgeListBuilder::new();
    let mut line = String::new();
    let mut reader = reader;
    let mut line_no = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (Some(a), Some(bb)) = (it.next(), it.next()) else {
            return Err(bad(line_no, format!("malformed edge line (need two endpoints): {t:?}")));
        };
        let parse = |s: &str| {
            s.parse::<u64>().map_err(|e| bad(line_no, format!("bad vertex id {s:?}: {e}")))
        };
        let u = intern(parse(a)?, &mut remap);
        let v = intern(parse(bb)?, &mut remap);
        if let Some(w) = it.next() {
            // Third column: an edge weight. Validate but ignore it.
            if w.parse::<f64>().is_err() {
                return Err(bad(line_no, format!("unparseable weight column {w:?}")));
            }
            if let Some(extra) = it.next() {
                return Err(bad(line_no, format!("unexpected trailing token {extra:?}")));
            }
        }
        b.push(u, v);
    }
    Ok(b.into_graph(next_id))
}

/// Write a graph as a text edge list (one `u v` pair per line, canonical
/// order) with a `#` header carrying counts.
pub fn write_text_edge_list(g: &Graph, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "# vertices {} edges {}", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edge_iter() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

const BINARY_MAGIC: &[u8; 8] = b"DNEGRAPH";

/// Write the compact binary format: magic, |V|, |E|, then |E| canonical
/// `(u, v)` pairs, all little-endian u64.
pub fn write_binary(g: &Graph, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&g.num_vertices().to_le_bytes())?;
    w.write_all(&g.num_edges().to_le_bytes())?;
    for (u, v) in g.edge_iter() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Read the binary format written by [`write_binary`].
pub fn read_binary(path: impl AsRef<Path>) -> io::Result<Graph> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a DNEGRAPH file"));
    }
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    let n = u64::from_le_bytes(buf);
    r.read_exact(&mut buf)?;
    let m = u64::from_le_bytes(buf);
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        r.read_exact(&mut buf)?;
        let u = u64::from_le_bytes(buf);
        r.read_exact(&mut buf)?;
        let v = u64::from_le_bytes(buf);
        edges.push((u, v));
    }
    Ok(Graph::from_canonical_edges(n, edges))
}

const CHUNKED_MAGIC: &[u8; 8] = b"DNECHNK1";
/// Placeholder edge count written while a chunked file is still streaming;
/// patched by [`ChunkedGraphWriter::finish`].
const EDGE_COUNT_UNKNOWN: u64 = u64::MAX;

/// Streaming writer for the chunk-framed binary format.
///
/// Layout: `DNECHNK1` magic, `|V|` (u64 LE), `|E|` (u64 LE — `u64::MAX`
/// until [`Self::finish`] patches it), then zero or more frames of
/// `count` (u64 LE) followed by `count` canonical `(u, v)` pairs.
///
/// Unlike [`write_binary`], the writer never needs the full edge list in
/// memory: chunks are validated and appended as they are produced, so a
/// graph can round-trip to disk while only one chunk is buffered — the
/// point of the format at scales where two in-memory copies don't fit.
/// Chunks must arrive in canonical order (each strictly ascending and
/// strictly after the previous chunk's last edge), which is exactly how
/// [`crate::Graph::edges`] and the parallel merge emit them.
#[derive(Debug)]
pub struct ChunkedGraphWriter {
    w: BufWriter<File>,
    num_vertices: VertexId,
    written: u64,
    last: Option<Edge>,
}

impl ChunkedGraphWriter {
    /// Create the file and write the streaming header.
    pub fn create(path: impl AsRef<Path>, num_vertices: VertexId) -> io::Result<Self> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(CHUNKED_MAGIC)?;
        w.write_all(&num_vertices.to_le_bytes())?;
        w.write_all(&EDGE_COUNT_UNKNOWN.to_le_bytes())?;
        Ok(Self { w, num_vertices, written: 0, last: None })
    }

    /// Append one frame of canonical edges. Empty chunks are skipped.
    ///
    /// Fails with `InvalidInput` if the chunk is not strictly sorted
    /// canonical order continuing the stream, or names an endpoint outside
    /// `0..num_vertices`.
    pub fn write_chunk(&mut self, edges: &[Edge]) -> io::Result<()> {
        if edges.is_empty() {
            return Ok(());
        }
        for &(u, v) in edges {
            if u >= v || v >= self.num_vertices {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("edge ({u}, {v}) is not canonical for |V| = {}", self.num_vertices),
                ));
            }
            if self.last.is_some_and(|last| last >= (u, v)) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("edge ({u}, {v}) breaks the stream's canonical order"),
                ));
            }
            self.last = Some((u, v));
        }
        self.w.write_all(&(edges.len() as u64).to_le_bytes())?;
        for &(u, v) in edges {
            self.w.write_all(&u.to_le_bytes())?;
            self.w.write_all(&v.to_le_bytes())?;
        }
        self.written += edges.len() as u64;
        Ok(())
    }

    /// Number of edges written so far.
    pub fn edges_written(&self) -> u64 {
        self.written
    }

    /// Flush, patch the header's edge count, and return it.
    pub fn finish(self) -> io::Result<u64> {
        let mut f = self.w.into_inner().map_err(|e| e.into_error())?;
        f.seek(io::SeekFrom::Start((CHUNKED_MAGIC.len() + 8) as u64))?;
        f.write_all(&self.written.to_le_bytes())?;
        f.sync_data()?;
        Ok(self.written)
    }
}

/// Write a graph in the chunk-framed format, `chunk_edges` edges per frame.
pub fn write_chunked(g: &Graph, path: impl AsRef<Path>, chunk_edges: usize) -> io::Result<()> {
    let mut w = ChunkedGraphWriter::create(path, g.num_vertices())?;
    let mut chunk = Vec::with_capacity(chunk_edges.clamp(1, 1 << 20));
    for e in g.edge_iter() {
        chunk.push(e);
        if chunk.len() >= chunk_edges.max(1) {
            w.write_chunk(&chunk)?;
            chunk.clear();
        }
    }
    w.write_chunk(&chunk)?;
    w.finish()?;
    Ok(())
}

/// Read a u64 frame header, distinguishing clean end-of-file (no further
/// frame) from a truncated header.
fn read_frame_len(r: &mut impl Read) -> io::Result<Option<u64>> {
    let mut buf = [0u8; 8];
    let mut filled = 0;
    while filled < buf.len() {
        let k = match r.read(&mut buf[filled..]) {
            // Match read_exact's semantics: a signal-interrupted read is
            // retried, not treated as corruption.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            other => other?,
        };
        if k == 0 {
            return if filled == 0 {
                Ok(None)
            } else {
                Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated frame header"))
            };
        }
        filled += k;
    }
    Ok(Some(u64::from_le_bytes(buf)))
}

/// Parsed and validated `DNECHNK1` header.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChunkedHeader {
    /// Declared vertex count.
    pub num_vertices: VertexId,
    /// Patched edge count (never the unfinished sentinel).
    pub declared_edges: u64,
}

/// Read and validate a chunked file's 24-byte header: magic, the
/// finished-writer sentinel, and a declared count the file could
/// physically hold (a corrupt count must not provoke a huge allocation).
fn read_chunked_header(r: &mut impl Read, file_len: u64) -> io::Result<ChunkedHeader> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != CHUNKED_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a DNECHNK1 file"));
    }
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    let n = u64::from_le_bytes(buf);
    r.read_exact(&mut buf)?;
    let declared = u64::from_le_bytes(buf);
    if declared == EDGE_COUNT_UNKNOWN {
        // The writer patches the count in `finish`; the sentinel means the
        // producing process died mid-stream. Refuse rather than silently
        // return a truncated graph.
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unfinished chunked file (writer never ran finish; edge count unpatched)",
        ));
    }
    let payload_cap = file_len.saturating_sub(24) / 16;
    if declared > payload_cap {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("header declares {declared} edges but the file can hold {payload_cap}"),
        ));
    }
    Ok(ChunkedHeader { num_vertices: n, declared_edges: declared })
}

/// Streaming frame-by-frame reader over a chunked file with full payload
/// validation: every pair must be canonical for the declared `|V|`, the
/// stream strictly ascending across frame boundaries, and the total frame
/// count must match the header when end-of-file is reached. This is the
/// one decode loop behind [`read_chunked`], the chunk-streamed storage
/// backend's sequential scans, and the CSR converter's passes.
#[derive(Debug)]
pub(crate) struct ChunkedEdgeReader {
    r: BufReader<File>,
    header: ChunkedHeader,
    read_so_far: u64,
    last: Option<Edge>,
    /// Frames are decoded through a bounded scratch buffer so a corrupt
    /// frame header cannot provoke an absurd allocation.
    scratch: Vec<u8>,
}

impl ChunkedEdgeReader {
    /// Open `path` and validate its header.
    pub(crate) fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut r = BufReader::new(file);
        let header = read_chunked_header(&mut r, file_len)?;
        Ok(Self { r, header, read_so_far: 0, last: None, scratch: vec![0u8; 1 << 16] })
    }

    /// Declared vertex count.
    pub(crate) fn num_vertices(&self) -> VertexId {
        self.header.num_vertices
    }

    /// Declared (finished) edge count.
    pub(crate) fn declared_edges(&self) -> u64 {
        self.header.declared_edges
    }

    /// Decode the next frame into `out` (cleared first). Returns `false`
    /// on clean end-of-file — at which point the total decoded count has
    /// been checked against the header — and `Err` on any corruption.
    pub(crate) fn next_chunk(&mut self, out: &mut Vec<Edge>) -> io::Result<bool> {
        out.clear();
        let Some(count) = read_frame_len(&mut self.r)? else {
            if self.header.declared_edges != self.read_so_far {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "header declares {} edges, frames carry {}",
                        self.header.declared_edges, self.read_so_far
                    ),
                ));
            }
            return Ok(false);
        };
        let n = self.header.num_vertices;
        let mut remaining = (count as usize)
            .checked_mul(16)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "frame length overflow"))?;
        out.reserve(count as usize);
        while remaining > 0 {
            let take = remaining.min(self.scratch.len());
            // Whole pairs only: scratch is a multiple of 16 bytes.
            self.r.read_exact(&mut self.scratch[..take])?;
            for pair in self.scratch[..take].chunks_exact(16) {
                let u = u64::from_le_bytes(pair[..8].try_into().unwrap());
                let v = u64::from_le_bytes(pair[8..].try_into().unwrap());
                // Validate while decoding so a corrupt payload surfaces as
                // Err(InvalidData) here instead of a panic in the CSR
                // constructor's canonical-order assertions downstream.
                if u >= v || v >= n {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt frame: ({u}, {v}) is not canonical for |V| = {n}"),
                    ));
                }
                if self.last.is_some_and(|last| last >= (u, v)) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt frame: ({u}, {v}) breaks the canonical edge order"),
                    ));
                }
                self.last = Some((u, v));
                out.push((u, v));
            }
            remaining -= take;
        }
        self.read_so_far += count;
        Ok(true)
    }
}

/// One frame's location within a chunked file, as indexed by
/// [`scan_chunked_frames`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChunkFrame {
    /// Global id of the first edge in this frame.
    pub first_edge: u64,
    /// Number of edges in this frame.
    pub count: u64,
    /// Byte offset of the frame's payload (just past its count word).
    pub payload_at: u64,
}

/// Index a chunked file's frame directory without decoding any payload:
/// reads each frame's count word and seeks past its pairs, so the cost is
/// `O(frames)` I/O regardless of `|E|`.
///
/// Beyond the header checks, this validates that every frame fits inside
/// the file and — the check a seek-based scan would otherwise lose — that
/// the **summed frame counts equal the header's declared `|E|`**, failing
/// with an `InvalidData` error naming both counts.
pub(crate) fn scan_chunked_frames(
    path: impl AsRef<Path>,
) -> io::Result<(ChunkedHeader, Vec<ChunkFrame>)> {
    let mut f = File::open(path)?;
    let file_len = f.metadata()?.len();
    let header = read_chunked_header(&mut f, file_len)?;
    let mut frames = Vec::new();
    let mut pos = 24u64;
    let mut total = 0u64;
    while let Some(count) = read_frame_len(&mut f)? {
        pos += 8;
        let bytes = count
            .checked_mul(16)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "frame length overflow"))?;
        if pos.checked_add(bytes).is_none_or(|end| end > file_len) {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("frame of {count} edges overruns the file"),
            ));
        }
        frames.push(ChunkFrame { first_edge: total, count, payload_at: pos });
        // Frames occupy disjoint file ranges, so `total` is bounded by
        // `file_len / 16` and cannot overflow.
        total += count;
        pos += bytes;
        f.seek(io::SeekFrom::Start(pos))?;
    }
    if total != header.declared_edges {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "chunked file declares {} edges but its frames sum to {total}",
                header.declared_edges
            ),
        ));
    }
    Ok((header, frames))
}

/// Decode one frame (located by [`scan_chunked_frames`]) into `out`,
/// validating that each pair is canonical and the frame internally
/// ascending. Cross-frame ordering is the sequential reader's job.
pub(crate) fn read_frame_payload(
    path: impl AsRef<Path>,
    frame: &ChunkFrame,
    num_vertices: VertexId,
    out: &mut Vec<Edge>,
) -> io::Result<()> {
    out.clear();
    out.reserve(frame.count as usize);
    let mut f = File::open(path)?;
    f.seek(io::SeekFrom::Start(frame.payload_at))?;
    let mut r = BufReader::new(f);
    let mut scratch = vec![0u8; 1 << 16];
    let mut remaining = (frame.count as usize) * 16;
    while remaining > 0 {
        let take = remaining.min(scratch.len());
        r.read_exact(&mut scratch[..take])?;
        for pair in scratch[..take].chunks_exact(16) {
            let u = u64::from_le_bytes(pair[..8].try_into().unwrap());
            let v = u64::from_le_bytes(pair[8..].try_into().unwrap());
            if u >= v || v >= num_vertices {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt frame: ({u}, {v}) is not canonical for |V| = {num_vertices}"),
                ));
            }
            if out.last().is_some_and(|&last| last >= (u, v)) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt frame: ({u}, {v}) breaks the canonical edge order"),
                ));
            }
            out.push((u, v));
        }
        remaining -= take;
    }
    Ok(())
}

/// Read every frame of a chunked file into one canonical edge vector,
/// returning it with the declared vertex count. The edge list is appended
/// frame by frame into a single allocation — only one decoded chunk ever
/// coexists with the growing edge array.
fn read_chunked_edges(path: impl AsRef<Path>) -> io::Result<(VertexId, Vec<Edge>)> {
    let mut r = ChunkedEdgeReader::open(path)?;
    let mut edges: Vec<Edge> = Vec::with_capacity(r.declared_edges() as usize);
    let mut chunk = Vec::new();
    while r.next_chunk(&mut chunk)? {
        edges.append(&mut chunk);
    }
    Ok((r.num_vertices(), edges))
}

/// Read a graph written in the chunk-framed format ([`ChunkedGraphWriter`]).
pub fn read_chunked(path: impl AsRef<Path>) -> io::Result<Graph> {
    let (n, edges) = read_chunked_edges(path)?;
    Ok(Graph::from_canonical_edges(n, edges))
}

/// Like [`read_chunked`] but hands the decoded edge list to the parallel
/// CSR builder. Byte-identical to [`read_chunked`] for every thread count.
pub fn read_chunked_parallel(path: impl AsRef<Path>, threads: usize) -> io::Result<Graph> {
    let (n, edges) = read_chunked_edges(path)?;
    Ok(Graph::from_canonical_edges_parallel(n, edges, threads))
}

/// Build a `DNECSRF1` on-disk CSR container (see [`crate::mmap`] for the
/// layout) from a replayable edge stream, holding only `O(|V|)` heap.
///
/// `pass` must replay the same canonical edge stream each time it is
/// called; it runs twice — once to count degrees, once to fill the
/// memory-mapped arrays in place. The source must not change between the
/// passes (a changed edge count is detected and rejected; a same-count
/// mutation would silently corrupt the output, as with any two-pass
/// converter).
fn build_csr_file<F>(path: &Path, n: VertexId, m: u64, mut pass: F) -> io::Result<()>
where
    F: FnMut(&mut dyn FnMut(VertexId, VertexId)) -> io::Result<()>,
{
    let mut degrees = vec![0u64; n as usize];
    let mut counted = 0u64;
    pass(&mut |u, v| {
        degrees[u as usize] += 1;
        degrees[v as usize] += 1;
        counted += 1;
    })?;
    if counted != m {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("edge stream carried {counted} edges, header promised {m}"),
        ));
    }
    let mut offsets = vec![0u64; n as usize + 1];
    for v in 0..n as usize {
        offsets[v + 1] = offsets[v] + degrees[v];
    }
    drop(degrees);
    let len = crate::mmap::csr_file_len(n, m).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, "CSR section sizes overflow u64")
    })?;
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)?;
    file.set_len(len)?;
    // Fill through a shared read-write mapping: the adjacency fill is
    // random-access (one cursor per vertex), which the page cache absorbs;
    // the process heap stays at the O(|V|) offset/cursor arrays.
    let mut region = crate::mmap::MmapRegion::map(&file, len, true)?;
    {
        let words = region.u64s_mut();
        words[0] = u64::from_ne_bytes(*crate::mmap::CSR_MAGIC);
        words[1] = n.to_le();
        words[2] = m.to_le();
        words[3] = 0;
        let edges_at = (crate::mmap::CSR_HEADER_BYTES / 8) as usize;
        let offsets_at = edges_at + 2 * m as usize;
        let adj_v_at = offsets_at + n as usize + 1;
        let adj_e_at = adj_v_at + 2 * m as usize;
        for (i, &o) in offsets.iter().enumerate() {
            words[offsets_at + i] = o.to_le();
        }
        let mut cursor = offsets;
        let mut e = 0u64;
        pass(&mut |u, v| {
            words[edges_at + 2 * e as usize] = u.to_le();
            words[edges_at + 2 * e as usize + 1] = v.to_le();
            let cu = cursor[u as usize] as usize;
            words[adj_v_at + cu] = v.to_le();
            words[adj_e_at + cu] = e.to_le();
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            words[adj_v_at + cv] = u.to_le();
            words[adj_e_at + cv] = e.to_le();
            cursor[v as usize] += 1;
            e += 1;
        })?;
        if e != m {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("edge stream changed between passes ({e} edges, first pass saw {m})"),
            ));
        }
    }
    drop(region); // munmap flushes the shared mapping
    file.sync_all()
}

/// Write `g` as a `DNECSRF1` on-disk CSR container, openable with
/// [`open_csr_mmap`]. Works for any storage backend of `g` (the graph is
/// streamed, not sliced).
pub fn write_csr(g: &Graph, path: impl AsRef<Path>) -> io::Result<()> {
    build_csr_file(path.as_ref(), g.num_vertices(), g.num_edges(), |visit| {
        g.try_for_each_edge(|_, u, v| visit(u, v))
    })
}

/// Convert a finished `DNECHNK1` chunked file into a `DNECSRF1` CSR
/// container without ever materializing the graph: two streaming passes
/// over the chunks fill the memory-mapped output in place, so peak heap is
/// `O(|V| + chunk)`. Returns the edge count.
pub fn csr_from_chunked(src: impl AsRef<Path>, dst: impl AsRef<Path>) -> io::Result<u64> {
    let src = src.as_ref();
    let (n, m) = {
        let r = ChunkedEdgeReader::open(src)?;
        (r.num_vertices(), r.declared_edges())
    };
    build_csr_file(dst.as_ref(), n, m, |visit| {
        let mut r = ChunkedEdgeReader::open(src)?;
        let mut chunk = Vec::new();
        while r.next_chunk(&mut chunk)? {
            for &(u, v) in &chunk {
                visit(u, v);
            }
        }
        Ok(())
    })?;
    Ok(m)
}

/// Open a `DNECSRF1` container as a [`Graph`] on the memory-mapped
/// storage backend ([`crate::mmap::MmapCsr`]).
pub fn open_csr_mmap(path: impl AsRef<Path>) -> io::Result<Graph> {
    Ok(Graph::from_storage(std::sync::Arc::new(crate::mmap::MmapCsr::open(path)?)))
}

/// Open a finished `DNECHNK1` file as a [`Graph`] on the chunk-streamed
/// storage backend ([`crate::storage::ChunkStore`]) — no adjacency, no
/// full edge materialization, bounded memory.
pub fn open_chunk_streamed(path: impl AsRef<Path>) -> io::Result<Graph> {
    Ok(Graph::from_storage(std::sync::Arc::new(crate::storage::ChunkStore::open(path)?)))
}

/// Sibling path where [`open_chunked_with`] caches the CSR container for
/// the mmap backend: the chunked file's name with `.csr` appended.
pub fn csr_cache_path(chunked: impl AsRef<Path>) -> std::path::PathBuf {
    let mut os = chunked.as_ref().as_os_str().to_os_string();
    os.push(".csr");
    std::path::PathBuf::from(os)
}

/// Open a finished `DNECHNK1` file as a [`Graph`] on the requested
/// storage backend:
///
/// * [`StorageKind::InMemory`] — decode every chunk and build the heap
///   CSR ([`read_chunked`]);
/// * [`StorageKind::Mmap`] — convert to a sibling `DNECSRF1` container
///   (cached at [`csr_cache_path`], rebuilt when missing or older than
///   the source) and map it read-only;
/// * [`StorageKind::ChunkStreamed`] — stream the chunks directly.
pub fn open_chunked_with(path: impl AsRef<Path>, kind: StorageKind) -> io::Result<Graph> {
    let path = path.as_ref();
    match kind {
        StorageKind::InMemory => read_chunked(path),
        StorageKind::ChunkStreamed => open_chunk_streamed(path),
        StorageKind::Mmap => {
            let (n, m) = {
                let r = ChunkedEdgeReader::open(path)?;
                (r.num_vertices(), r.declared_edges())
            };
            let csr = csr_cache_path(path);
            let fresh = match (std::fs::metadata(&csr), std::fs::metadata(path)) {
                (Ok(c), Ok(s)) => match (c.modified(), s.modified()) {
                    (Ok(cm), Ok(sm)) => cm >= sm,
                    _ => false,
                },
                _ => false,
            };
            if fresh {
                // A stale or foreign cache file must never win over the
                // source: accept it only if it opens cleanly and agrees on
                // both counts.
                if let Ok(g) = open_csr_mmap(&csr) {
                    if g.num_vertices() == n && g.num_edges() == m {
                        return Ok(g);
                    }
                }
            }
            csr_from_chunked(path, &csr)?;
            open_csr_mmap(&csr)
        }
    }
}

/// [`open_chunked_with`] on the backend selected by the
/// `DNE_GRAPH_STORAGE` environment variable (see
/// [`StorageKind::from_env`], which panics on unrecognized values).
pub fn open_chunked_env(path: impl AsRef<Path>) -> io::Result<Graph> {
    open_chunked_with(path, StorageKind::from_env())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use std::io::Cursor;

    #[test]
    fn text_roundtrip_via_tempfile() {
        let g = gen::rmat(&gen::RmatConfig::graph500(6, 4, 1));
        let dir = std::env::temp_dir().join("dne_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("g.txt");
        write_text_edge_list(&g, &p).unwrap();
        let g2 = read_text_edge_list(&p).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 2));
        let dir = std::env::temp_dir().join("dne_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("g.bin");
        write_binary(&g, &p).unwrap();
        let g2 = read_binary(&p).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.edges(), g2.edges());
    }

    #[test]
    fn text_reader_skips_comments_and_renumbers() {
        let text = "# snap comment\n% konect comment\n100 200\n200 300\n100 300\n";
        let g = read_text_edge_list_from(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn text_reader_rejects_garbage() {
        let text = "1 notanumber\n";
        assert!(read_text_edge_list_from(Cursor::new(text)).is_err());
    }

    #[test]
    fn text_reader_rejects_short_line() {
        let text = "42\n";
        assert!(read_text_edge_list_from(Cursor::new(text)).is_err());
    }

    #[test]
    fn text_reader_ignores_weight_column() {
        let text = "0 1 0.5\n1 2 3\n";
        let g = read_text_edge_list_from(Cursor::new(text)).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_reader_rejects_bad_weight_and_extra_tokens_with_line_number() {
        let e = read_text_edge_list_from(Cursor::new("0 1\n1 2 notaweight\n")).unwrap_err();
        assert!(e.to_string().contains("line 2"), "got: {e}");
        let e = read_text_edge_list_from(Cursor::new("# header\n0 1 1.0 extra\n")).unwrap_err();
        assert!(e.to_string().contains("line 2"), "got: {e}");
        assert!(e.to_string().contains("extra"), "got: {e}");
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dne_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn chunked_roundtrip_is_exact_serial_and_parallel() {
        let g = gen::rmat(&gen::RmatConfig::graph500(10, 8, 5));
        let p = tmp("g.chunked");
        write_chunked(&g, &p, 1000).unwrap();
        assert_eq!(g, read_chunked(&p).unwrap());
        assert_eq!(g, read_chunked_parallel(&p, 4).unwrap());
    }

    #[test]
    fn chunked_writer_streams_and_patches_header() {
        let g = gen::rmat(&gen::RmatConfig::graph500(8, 4, 9));
        let p = tmp("g_stream.chunked");
        let mut w = ChunkedGraphWriter::create(&p, g.num_vertices()).unwrap();
        for chunk in g.edges().chunks(100) {
            w.write_chunk(chunk).unwrap();
        }
        assert_eq!(w.edges_written(), g.num_edges());
        assert_eq!(w.finish().unwrap(), g.num_edges());
        assert_eq!(g, read_chunked(&p).unwrap());
    }

    #[test]
    fn chunked_writer_rejects_out_of_order_and_non_canonical() {
        let p = tmp("g_bad.chunked");
        let mut w = ChunkedGraphWriter::create(&p, 10).unwrap();
        w.write_chunk(&[(0, 1), (1, 2)]).unwrap();
        assert!(w.write_chunk(&[(0, 2)]).is_err(), "out of order across chunks");
        let mut w = ChunkedGraphWriter::create(&p, 10).unwrap();
        assert!(w.write_chunk(&[(2, 1)]).is_err(), "non-canonical pair");
        let mut w = ChunkedGraphWriter::create(&p, 2).unwrap();
        assert!(w.write_chunk(&[(1, 5)]).is_err(), "endpoint out of range");
    }

    #[test]
    fn chunked_reader_rejects_unfinished_file() {
        let p = tmp("unfinished.chunked");
        let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 3));
        let mut w = ChunkedGraphWriter::create(&p, g.num_vertices()).unwrap();
        w.write_chunk(g.edges()).unwrap();
        drop(w); // simulate a crash before finish() patches the header
        let e = read_chunked(&p).unwrap_err();
        assert!(e.to_string().contains("unfinished"), "got: {e}");
    }

    #[test]
    fn chunked_reader_rejects_absurd_declared_count() {
        let p = tmp("liar.chunked");
        let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 4));
        write_chunked(&g, &p, 64).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[16..24].copy_from_slice(&(1u64 << 62).to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        let e = read_chunked(&p).unwrap_err();
        assert!(e.to_string().contains("can hold"), "got: {e}");
    }

    #[test]
    fn chunked_reader_rejects_frame_sum_disagreeing_with_header() {
        // A *modest* lie: the declared |E| fits the payload cap, but the
        // frames sum to something else. Both the streaming reader and the
        // seek-based frame scanner must reject it with a typed error
        // naming both counts.
        let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 8));
        let m = g.num_edges();
        for lie in [m - 1, m + 1] {
            let p = tmp(&format!("count_lie_{lie}.chunked"));
            write_chunked(&g, &p, 64).unwrap();
            let mut bytes = std::fs::read(&p).unwrap();
            bytes[16..24].copy_from_slice(&lie.to_le_bytes());
            std::fs::write(&p, &bytes).unwrap();
            let e = scan_chunked_frames(&p).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "scan, lie={lie}");
            assert!(
                e.to_string().contains(&format!("declares {lie} edges"))
                    && e.to_string().contains(&format!("sum to {m}")),
                "scan must name both counts, got: {e}"
            );
            assert!(read_chunked(&p).is_err(), "streaming read, lie={lie}");
            let e = open_chunk_streamed(&p).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "open, lie={lie}");
        }
    }

    #[test]
    fn chunked_reader_returns_err_on_corrupt_payload() {
        let p = tmp("flipped.chunked");
        let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 6));
        write_chunked(&g, &p, 64).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        // Flip a byte inside the first frame's payload (header is 24 bytes,
        // frame length 8 more) — must surface as Err, never a panic.
        let target = 24 + 8 + 3;
        bytes[target] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        let e = read_chunked(&p).unwrap_err();
        assert!(e.to_string().contains("corrupt frame"), "got: {e}");
        assert!(read_chunked_parallel(&p, 4).is_err());
    }

    #[test]
    fn chunked_reader_rejects_wrong_magic_and_truncation() {
        let p = tmp("not_chunked.bin");
        let g = gen::rmat(&gen::RmatConfig::graph500(6, 4, 1));
        write_binary(&g, &p).unwrap();
        assert!(read_chunked(&p).is_err());
        let p = tmp("truncated.chunked");
        write_chunked(&g, &p, 50).unwrap();
        let full = std::fs::read(&p).unwrap();
        std::fs::write(&p, &full[..full.len() - 7]).unwrap();
        assert!(read_chunked(&p).is_err());
    }
}
