//! Offline shim for the subset of `proptest` used by this workspace.
//!
//! The container building this repo cannot reach crates.io, so this crate
//! provides an API-compatible property-testing harness: the `proptest!`
//! macro, `Strategy` for integer ranges / tuples / `collection::vec`, the
//! `prop_assert*` / `prop_assume!` macros, and `ProptestConfig`. Inputs are
//! drawn from a deterministic per-test RNG (seeded from the test name), so
//! failures are reproducible run to run. No shrinking is performed: a
//! failing case panics with the assertion message directly.

use std::ops::Range;

/// Deterministic RNG (splitmix64) driving input generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (the generated test's name), so each
    /// property gets an independent but stable stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A recipe for generating test-case values.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `Vec` strategy: a length drawn from `len`, elements from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = Strategy::generate(&self.len, rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-property configuration (only the case count is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case (it does not count toward the case budget's
/// semantics here: the case is simply abandoned).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::ops::ControlFlow::Break(());
        }
    };
}

/// Define property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(0u32..10, 0..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                // The closure is what lets `prop_assume!` abandon a case
                // with `return`; clippy's "inline the closure" suggestion
                // would break that.
                #[allow(clippy::redundant_closure_call)]
                let _flow: ::core::ops::ControlFlow<()> = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                    ::core::ops::ControlFlow::Continue(())
                })();
            }
        }
        $crate::__proptest_each! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(u64, u64)>> {
        prop::collection::vec((0u64..10, 0u64..10), 0..50)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn range_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_strategy_in_bounds(v in pairs()) {
            prop_assert!(v.len() < 50);
            for &(a, b) in &v {
                prop_assert!(a < 10 && b < 10);
            }
        }

        #[test]
        fn assume_skips(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
