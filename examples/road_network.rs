//! Road-network scenario (non-skewed graphs, paper §7.7): on a lattice
//! road graph, direct optimizers — including Distributed NE — reach
//! RF ≈ 1, and classic vertex partitioning is a perfectly good choice.
//!
//! Run with: `cargo run --release --example road_network`

use distributed_ne::graph::degree::degree_stats;
use distributed_ne::partition::hash_based::{GridPartitioner, RandomPartitioner};
use distributed_ne::partition::vertex::MetisLikePartitioner;
use distributed_ne::partition::VertexToEdge;
use distributed_ne::prelude::*;

fn main() {
    // A California-like road lattice: low uniform degree, strong locality.
    let graph = road_grid(64, 64, 0.72, 0.02, 11);
    let s = degree_stats(&graph);
    println!(
        "road network: |V| = {}, |E| = {}, max degree = {} (skew {:.1})",
        graph.num_vertices(),
        graph.num_edges(),
        s.max,
        s.skew
    );
    let k = 16;
    let rows: Vec<(String, f64)> = vec![
        measure(&graph, &RandomPartitioner::new(1), k),
        measure(&graph, &GridPartitioner::new(1), k),
        measure(&graph, &VertexToEdge::new(MetisLikePartitioner::new(1), 1), k),
        measure(&graph, &DistributedNe::new(NeConfig::default().with_seed(1)), k),
    ];
    println!("\n{:<16} {:>6}", "method", "RF");
    for (name, rf) in rows {
        println!("{name:<16} {rf:>6.3}");
    }
    println!(
        "\nTable 6's message: on non-skewed graphs everyone in the direct\n\
         family is near-optimal; Distributed NE is built for skew but does\n\
         not regress here."
    );
}

fn measure(g: &Graph, m: &dyn EdgePartitioner, k: u32) -> (String, f64) {
    let q = PartitionQuality::measure(g, &m.partition(g, k));
    (m.name(), q.replication_factor)
}
