//! Degree-distribution statistics.
//!
//! Used by the benchmark harness to verify that the synthetic stand-ins for
//! the paper's real-world datasets preserve the degree skew that drives
//! partitioning difficulty (§1: "skewed-degree distribution, namely, there
//! are a few high-degree vertices, whereas the rest have low degree").

use crate::Graph;

/// Summary statistics of a graph's degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree (0 if isolated vertices exist).
    pub min: u64,
    /// Maximum degree.
    pub max: u64,
    /// Mean degree `2|E|/|V|`.
    pub mean: f64,
    /// Median degree.
    pub p50: u64,
    /// 90th percentile degree.
    pub p90: u64,
    /// 99th percentile degree.
    pub p99: u64,
    /// Ratio `max / mean` — a quick skew indicator (≫ 1 for power-law
    /// graphs, ≈ 1–2 for road networks).
    pub skew: f64,
}

/// Compute [`DegreeStats`] for a graph. `O(|V| log |V|)`.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.num_vertices();
    if n == 0 {
        return DegreeStats { min: 0, max: 0, mean: 0.0, p50: 0, p90: 0, p99: 0, skew: 0.0 };
    }
    let mut degrees: Vec<u64> = g.vertices().map(|v| g.degree(v)).collect();
    degrees.sort_unstable();
    let pct = |q: f64| -> u64 {
        let idx = ((n as f64 - 1.0) * q).round() as usize;
        degrees[idx]
    };
    let mean = 2.0 * g.num_edges() as f64 / n as f64;
    let max = *degrees.last().unwrap();
    DegreeStats {
        min: degrees[0],
        max,
        mean,
        p50: pct(0.50),
        p90: pct(0.90),
        p99: pct(0.99),
        skew: if mean > 0.0 { max as f64 / mean } else { 0.0 },
    }
}

/// Degree histogram as `(degree, count)` pairs sorted by degree — handy for
/// eyeballing power-law behaviour in examples.
pub fn degree_histogram(g: &Graph) -> Vec<(u64, u64)> {
    let mut counts = crate::hash::FastMap::default();
    for v in g.vertices() {
        *counts.entry(g.degree(v)).or_insert(0u64) += 1;
    }
    let mut out: Vec<(u64, u64)> = counts.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_star() {
        let g = gen::star(11);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert_eq!(s.p50, 1);
        assert!((s.mean - 2.0 * 10.0 / 11.0).abs() < 1e-12);
        assert!(s.skew > 4.0);
    }

    #[test]
    fn stats_of_cycle_are_flat() {
        let g = gen::cycle(50);
        let s = degree_stats(&g);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert_eq!(s.p99, 2);
        assert!((s.skew - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_vertex_count() {
        let g = gen::rmat(&gen::RmatConfig::graph500(8, 4, 5));
        let h = degree_histogram(&g);
        let total: u64 = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::Graph::from_canonical_edges(0, vec![]);
        let s = degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }
}
