//! Run the complete reproduction suite (quick preset) — every table and
//! figure binary in sequence. TSVs land in `bench_results/`.
//!
//! Usage: `cargo run -p dne-bench --release --bin run_all [full]`
//!
//! The `DNE_TRANSPORT` environment variable (`loopback` | `bytes` | `tcp`)
//! selects the simulated cluster's transport backend for the whole suite;
//! it is inherited by every child binary. Partitioning results are
//! identical under all backends — `bytes` round-trips every message
//! through the real wire codec, `tcp` additionally carries the frames
//! over real localhost sockets; both report exact (rather than estimated)
//! comm volumes. `DNE_COMM_BATCH` (`off` | envelope count) additionally
//! coalesces small same-destination envelopes into multi-message frames —
//! results and logical accounting are identical, only the physical frame
//! count changes.
//!
//! The suite ends with two multi-process acceptance gates: the
//! `dne-tcp-worker` compare step (a real multi-process TCP partition
//! whose non-timing TSV columns are asserted identical to the in-process
//! loopback and bytes runs) and the `dne-client` lookup-service step (a
//! spawned `dne-server` answering concurrent assignment lookups, every
//! response asserted byte-identical to the offline assignment).

use std::process::Command;

use dne_runtime::{BatchConfig, CollectiveTopology, TransportKind};

fn main() {
    let full = std::env::args().any(|a| a == "full");
    let mode = if full { "full" } else { "quick" };
    // Validate DNE_TRANSPORT, DNE_COLLECTIVES, and DNE_COMM_BATCH up
    // front so a typo fails before, not after, an hours-long sweep;
    // children inherit the environment unchanged.
    let transport = TransportKind::from_env();
    let collectives = CollectiveTopology::from_env();
    let batch = BatchConfig::from_env();
    println!("transport: {transport}");
    println!("collectives: {collectives}");
    println!(
        "comm batch: {}",
        if batch.enabled() { format!("{} msgs/frame", batch.max_msgs) } else { "off".into() }
    );
    let bins = [
        "table1_bounds",
        "fig6_lambda",
        "fig8_quality",
        "fig9_memory",
        "fig10_time",
        "table4_sequential",
        "table5_apps",
        "app_suite",
        "table6_roads",
        // Multi-process acceptance gate: spawns real worker processes and
        // asserts tcp == bytes == loopback on all non-timing columns.
        "dne-tcp-worker",
        // Service acceptance gate: spawns dne-server, drives concurrent
        // lookup connections, asserts every response byte-identical to
        // the offline assignment.
        "dne-client",
    ];
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("bench binaries live next to run_all");
    for bin in bins {
        println!("\n################ {bin} ({mode}) ################");
        let status = Command::new(exe_dir.join(bin))
            .arg(mode)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
    println!("\nAll experiments completed; TSVs in bench_results/.");
}
