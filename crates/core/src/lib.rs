//! # dne-core — Distributed Neighbor Expansion (Distributed NE)
//!
//! The paper's primary contribution: a parallel and distributed edge
//! partitioning method that scales to trillion-edge graphs while providing
//! high partitioning quality with a proven upper bound
//! (Hanai et al., PVLDB 12(13), 2019).
//!
//! ## Algorithm map (paper → module)
//!
//! | Paper element | Module |
//! |---|---|
//! | Algorithm 1 (expansion process: vertex selection, allocation request, boundary/edge-set update, termination) | [`expansion`] |
//! | Algorithm 2 + 3 (distributed edge allocation: one-hop, vertex sync, two-hop, local D_rest) | [`allocation`] |
//! | §4 data structure (2D-hash initial distribution, CSR subgraphs, vertices replicated / edges unique, functional replica metadata) | [`dist`] |
//! | Algorithm 4 (multi-expansion with factor λ) | [`boundary`] + [`expansion`] |
//! | §6 Theorems 1–3 (upper bound, tightness, power-law expectations, Table 1) | [`theory`] |
//! | Figure 4 work/data flow | [`partitioner`] (drives one machine per rank with colocated expansion + allocation processes) |
//! | Elastic fault tolerance (beyond the paper: per-round `DNESNAP1` checkpoints, restart-and-rejoin) | [`snapshot`] |
//! | Dead-rank edge migration (beyond the paper: evacuate a lost partition onto survivors from checkpoints) | [`recovery`] |
//!
//! ## Quick start
//!
//! ```
//! use dne_core::{DistributedNe, NeConfig};
//! use dne_partition::{EdgePartitioner, PartitionQuality};
//! use dne_graph::gen::{rmat, RmatConfig};
//!
//! let g = rmat(&RmatConfig::graph500(10, 8, 7));
//! let ne = DistributedNe::new(NeConfig::default().with_seed(7));
//! let (assignment, stats) = ne.partition_with_stats(&g, 8);
//! let q = PartitionQuality::measure(&g, &assignment);
//! // Theorem 1: RF ≤ (|E| + |V| + |P|) / |V|
//! let ub = dne_core::theory::upper_bound(g.num_edges(), g.num_vertices(), 8);
//! assert!(q.replication_factor <= ub);
//! assert!(stats.iterations > 0);
//! ```

#![deny(missing_docs)]

pub mod allocation;
pub mod boundary;
pub mod config;
pub mod dist;
pub mod expansion;
pub mod messages;
pub mod partitioner;
pub mod recovery;
pub mod snapshot;
pub mod stats;
pub mod theory;

pub use config::{CheckpointPolicy, NeConfig};
pub use messages::NeMsg;
pub use partitioner::{DistributedNe, RankRun};
pub use recovery::{migrate_dead_rank, MigrationReport};
pub use snapshot::{RankSnapshot, SnapshotError};
pub use stats::NeStats;
