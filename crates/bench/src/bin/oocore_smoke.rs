//! Out-of-core smoke test: partition a graph whose in-memory CSR does not
//! fit under a hard address-space cap (`ulimit -v`), using the storage
//! backend selected by `DNE_GRAPH_STORAGE`.
//!
//! Two subcommands, designed to be driven from a shell (see README
//! "Out-of-core partitioning" and `.github/workflows/ci.yml`):
//!
//! * `prepare <chunked-path> [scale] [edge-factor]` — generate an RMAT
//!   graph, write it as a DNECHNK1 chunked file, and print the byte
//!   budget an in-memory CSR of it would need.
//! * `run <chunked-path> [k] [frontier-budget]` — open the chunked file
//!   with the backend from `DNE_GRAPH_STORAGE`, run Distributed NE with a
//!   fixed seed, and print a one-line summary ending in the assignment
//!   fingerprint. Equal fingerprints across backends prove bit-identical
//!   partitions; running the `in-memory` backend under an address-space
//!   cap sized between the streamed and in-memory peaks demonstrates the
//!   out-of-core point (it dies, `chunk-streamed` completes).
//!
//! Everything is deterministic: same file + same `k` + same seed =>
//! same fingerprint, on every backend and transport.

use dne_core::{DistributedNe, NeConfig};
use dne_graph::gen::{rmat_parallel, RmatConfig};
use dne_graph::parallel::default_ingest_threads;
use dne_graph::{io, StorageKind};
use std::path::Path;
use std::process::ExitCode;

const SEED: u64 = 7;

fn usage() -> ExitCode {
    eprintln!(
        "usage: oocore_smoke prepare <chunked-path> [scale] [edge-factor]\n\
         \x20      oocore_smoke run <chunked-path> [k] [frontier-budget]"
    );
    ExitCode::FAILURE
}

fn arg_u64(args: &[String], i: usize, default: u64) -> u64 {
    args.get(i).map(|s| s.parse().expect("numeric argument")).unwrap_or(default)
}

fn prepare(path: &Path, scale: u64, ef: u64) -> std::io::Result<()> {
    let g = rmat_parallel(&RmatConfig::graph500(scale as u32, ef, SEED), default_ingest_threads());
    let (n, m) = (g.num_vertices(), g.num_edges());
    io::write_chunked(&g, path, 1 << 16)?;
    // In-memory CSR footprint: edges (16m) + offsets (8(n+1)) + adjacency
    // (2 arrays of 2m ids each, 32m).
    let csr_bytes = 48 * m + 8 * (n + 1);
    println!("prepared {} |V|={n} |E|={m} in-memory-csr-bytes={csr_bytes}", path.display());
    Ok(())
}

fn run(path: &Path, k: u32, frontier_budget: u64) -> std::io::Result<()> {
    let kind = StorageKind::from_env();
    let g = io::open_chunked_with(path, kind)?;
    let mut config = NeConfig::default().with_seed(SEED);
    if frontier_budget > 0 {
        config = config.with_frontier_budget(frontier_budget);
    }
    let ne = DistributedNe::new(config);
    let (assignment, stats) = ne.partition_with_stats(&g, k);
    let rss = dne_runtime::peak_rss_bytes()
        .map(|b| format!("{:.1}", b as f64 / (1024.0 * 1024.0)))
        .unwrap_or_else(|| "-".into());
    println!(
        "backend={kind} k={k} iterations={} mem_score={:.2} peak_rss_mib={rss} fingerprint={:016x}",
        stats.iterations,
        stats.mem_score,
        assignment.fingerprint()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let path = Path::new(path);
    let result = match cmd.as_str() {
        "prepare" => prepare(path, arg_u64(&args, 2, 16), arg_u64(&args, 3, 24)),
        "run" => run(path, arg_u64(&args, 2, 8) as u32, arg_u64(&args, 3, 0)),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("oocore_smoke {cmd} failed: {e}");
            ExitCode::FAILURE
        }
    }
}
