//! The coalescing/overlap equivalence harness — the acceptance gate for
//! the pipelined communication path (frame coalescing, eager receive
//! draining, and the double-buffered NE termination gather).
//!
//! Coalescing and overlap are *performance* levers: they change how many
//! physical frames cross the fabric and when, never what the algorithms
//! compute or how much logical traffic they charge. The suites here pin
//! that contract: `DistributedNe` and the application engine must produce
//! bit-identical results and identical logical message/byte accounting
//! with batching on or off, under every transport backend, while the
//! physical frame count may only stay equal or drop.
//!
//! Fault injection then covers the overlapped round shape: a rank that
//! dies abnormally in the middle of a pipelined round (send fan-out done,
//! split all-gather in flight) must surface a typed `TransportError` at
//! every survivor — never a hang.

mod common;

use common::TRANSPORTS;
use distributed_ne::apps::Engine;
use distributed_ne::core::{DistributedNe, NeConfig, NeMsg};
use distributed_ne::graph::gen;
use distributed_ne::graph::hash::mix2;
use distributed_ne::partition::{EdgePartitioner, PartitionQuality};
use distributed_ne::runtime::{
    BatchConfig, Cluster, TcpProcessCluster, TransportError, TransportKind,
};

/// The batch settings every suite sweeps: coalescing off (the classic
/// one-frame-per-envelope behavior), a small threshold that forces many
/// mid-round auto-flushes, and one large enough that only the explicit
/// flush points emit frames.
const BATCHES: [(&str, BatchConfig); 3] = [
    ("off", BatchConfig::disabled()),
    ("msgs8", BatchConfig::msgs(8)),
    ("msgs512", BatchConfig::msgs(512)),
];

/// Order-insensitive fingerprint of an edge assignment (the same
/// construction the collective-equivalence harness and `dne-tcp-worker`
/// use).
fn assignment_fingerprint(a: &distributed_ne::partition::EdgeAssignment) -> u64 {
    let per_part: Vec<u64> = a
        .edges_by_partition()
        .into_iter()
        .map(|mut edges| {
            edges.sort_unstable();
            edges.iter().fold(0x444E_4531u64, |h, &e| mix2(h, e))
        })
        .collect();
    per_part.iter().fold(0x4D45_5348u64, |h, &f| mix2(h, f))
}

#[test]
fn distributed_ne_is_bit_identical_with_coalescing_on_and_off() {
    let graphs = [
        ("rmat", gen::rmat(&gen::RmatConfig::graph500(8, 6, 5))),
        ("star", gen::star(64)),
        ("path", gen::path(100)),
    ];
    let k = 4u32;
    for (name, g) in &graphs {
        let run = |kind, batch| {
            DistributedNe::new(
                NeConfig::default().with_seed(11).with_transport(kind).with_comm_batch(batch),
            )
            .partition_with_stats(g, k)
        };
        let (a_ref, s_ref) = run(TransportKind::Loopback, BatchConfig::disabled());
        let q_ref = PartitionQuality::measure(g, &a_ref);
        let fp_ref = assignment_fingerprint(&a_ref);
        for kind in TRANSPORTS {
            for (bname, batch) in BATCHES {
                let (a, s) = run(kind, batch);
                let label = format!("{name}/{kind}/batch={bname}");
                assert_eq!(a, a_ref, "{label}: assignments must be bit-identical");
                assert_eq!(assignment_fingerprint(&a), fp_ref, "{label}: assignment fingerprint");
                assert_eq!(s.iterations, s_ref.iterations, "{label}: iteration count");
                assert_eq!(s.collective_rounds, s_ref.collective_rounds, "{label}: rounds");
                let q = PartitionQuality::measure(g, &a);
                assert_eq!(q.replication_factor, q_ref.replication_factor, "{label}: RF");
                assert_eq!(q.edge_balance, q_ref.edge_balance, "{label}: EB");
                // Logical accounting is batching- and transport-invariant.
                assert_eq!(s.comm_bytes, s_ref.comm_bytes, "{label}: comm bytes");
                assert_eq!(s.comm_msgs, s_ref.comm_msgs, "{label}: comm msgs");
                // Physical frames are the only thing allowed to move, and
                // only downward.
                assert_eq!(
                    run(kind, BatchConfig::disabled()).1.comm_frames,
                    s_ref.comm_frames,
                    "{label}: unbatched frame counts must agree across transports"
                );
                assert!(
                    s.comm_frames <= s_ref.comm_frames,
                    "{label}: coalescing must not add frames ({} > {})",
                    s.comm_frames,
                    s_ref.comm_frames
                );
            }
        }
    }
}

#[test]
fn app_engine_is_bit_identical_with_coalescing_on_and_off() {
    let g = gen::rmat(&gen::RmatConfig::graph500(7, 4, 3));
    let k = 4u32;
    let a = DistributedNe::new(NeConfig::default().with_seed(3)).partition(&g, k);
    let run = |kind, batch| {
        let engine = Engine::new(&g, &a).with_transport(kind).with_comm_batch(batch);
        (engine.wcc(), engine.pagerank(5), engine.triangles())
    };
    let (wcc_ref, pr_ref, tri_ref) = run(TransportKind::Loopback, BatchConfig::disabled());
    for kind in TRANSPORTS {
        for (bname, batch) in BATCHES {
            let (wcc, pr, tri) = run(kind, batch);
            for (l, r) in [(&wcc_ref, &wcc), (&pr_ref, &pr), (&tri_ref, &tri)] {
                let label = format!("{}/{kind}/batch={bname}", l.name);
                assert_eq!(l.supersteps, r.supersteps, "{label}: supersteps");
                assert_eq!(l.comm_bytes, r.comm_bytes, "{label}: comm bytes");
                assert_eq!(l.comm_msgs, r.comm_msgs, "{label}: comm msgs");
                assert_eq!(l.aggregate, r.aggregate, "{label}: aggregate");
                for (x, y) in l.values.iter().zip(&r.values) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{label}: values must be bit-identical");
                }
            }
        }
    }
}

#[test]
fn coalescing_cuts_tcp_frames_at_least_three_fold_at_p16() {
    // The ISSUE acceptance gate, verbatim: 10k small `NeMsg` envelopes
    // over real sockets at P = 16 must cross the fabric in at least 3×
    // fewer physical frames than envelopes once coalescing is on. 42
    // envelopes per destination per rank = 42 · 15 · 16 = 10 080 remote
    // envelopes; with `DNE_COMM_BATCH=64` nothing auto-flushes below 64,
    // so each rank's per-destination buffer collapses into exactly one
    // multi-message frame at the receive flush point.
    let p = 16usize;
    let per_dst = 42u64;
    let run = |batch| {
        let outcome = Cluster::with_transport(p, TransportKind::Tcp)
            .with_comm_batch(batch)
            .run::<NeMsg, u64, _>(|ctx| {
                for dst in (0..p).filter(|&d| d != ctx.rank()) {
                    for i in 0..per_dst {
                        ctx.send(dst, NeMsg::Select { vertices: vec![i, i + 1], random_budget: 0 });
                    }
                }
                let mut got = 0u64;
                for _ in 0..per_dst as usize * (p - 1) {
                    let (_, msg) = ctx.recv();
                    if let NeMsg::Select { vertices, .. } = msg {
                        got += vertices.len() as u64;
                    }
                }
                got
            });
        (outcome.comm.total_msgs(), outcome.comm.total_frames())
    };
    let envelopes = per_dst * (p as u64 - 1) * p as u64;
    assert!(envelopes >= 10_000, "the sweep must move at least 10k envelopes");
    let (plain_msgs, plain_frames) = run(BatchConfig::disabled());
    assert_eq!(plain_msgs, envelopes, "logical envelope count");
    assert_eq!(plain_frames, envelopes, "unbatched: one frame per remote envelope");
    let (batched_msgs, batched_frames) = run(BatchConfig::msgs(64));
    assert_eq!(batched_msgs, envelopes, "coalescing must not change logical accounting");
    assert!(
        3 * batched_frames <= envelopes,
        "coalescing must cut frames at least 3x: {batched_frames} frames for {envelopes} envelopes"
    );
}

#[test]
fn aborted_rank_mid_pipelined_round_is_a_typed_error_at_survivors() {
    // The overlapped round shape under fire: three tcp process sessions
    // run pipelined rounds (coalesced exchange fan-out, then a split
    // all-gather with an eager drain between start and finish). Rank 1
    // completes one round and then dies abnormally — its thread panics,
    // so its endpoint slams the sockets without goodbye frames, exactly
    // what a killed process looks like. Both survivors must surface a
    // typed `Disconnected`/`Io` error from whichever pipelined call they
    // are blocked in — never a hang.
    let p = 3usize;
    let host = TcpProcessCluster::host(p, "127.0.0.1:0").unwrap();
    let addr = host.addr().to_string();
    let mut host = Some(host);
    let errors: Vec<TransportError> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for rank in 0..p {
            let addr = addr.clone();
            let cluster = host.take();
            handles.push(s.spawn(move || {
                let cluster = match cluster {
                    Some(h) => h,
                    None => TcpProcessCluster::join(rank, p, &addr).unwrap(),
                };
                let mut session = cluster
                    .connect_with_comm_batch::<u64>(BatchConfig::msgs(8))
                    .expect("bootstrap");
                let ctx = &mut session.ctx;
                let mut round = 0u64;
                loop {
                    round += 1;
                    // Coalesced point-to-point fan-out (two envelopes per
                    // destination, flushed by the lock-step receive).
                    let r = (|| {
                        for dst in 0..p {
                            ctx.try_send(dst, round)?;
                            ctx.try_send(dst, round * 10 + ctx.rank() as u64)?;
                        }
                        ctx.try_flush()?;
                        for _ in 0..2 * p {
                            let _ = ctx.try_recv()?;
                        }
                        // Split all-gather with the eager drain in the
                        // overlap window — the pipelined termination shape.
                        let pending = ctx.try_start_all_gather_u64(round)?;
                        let _ = ctx.try_drain_ready()?;
                        let gathered = ctx.try_finish_all_gather_u64(pending)?;
                        assert_eq!(gathered, vec![round; p]);
                        Ok(())
                    })();
                    match r {
                        Ok(()) if ctx.rank() == 1 && round == 1 => {
                            // Dies abnormally: the unwinding thread drops
                            // the session in panic, which slams every
                            // socket with no goodbye.
                            panic!("injected mid-run failure");
                        }
                        Ok(()) => continue,
                        Err(e) => return e,
                    }
                }
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .filter_map(|(rank, h)| match h.join() {
                Ok(err) => Some(err),
                Err(_) => {
                    assert_eq!(rank, 1, "only the victim may panic");
                    None
                }
            })
            .collect()
    });
    assert_eq!(errors.len(), p - 1, "every survivor must observe the failure");
    for err in errors {
        assert!(
            matches!(err, TransportError::Disconnected { .. } | TransportError::Io { .. }),
            "expected a typed disconnect/io error, got {err}"
        );
    }
}
