//! Offline greedy expansion partitioners (Zhang et al., KDD 2017).
//!
//! NE is "the state-of-the-art greedy algorithm based on the expansion of
//! the edge set. It currently provides the best quality in practice, but the
//! scalability is limited since it is an offline sequential algorithm"
//! (paper §2.2). Table 4 compares Distributed NE against NE and its
//! streaming variant SNE: NE wins on RF, Distributed NE wins on time by
//! 1–2 orders of magnitude.

mod ne;
mod sne;

pub use ne::NePartitioner;
pub use sne::SnePartitioner;
