//! Request/response service layer over the shared wire framing.
//!
//! The rank-mesh fabric ([`crate::tcp`]) connects a *closed* set of peers
//! that all know each other; a partition lookup server faces the opposite
//! shape — an open set of clients that come and go. This module reuses
//! the session machinery underneath the mesh (the length-prefixed frame
//! codec, the push-based `FrameAssembler`, the `WriteQueue`
//! backpressure buffer, and the `poll(2)` shim) for that shape:
//!
//! * [`Service`] — the application seam: decode a request, produce a
//!   response, optionally ask the server to shut down afterwards;
//! * [`WireServer`] — a poll-based multi-client server: one thread
//!   multiplexes the accept loop and every client connection, with a
//!   per-connection [`crate::FramedReader`]-equivalent assembler and
//!   write queue;
//! * [`WireClient`] — a blocking client with request pipelining
//!   ([`WireClient::send`] buffers, [`WireClient::recv`] flushes and
//!   awaits), which is what makes six-figure lookup rates possible over
//!   a single connection window.
//!
//! # Wire format
//!
//! Requests and responses travel as classic frames
//! (`[u64 payload len][u32 seq][payload]`): the header field that carries
//! the source *rank* on mesh links carries a client-chosen **sequence
//! number** here, echoed verbatim in the response frame, so a pipelining
//! client can match responses to in-flight requests. Payloads are
//! [`WireEncode`]/[`WireDecode`] codec bytes, bounded by
//! [`MAX_FRAME_PAYLOAD`](crate::transport::MAX_FRAME_PAYLOAD).
//!
//! Malformed input never panics the server: garbage bytes, an oversized
//! length prefix, a batch-flagged frame, or a mid-request disconnect
//! close *that* connection with a typed reason while every other client
//! keeps being served (the malicious-client tests pin this down).

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};

use crate::frame::{classic_frame, FrameItem, FramedReader};
use crate::transport::{check_payload_bound, TransportError, FRAME_HEADER_BYTES};
use crate::wire::{WireDecode, WireEncode};

#[cfg(unix)]
use crate::frame::{Assembled, FrameAssembler, WriteQueue};
#[cfg(unix)]
use crate::poll;
#[cfg(unix)]
use crate::transport::BATCH_FLAG;
#[cfg(unix)]
use std::io::Read;
#[cfg(unix)]
use std::net::Shutdown;
#[cfg(unix)]
use std::os::unix::io::AsRawFd;
#[cfg(unix)]
use std::time::{Duration, Instant};

fn io_err(context: impl Into<String>, error: std::io::Error) -> TransportError {
    TransportError::Io { context: context.into(), error }
}

/// Environment variable naming the address a service binds or dials
/// (`host:port`; port `0` asks the OS for an ephemeral port).
pub const SERVER_ADDR_ENV: &str = "DNE_SERVER_ADDR";

/// The forms `parse_server_addr` accepts, for error messages.
const ADDR_FORMS: &str = "an IP socket address like \"127.0.0.1:7571\", \
                          \"0.0.0.0:0\", or \"[::1]:7571\"";

/// Parse a `host:port` socket address, rejecting anything that is not a
/// literal IP address and port (hostnames are deliberately not resolved:
/// a bind address must be unambiguous).
pub fn parse_server_addr(s: &str) -> Result<SocketAddr, String> {
    s.trim().parse().map_err(|_| format!("unrecognized address {s:?} (expected {ADDR_FORMS})"))
}

/// Read the service address from `DNE_SERVER_ADDR`. Unset or empty means
/// `default` (callers pass e.g. `"127.0.0.1:0"`).
///
/// # Panics
/// Panics on an unparsable or non-Unicode value, naming the accepted
/// form — a misconfigured server must fail loudly before it binds the
/// wrong interface.
pub fn server_addr_from_env(default: &str) -> SocketAddr {
    let fallback = || {
        parse_server_addr(default)
            .unwrap_or_else(|e| panic!("invalid {SERVER_ADDR_ENV} default: {e}"))
    };
    match std::env::var(SERVER_ADDR_ENV) {
        Ok(v) if !v.trim().is_empty() => {
            parse_server_addr(&v).unwrap_or_else(|e| panic!("invalid {SERVER_ADDR_ENV}: {e}"))
        }
        Err(std::env::VarError::NotUnicode(raw)) => {
            panic!("invalid {SERVER_ADDR_ENV}: non-Unicode value {raw:?} (expected {ADDR_FORMS})")
        }
        _ => fallback(),
    }
}

/// What a [`Service`] wants done with one request.
#[derive(Debug, PartialEq, Eq)]
pub enum ServiceReply<R> {
    /// Send the response and keep serving.
    Reply(R),
    /// Send the response, then stop the server once every queued
    /// response byte (across all connections) has been written.
    ReplyThenShutdown(R),
}

/// A request/response application served by a [`WireServer`].
///
/// The server owns the transport concerns (framing, bounds, malformed
/// input, connection lifecycle); the service sees only fully-decoded
/// requests and returns values — it can never observe a protocol
/// violation, so it has no error path of its own.
pub trait Service {
    /// Decoded request type.
    type Req: WireDecode;
    /// Response type (encoded by the server into the reply frame).
    type Resp: WireEncode;

    /// Handle one request. Called from the server's single poll thread,
    /// in per-connection FIFO order.
    fn handle(&mut self, req: Self::Req) -> ServiceReply<Self::Resp>;
}

/// Counters a finished [`WireServer::serve`] run reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Requests decoded and handled.
    pub requests: u64,
    /// Connections closed for protocol violations (garbage bytes,
    /// oversized length prefix, batch-flagged or undecodable requests,
    /// mid-request disconnect).
    pub protocol_errors: u64,
    /// Payload and header bytes read from clients.
    pub bytes_in: u64,
    /// Payload and header bytes queued to clients.
    pub bytes_out: u64,
}

/// How long a shutting-down server keeps trying to flush queued response
/// bytes before closing the remaining connections hard.
#[cfg(unix)]
const SHUTDOWN_DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// Per-connection state of the serve loop: the same assembler/queue pair
/// every mesh link runs on, reused for an anonymous client.
#[cfg(unix)]
struct Conn {
    sock: TcpStream,
    assembler: FrameAssembler,
    queue: WriteQueue,
}

#[cfg(unix)]
impl Conn {
    fn new(sock: TcpStream) -> Self {
        Self { sock, assembler: FrameAssembler::new(), queue: WriteQueue::default() }
    }
}

/// A poll-based multi-client request/response server over wire frames.
///
/// One thread multiplexes the listener and every live connection through
/// the shared `poll(2)` shim. See the [module docs](self) for the wire
/// format and the malformed-input contract.
pub struct WireServer {
    listener: TcpListener,
    addr: SocketAddr,
}

impl WireServer {
    /// Bind the server listener (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port, or the address `DNE_SERVER_ADDR` resolved to).
    pub fn bind(addr: &SocketAddr) -> Result<Self, TransportError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| io_err(format!("binding service at {addr}"), e))?;
        let addr =
            listener.local_addr().map_err(|e| io_err("reading service listener address", e))?;
        Ok(Self { listener, addr })
    }

    /// The bound address clients must dial (with the OS-assigned port
    /// when the bind address asked for port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve requests until the service returns
    /// [`ServiceReply::ReplyThenShutdown`]; returns the run's counters.
    ///
    /// Client misbehavior closes the offending connection and is counted
    /// in [`ServiceStats::protocol_errors`]; only server-side failures
    /// (the listener dying, a response exceeding the frame bound) abort
    /// the loop with an error.
    #[cfg(unix)]
    pub fn serve<S: Service>(self, service: &mut S) -> Result<ServiceStats, TransportError> {
        let mut stats = ServiceStats::default();
        let mut conns: Vec<Option<Conn>> = Vec::new();
        let mut scratch = vec![0u8; 64 << 10];
        let mut shutdown: Option<Instant> = None;
        self.listener.set_nonblocking(true).map_err(|e| io_err("configuring listener", e))?;

        loop {
            if let Some(deadline) = shutdown {
                // Drain queued response bytes, then stop. A client that
                // stopped reading cannot wedge the shutdown forever.
                let drained = conns.iter().flatten().all(|c| c.queue.frames.is_empty());
                if drained || Instant::now() > deadline {
                    for c in conns.iter().flatten() {
                        let _ = c.sock.shutdown(Shutdown::Both);
                    }
                    return Ok(stats);
                }
            }

            // Poll set: the listener (while still accepting), then every
            // connection — readable always, writable while bytes wait.
            let mut fds = Vec::with_capacity(conns.len() + 1);
            let mut idx: Vec<Option<usize>> = Vec::with_capacity(conns.len() + 1);
            if shutdown.is_none() {
                fds.push(poll::PollFd {
                    fd: self.listener.as_raw_fd(),
                    events: poll::POLLIN,
                    revents: 0,
                });
                idx.push(None);
            }
            for (i, c) in conns.iter().enumerate() {
                let Some(c) = c else { continue };
                let mut events = 0i16;
                if shutdown.is_none() {
                    events |= poll::POLLIN;
                }
                if !c.queue.frames.is_empty() {
                    events |= poll::POLLOUT;
                }
                if events != 0 {
                    fds.push(poll::PollFd { fd: c.sock.as_raw_fd(), events, revents: 0 });
                    idx.push(Some(i));
                }
            }
            // While shutting down, re-check the drain condition at least
            // every 50ms even if poll reports nothing.
            let timeout = if shutdown.is_some() { 50 } else { -1 };
            poll::poll_fds(&mut fds, timeout).map_err(|e| io_err("polling the service", e))?;

            for (k, fd) in fds.iter().enumerate() {
                if fd.revents == 0 {
                    continue;
                }
                match idx[k] {
                    None => self.accept_ready(&mut conns, &mut stats),
                    Some(i) => {
                        let closing = fd.revents & (poll::POLLERR | poll::POLLHUP) != 0;
                        let mut ok = true;
                        if shutdown.is_none() && (fd.revents & poll::POLLIN != 0 || closing) {
                            ok = read_ready(
                                conns[i].as_mut().expect("polled conns exist"),
                                &mut scratch,
                                service,
                                &mut stats,
                                &mut shutdown,
                            )?;
                        }
                        if ok && (fd.revents & poll::POLLOUT != 0 || closing) {
                            ok = write_ready(conns[i].as_mut().expect("polled conns exist"));
                        }
                        if !ok {
                            close(&mut conns[i]);
                        }
                    }
                }
            }
        }
    }

    /// Non-unix stub: the poll-based server needs `poll(2)` — a typed
    /// `Unsupported` error instead of a hang, mirroring the TCP fabric.
    #[cfg(not(unix))]
    pub fn serve<S: Service>(self, _service: &mut S) -> Result<ServiceStats, TransportError> {
        Err(TransportError::Io {
            context: "the poll-based wire server needs poll(2)".into(),
            error: std::io::Error::new(std::io::ErrorKind::Unsupported, "unsupported platform"),
        })
    }

    /// Accept every pending connection, reusing free slots.
    #[cfg(unix)]
    fn accept_ready(&self, conns: &mut Vec<Option<Conn>>, stats: &mut ServiceStats) {
        loop {
            match self.listener.accept() {
                Ok((sock, _)) => {
                    let _ = sock.set_nodelay(true);
                    if sock.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stats.accepted += 1;
                    let conn = Some(Conn::new(sock));
                    match conns.iter_mut().find(|c| c.is_none()) {
                        Some(slot) => *slot = conn,
                        None => conns.push(conn),
                    }
                }
                // WouldBlock ends the backlog; a transient accept error
                // (e.g. the peer resetting before we got to it) is not a
                // server failure either way.
                Err(_) => return,
            }
        }
    }
}

/// Close one connection and free its slot.
#[cfg(unix)]
fn close(slot: &mut Option<Conn>) {
    if let Some(c) = slot.take() {
        let _ = c.sock.shutdown(Shutdown::Both);
    }
}

/// Flush one connection's queued responses; `false` means the connection
/// failed and must be closed.
#[cfg(unix)]
fn write_ready(c: &mut Conn) -> bool {
    let mut sock = &c.sock;
    c.queue.drain_into(&mut sock).is_ok()
}

/// Read one connection's ready bytes, decode and handle every completed
/// request, and enqueue the responses. Returns `Ok(false)` when the
/// connection must be closed (EOF, goodbye, or a protocol violation —
/// violations are counted, never propagated); `Err` only for server-side
/// failures (a response exceeding the frame bound).
#[cfg(unix)]
fn read_ready<S: Service>(
    c: &mut Conn,
    scratch: &mut [u8],
    service: &mut S,
    stats: &mut ServiceStats,
    shutdown: &mut Option<Instant>,
) -> Result<bool, TransportError> {
    // Bound the reads per readable event so one firehose client cannot
    // starve the rest (the same fairness bound as the mesh io loop).
    for _ in 0..16 {
        match (&c.sock).read(scratch) {
            Ok(0) => {
                // EOF at a frame boundary is a clean hangup; inside a
                // frame it is a truncated request.
                if c.assembler.mid_frame() {
                    stats.protocol_errors += 1;
                }
                return Ok(false);
            }
            Ok(n) => {
                stats.bytes_in += n as u64;
                let items = match c.assembler.push(&scratch[..n], 0) {
                    Ok(items) => items,
                    Err(_) => {
                        // Oversized length prefix or other framing
                        // violation: close this client, keep serving.
                        stats.protocol_errors += 1;
                        return Ok(false);
                    }
                };
                for item in items {
                    let frame = match item {
                        // A goodbye frame is a polite hangup.
                        Assembled::Bye => return Ok(false),
                        Assembled::Frame(f) => f,
                    };
                    let len = u64::from_le_bytes(frame[0..8].try_into().expect("8-byte slice"));
                    if len & BATCH_FLAG != 0 {
                        // Multi-message frames belong to the mesh, not
                        // the request/response protocol.
                        stats.protocol_errors += 1;
                        return Ok(false);
                    }
                    let seq = u32::from_le_bytes(frame[8..12].try_into().expect("4-byte slice"));
                    let req = match S::Req::from_wire(&frame[FRAME_HEADER_BYTES..]) {
                        Ok(req) => req,
                        Err(_) => {
                            stats.protocol_errors += 1;
                            return Ok(false);
                        }
                    };
                    stats.requests += 1;
                    let (resp, stop) = match service.handle(req) {
                        ServiceReply::Reply(r) => (r, false),
                        ServiceReply::ReplyThenShutdown(r) => (r, true),
                    };
                    let payload = resp.to_wire();
                    // An oversized response is a server bug, not client
                    // misbehavior: abort the serve loop with the same
                    // typed error every sending backend raises.
                    check_payload_bound(payload.len(), seq as usize)?;
                    let frame = classic_frame(seq, &payload);
                    stats.bytes_out += frame.len() as u64;
                    c.queue.frames.push_back(frame);
                    if stop {
                        *shutdown = Some(Instant::now() + SHUTDOWN_DRAIN_TIMEOUT);
                    }
                }
                // Opportunistic flush: answer within the same poll
                // iteration instead of waiting for a POLLOUT wakeup.
                if !write_ready(c) {
                    return Ok(false);
                }
                if shutdown.is_some() {
                    return Ok(true);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Ok(false),
        }
    }
    Ok(true)
}

/// Blocking client of a [`WireServer`], generic over the request and
/// response codec types (which must match the server's [`Service`]).
///
/// [`WireClient::call`] is the simple ping-pong path.
/// [`WireClient::send`]/[`WireClient::recv`] expose the pipelined path:
/// sends are buffered and flushed lazily, so a client can keep a window
/// of requests in flight and hide the round-trip latency — the lookup
/// load generator drives six-figure request rates through this.
pub struct WireClient<Req, Resp> {
    stream: TcpStream,
    reader: FramedReader<TcpStream>,
    /// Encoded request frames not yet written to the socket.
    out: Vec<u8>,
    next_seq: u32,
    /// Oldest sequence number still awaiting its response — together with
    /// `next_seq` this is the in-flight window a connection-loss error
    /// reports.
    awaiting: u32,
    _codec: std::marker::PhantomData<fn(Req) -> Resp>,
}

/// Buffered request bytes above which `send` flushes on its own.
const CLIENT_FLUSH_BYTES: usize = 64 << 10;

impl<Req: WireEncode, Resp: WireDecode> WireClient<Req, Resp> {
    /// Connect to a server at `addr` (e.g. the string a `dne-server`
    /// printed, or a `SocketAddr`).
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Debug) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(&addr)
            .map_err(|e| io_err(format!("dialing service at {addr:?}"), e))?;
        let _ = stream.set_nodelay(true);
        let reader = FramedReader::new(
            stream.try_clone().map_err(|e| io_err("cloning service connection", e))?,
        );
        Ok(Self {
            stream,
            reader,
            out: Vec::new(),
            next_seq: 0,
            awaiting: 0,
            _codec: std::marker::PhantomData,
        })
    }

    /// How many requests are unanswered: sent (or buffered) but their
    /// responses not yet received.
    pub fn in_flight(&self) -> u32 {
        self.next_seq.wrapping_sub(self.awaiting)
    }

    /// The hard failure a vanished server turns into: a pipelining client
    /// must not wait for (or silently drop) responses that can never
    /// arrive, so the error names exactly which request was awaited and
    /// how many more were in flight behind it.
    fn connection_lost(&self, error: std::io::Error) -> TransportError {
        let n = self.in_flight();
        let context = if n == 0 {
            "reading from the service connection (no request in flight)".to_string()
        } else {
            format!(
                "awaiting the response to request #{} ({n} request(s) in flight, \
                 sequences #{}..=#{})",
                self.awaiting,
                self.awaiting,
                self.next_seq.wrapping_sub(1)
            )
        };
        TransportError::Io { context, error }
    }

    /// Whether an IO error kind means the connection itself died (as
    /// opposed to a transient or unrelated failure).
    fn is_connection_loss(kind: std::io::ErrorKind) -> bool {
        matches!(
            kind,
            std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::UnexpectedEof
        )
    }

    /// Buffer one request for sending and return the sequence number its
    /// response will echo. Flushes on its own when the buffer grows past
    /// a threshold; [`WireClient::recv`] flushes the rest.
    pub fn send(&mut self, req: &Req) -> Result<u32, TransportError> {
        let payload = req.to_wire();
        check_payload_bound(payload.len(), self.next_seq as usize)?;
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.out.extend_from_slice(&classic_frame(seq, &payload));
        if self.out.len() >= CLIENT_FLUSH_BYTES {
            self.flush()?;
        }
        Ok(seq)
    }

    /// Write every buffered request to the socket.
    pub fn flush(&mut self) -> Result<(), TransportError> {
        use std::io::Write;
        if self.out.is_empty() {
            return Ok(());
        }
        self.stream.write_all(&self.out).map_err(|e| {
            if Self::is_connection_loss(e.kind()) {
                self.connection_lost(e)
            } else {
                io_err("sending requests", e)
            }
        })?;
        self.out.clear();
        Ok(())
    }

    /// Flush, then block for the next `(sequence, response)` pair.
    /// Responses arrive in request order (the server handles each
    /// connection FIFO), so a pipelining caller can match them by queue
    /// position as well as by sequence number.
    ///
    /// A server that vanishes — EOF, `ECONNRESET`, a broken pipe — while
    /// requests are in flight is a **hard failure**: the returned error
    /// names the awaited sequence number and the whole unanswered window,
    /// so a caller driving a pipeline cannot mistake a dead server for a
    /// slow one or exit zero with lookups unverified.
    pub fn recv(&mut self) -> Result<(u32, Resp), TransportError> {
        self.flush()?;
        match self.reader.read_frame() {
            Ok(FrameItem::Frame { src: seq, payload }) => {
                let resp = Resp::from_wire(&payload)
                    .map_err(|error| TransportError::Decode { src: seq as usize, error })?;
                self.awaiting = seq.wrapping_add(1);
                Ok((seq, resp))
            }
            Ok(FrameItem::Bye { .. }) => Err(self.connection_lost(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "the server closed the connection with a goodbye frame",
            ))),
            Err(TransportError::Disconnected { .. }) => {
                Err(self.connection_lost(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "the server closed the connection",
                )))
            }
            Err(TransportError::Io { error, .. }) if Self::is_connection_loss(error.kind()) => {
                Err(self.connection_lost(error))
            }
            Err(e) => Err(e),
        }
    }

    /// One blocking request/response round trip.
    pub fn call(&mut self, req: &Req) -> Result<Resp, TransportError> {
        let sent = self.send(req)?;
        let (seq, resp) = self.recv()?;
        if seq != sent {
            return Err(TransportError::Frame {
                src: None,
                detail: format!("response sequence {seq} does not match request {sent}"),
            });
        }
        Ok(resp)
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;

    /// Echo service: replies with the request; a `u64::MAX` request asks
    /// the server to shut down.
    struct Echo {
        handled: u64,
    }

    impl Service for Echo {
        type Req = u64;
        type Resp = u64;

        fn handle(&mut self, req: u64) -> ServiceReply<u64> {
            self.handled += 1;
            if req == u64::MAX {
                ServiceReply::ReplyThenShutdown(req)
            } else {
                ServiceReply::Reply(req * 2)
            }
        }
    }

    fn spawn_echo() -> (SocketAddr, std::thread::JoinHandle<ServiceStats>) {
        let server = WireServer::bind(&"127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || {
            let mut echo = Echo { handled: 0 };
            server.serve(&mut echo).unwrap()
        });
        (addr, handle)
    }

    fn shutdown_server(addr: SocketAddr) {
        let mut c = WireClient::<u64, u64>::connect(addr).unwrap();
        assert_eq!(c.call(&u64::MAX).unwrap(), u64::MAX);
    }

    #[test]
    fn call_round_trips_and_echoes_sequence_numbers() {
        let (addr, handle) = spawn_echo();
        let mut c = WireClient::<u64, u64>::connect(addr).unwrap();
        for i in 0..100u64 {
            assert_eq!(c.call(&i).unwrap(), i * 2);
        }
        shutdown_server(addr);
        let stats = handle.join().unwrap();
        assert_eq!(stats.requests, 101);
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.protocol_errors, 0);
    }

    #[test]
    fn pipelined_window_preserves_fifo_order() {
        let (addr, handle) = spawn_echo();
        let mut c = WireClient::<u64, u64>::connect(addr).unwrap();
        let seqs: Vec<u32> = (0..64u64).map(|i| c.send(&i).unwrap()).collect();
        for (i, &sent) in seqs.iter().enumerate() {
            let (seq, resp) = c.recv().unwrap();
            assert_eq!(seq, sent);
            assert_eq!(resp, (i as u64) * 2);
        }
        shutdown_server(addr);
        handle.join().unwrap();
    }

    #[test]
    fn concurrent_clients_are_served_independently() {
        let (addr, handle) = spawn_echo();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                s.spawn(move || {
                    let mut c = WireClient::<u64, u64>::connect(addr).unwrap();
                    for i in 0..50 {
                        assert_eq!(c.call(&(t * 1000 + i)).unwrap(), (t * 1000 + i) * 2);
                    }
                });
            }
        });
        shutdown_server(addr);
        let stats = handle.join().unwrap();
        assert_eq!(stats.requests, 8 * 50 + 1);
    }

    #[test]
    fn malicious_clients_do_not_stop_the_server() {
        let (addr, handle) = spawn_echo();

        // A well-behaved client that must keep working throughout.
        let mut good = WireClient::<u64, u64>::connect(addr).unwrap();
        assert_eq!(good.call(&1).unwrap(), 2);

        // Garbage bytes that parse as an absurd length prefix.
        let mut garbage = TcpStream::connect(addr).unwrap();
        garbage.write_all(&[0xffu8; 64]).unwrap();
        assert_eq!(good.call(&2).unwrap(), 4);

        // An explicit oversized length prefix with an in-range flag bit.
        let mut oversize = TcpStream::connect(addr).unwrap();
        let mut frame = Vec::new();
        frame.extend_from_slice(&(crate::transport::MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        oversize.write_all(&frame).unwrap();
        assert_eq!(good.call(&3).unwrap(), 6);

        // A mid-request disconnect: half a frame, then a hangup.
        let mut truncated = TcpStream::connect(addr).unwrap();
        truncated.write_all(&classic_frame(0, &7u64.to_wire())[..10]).unwrap();
        drop(truncated);
        assert_eq!(good.call(&4).unwrap(), 8);

        // A well-formed frame whose payload fails request decoding
        // (trailing bytes after the u64).
        let mut badreq = TcpStream::connect(addr).unwrap();
        badreq.write_all(&classic_frame(0, &[0u8; 13])).unwrap();
        assert_eq!(good.call(&5).unwrap(), 10);

        // A batch-flagged frame: mesh-only layout, rejected here.
        let mut batch = TcpStream::connect(addr).unwrap();
        let mut frame = Vec::new();
        frame.extend_from_slice(&(8u64 | BATCH_FLAG).to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        frame.extend_from_slice(&[0u8; 8]);
        batch.write_all(&frame).unwrap();
        assert_eq!(good.call(&6).unwrap(), 12);

        shutdown_server(addr);
        let stats = handle.join().unwrap();
        // Every attack was counted against its own connection; the good
        // client's requests all succeeded.
        assert!(stats.protocol_errors >= 4, "stats: {stats:?}");
        assert_eq!(stats.requests, 6 + 1);
    }

    #[test]
    fn dead_server_mid_pipeline_names_the_in_flight_window() {
        // A hand-rolled "server" that answers the first request and then
        // vanishes: the pipelining client must get a hard failure naming
        // the awaited sequence number and the unanswered window — never a
        // silent hang or a clean-looking disconnect.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut c = WireClient::<u64, u64>::connect(addr).unwrap();
        for i in 0..5u64 {
            c.send(&i).unwrap();
        }
        c.flush().unwrap();
        let (mut sock, _) = listener.accept().unwrap();
        // Absorb all five requests (20 bytes each: 12-byte header + u64),
        // answer only sequence 0, then send FIN without a goodbye frame.
        let mut buf = [0u8; 100];
        std::io::Read::read_exact(&mut sock, &mut buf).unwrap();
        sock.write_all(&classic_frame(0, &0u64.to_wire())).unwrap();
        sock.shutdown(Shutdown::Write).unwrap();

        let (seq, resp) = c.recv().unwrap();
        assert_eq!((seq, resp), (0, 0));
        assert_eq!(c.in_flight(), 4);
        let msg = c.recv().unwrap_err().to_string();
        assert!(msg.contains("request #1"), "names the awaited request: {msg}");
        assert!(msg.contains("4 request(s) in flight"), "counts the window: {msg}");
        assert!(msg.contains("#1..=#4"), "names the unanswered window: {msg}");
    }

    #[test]
    fn dead_server_surfaces_as_typed_errors() {
        let (addr, handle) = spawn_echo();
        shutdown_server(addr);
        handle.join().unwrap();
        // Dialing a dead server: connection refused, typed.
        match WireClient::<u64, u64>::connect(addr) {
            Err(TransportError::Io { .. }) => {}
            other => panic!("expected io error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn server_addr_parsing_is_strict() {
        assert_eq!(
            parse_server_addr(" 127.0.0.1:7571 ").unwrap(),
            "127.0.0.1:7571".parse::<SocketAddr>().unwrap()
        );
        for bad in ["localhost:7571", "7571", "127.0.0.1", "127.0.0.1:port", ""] {
            let err = parse_server_addr(bad).unwrap_err();
            assert!(err.contains("expected"), "{bad:?}: {err}");
        }
    }
}
