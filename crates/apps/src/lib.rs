#![deny(missing_docs)]
//! # dne-apps — distributed graph applications over edge partitions
//!
//! Reproduces the paper's §7.6 evaluation: the effect of partitioning
//! quality on distributed graph applications. The paper runs SSSP, WCC and
//! PageRank on PowerLyra (a PowerGraph fork) over 64 machines; here the
//! same three applications run on an in-repo **vertex-cut engine**
//! ([`engine::Engine`]) with the master–mirror synchronization scheme that
//! vertex-cut systems share:
//!
//! * every partition holds the edges assigned to it plus replicas of their
//!   endpoint vertices;
//! * one replica per vertex is the **master**; the others are mirrors;
//! * a superstep gathers partial accumulators locally, ships
//!   mirror→master partials, applies the vertex program at the master, and
//!   ships master→mirror value updates.
//!
//! The causal chain the paper demonstrates — lower replication factor ⇒
//! fewer mirror messages ⇒ less communication ⇒ faster supersteps — is
//! structural in this engine: both sync rounds move exactly one message per
//! (replica, superstep) pair with live updates.
//!
//! Applications ([`apps`]): SSSP (light communication), WCC (medium),
//! PageRank (heavy, all-vertices-active) — the three workload classes of
//! Table 5 — each with a sequential reference implementation used by the
//! correctness tests.
//!
//! ## Quick start
//!
//! ```
//! use dne_apps::{wcc_reference, Engine};
//! use dne_graph::gen;
//! use dne_partition::hash_based::RandomPartitioner;
//! use dne_partition::EdgePartitioner;
//!
//! let g = gen::ring_complete(5);
//! let assignment = RandomPartitioner::new(1).partition(&g, 4);
//! let run = Engine::new(&g, &assignment).wcc();
//! // Partitioning changes performance, never answers.
//! assert_eq!(run.values, wcc_reference(&g));
//! ```

pub mod apps;
pub mod engine;

pub use apps::{pagerank_reference, sssp_reference, wcc_reference};
pub use engine::{AppRun, Engine};
