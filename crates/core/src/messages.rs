//! Message types exchanged between expansion and allocation processes.
//!
//! One Distributed NE iteration is three lock-step all-to-all rounds
//! (Figure 4 steps 1–6):
//!
//! 1. **Select** — expansion process `p` multicasts its chosen vertices to
//!    the allocators in charge (Algorithm 1 line 8). Allocators not in any
//!    chosen vertex's replica set receive an empty message (the lock-step
//!    exchange still delivers one envelope per link; an empty message
//!    charges only its header).
//! 2. **Sync** — allocators synchronize new vertex-allocation ids with the
//!    replicas of each vertex (Algorithm 2, `SyncVertexAllocations`).
//! 3. **Result** — allocators return the new boundary with local `D_rest`
//!    scores plus the newly allocated edges to the owning expansion
//!    processes (Algorithm 2, `SendNewBoundaryWithLocalDrest` /
//!    `SendNewAllocatedEdges`), piggybacking the free-edge gossip used for
//!    random-restart routing.
//!
//! `NeMsg` implements the full wire codec ([`WireSize`] + [`WireEncode`] +
//! [`WireDecode`]): a 1-byte variant tag followed by the packed fields.
//! Sizes are derived from the field types' own codecs (no hand-rolled
//! constants), so the loopback estimate and the bytes-backend actual
//! encoding agree byte-for-byte — asserted by the round-trip tests here and
//! the cross-transport property tests in the umbrella crate.

use dne_graph::{EdgeId, VertexId};
use dne_runtime::{WireDecode, WireEncode, WireError, WireReader, WireSize};

/// Partition id on the wire (matches `dne_partition::PartitionId`).
pub type Part = u32;

/// One envelope of the Distributed NE protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NeMsg {
    /// Expansion → allocator: vertices selected for the sender's partition
    /// this iteration; a non-zero `random_budget` asks the receiving
    /// allocator to expand one random free vertex on the sender's behalf
    /// (boundary exhausted), choosing one whose remaining local degree fits
    /// the sender's remaining capacity.
    Select {
        /// Vertices selected for expansion this iteration.
        vertices: Vec<VertexId>,
        /// Non-zero: capacity budget for the random-vertex fallback.
        random_budget: u64,
    },
    /// Allocator → allocator: `(vertex, partition)` memberships created by
    /// the one-hop phase, destined for the vertex's replicas.
    Sync {
        /// New `(vertex, partition)` membership pairs.
        pairs: Vec<(VertexId, Part)>,
    },
    /// Allocator → expansion: new boundary vertices with their local
    /// `D_rest` contribution, newly allocated edge ids for the receiving
    /// partition, and the sender's free-edge count (gossip).
    Result {
        /// New boundary vertices with their local `D_rest` contribution.
        boundary: Vec<(VertexId, u64)>,
        /// Edge ids newly allocated to the receiving partition.
        edges: Vec<EdgeId>,
        /// The sender's count of still-unallocated local edges (gossip).
        free_edges: u64,
    },
}

/// Variant tags on the wire.
const TAG_SELECT: u8 = 0;
const TAG_SYNC: u8 = 1;
const TAG_RESULT: u8 = 2;

impl WireSize for NeMsg {
    fn wire_bytes(&self) -> usize {
        // 1-byte tag + fields, sized by the fields' own codecs (the
        // `Vec<VertexId>` and `Vec<(VertexId, _)>` payloads take the O(1)
        // fixed-element fast path).
        1 + match self {
            NeMsg::Select { vertices, random_budget } => {
                vertices.wire_bytes() + random_budget.wire_bytes()
            }
            NeMsg::Sync { pairs } => pairs.wire_bytes(),
            NeMsg::Result { boundary, edges, free_edges } => {
                boundary.wire_bytes() + edges.wire_bytes() + free_edges.wire_bytes()
            }
        }
    }
}

impl WireEncode for NeMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            NeMsg::Select { vertices, random_budget } => {
                buf.push(TAG_SELECT);
                vertices.encode(buf);
                random_budget.encode(buf);
            }
            NeMsg::Sync { pairs } => {
                buf.push(TAG_SYNC);
                pairs.encode(buf);
            }
            NeMsg::Result { boundary, edges, free_edges } => {
                buf.push(TAG_RESULT);
                boundary.encode(buf);
                edges.encode(buf);
                free_edges.encode(buf);
            }
        }
    }
}

impl WireDecode for NeMsg {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.read_array::<1>()?[0] {
            TAG_SELECT => {
                Ok(NeMsg::Select { vertices: Vec::decode(r)?, random_budget: u64::decode(r)? })
            }
            TAG_SYNC => Ok(NeMsg::Sync { pairs: Vec::decode(r)? }),
            TAG_RESULT => Ok(NeMsg::Result {
                boundary: Vec::decode(r)?,
                edges: Vec::decode(r)?,
                free_edges: u64::decode(r)?,
            }),
            tag => Err(WireError::BadTag { tag }),
        }
    }
}

impl NeMsg {
    /// An empty Select (no vertices, no random request).
    pub fn empty_select() -> Self {
        NeMsg::Select { vertices: Vec::new(), random_budget: 0 }
    }

    /// An empty Sync.
    pub fn empty_sync() -> Self {
        NeMsg::Sync { pairs: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> Vec<NeMsg> {
        vec![
            NeMsg::empty_select(),
            NeMsg::Select { vertices: vec![1, 2, u64::MAX], random_budget: 7 },
            NeMsg::empty_sync(),
            NeMsg::Sync { pairs: vec![(1, 0), (2, 1), (3, 2)] },
            NeMsg::Result { boundary: Vec::new(), edges: Vec::new(), free_edges: 0 },
            NeMsg::Result { boundary: vec![(5, 2)], edges: vec![1, 2, 3], free_edges: 9 },
        ]
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let s0 = NeMsg::empty_select().wire_bytes();
        let s2 = NeMsg::Select { vertices: vec![1, 2], random_budget: 0 }.wire_bytes();
        assert_eq!(s2 - s0, 16);
        let y0 = NeMsg::empty_sync().wire_bytes();
        let y3 = NeMsg::Sync { pairs: vec![(1, 0), (2, 1), (3, 2)] }.wire_bytes();
        assert_eq!(y3 - y0, 36);
        let r = NeMsg::Result { boundary: vec![(5, 2)], edges: vec![1, 2, 3], free_edges: 9 };
        assert_eq!(r.wire_bytes(), 1 + 8 + 16 + 8 + 24 + 8);
    }

    #[test]
    fn codec_roundtrips_every_shape_at_exact_size() {
        for msg in shapes() {
            let bytes = msg.to_wire();
            assert_eq!(bytes.len(), msg.wire_bytes(), "estimate != actual for {msg:?}");
            assert_eq!(NeMsg::from_wire(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        for msg in shapes() {
            let bytes = msg.to_wire();
            for cut in 0..bytes.len() {
                assert!(
                    NeMsg::from_wire(&bytes[..cut]).is_err(),
                    "{cut}-byte prefix of {msg:?} must fail"
                );
            }
        }
    }

    #[test]
    fn unknown_tag_is_an_error() {
        assert_eq!(NeMsg::from_wire(&[9]), Err(WireError::BadTag { tag: 9 }));
    }
}
