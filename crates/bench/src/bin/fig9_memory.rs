//! Figure 9 reproduction: memory consumption ("mem score" — peak live
//! bytes across all processes, normalized by |E|) of the four high-quality
//! methods: Distributed NE, ParMETIS-like, Sheep-like, XtraPuLP-like.
//!
//! Paper findings to reproduce:
//! * Distributed NE has the lowest mem score (vertices replicated, edges
//!   unique, CSR + functional metadata — §7.3);
//! * ParMETIS's multilevel hierarchy replicates the graph per level and is
//!   the most expensive;
//! * Distributed NE's score *decreases* as the edge factor grows (duplicate
//!   compaction; Fig 9(b)).
//!
//! Measurement notes: Distributed NE and ParMETIS-like are measured
//! (tracked live bytes / recorded level hierarchy); Sheep-like and
//! XtraPuLP-like are analytic (their state is a handful of flat arrays).
//! Our sequential re-implementations of the vertex partitioners do not
//! replicate edges across machines the way the real distributed systems
//! do, so the paper's order-of-magnitude gap compresses to a smaller — but
//! same-direction — gap here (see EXPERIMENTS.md).

use dne_bench::datasets::{self, DATASETS};
use dne_bench::table::{f2, parse_mode, Table};
use dne_core::{DistributedNe, NeConfig};
use dne_graph::gen::{rmat_parallel, RmatConfig};
use dne_graph::parallel::default_ingest_threads;
use dne_graph::{Graph, HeapSize};
use dne_partition::vertex::MetisLikePartitioner;
use dne_partition::VertexPartitioner;

fn mem_rows(name: &str, g: &Graph, k: u32, table: &mut Table) {
    let m = g.num_edges();
    let n = g.num_vertices();
    // Distributed NE: measured by the runtime's memory tracker.
    let ne = DistributedNe::new(NeConfig::default().with_seed(3));
    let (_, stats) = ne.partition_with_stats(g, k);
    table.row(vec![name.into(), k.to_string(), "DistributedNE".into(), f2(stats.mem_score)]);
    // ParMETIS-like: input CSR + measured multilevel hierarchy.
    let metis = MetisLikePartitioner::new(3);
    let _ = metis.partition_vertices(g, k);
    let metis_bytes = g.heap_bytes() + metis.peak_memory_bytes();
    table.row(vec![
        name.into(),
        k.to_string(),
        "ParMETIS-like".into(),
        f2(metis_bytes as f64 / m as f64),
    ]);
    // Sheep-like: input CSR + rank/parent/owned/children/tour arrays.
    let sheep_bytes = g.heap_bytes() + 32 * n as usize + 4 * m as usize;
    table.row(vec![
        name.into(),
        k.to_string(),
        "Sheep-like".into(),
        f2(sheep_bytes as f64 / m as f64),
    ]);
    // XtraPuLP-like: input CSR + labels/queues/loads.
    let xp_bytes = g.heap_bytes() + 16 * n as usize;
    table.row(vec![
        name.into(),
        k.to_string(),
        "XtraPuLP-like".into(),
        f2(xp_bytes as f64 / m as f64),
    ]);
}

fn main() {
    let quick = parse_mode();
    let k = if quick { 16 } else { 64 };
    let mut table = Table::new(&["graph", "|P|", "method", "mem score (B/edge)"]);
    // Fig 9(a): real-world stand-ins.
    let sets: Vec<&datasets::Dataset> =
        if quick { datasets::midsize() } else { DATASETS.iter().collect() };
    for d in sets {
        let g = if quick { d.build_quick() } else { d.build() };
        eprintln!("{}: |E|={}", d.name, g.num_edges());
        mem_rows(d.name, &g, k, &mut table);
    }
    // Fig 9(b): RMAT, growing edge factor — D.NE's score should drop.
    let efs: &[u64] = if quick { &[4, 16, 64] } else { &[4, 16, 64, 256] };
    let scale = if quick { 12 } else { 14 };
    for &ef in efs {
        let g = rmat_parallel(&RmatConfig::graph500(scale, ef, 5), default_ingest_threads());
        eprintln!("RMAT s{scale} ef{ef}: |E|={}", g.num_edges());
        mem_rows(&format!("RMAT-s{scale}-ef{ef}"), &g, k, &mut table);
    }
    println!("\n=== Figure 9: memory consumption (bytes per edge at peak) ===");
    table.print();
    if let Ok(p) = table.write_tsv("fig9_memory") {
        eprintln!("wrote {}", p.display());
    }
}
