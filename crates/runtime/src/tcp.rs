//! The TCP socket fabric: the wire frames of the bytes backend carried
//! over real `TcpStream`s, between threads or between OS processes.
//!
//! # Topology and bootstrap
//!
//! A fabric of `P` endpoints is a full localhost mesh: one TCP connection
//! per unordered rank pair, built by a rendezvous protocol:
//!
//! 1. **Rendezvous** — rank 0 listens on a known address (the
//!    [`TcpRendezvous`]). Every rank `r > 0` first binds its own mesh
//!    listener (ephemeral localhost by default; `--bind`/`with_bind` for
//!    cross-machine runs), then dials rank 0 and sends a hello
//!    (`[u32 magic][u8 fabric][u32 rank][u32 epoch][u8 ip kind][16B ip][u16 port]`
//!    advertising where its mesh listener can be dialed; an unspecified
//!    ip kind asks rank 0 to substitute the address it observed on the
//!    rendezvous connection).
//! 2. **Roster** — once all `P − 1` hellos arrived, rank 0 answers each
//!    peer with the roster
//!    (`[u32 magic][u32 nprocs][u32 epoch][(u8 ip kind)(16B ip)(u16 port) × (P − 1)]`)
//!    mapping every nonzero rank to its mesh listener's full socket
//!    address — real peer IPs, not an assumed localhost. The rendezvous
//!    connection itself becomes the `0 ↔ r` mesh link.
//! 3. **Mesh** — each rank `i > 0` dials the roster addresses of ranks
//!    `1..i` (sending a hello so the acceptor learns who called) and
//!    accepts one connection from each rank `i+1..P`.
//!
//! The `fabric` byte lets one rendezvous listener serve several fabrics
//! (a cluster run builds two: point-to-point and collectives); hellos
//! that arrive for a fabric not currently being collected are stashed,
//! so process startup order cannot wedge the bootstrap. The collectives
//! mesh's fabric id additionally encodes the collective topology, so
//! processes that resolved different `DNE_COLLECTIVES` values fail the
//! bootstrap with a typed error naming the disagreement instead of
//! deadlocking at the first barrier. Every bootstrap step carries a
//! deadline — a peer that never shows up is a
//! [`TransportError::Bootstrap`], not a hang.
//!
//! # Epochs and recovery
//!
//! Every bootstrap happens under an **epoch** — a generation counter
//! owned by rank 0's rendezvous. A cluster's first bootstrap is epoch 0;
//! after a rank dies (survivors observe [`TransportError::Disconnected`]),
//! the same [`TcpProcessCluster`] objects can re-bootstrap a fresh mesh
//! under the next epoch via
//! [`connect_epoch`](TcpProcessCluster::connect_epoch): rank 0's
//! rendezvous listener persists across epochs (its address stays valid),
//! survivors and restarted workers re-dial it with the [`EPOCH_ANY`]
//! wildcard and learn the agreed epoch from the roster. A hello carrying
//! a concrete epoch that disagrees with the rendezvous's current epoch is
//! a typed [`TransportError::Bootstrap`] naming both epochs (a process
//! from a previous incarnation is talking to this rendezvous); a stale
//! mesh-listener connect is silently dropped and the accept loop
//! continues, so a zombie cannot poison a recovery bootstrap. Rank 0
//! owns the epoch counter, so rank 0's death is unrecoverable by design.
//!
//! # Framing
//!
//! Data frames are exactly the bytes-backend format:
//! `[u64 payload len][u32 src][payload]`, little-endian, plus the shared
//! multi-message layout (`BATCH_FLAG` set in the length prefix, body
//! `[u32 count][(u32 sublen)(payload)]…`) when coalescing is enabled.
//! The push-based `FrameAssembler` reassembles frames from whatever
//! byte slices the poll loop reads, immune to short reads and coalesced
//! arrivals, bounding the length prefix by [`MAX_FRAME_PAYLOAD`] and by
//! the bytes that actually arrive (a truncated connection is a typed
//! error, never an unbounded allocation or a forever-block). The
//! pull-based [`FramedReader`] remains for blocking-stream callers. A
//! length prefix of `u64::MAX` is the *goodbye frame*: endpoints send it
//! on every link when dropped, which is how peers distinguish a graceful
//! teardown (the link retires silently) from a killed process (EOF
//! without goodbye ⇒ [`TransportError::Disconnected`] surfaces from
//! `recv`).
//!
//! # Event-driven endpoint
//!
//! Each endpoint runs **one** io thread, not one thread per peer: after
//! the blocking rendezvous bootstrap every mesh socket is switched to
//! nonblocking mode and handed to a `poll(2)` loop (a small FFI shim,
//! like the mmap shim in the graph crate) that multiplexes reads across
//! all peers and drains per-peer write-backpressure queues. `send` and
//! `flush` only *enqueue* encoded frames and wake the loop through a
//! self-pipe, so the caller overlaps its own compute with the kernel's
//! socket work; `try_recv` surfaces already-decoded envelopes without
//! blocking, which is what `CommEndpoint::drain_ready` builds on.
//!
//! # Accounting
//!
//! `send` reports the encoded payload length exactly like the bytes
//! backend, so `comm_bytes`/`comm_msgs` are identical across loopback,
//! bytes, and tcp for identical traffic — the cross-transport equality
//! tests assert this end-to-end. Physical frames (one per classic
//! envelope, one per coalesced flush) are counted by
//! [`CommStats::record_frames`] at enqueue time, exactly as the
//! in-process backends count theirs.

use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::io::AsRawFd;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::cluster::Ctx;
use crate::collectives::{CollMsg, CollectiveTopology, Collectives};
use crate::comm::CommEndpoint;
use crate::frame::{bye_frame, classic_frame, WriteQueue};
#[cfg(unix)]
use crate::frame::{Assembled, FrameAssembler};
use crate::memory::MemoryTracker;
#[cfg(unix)]
use crate::poll as sys;
use crate::stats::CommStats;
#[cfg(unix)]
use crate::transport::decode_frames;
use crate::transport::{
    check_payload_bound, encode_batch_frame, BatchConfig, Transport, TransportError,
};

pub use crate::frame::{FrameItem, FramedReader};
pub use crate::transport::MAX_FRAME_PAYLOAD;
use crate::wire::{WireDecode, WireEncode};

/// Handshake magic ("DNE1") opening every bootstrap message.
const MAGIC: u32 = 0x444E_4531;

/// How long any single bootstrap step (dial, hello, roster, accept) may
/// take before the bootstrap fails with a typed error.
const BOOTSTRAP_TIMEOUT: Duration = Duration::from_secs(60);

/// Fabric id of the point-to-point mesh in a cluster session.
const FABRIC_P2P: u8 = 0;

/// First fabric id of the collectives meshes: the collective topology is
/// baked into the fabric id (`FABRIC_COLL_BASE + topology index`), so a
/// cluster whose processes disagree on `DNE_COLLECTIVES` fails the
/// bootstrap with a typed error naming the disagreement instead of
/// deadlocking at the first barrier.
const FABRIC_COLL_BASE: u8 = 1;

/// The collectives-mesh fabric id of `topology`.
fn coll_fabric(topology: CollectiveTopology) -> u8 {
    let idx = CollectiveTopology::ALL.iter().position(|t| *t == topology).expect("topology in ALL");
    FABRIC_COLL_BASE + idx as u8
}

/// Human-readable name of a fabric id, for bootstrap errors.
fn fabric_name(fabric: u8) -> String {
    if fabric == FABRIC_P2P {
        "point-to-point".into()
    } else {
        match CollectiveTopology::ALL.get((fabric - FABRIC_COLL_BASE) as usize) {
            Some(t) => format!("{t}-collectives"),
            None => format!("unknown fabric {fabric}"),
        }
    }
}

/// Whether a fabric id names a collectives mesh (of any topology).
fn is_coll_fabric(fabric: u8) -> bool {
    fabric >= FABRIC_COLL_BASE
        && ((fabric - FABRIC_COLL_BASE) as usize) < CollectiveTopology::ALL.len()
}

/// Two collectives fabrics that differ can only mean the cluster's
/// processes resolved different `DNE_COLLECTIVES` values.
fn topology_disagreement(theirs: u8, ours: u8) -> TransportError {
    bootstrap_err(format!(
        "a peer bootstrapped the {} mesh while this process expects the {} mesh — \
         the cluster's processes disagree on the collective topology \
         (check DNE_COLLECTIVES in every process's environment)",
        fabric_name(theirs),
        fabric_name(ours)
    ))
}

fn io_err(context: impl Into<String>, error: io::Error) -> TransportError {
    TransportError::Io { context: context.into(), error }
}

fn bootstrap_err(detail: impl Into<String>) -> TransportError {
    TransportError::Bootstrap { detail: detail.into() }
}

// -------------------------------------------------------------- bootstrap --

/// IP kind tag in hellos and roster entries: no advertised address (the
/// rendezvous substitutes the IP it observed on the wire).
const IPKIND_UNSPECIFIED: u8 = 0;
/// IP kind tag: IPv4 (first 4 of the 16 address bytes are meaningful).
const IPKIND_V4: u8 = 4;
/// IP kind tag: IPv6 (all 16 address bytes are meaningful).
const IPKIND_V6: u8 = 6;

/// Encode an optional advertised IP as `[u8 kind][16 bytes]`.
fn encode_ip(buf: &mut [u8], ip: Option<IpAddr>) {
    debug_assert_eq!(buf.len(), 17);
    match ip {
        None => buf[0] = IPKIND_UNSPECIFIED,
        Some(IpAddr::V4(v4)) => {
            buf[0] = IPKIND_V4;
            buf[1..5].copy_from_slice(&v4.octets());
        }
        Some(IpAddr::V6(v6)) => {
            buf[0] = IPKIND_V6;
            buf[1..17].copy_from_slice(&v6.octets());
        }
    }
}

/// Decode a `[u8 kind][16 bytes]` advertised IP.
fn decode_ip(buf: &[u8]) -> Result<Option<IpAddr>, TransportError> {
    debug_assert_eq!(buf.len(), 17);
    match buf[0] {
        IPKIND_UNSPECIFIED => Ok(None),
        IPKIND_V4 => {
            let mut o = [0u8; 4];
            o.copy_from_slice(&buf[1..5]);
            Ok(Some(IpAddr::V4(Ipv4Addr::from(o))))
        }
        IPKIND_V6 => {
            let mut o = [0u8; 16];
            o.copy_from_slice(&buf[1..17]);
            Ok(Some(IpAddr::V6(Ipv6Addr::from(o))))
        }
        k => Err(bootstrap_err(format!("bad address kind {k} in bootstrap message"))),
    }
}

/// Epoch wildcard in hellos: "whatever epoch the rendezvous is currently
/// bootstrapping". Survivors and restarted workers re-dialing after a
/// failure cannot know how many recoveries rank 0 has already counted, so
/// they send the wildcard and learn the agreed epoch from the roster.
pub const EPOCH_ANY: u32 = u32::MAX;

/// Hello:
/// `[u32 magic][u8 fabric][u32 rank][u32 epoch][u8 ip kind][16B ip][u16 port]`.
///
/// The IP is the address this rank *advertises* for its mesh listener;
/// kind 0 means "unspecified" and tells the rendezvous to substitute the
/// source IP it observed on the hello connection itself (the right answer
/// for localhost fleets and for workers behind symmetric routing). The
/// epoch is the bootstrap generation the sender believes it is joining
/// ([`EPOCH_ANY`] defers to the rendezvous).
const HELLO_BYTES: usize = 32;

fn write_hello(
    s: &mut impl Write,
    fabric: u8,
    rank: u32,
    epoch: u32,
    ip: Option<IpAddr>,
    port: u16,
) -> io::Result<()> {
    let mut buf = [0u8; HELLO_BYTES];
    buf[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    buf[4] = fabric;
    buf[5..9].copy_from_slice(&rank.to_le_bytes());
    buf[9..13].copy_from_slice(&epoch.to_le_bytes());
    encode_ip(&mut buf[13..30], ip);
    buf[30..32].copy_from_slice(&port.to_le_bytes());
    s.write_all(&buf)
}

fn read_hello(s: &mut impl Read) -> Result<(u8, u32, u32, Option<IpAddr>, u16), TransportError> {
    let mut buf = [0u8; HELLO_BYTES];
    s.read_exact(&mut buf).map_err(|e| io_err("reading bootstrap hello", e))?;
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4-byte slice"));
    if magic != MAGIC {
        return Err(bootstrap_err(format!(
            "bad hello magic {magic:#010x} (expected {MAGIC:#010x}) — \
             is something else talking to the rendezvous port?"
        )));
    }
    let fabric = buf[4];
    let rank = u32::from_le_bytes(buf[5..9].try_into().expect("4-byte slice"));
    let epoch = u32::from_le_bytes(buf[9..13].try_into().expect("4-byte slice"));
    let ip = decode_ip(&buf[13..30])?;
    let port = u16::from_le_bytes(buf[30..32].try_into().expect("2-byte slice"));
    Ok((fabric, rank, epoch, ip, port))
}

/// Roster entry: `[u8 ip kind][16B ip][u16 port]` — a full socket address.
const ROSTER_ENTRY_BYTES: usize = 19;

fn write_roster(
    s: &mut impl Write,
    nprocs: usize,
    epoch: u32,
    addrs: &[SocketAddr],
) -> io::Result<()> {
    let mut buf = Vec::with_capacity(12 + addrs.len() * ROSTER_ENTRY_BYTES);
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&(nprocs as u32).to_le_bytes());
    buf.extend_from_slice(&epoch.to_le_bytes());
    for a in addrs {
        let mut entry = [0u8; ROSTER_ENTRY_BYTES];
        encode_ip(&mut entry[0..17], Some(a.ip()));
        entry[17..19].copy_from_slice(&a.port().to_le_bytes());
        buf.extend_from_slice(&entry);
    }
    s.write_all(&buf)
}

fn read_roster(s: &mut impl Read, nprocs: usize) -> Result<(u32, Vec<SocketAddr>), TransportError> {
    let mut head = [0u8; 12];
    s.read_exact(&mut head).map_err(|e| io_err("reading bootstrap roster", e))?;
    let magic = u32::from_le_bytes(head[0..4].try_into().expect("4-byte slice"));
    if magic != MAGIC {
        return Err(bootstrap_err(format!("bad roster magic {magic:#010x}")));
    }
    let n = u32::from_le_bytes(head[4..8].try_into().expect("4-byte slice")) as usize;
    if n != nprocs {
        return Err(bootstrap_err(format!(
            "cluster size disagreement: rendezvous says {n} processes, this rank expects {nprocs}"
        )));
    }
    let epoch = u32::from_le_bytes(head[8..12].try_into().expect("4-byte slice"));
    let mut entries = vec![0u8; (nprocs - 1) * ROSTER_ENTRY_BYTES];
    s.read_exact(&mut entries).map_err(|e| io_err("reading bootstrap roster entries", e))?;
    let addrs = entries
        .chunks_exact(ROSTER_ENTRY_BYTES)
        .map(|c| {
            let ip = decode_ip(&c[0..17])?.ok_or_else(|| {
                bootstrap_err("roster entry with unspecified address".to_string())
            })?;
            let port = u16::from_le_bytes([c[17], c[18]]);
            Ok(SocketAddr::new(ip, port))
        })
        .collect::<Result<Vec<_>, TransportError>>()?;
    Ok((epoch, addrs))
}

/// The rendezvous point of a TCP fabric: rank 0's listener, which peers
/// dial to exchange rank handshakes before the mesh is built.
///
/// One rendezvous can bootstrap several fabrics in sequence (a cluster
/// session builds a point-to-point mesh and a collectives mesh); hellos
/// arriving early for a later fabric are stashed, so peer startup order
/// does not matter.
pub struct TcpRendezvous {
    listener: TcpListener,
    addr: SocketAddr,
    /// The bootstrap generation this rendezvous is currently serving.
    /// Hellos carrying a different concrete epoch are rejected with a
    /// typed error; [`EPOCH_ANY`] hellos adopt this epoch via the roster.
    epoch: u32,
    stash: Vec<(u8, u32, SocketAddr, TcpStream)>,
}

impl TcpRendezvous {
    /// Bind the rendezvous listener (e.g. `"127.0.0.1:0"` for an
    /// ephemeral port, or a fixed `host:port` peers were told to dial).
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self { listener, addr, epoch: 0, stash: Vec::new() })
    }

    /// The bound address peers must dial.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bootstrap generation this rendezvous currently serves.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Move this rendezvous to a new bootstrap generation (a recovery
    /// bootstrap after a rank died). Hellos stashed under the previous
    /// epoch belong to a dead world and are discarded.
    ///
    /// # Panics
    /// Panics when `epoch` is the [`EPOCH_ANY`] wildcard — the rendezvous
    /// owns the authoritative counter and must serve a concrete epoch.
    pub fn set_epoch(&mut self, epoch: u32) {
        assert!(epoch != EPOCH_ANY, "the rendezvous must serve a concrete epoch");
        if epoch != self.epoch {
            self.epoch = epoch;
            self.stash.clear();
        }
    }

    /// Accept hellos until every rank `1..nprocs` reported in for
    /// `fabric`; returns `(rank, mesh address, stream)` sorted by rank.
    ///
    /// A hello with no advertised IP gets the source address the
    /// rendezvous observed on the wire, so localhost fleets keep working
    /// without configuration while cross-machine workers can advertise
    /// an explicit `--bind` address.
    fn collect(
        &mut self,
        fabric: u8,
        nprocs: usize,
    ) -> Result<Vec<(u32, SocketAddr, TcpStream)>, TransportError> {
        let mut slots: Vec<Option<(SocketAddr, TcpStream)>> = (0..nprocs).map(|_| None).collect();
        let mut place =
            |rank: u32, addr: SocketAddr, stream: TcpStream| -> Result<(), TransportError> {
                let slot = slots.get_mut(rank as usize).filter(|_| rank >= 1).ok_or_else(|| {
                    bootstrap_err(format!("hello from out-of-range rank {rank} (nprocs {nprocs})"))
                })?;
                if slot.is_some() {
                    return Err(bootstrap_err(format!("two hellos from rank {rank}")));
                }
                *slot = Some((addr, stream));
                Ok(())
            };
        let mut remaining = nprocs - 1;
        // Serve hellos stashed by an earlier fabric's collection first.
        let mut i = 0;
        while i < self.stash.len() {
            if self.stash[i].0 == fabric {
                let (_, rank, addr, stream) = self.stash.remove(i);
                place(rank, addr, stream)?;
                remaining -= 1;
            } else if is_coll_fabric(self.stash[i].0) && is_coll_fabric(fabric) {
                // A stashed collectives hello for a *different* topology:
                // fail loudly now, not via a barrier deadlock later.
                return Err(topology_disagreement(self.stash[i].0, fabric));
            } else {
                i += 1;
            }
        }
        let deadline = Instant::now() + BOOTSTRAP_TIMEOUT;
        self.listener
            .set_nonblocking(true)
            .map_err(|e| io_err("configuring rendezvous listener", e))?;
        while remaining > 0 {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .and_then(|()| stream.set_read_timeout(Some(BOOTSTRAP_TIMEOUT)))
                        .map_err(|e| io_err("configuring rendezvous connection", e))?;
                    let (f, rank, epoch, ip, port) = read_hello(&mut stream)?;
                    stream
                        .set_read_timeout(None)
                        .map_err(|e| io_err("configuring rendezvous connection", e))?;
                    if epoch != EPOCH_ANY && epoch != self.epoch {
                        return Err(bootstrap_err(format!(
                            "rank {rank} dialed the rendezvous with epoch {epoch} but the \
                             cluster is bootstrapping epoch {} — a process from a previous \
                             incarnation (or a stale relaunch) is talking to this rendezvous",
                            self.epoch
                        )));
                    }
                    let ip = match ip {
                        Some(ip) => ip,
                        None => stream
                            .peer_addr()
                            .map_err(|e| io_err("reading hello source address", e))?
                            .ip(),
                    };
                    let addr = SocketAddr::new(ip, port);
                    if f == fabric {
                        place(rank, addr, stream)?;
                        remaining -= 1;
                    } else if is_coll_fabric(f) && is_coll_fabric(fabric) {
                        return Err(topology_disagreement(f, fabric));
                    } else {
                        self.stash.push((f, rank, addr, stream));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(bootstrap_err(format!(
                            "timed out waiting for {remaining} of {} peers to dial the \
                             rendezvous at {}",
                            nprocs - 1,
                            self.addr
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(io_err("accepting rendezvous connection", e)),
            }
        }
        self.listener
            .set_nonblocking(false)
            .map_err(|e| io_err("configuring rendezvous listener", e))?;
        Ok(slots
            .into_iter()
            .enumerate()
            .filter_map(|(rank, s)| s.map(|(addr, stream)| (rank as u32, addr, stream)))
            .collect())
    }
}

/// Rank 0's side of one fabric bootstrap: collect hellos, answer rosters,
/// keep the rendezvous connections as mesh links.
fn host_endpoint<M>(
    rv: &mut TcpRendezvous,
    fabric: u8,
    nprocs: usize,
    batch: BatchConfig,
    stats: Arc<CommStats>,
) -> Result<TcpTransport<M>, TransportError>
where
    M: Send + WireEncode + WireDecode + 'static,
{
    if nprocs == 1 {
        return Ok(TcpTransport::solo(batch, stats));
    }
    let peers = rv.collect(fabric, nprocs)?;
    let addrs: Vec<SocketAddr> = peers.iter().map(|&(_, addr, _)| addr).collect();
    let mut links: Vec<Option<TcpStream>> = (0..nprocs).map(|_| None).collect();
    for (rank, _, mut stream) in peers {
        write_roster(&mut stream, nprocs, rv.epoch, &addrs)
            .map_err(|e| io_err("sending roster", e))?;
        links[rank as usize] = Some(stream);
    }
    Ok(TcpTransport::from_links(0, nprocs, links, batch, stats))
}

/// Dial `addr` until it accepts or the bootstrap deadline passes.
fn connect_with_retry(addr: SocketAddr) -> Result<TcpStream, TransportError> {
    let deadline = Instant::now() + BOOTSTRAP_TIMEOUT;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() > deadline {
                    return Err(io_err(format!("dialing rendezvous {addr}"), e));
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// A nonzero rank's side of one fabric bootstrap: dial the rendezvous,
/// learn the roster, then complete the mesh (dial lower ranks, accept
/// higher ranks).
///
/// `bind` is the local address for this rank's mesh listener (e.g.
/// `"127.0.0.1:0"`, or `"0.0.0.0:0"` with an explicit interface IP for
/// cross-machine fleets). Unless it is a wildcard, the bound IP is
/// advertised in the hello; a wildcard defers to the source address the
/// rendezvous observes.
///
/// `epoch` is the bootstrap generation this rank believes it is joining
/// ([`EPOCH_ANY`] for recovery re-dials); the concrete epoch learned from
/// the roster is returned alongside the endpoint.
#[allow(clippy::too_many_arguments)] // one bootstrap, one argument list
fn connect_endpoint<M>(
    addr: SocketAddr,
    fabric: u8,
    rank: usize,
    nprocs: usize,
    epoch: u32,
    bind: &str,
    batch: BatchConfig,
    stats: Arc<CommStats>,
) -> Result<(TcpTransport<M>, u32), TransportError>
where
    M: Send + WireEncode + WireDecode + 'static,
{
    assert!(rank >= 1 && rank < nprocs, "connect_endpoint is for ranks 1..nprocs");
    let listener = TcpListener::bind(bind)
        .map_err(|e| io_err(format!("binding mesh listener at {bind}"), e))?;
    let local = listener.local_addr().map_err(|e| io_err("reading mesh listener address", e))?;
    let advertised_ip = if local.ip().is_unspecified() { None } else { Some(local.ip()) };
    let mut rendezvous = connect_with_retry(addr)?;
    write_hello(&mut rendezvous, fabric, rank as u32, epoch, advertised_ip, local.port())
        .map_err(|e| io_err("sending hello", e))?;
    rendezvous
        .set_read_timeout(Some(BOOTSTRAP_TIMEOUT))
        .map_err(|e| io_err("configuring rendezvous connection", e))?;
    let (epoch, roster) = read_roster(&mut rendezvous, nprocs)?;
    rendezvous
        .set_read_timeout(None)
        .map_err(|e| io_err("configuring rendezvous connection", e))?;
    let mut links: Vec<Option<TcpStream>> = (0..nprocs).map(|_| None).collect();
    links[0] = Some(rendezvous);
    // Dial every lower nonzero rank's mesh listener, announcing the
    // concrete epoch the roster agreed on.
    for j in 1..rank {
        let mut s = TcpStream::connect(roster[j - 1])
            .map_err(|e| io_err(format!("dialing mesh listener of rank {j}"), e))?;
        write_hello(&mut s, fabric, rank as u32, epoch, None, 0)
            .map_err(|e| io_err("sending mesh hello", e))?;
        links[j] = Some(s);
    }
    // Accept one connection from every higher rank (any arrival order).
    // The accept itself is bounded by the bootstrap deadline too: a peer
    // that dies between its rendezvous hello and its mesh dial must
    // surface as a bootstrap error here, not wedge this rank forever.
    listener.set_nonblocking(true).map_err(|e| io_err("configuring mesh listener", e))?;
    let deadline = Instant::now() + BOOTSTRAP_TIMEOUT;
    let mut pending = nprocs - rank - 1;
    while pending > 0 {
        let mut s = loop {
            match listener.accept() {
                Ok((s, _)) => break s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(bootstrap_err(format!(
                            "timed out waiting for higher ranks to dial rank {rank}'s mesh \
                             listener"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(io_err("accepting mesh connection", e)),
            }
        };
        s.set_nonblocking(false)
            .and_then(|()| s.set_read_timeout(Some(BOOTSTRAP_TIMEOUT)))
            .map_err(|e| io_err("configuring mesh connection", e))?;
        let (f, peer, peer_epoch, _, _) = read_hello(&mut s)?;
        s.set_read_timeout(None).map_err(|e| io_err("configuring mesh connection", e))?;
        if peer_epoch != epoch {
            // A zombie from a previous incarnation dialed a reused port:
            // not this bootstrap's problem — drop it and keep accepting.
            drop(s);
            continue;
        }
        if f != fabric {
            if is_coll_fabric(f) && is_coll_fabric(fabric) {
                return Err(topology_disagreement(f, fabric));
            }
            return Err(bootstrap_err(format!(
                "mesh hello for fabric {f} arrived on fabric {fabric}'s listener"
            )));
        }
        let peer = peer as usize;
        if peer <= rank || peer >= nprocs {
            return Err(bootstrap_err(format!(
                "mesh hello from unexpected rank {peer} (this is rank {rank} of {nprocs})"
            )));
        }
        if links[peer].is_some() {
            return Err(bootstrap_err(format!("two mesh connections from rank {peer}")));
        }
        links[peer] = Some(s);
        pending -= 1;
    }
    Ok((TcpTransport::from_links(rank, nprocs, links, batch, stats), epoch))
}

// -------------------------------------------------------------- endpoint --

/// How long a graceful drop may spend draining queued frames and writing
/// goodbye frames before it gives up and slams the links (a peer that
/// stopped reading must not be able to wedge this process's teardown).
const GOODBYE_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a *crash* teardown (a drop during panic unwind) may spend
/// draining already-queued data frames before the links are slammed. A
/// panicking rank must always exit promptly — a peer that stopped
/// reading (full socket buffer, wedged process) cannot be allowed to
/// block the unwind on a full [`WriteQueue`] — and it must never say
/// goodbye: peers have to observe a dirty disconnect, not a graceful
/// retire, so recovery can trigger.
const CRASH_DRAIN_TIMEOUT: Duration = Duration::from_secs(1);

/// What the io thread delivers into the endpoint's event queue.
enum Event<M> {
    /// A decoded envelope from a peer (or a self-send).
    Frame(usize, M),
    /// The peer said goodbye: graceful teardown, the link is retired.
    Bye,
    /// The link failed: dirty EOF, framing violation, or decode error.
    Fault(TransportError),
}

/// State shared between an endpoint handle and its io thread.
struct Shared {
    /// Graceful teardown requested: drain queues, say goodbye, exit.
    shutdown: AtomicBool,
    /// Crash teardown requested (drop during panic unwind): drain queued
    /// data frames for at most [`CRASH_DRAIN_TIMEOUT`], never write
    /// goodbye frames, then slam — peers must see a dirty disconnect.
    crash: AtomicBool,
    /// Abnormal teardown requested: slam every link, exit immediately.
    slam: AtomicBool,
    /// Per-peer write-backpressure queues (`None` at the self index).
    queues: Vec<Option<Mutex<WriteQueue>>>,
}

impl Shared {
    fn queue_empty(&self, peer: usize) -> bool {
        self.queues[peer].as_ref().is_none_or(|q| q.lock().frames.is_empty())
    }
}

/// Same-destination payloads waiting to be coalesced into one frame.
#[derive(Default)]
struct TcpBatch {
    payloads: Vec<Vec<u8>>,
    bytes: usize,
}

/// One endpoint of the TCP socket fabric.
///
/// One io thread per endpoint multiplexes every mesh link through a
/// `poll(2)` loop: it reassembles incoming frames (via
/// `FrameAssembler`), decodes them into `(src, msg)` envelopes, and
/// drains per-peer write queues that `send`/`flush` fill. `recv`
/// surfaces a peer that died without its goodbye frame as
/// [`TransportError::Disconnected`] instead of blocking forever, and
/// returns the same error when every peer is gone and nothing remains
/// queued.
pub struct TcpTransport<M> {
    rank: usize,
    nprocs: usize,
    /// Flags and write queues shared with the io thread.
    shared: Arc<Shared>,
    /// The mesh sockets (`None` at the self index) — kept so `abort` can
    /// slam them from the handle side.
    socks: Vec<Option<Arc<TcpStream>>>,
    /// Coalescing policy for small same-destination envelopes.
    batch: BatchConfig,
    /// Per-destination payloads buffered until a flush point.
    outbox: Vec<Mutex<TcpBatch>>,
    /// Physical frame accounting (logical msgs/bytes are charged by the
    /// `CommEndpoint` layer, exactly like the in-process backends).
    stats: Arc<CommStats>,
    events_tx: Sender<Event<M>>,
    events_rx: Receiver<Event<M>>,
    /// Links still delivering (decremented per Bye/Fault).
    live: Mutex<usize>,
    /// Write half of the self-pipe that wakes the io thread's poll.
    #[cfg(unix)]
    wake: Option<UnixStream>,
    /// The io thread, joined on graceful drop.
    io: Option<std::thread::JoinHandle<()>>,
}

impl<M> TcpTransport<M>
where
    M: Send + WireEncode + WireDecode + 'static,
{
    /// Build all `n` connected endpoints of an in-process fabric: machine
    /// threads bridged by real localhost sockets, bootstrapped through
    /// the same rendezvous protocol spawned worker processes use.
    ///
    /// # Panics
    /// Panics when the localhost mesh cannot be built (ports exhausted,
    /// loopback unavailable) — an environment failure, not an input
    /// condition. Multi-process callers use [`TcpProcessCluster`], which
    /// returns errors instead.
    pub fn fabric(n: usize) -> Vec<Self> {
        Self::try_fabric(n).unwrap_or_else(|e| panic!("failed to build localhost TCP fabric: {e}"))
    }

    /// Fallible variant of [`TcpTransport::fabric`].
    pub fn try_fabric(n: usize) -> Result<Vec<Self>, TransportError> {
        Self::try_fabric_with(n, BatchConfig::disabled(), CommStats::new(n))
    }

    /// Build the fabric with an explicit coalescing policy, recording
    /// physical frame counts into `stats`; panics on environment failure
    /// exactly like [`TcpTransport::fabric`].
    pub fn fabric_with(n: usize, batch: BatchConfig, stats: Arc<CommStats>) -> Vec<Self> {
        Self::try_fabric_with(n, batch, stats)
            .unwrap_or_else(|e| panic!("failed to build localhost TCP fabric: {e}"))
    }

    /// Fallible variant of [`TcpTransport::fabric_with`].
    pub fn try_fabric_with(
        n: usize,
        batch: BatchConfig,
        stats: Arc<CommStats>,
    ) -> Result<Vec<Self>, TransportError> {
        assert!(n >= 1, "fabric needs at least one endpoint");
        if n == 1 {
            return Ok(vec![Self::solo(batch, stats)]);
        }
        let mut rv = TcpRendezvous::bind("127.0.0.1:0")
            .map_err(|e| io_err("binding in-process rendezvous", e))?;
        let addr = rv.local_addr();
        std::thread::scope(|scope| {
            let dialers: Vec<_> = (1..n)
                .map(|r| {
                    let stats = Arc::clone(&stats);
                    scope.spawn(move || {
                        connect_endpoint::<M>(
                            addr,
                            FABRIC_P2P,
                            r,
                            n,
                            0,
                            "127.0.0.1:0",
                            batch,
                            stats,
                        )
                        .map(|(ep, _epoch)| ep)
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(n);
            out.push(host_endpoint::<M>(&mut rv, FABRIC_P2P, n, batch, Arc::clone(&stats))?);
            for d in dialers {
                out.push(
                    d.join()
                        .map_err(|_| bootstrap_err("in-process bootstrap thread panicked"))??,
                );
            }
            Ok(out)
        })
    }

    /// The trivial 1-endpoint fabric: no sockets, no io thread,
    /// self-sends only.
    fn solo(batch: BatchConfig, stats: Arc<CommStats>) -> Self {
        let (events_tx, events_rx) = unbounded();
        Self {
            rank: 0,
            nprocs: 1,
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                crash: AtomicBool::new(false),
                slam: AtomicBool::new(false),
                queues: vec![None],
            }),
            socks: vec![None],
            batch,
            outbox: vec![Mutex::new(TcpBatch::default())],
            stats,
            events_tx,
            events_rx,
            live: Mutex::new(0),
            #[cfg(unix)]
            wake: None,
            io: None,
        }
    }

    /// Assemble an endpoint from its bootstrapped mesh links: switch the
    /// sockets to nonblocking mode and hand them all to one io thread's
    /// poll loop.
    #[cfg(unix)]
    fn from_links(
        rank: usize,
        nprocs: usize,
        links: Vec<Option<TcpStream>>,
        batch: BatchConfig,
        stats: Arc<CommStats>,
    ) -> Self {
        let (events_tx, events_rx) = unbounded();
        let mut live = 0usize;
        let socks: Vec<Option<Arc<TcpStream>>> = links
            .into_iter()
            .map(|link| {
                link.map(|stream| {
                    let _ = stream.set_nodelay(true);
                    stream.set_nonblocking(true).expect("marking mesh socket nonblocking");
                    live += 1;
                    Arc::new(stream)
                })
            })
            .collect();
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            crash: AtomicBool::new(false),
            slam: AtomicBool::new(false),
            queues: socks
                .iter()
                .map(|s| s.as_ref().map(|_| Mutex::new(WriteQueue::default())))
                .collect(),
        });
        let (wake_rx, wake_tx) = UnixStream::pair().expect("creating io wake pipe");
        wake_rx.set_nonblocking(true).expect("marking wake pipe nonblocking");
        wake_tx.set_nonblocking(true).expect("marking wake pipe nonblocking");
        let io = {
            let socks = socks.clone();
            let shared = Arc::clone(&shared);
            let tx = events_tx.clone();
            std::thread::Builder::new()
                .name(format!("dne-tcp-io-{rank}"))
                .spawn(move || io_loop::<M>(rank, socks, shared, wake_rx, tx))
                .expect("spawning tcp io thread")
        };
        Self {
            rank,
            nprocs,
            shared,
            socks,
            batch,
            outbox: (0..nprocs).map(|_| Mutex::new(TcpBatch::default())).collect(),
            stats,
            events_tx,
            events_rx,
            live: Mutex::new(live),
            wake: Some(wake_tx),
            io: Some(io),
        }
    }

    /// Non-unix stub: the poll-based fabric needs `poll(2)`, so every
    /// link faults with a typed `Unsupported` error instead of hanging.
    #[cfg(not(unix))]
    fn from_links(
        rank: usize,
        nprocs: usize,
        links: Vec<Option<TcpStream>>,
        batch: BatchConfig,
        stats: Arc<CommStats>,
    ) -> Self {
        let (events_tx, events_rx) = unbounded();
        let mut live = 0usize;
        let socks: Vec<Option<Arc<TcpStream>>> = links
            .into_iter()
            .map(|link| {
                link.map(|stream| {
                    live += 1;
                    Arc::new(stream)
                })
            })
            .collect();
        for _ in 0..live {
            let _ = events_tx.send(Event::Fault(TransportError::Io {
                context: "the poll-based tcp fabric needs poll(2)".into(),
                error: io::Error::new(io::ErrorKind::Unsupported, "unsupported platform"),
            }));
        }
        Self {
            rank,
            nprocs,
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                crash: AtomicBool::new(false),
                slam: AtomicBool::new(false),
                queues: socks
                    .iter()
                    .map(|s| s.as_ref().map(|_| Mutex::new(WriteQueue::default())))
                    .collect(),
            }),
            socks,
            batch,
            outbox: (0..nprocs).map(|_| Mutex::new(TcpBatch::default())).collect(),
            stats,
            events_tx,
            events_rx,
            live: Mutex::new(live),
            io: None,
        }
    }
}

impl<M> TcpTransport<M> {
    /// Simulate an abnormal death for fault-injection tests: slam every
    /// link shut (no goodbye frames), exactly as a killed process would.
    /// Peers observe [`TransportError::Disconnected`] from `recv`.
    pub fn abort(&self) {
        self.shared.slam.store(true, Ordering::SeqCst);
        for s in self.socks.iter().flatten() {
            let _ = s.shutdown(Shutdown::Both);
        }
        self.wake_io();
    }

    /// Nudge the io thread out of its poll so it notices fresh queue
    /// contents or a freshly-set flag.
    #[cfg(unix)]
    fn wake_io(&self) {
        if let Some(w) = &self.wake {
            // A full pipe means a wake is already pending — good enough.
            let _ = (&*w).write(&[1]);
        }
    }

    #[cfg(not(unix))]
    fn wake_io(&self) {}

    /// Hand one encoded frame to the io thread and count it.
    fn enqueue_frame(&self, dst: usize, frame: Vec<u8>) {
        if let Some(q) = &self.shared.queues[dst] {
            q.lock().frames.push_back(frame);
        }
        self.stats.record_frames(self.rank, 1);
        self.wake_io();
    }

    /// Coalesce and enqueue everything buffered for `dst`.
    fn flush_dst(&self, dst: usize) {
        let payloads = {
            let mut buf = self.outbox[dst].lock();
            if buf.payloads.is_empty() {
                return;
            }
            buf.bytes = 0;
            std::mem::take(&mut buf.payloads)
        };
        self.enqueue_frame(dst, encode_batch_frame(self.rank, &payloads));
    }
}

/// Per-link io state of the poll loop.
#[cfg(unix)]
struct PeerLink {
    sock: Arc<TcpStream>,
    assembler: FrameAssembler,
    /// Still expecting bytes (no Bye/Fault observed yet).
    reading: bool,
    /// Still allowed to write (no write fault yet).
    writing: bool,
    /// Terminal event already emitted — never emit a second, so the
    /// endpoint's live-link count stays exact.
    done: bool,
}

#[cfg(unix)]
impl PeerLink {
    fn new(sock: Arc<TcpStream>) -> Self {
        Self { sock, assembler: FrameAssembler::new(), reading: true, writing: true, done: false }
    }

    /// The link failed: retire both directions and emit the one fault.
    fn fault<M>(&mut self, tx: &Sender<Event<M>>, err: TransportError) {
        self.reading = false;
        self.writing = false;
        if !self.done {
            self.done = true;
            let _ = tx.send(Event::Fault(err));
        }
    }

    /// The peer said goodbye: stop reading (its write half is closed),
    /// keep writing (its read half drains until its process exits).
    fn bye<M>(&mut self, tx: &Sender<Event<M>>) {
        self.reading = false;
        if !self.done {
            self.done = true;
            let _ = tx.send(Event::Bye);
        }
    }
}

/// The io thread: one `poll(2)` loop multiplexing every mesh link.
///
/// Reads ready bytes into each peer's [`FrameAssembler`] and queues the
/// decoded envelopes; drains each peer's [`WriteQueue`] whenever its
/// socket is writable, resuming partial writes at the recorded offset.
/// On graceful shutdown it drains all queues, appends goodbye frames,
/// *logs* (rather than discards) goodbye write failures, half-closes the
/// links, and exits; on slam it shuts every socket down hard and exits
/// at once.
#[cfg(unix)]
fn io_loop<M: Send + WireDecode>(
    rank: usize,
    socks: Vec<Option<Arc<TcpStream>>>,
    shared: Arc<Shared>,
    wake: UnixStream,
    tx: Sender<Event<M>>,
) {
    let mut peers: Vec<Option<PeerLink>> =
        socks.into_iter().map(|s| s.map(PeerLink::new)).collect();
    let mut scratch = vec![0u8; 64 << 10];
    // Once a graceful shutdown begins, the deadline after which queued
    // frames and goodbyes are abandoned.
    let mut goodbye: Option<Instant> = None;
    // Once a crash teardown begins, the deadline after which queued data
    // frames are abandoned and the links are slammed (no goodbyes).
    let mut crash: Option<Instant> = None;

    loop {
        if shared.slam.load(Ordering::SeqCst) {
            for p in peers.iter().flatten() {
                let _ = p.sock.shutdown(Shutdown::Both);
            }
            return;
        }
        if crash.is_none() && shared.crash.load(Ordering::SeqCst) {
            crash = Some(Instant::now() + CRASH_DRAIN_TIMEOUT);
        }
        if let Some(deadline) = crash {
            let drained = peers
                .iter()
                .enumerate()
                .all(|(i, p)| p.as_ref().is_none_or(|p| !p.writing || shared.queue_empty(i)));
            if drained || Instant::now() > deadline {
                // Dirty close by design: no goodbye frames, so peers see
                // EOF-without-goodbye and surface `Disconnected`.
                for p in peers.iter().flatten() {
                    let _ = p.sock.shutdown(Shutdown::Both);
                }
                return;
            }
        }
        if goodbye.is_none() && crash.is_none() && shared.shutdown.load(Ordering::SeqCst) {
            goodbye = Some(Instant::now() + GOODBYE_TIMEOUT);
            for (i, p) in peers.iter().enumerate() {
                if let Some(p) = p {
                    if p.writing {
                        if let Some(q) = &shared.queues[i] {
                            q.lock().frames.push_back(bye_frame(rank).to_vec());
                        }
                    }
                }
            }
        }
        if let Some(deadline) = goodbye {
            let drained = peers
                .iter()
                .enumerate()
                .all(|(i, p)| p.as_ref().is_none_or(|p| !p.writing || shared.queue_empty(i)));
            if drained {
                for p in peers.iter().flatten() {
                    if p.writing {
                        let _ = p.sock.shutdown(Shutdown::Write);
                    }
                }
                return;
            }
            if Instant::now() > deadline {
                eprintln!(
                    "dne-tcp[{rank}]: goodbye writes timed out after {GOODBYE_TIMEOUT:?}; \
                     closing links hard"
                );
                for p in peers.iter().flatten() {
                    let _ = p.sock.shutdown(Shutdown::Both);
                }
                return;
            }
        }

        // Build the poll set: the wake pipe first, then every link that
        // still wants to read or has queued bytes to write.
        let mut fds = vec![sys::PollFd { fd: wake.as_raw_fd(), events: sys::POLLIN, revents: 0 }];
        let mut idx = Vec::with_capacity(peers.len());
        for (i, p) in peers.iter().enumerate() {
            let Some(p) = p else { continue };
            let mut events = 0i16;
            if p.reading {
                events |= sys::POLLIN;
            }
            if p.writing && !shared.queue_empty(i) {
                events |= sys::POLLOUT;
            }
            if events != 0 {
                fds.push(sys::PollFd { fd: p.sock.as_raw_fd(), events, revents: 0 });
                idx.push(i);
            }
        }
        let timeout = match (goodbye, crash) {
            // Re-check the drain condition at least every 50ms while
            // saying goodbye or crash-draining, even if poll reports
            // nothing.
            (Some(_), _) | (_, Some(_)) => 50,
            (None, None) => -1,
        };
        if let Err(e) = sys::poll_fds(&mut fds, timeout) {
            // poll itself failing is unrecoverable for the whole
            // endpoint: fault every remaining link so recv cannot hang.
            for p in peers.iter_mut().flatten() {
                let error = io::Error::new(e.kind(), e.to_string());
                p.fault(
                    &tx,
                    TransportError::Io { context: "polling the socket fabric".into(), error },
                );
                let _ = p.sock.shutdown(Shutdown::Both);
            }
            return;
        }

        if fds[0].revents != 0 {
            // Drain the wake pipe; its only payload is the nudge itself.
            loop {
                match (&wake).read(&mut scratch) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        for (k, &i) in idx.iter().enumerate() {
            let revents = fds[k + 1].revents;
            if revents == 0 {
                continue;
            }
            let p = peers[i].as_mut().expect("polled peers exist");
            let closing = revents & (sys::POLLERR | sys::POLLHUP) != 0;
            if p.writing && (revents & sys::POLLOUT != 0 || closing) {
                write_ready(rank, i, p, &shared, &tx, goodbye.is_some());
            }
            if p.reading && (revents & sys::POLLIN != 0 || closing) {
                read_ready(i, p, &mut scratch, &tx);
            }
        }
    }
}

/// Drain one peer's write queue until it empties or the socket pushes
/// back. A write error faults the link (or, during the goodbye drain, is
/// logged — never silently discarded).
#[cfg(unix)]
fn write_ready<M>(
    rank: usize,
    peer: usize,
    p: &mut PeerLink,
    shared: &Shared,
    tx: &Sender<Event<M>>,
    in_goodbye: bool,
) {
    let Some(queue) = &shared.queues[peer] else { return };
    let drained = {
        let mut q = queue.lock();
        match q.drain_into(&mut (&*p.sock)) {
            Ok(_) => Ok(()),
            Err(e) => {
                q.frames.clear();
                q.offset = 0;
                Err(e)
            }
        }
    };
    if let Err(e) = drained {
        if in_goodbye {
            // The goodbye path has no receiver left to surface a
            // fault to — log instead of discarding the error.
            p.writing = false;
            eprintln!("dne-tcp[{rank}]: goodbye to rank {peer} failed: {e}");
        } else {
            p.fault(
                tx,
                TransportError::Io { context: format!("sending to rank {peer}"), error: e },
            );
        }
        let _ = p.sock.shutdown(Shutdown::Both);
    }
}

/// Read one peer's ready bytes into its assembler and deliver every
/// completed envelope; EOF and malformed streams fault the link with the
/// same typed errors the blocking reader produced.
#[cfg(unix)]
fn read_ready<M: WireDecode>(
    peer: usize,
    p: &mut PeerLink,
    scratch: &mut [u8],
    tx: &Sender<Event<M>>,
) {
    // Bound the reads per readable event so one firehose peer cannot
    // starve the rest of the mesh of service.
    for _ in 0..16 {
        match (&*p.sock).read(scratch) {
            Ok(0) => {
                let err = if p.assembler.mid_frame() {
                    TransportError::Frame {
                        src: Some(peer),
                        detail: "stream ended mid-frame".into(),
                    }
                } else {
                    TransportError::Disconnected { peer: Some(peer) }
                };
                p.fault(tx, err);
                return;
            }
            Ok(n) => {
                let items = match p.assembler.push(&scratch[..n], peer) {
                    Ok(items) => items,
                    Err(e) => {
                        p.fault(tx, e);
                        return;
                    }
                };
                for item in items {
                    match item {
                        Assembled::Bye => {
                            p.bye(tx);
                            return;
                        }
                        Assembled::Frame(frame) => {
                            let claimed =
                                u32::from_le_bytes(frame[8..12].try_into().expect("4-byte slice"))
                                    as usize;
                            if claimed != peer {
                                p.fault(
                                    tx,
                                    TransportError::Frame {
                                        src: Some(peer),
                                        detail: format!(
                                            "frame claims source rank {claimed} on the link \
                                             from rank {peer}"
                                        ),
                                    },
                                );
                                return;
                            }
                            match decode_frames::<M>(&frame) {
                                Ok((_, msgs)) => {
                                    for msg in msgs {
                                        let _ = tx.send(Event::Frame(peer, msg));
                                    }
                                }
                                Err(e) => {
                                    p.fault(tx, e);
                                    return;
                                }
                            }
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                p.fault(
                    tx,
                    TransportError::Io { context: format!("receiving from rank {peer}"), error: e },
                );
                return;
            }
        }
    }
}

impl<M> Transport<M> for TcpTransport<M>
where
    M: Send + WireEncode + WireDecode + 'static,
{
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn nprocs(&self) -> usize {
        self.nprocs
    }

    fn send(&self, dst: usize, msg: M) -> Result<usize, TransportError> {
        let payload = msg.to_wire();
        let wire = payload.len();
        // Enforce the frame bound at the sender (as every backend does):
        // shipping a gigabyte only for the receiver to reject it as
        // stream corruption would waste the transfer and misattribute a
        // legitimate (if oversized) message.
        check_payload_bound(wire, self.rank)?;
        if dst == self.rank {
            // Self-sends round-trip through the codec like any other
            // envelope (matching the bytes backend) but skip the socket —
            // and are therefore never buffered and never frames.
            let msg = M::from_wire(&payload)
                .map_err(|error| TransportError::Decode { src: self.rank, error })?;
            self.events_tx
                .send(Event::Frame(self.rank, msg))
                .expect("own event queue outlives the endpoint");
            return Ok(wire);
        }
        if !self.batch.enabled() {
            self.enqueue_frame(dst, classic_frame(self.rank as u32, &payload));
            return Ok(wire);
        }
        if wire >= self.batch.max_bytes {
            // Too big to coalesce: flush what's buffered first (FIFO
            // order is preserved), then ship it as its own frame.
            self.flush_dst(dst);
            self.enqueue_frame(dst, classic_frame(self.rank as u32, &payload));
            return Ok(wire);
        }
        let full = {
            let mut buf = self.outbox[dst].lock();
            buf.payloads.push(payload);
            buf.bytes += wire;
            buf.payloads.len() >= self.batch.max_msgs || buf.bytes >= self.batch.max_bytes
        };
        if full {
            self.flush_dst(dst);
        }
        Ok(wire)
    }

    fn flush(&self) -> Result<(), TransportError> {
        for dst in 0..self.nprocs {
            if dst != self.rank {
                self.flush_dst(dst);
            }
        }
        Ok(())
    }

    fn try_recv(&self) -> Result<Option<(usize, M)>, TransportError> {
        loop {
            match self.events_rx.try_recv() {
                Ok(Event::Frame(src, msg)) => return Ok(Some((src, msg))),
                Ok(Event::Bye) => *self.live.lock() -= 1,
                Ok(Event::Fault(e)) => {
                    *self.live.lock() -= 1;
                    return Err(e);
                }
                Err(_) => return Ok(None),
            }
        }
    }

    fn recv(&self) -> Result<(usize, M), TransportError> {
        loop {
            let event = if *self.live.lock() == 0 {
                // Every link has retired: only already-queued envelopes
                // (including self-sends) can satisfy this receive. An
                // empty queue means blocking would never return.
                match self.events_rx.try_recv() {
                    Ok(ev) => ev,
                    Err(_) => return Err(TransportError::Disconnected { peer: None }),
                }
            } else {
                self.events_rx.recv().expect("events channel held open by this endpoint")
            };
            match event {
                Event::Frame(src, msg) => return Ok((src, msg)),
                Event::Bye => *self.live.lock() -= 1,
                Event::Fault(e) => {
                    *self.live.lock() -= 1;
                    return Err(e);
                }
            }
        }
    }
}

impl<M> Drop for TcpTransport<M> {
    fn drop(&mut self) {
        // Graceful teardown: the io thread drains every queued frame,
        // writes a goodbye frame, then a write-side FIN on every link, so
        // peers can tell this shutdown from a crash. A drop that happens
        // while this thread is *panicking* is a crash, not a shutdown —
        // the io thread drains already-queued data frames for at most
        // `CRASH_DRAIN_TIMEOUT` (a peer that stopped reading must not
        // wedge the unwind on a full write queue) and then slams the
        // links *without* goodbye frames, so peers observe a typed
        // disconnect instead of a graceful retire and recovery can
        // trigger. (Envelopes still coalesced in the outbox are dropped
        // without being sent, exactly like the in-process backends: a
        // flush point must precede any drop that expects delivery, and
        // `CommEndpoint` flushes before every receive.)
        if std::thread::panicking() {
            self.shared.crash.store(true, Ordering::SeqCst);
            self.wake_io();
            // The crash drain is bounded, so this join cannot wedge the
            // unwind for more than about a second.
            if let Some(io) = self.io.take() {
                let _ = io.join();
            }
            return;
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.wake_io();
        if let Some(io) = self.io.take() {
            let _ = io.join();
        }
    }
}

// --------------------------------------------------------- multi-process --

/// One rank of a TCP cluster whose machines are *real OS processes*.
///
/// Rank 0 [`host`](TcpProcessCluster::host)s the rendezvous; every other
/// process [`join`](TcpProcessCluster::join)s it.
/// [`connect`](TcpProcessCluster::connect) then bootstraps the two meshes
/// of a cluster session (point-to-point and collectives) and hands back a
/// [`TcpSession`] whose [`Ctx`] offers the exact API that in-process
/// `Cluster::run` closures receive — the same per-rank algorithm code
/// drives both. See the `dne-tcp-worker` binary for the full workflow.
pub struct TcpProcessCluster {
    rank: usize,
    nprocs: usize,
    rendezvous: Option<TcpRendezvous>,
    addr: SocketAddr,
    bind: String,
}

impl TcpProcessCluster {
    /// Become rank 0: bind the rendezvous listener at `bind_addr`
    /// (`"127.0.0.1:0"` picks an ephemeral port; advertise
    /// [`addr`](TcpProcessCluster::addr) to the other processes).
    pub fn host(nprocs: usize, bind_addr: &str) -> Result<Self, TransportError> {
        assert!(nprocs >= 1, "cluster needs at least one process");
        let rendezvous = TcpRendezvous::bind(bind_addr)
            .map_err(|e| io_err(format!("binding rendezvous at {bind_addr}"), e))?;
        let addr = rendezvous.local_addr();
        Ok(Self {
            rank: 0,
            nprocs,
            rendezvous: Some(rendezvous),
            addr,
            bind: "127.0.0.1:0".to_string(),
        })
    }

    /// Become rank `rank` (`1..nprocs`), dialing the rendezvous `addr`
    /// that rank 0 advertised.
    pub fn join(rank: usize, nprocs: usize, addr: &str) -> Result<Self, TransportError> {
        assert!(rank >= 1 && rank < nprocs, "join is for ranks 1..nprocs");
        let addr = addr
            .parse()
            .map_err(|e| bootstrap_err(format!("invalid rendezvous address {addr:?}: {e}")))?;
        Ok(Self { rank, nprocs, rendezvous: None, addr, bind: "127.0.0.1:0".to_string() })
    }

    /// Bind this rank's mesh listeners at `bind` instead of the ephemeral
    /// localhost default — the first slice of cross-machine clusters.
    /// Unless the IP is a wildcard it is advertised to peers via the
    /// rendezvous roster; a wildcard advertises the source address the
    /// rendezvous observes on the hello connection.
    pub fn with_bind(mut self, bind: &str) -> Self {
        self.bind = bind.to_string();
        self
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processes in the cluster.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The rendezvous address (for rank 0: the bound listener address to
    /// advertise to joining processes).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bootstrap both meshes and build this rank's cluster context, with
    /// the collective topology resolved from the `DNE_COLLECTIVES`
    /// environment variable (flat when unset — every process of a cluster
    /// must agree, which environment inheritance gives for free).
    ///
    /// Blocks until every process of the cluster has connected (bounded
    /// by the bootstrap deadline). The session's [`CommStats`] and
    /// [`MemoryTracker`] are process-local: only this rank's row is
    /// populated — aggregate across ranks with a collective after the
    /// algorithm finishes, as `dne-tcp-worker` does.
    pub fn connect<M>(mut self) -> Result<TcpSession<M>, TransportError>
    where
        M: Send + WireEncode + WireDecode + 'static,
    {
        self.connect_full(CollectiveTopology::from_env(), BatchConfig::from_env(), 0)
    }

    /// Bootstrap (or re-bootstrap) the cluster's meshes under an explicit
    /// bootstrap generation, without consuming the cluster object — the
    /// recovery workflow: when a session dies with
    /// [`TransportError::Disconnected`], drop it and call `connect_epoch`
    /// again on the same object to build a fresh mesh among whoever dials
    /// the rendezvous for the new epoch.
    ///
    /// Rank 0 owns the epoch counter and must pass the concrete next
    /// epoch (its rendezvous listener persists across calls, so the
    /// advertised address stays valid); every other rank passes
    /// [`EPOCH_ANY`] and learns the agreed epoch from the roster (check
    /// [`TcpSession::epoch`]). A restarted worker process joins the same
    /// way: [`TcpProcessCluster::join`] then `connect_epoch(EPOCH_ANY)`.
    pub fn connect_epoch<M>(&mut self, epoch: u32) -> Result<TcpSession<M>, TransportError>
    where
        M: Send + WireEncode + WireDecode + 'static,
    {
        self.connect_full(CollectiveTopology::from_env(), BatchConfig::from_env(), epoch)
    }

    /// [`TcpProcessCluster::connect`] with an explicit coalescing policy
    /// for the point-to-point mesh (overrides `DNE_COMM_BATCH`; the
    /// collectives mesh always runs unbatched). Results and logical
    /// message/byte accounting are identical with batching on or off —
    /// only the physical frame count changes, so processes need not agree
    /// on the policy.
    pub fn connect_with_comm_batch<M>(
        mut self,
        batch: BatchConfig,
    ) -> Result<TcpSession<M>, TransportError>
    where
        M: Send + WireEncode + WireDecode + 'static,
    {
        self.connect_full(CollectiveTopology::from_env(), batch, 0)
    }

    /// [`TcpProcessCluster::connect`] with an explicit collective
    /// topology. Every process of the cluster must pass the same value:
    /// the topology is baked into the collectives mesh's fabric id, so a
    /// disagreement fails the bootstrap with a typed
    /// [`TransportError::Bootstrap`] naming both topologies instead of
    /// deadlocking at the first barrier.
    pub fn connect_with_collectives<M>(
        mut self,
        topology: CollectiveTopology,
    ) -> Result<TcpSession<M>, TransportError>
    where
        M: Send + WireEncode + WireDecode + 'static,
    {
        // The point-to-point mesh honors `DNE_COMM_BATCH` (inherited by
        // every worker's environment); the collectives mesh always runs
        // unbatched, exactly like in-process clusters, so the published
        // per-rank collective traffic stays exact.
        self.connect_full(topology, BatchConfig::from_env(), 0)
    }

    fn connect_full<M>(
        &mut self,
        topology: CollectiveTopology,
        batch: BatchConfig,
        epoch: u32,
    ) -> Result<TcpSession<M>, TransportError>
    where
        M: Send + WireEncode + WireDecode + 'static,
    {
        let stats = CommStats::new(self.nprocs);
        let memory = MemoryTracker::new(self.nprocs);
        let coll_id = coll_fabric(topology);
        let (p2p, coll, epoch): (TcpTransport<M>, TcpTransport<CollMsg>, u32) =
            match self.rendezvous.as_mut() {
                Some(rv) => {
                    assert!(
                        epoch != EPOCH_ANY,
                        "rank 0 owns the epoch counter and must pass a concrete epoch"
                    );
                    rv.set_epoch(epoch);
                    (
                        host_endpoint(rv, FABRIC_P2P, self.nprocs, batch, Arc::clone(&stats))?,
                        host_endpoint(
                            rv,
                            coll_id,
                            self.nprocs,
                            BatchConfig::disabled(),
                            Arc::clone(&stats),
                        )?,
                        epoch,
                    )
                }
                None => {
                    let (p2p, learned) = connect_endpoint(
                        self.addr,
                        FABRIC_P2P,
                        self.rank,
                        self.nprocs,
                        epoch,
                        &self.bind,
                        batch,
                        Arc::clone(&stats),
                    )?;
                    // The collectives mesh joins the epoch the
                    // point-to-point roster agreed on — never the
                    // wildcard, so both meshes are of one generation.
                    let (coll, _) = connect_endpoint(
                        self.addr,
                        coll_id,
                        self.rank,
                        self.nprocs,
                        learned,
                        &self.bind,
                        BatchConfig::disabled(),
                        Arc::clone(&stats),
                    )?;
                    (p2p, coll, learned)
                }
            };
        let comm = CommEndpoint::from_transport(Box::new(p2p), Arc::clone(&stats));
        let collectives = Collectives::from_transport(Box::new(coll), topology, Arc::clone(&stats));
        let ctx = Ctx::from_parts(comm, collectives, Arc::clone(&memory));
        Ok(TcpSession { ctx, comm: stats, memory, epoch })
    }
}

/// A connected per-process cluster session (see [`TcpProcessCluster`]).
pub struct TcpSession<M> {
    /// The per-rank cluster context — the same API in-process
    /// `Cluster::run` closures receive.
    pub ctx: Ctx<M>,
    /// Process-local communication accounting (this rank's row only).
    pub comm: Arc<CommStats>,
    /// Process-local memory accounting (this rank's row only).
    pub memory: Arc<MemoryTracker>,
    /// The bootstrap generation this session's meshes were built under
    /// (0 for a cluster's first bootstrap; see
    /// [`TcpProcessCluster::connect_epoch`]).
    pub epoch: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireSize;

    // ---------------------------------------------------- socket fabric --

    #[test]
    fn coalesced_envelopes_cross_the_socket_as_one_frame() {
        let stats = CommStats::new(2);
        let mut eps = TcpTransport::<u64>::fabric_with(2, BatchConfig::msgs(8), Arc::clone(&stats));
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..5u64 {
            a.send(1, i).unwrap();
        }
        a.flush().unwrap();
        for i in 0..5u64 {
            assert_eq!(b.recv().unwrap(), (0, i));
        }
        assert_eq!(stats.frames_by(0), 1, "five coalesced envelopes are one physical frame");
    }

    #[test]
    fn fabric_delivers_with_exact_accounting() {
        let mut eps = TcpTransport::<Vec<u64>>::fabric(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let payload: Vec<u64> = (0..500).collect();
        let wire = a.send(1, payload.clone()).unwrap();
        assert_eq!(wire, payload.wire_bytes());
        assert_eq!(b.recv().unwrap(), (0, payload));
    }

    #[test]
    fn per_link_fifo_order_over_sockets() {
        let mut eps = TcpTransport::<u64>::fabric(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..200 {
            a.send(1, i).unwrap();
        }
        for i in 0..200 {
            assert_eq!(b.recv().unwrap(), (0, i));
        }
    }

    #[test]
    fn killed_peer_surfaces_as_transport_error() {
        // Rank 1 dies abnormally (no goodbye): rank 0's next receive must
        // be a typed disconnect naming the peer — not a hang, not a panic.
        let mut eps = TcpTransport::<u64>::fabric(3);
        let _c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        b.abort();
        match a.recv() {
            Err(TransportError::Disconnected { peer: Some(1) }) => {}
            other => panic!("expected disconnect from rank 1, got {other:?}"),
        }
    }

    #[test]
    fn graceful_shutdown_drains_then_reports_all_gone() {
        // Frames sent before a graceful drop must still be received;
        // afterwards recv reports that nothing can arrive instead of
        // blocking forever.
        let mut eps = TcpTransport::<u64>::fabric(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        b.send(0, 41).unwrap();
        b.send(0, 42).unwrap();
        drop(b);
        assert_eq!(a.recv().unwrap(), (1, 41));
        assert_eq!(a.recv().unwrap(), (1, 42));
        match a.recv() {
            Err(TransportError::Disconnected { peer: None }) => {}
            other => panic!("expected all-gone disconnect, got {other:?}"),
        }
    }

    #[test]
    fn self_sends_work_without_sockets() {
        let eps = TcpTransport::<u64>::fabric(1);
        let a = &eps[0];
        assert_eq!(a.send(0, 9).unwrap(), 8);
        assert_eq!(a.recv().unwrap(), (0, 9));
        // Nothing queued and no links: recv must error, not block.
        assert!(matches!(a.recv(), Err(TransportError::Disconnected { peer: None })));
    }

    #[test]
    fn four_endpoint_mesh_all_to_all() {
        let eps = TcpTransport::<u64>::fabric(4);
        std::thread::scope(|s| {
            for ep in eps {
                s.spawn(move || {
                    for dst in 0..4 {
                        ep.send(dst, (ep.rank() * 10 + dst) as u64).unwrap();
                    }
                    let mut got = vec![0u64; 4];
                    for _ in 0..4 {
                        let (src, v) = ep.recv().unwrap();
                        got[src] = v;
                    }
                    let want: Vec<u64> = (0..4).map(|src| (src * 10 + ep.rank()) as u64).collect();
                    assert_eq!(got, want);
                });
            }
        });
    }

    #[test]
    fn panicking_rank_crash_teardown_is_dirty_and_prompt() {
        // A drop during panic unwind must (a) still drain frames that
        // were already queued, bounded in time, and (b) never say
        // goodbye: the peer has to observe a typed dirty disconnect —
        // the recovery trigger — not a graceful retire.
        let mut eps = TcpTransport::<u64>::fabric(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let t = std::thread::spawn(move || {
            b.send(0, 7).unwrap();
            b.flush().unwrap();
            panic!("injected crash (expected in this test)");
        });
        assert!(t.join().is_err(), "the injected panic must propagate");
        assert_eq!(a.recv().unwrap(), (1, 7), "queued frames drain before the slam");
        match a.recv() {
            Err(TransportError::Disconnected { peer: Some(1) }) => {}
            other => panic!("expected dirty disconnect from the panicking rank, got {other:?}"),
        }
    }

    // ------------------------------------------------------- rendezvous --

    /// Dial `addr` and send a raw bootstrap hello (test helper).
    fn dial_hello(addr: SocketAddr, fabric: u8, rank: u32, epoch: u32) -> TcpStream {
        let mut s = TcpStream::connect(addr).expect("dialing test rendezvous");
        write_hello(&mut s, fabric, rank, epoch, None, 9).expect("writing test hello");
        s
    }

    #[test]
    fn duplicate_hello_is_a_typed_bootstrap_error() {
        let mut rv = TcpRendezvous::bind("127.0.0.1:0").unwrap();
        let addr = rv.local_addr();
        let _c1 = dial_hello(addr, FABRIC_P2P, 1, 0);
        let _c2 = dial_hello(addr, FABRIC_P2P, 1, 0);
        let err = rv.collect(FABRIC_P2P, 3).expect_err("two hellos from one rank must fail");
        assert!(matches!(err, TransportError::Bootstrap { .. }), "typed bootstrap error: {err:?}");
        assert!(err.to_string().contains("two hellos from rank 1"), "names the rank: {err}");
    }

    #[test]
    fn out_of_range_rank_hello_is_a_typed_bootstrap_error() {
        let mut rv = TcpRendezvous::bind("127.0.0.1:0").unwrap();
        let addr = rv.local_addr();
        let _c = dial_hello(addr, FABRIC_P2P, 7, 0);
        let err = rv.collect(FABRIC_P2P, 2).expect_err("rank 7 of 2 must fail the bootstrap");
        assert!(matches!(err, TransportError::Bootstrap { .. }), "typed bootstrap error: {err:?}");
        assert!(err.to_string().contains("out-of-range rank 7"), "names the rank: {err}");
    }

    #[test]
    fn rank_zero_hello_is_a_typed_bootstrap_error() {
        // Rank 0 hosts the rendezvous; a hello claiming rank 0 can only
        // be a misconfigured worker.
        let mut rv = TcpRendezvous::bind("127.0.0.1:0").unwrap();
        let addr = rv.local_addr();
        let _c = dial_hello(addr, FABRIC_P2P, 0, 0);
        let err = rv.collect(FABRIC_P2P, 2).expect_err("a rank-0 hello must fail the bootstrap");
        assert!(err.to_string().contains("out-of-range rank 0"), "names the rank: {err}");
    }

    #[test]
    fn stale_epoch_hello_is_a_typed_bootstrap_error() {
        // A process from a previous incarnation (concrete epoch 0) dials
        // a rendezvous already recovering at epoch 2: typed error naming
        // both epochs, not a silent wedge.
        let mut rv = TcpRendezvous::bind("127.0.0.1:0").unwrap();
        rv.set_epoch(2);
        let addr = rv.local_addr();
        let _c = dial_hello(addr, FABRIC_P2P, 1, 0);
        let err = rv.collect(FABRIC_P2P, 2).expect_err("a stale-epoch hello must fail");
        let msg = err.to_string();
        assert!(msg.contains("epoch 0") && msg.contains("epoch 2"), "names both epochs: {msg}");
    }

    #[test]
    fn wildcard_epoch_hello_adopts_the_rendezvous_epoch() {
        // EPOCH_ANY is how survivors and restarted workers rejoin without
        // knowing how many recoveries rank 0 has counted.
        let mut rv = TcpRendezvous::bind("127.0.0.1:0").unwrap();
        rv.set_epoch(5);
        let addr = rv.local_addr();
        let _c = dial_hello(addr, FABRIC_P2P, 1, EPOCH_ANY);
        let peers = rv.collect(FABRIC_P2P, 2).expect("a wildcard hello joins any epoch");
        assert_eq!(peers.len(), 1);
        assert_eq!(peers[0].0, 1);
    }

    // -------------------------------------------------- process cluster --

    #[test]
    fn same_cluster_objects_bootstrap_successive_epochs() {
        // The recovery workflow: after a session dies, the *same*
        // TcpProcessCluster objects re-bootstrap a fresh mesh under the
        // next epoch — rank 0 passing the concrete epoch, everyone else
        // the wildcard (learning the epoch from the roster).
        let n = 2;
        let mut host = TcpProcessCluster::host(n, "127.0.0.1:0").unwrap();
        let addr = host.addr().to_string();
        std::thread::scope(|s| {
            let joiner = s.spawn(move || {
                let mut j = TcpProcessCluster::join(1, n, &addr).unwrap();
                for round in 0..3u32 {
                    let mut sess = j.connect_epoch::<u64>(EPOCH_ANY).unwrap();
                    assert_eq!(sess.epoch, round, "roster teaches the wildcard joiner the epoch");
                    let sum = sess.ctx.try_all_reduce_sum_u64(1).unwrap();
                    assert_eq!(sum, 1 + u64::from(round));
                }
            });
            for round in 0..3u32 {
                let mut sess = host.connect_epoch::<u64>(round).unwrap();
                assert_eq!(sess.epoch, round);
                let sum = sess.ctx.try_all_reduce_sum_u64(u64::from(round)).unwrap();
                assert_eq!(sum, 1 + u64::from(round));
            }
            joiner.join().unwrap();
        });
    }

    #[test]
    fn topology_disagreement_fails_bootstrap_with_a_typed_error() {
        // One process exports a different DNE_COLLECTIVES than the rest:
        // the bootstrap itself must reject the cluster (typed, prompt)
        // rather than letting the first barrier deadlock forever.
        let n = 2;
        let host = TcpProcessCluster::host(n, "127.0.0.1:0").unwrap();
        let addr = host.addr().to_string();
        std::thread::scope(|s| {
            let h = s.spawn(move || host.connect_with_collectives::<u64>(CollectiveTopology::Flat));
            let j = s.spawn(move || {
                TcpProcessCluster::join(1, n, &addr)
                    .unwrap()
                    .connect_with_collectives::<u64>(CollectiveTopology::Binomial)
            });
            let host_err = match h.join().unwrap() {
                Err(e) => e,
                Ok(_) => panic!("host must reject the topology disagreement"),
            };
            assert!(
                host_err.to_string().contains("DNE_COLLECTIVES"),
                "error must point at the misconfiguration: {host_err}"
            );
            assert!(j.join().unwrap().is_err(), "the joiner must fail too, not hang");
        });
    }

    #[test]
    fn process_cluster_bootstrap_and_collectives() {
        // Exercise the exact host/join/connect path worker processes use
        // (threads stand in for processes; the code path is identical),
        // under every collective topology.
        for topo in CollectiveTopology::ALL {
            let n = 3;
            let host = TcpProcessCluster::host(n, "127.0.0.1:0").unwrap();
            let addr = host.addr().to_string();
            std::thread::scope(|s| {
                let mut handles =
                    vec![s.spawn(move || host.connect_with_collectives::<Vec<u64>>(topo).unwrap())];
                for rank in 1..n {
                    let addr = addr.clone();
                    handles.push(s.spawn(move || {
                        TcpProcessCluster::join(rank, n, &addr)
                            .unwrap()
                            .connect_with_collectives::<Vec<u64>>(topo)
                            .unwrap()
                    }));
                }
                let mut runners = Vec::new();
                for h in handles {
                    let mut session = h.join().unwrap();
                    runners.push(s.spawn(move || {
                        let rank = session.ctx.rank() as u64;
                        let sum = session.ctx.try_all_reduce_sum_u64(rank).unwrap();
                        assert_eq!(sum, 3);
                        let got = session.ctx.try_exchange(|dst| vec![rank, dst as u64]).unwrap();
                        for (src, msg) in got.iter().enumerate() {
                            assert_eq!(msg, &vec![src as u64, rank]);
                        }
                        session.ctx.try_barrier().unwrap();
                        // Per-process accounting: only this rank's row moves.
                        let rank = session.ctx.rank();
                        (rank, session.comm.bytes_sent_by(rank))
                    }));
                }
                for r in runners {
                    let (rank, bytes) = r.join().unwrap();
                    // Each rank: 2 collective rounds at the topology's
                    // published per-rank cost plus one exchange with two
                    // non-self 24-byte payloads.
                    let (coll_bytes, _) = topo.rank_traffic(rank, n);
                    assert_eq!(bytes, 2 * coll_bytes + 2 * 24, "{topo} rank {rank}");
                }
            });
        }
    }
}
