//! Dead-rank edge migration: the second half of elastic fault tolerance.
//!
//! [`snapshot`] + the epoch re-rendezvous handle a rank
//! that *restarts*: the cluster rolls back to the newest commonly
//! checkpointed round and replays bit-identically. This module handles a
//! rank that is **permanently dead**: its partition's edge set — plus any
//! edges still unallocated at the checkpoint — is migrated onto the
//! survivors by the same replication-free placement rules that drive the
//! incremental partitioner ([`IncrementalVertexCut`]), and the resulting
//! complete assignment is re-measured.
//!
//! The checkpoint files carry everything needed without the dead machine:
//! each rank's snapshot records the allocation word of every edge *hosted*
//! in its 2D-hash bucket, and the bucket's local→global order is rebuilt
//! deterministically from `(graph, seed)` by scanning edges in id order
//! through [`Grid2D::owner`] — the exact order
//! [`AllocatorPart::from_owned_edges`](crate::dist::AllocatorPart::from_owned_edges)
//! assigns local slots. Merging all buckets yields the checkpointed global
//! assignment; edges belonging to the dead partition (and still-free
//! edges) are then re-inserted with the dead partition
//! [banned](IncrementalVertexCut::ban), so every one of them lands on a
//! survivor.

use std::path::Path;

use dne_graph::Graph;
use dne_partition::{EdgeAssignment, IncrementalVertexCut, PartitionId, PartitionQuality};

use crate::dist::{Grid2D, FREE};
use crate::snapshot::{self, run_fingerprint, RankSnapshot, SnapshotError};

/// What a completed [`migrate_dead_rank`] did, with quality re-measured
/// over the final survivor-only placement.
#[derive(Debug)]
pub struct MigrationReport {
    /// The permanently-dead rank whose partition was evacuated.
    pub dead_rank: u32,
    /// The checkpoint round the migration started from (the newest round
    /// every rank, including the dead one, had written).
    pub round: u64,
    /// Edges that belonged to the dead partition at the checkpoint and
    /// were re-placed onto survivors.
    pub migrated_edges: u64,
    /// Edges still unallocated at the checkpoint, placed fresh onto
    /// survivors (the checkpointed partial run is completed, not replayed).
    pub completed_edges: u64,
    /// Replication factor of the final assignment (Equation 1), measured
    /// by [`PartitionQuality`].
    pub replication_factor: f64,
    /// Edge balance `max/mean` over the *surviving* partitions (the dead
    /// partition is empty by construction and excluded from the mean).
    pub edge_balance: f64,
    /// The complete post-migration assignment: every edge owned by a
    /// survivor, the dead partition owning none.
    pub assignment: EdgeAssignment,
}

/// The newest round for which *every* rank `0..nprocs` has a snapshot in
/// `dir` — the migration equivalent of the restart path's min-round
/// agreement (with [`RETAINED_GENERATIONS`](snapshot::RETAINED_GENERATIONS)
/// generations kept, the newest common round is always still on disk).
fn newest_common_round(dir: &Path, nprocs: u32) -> Result<u64, SnapshotError> {
    let mut common: Option<Vec<u64>> = None;
    for rank in 0..nprocs {
        let rounds: Vec<u64> =
            snapshot::list_rounds(dir, rank)?.into_iter().map(|(round, _)| round).collect();
        if rounds.is_empty() {
            return Err(SnapshotError::Mismatch {
                detail: format!("rank {rank} has no snapshot in {}", dir.display()),
            });
        }
        common = Some(match common {
            None => rounds,
            Some(prev) => prev.into_iter().filter(|r| rounds.contains(r)).collect(),
        });
    }
    common.unwrap_or_default().into_iter().max().ok_or_else(|| SnapshotError::Mismatch {
        detail: format!("no checkpoint round common to all {nprocs} ranks in {}", dir.display()),
    })
}

/// Migrate a permanently-dead rank's edges onto the survivors.
///
/// Loads every rank's snapshot at the newest common round in `dir`
/// (validating each against the `(graph, nprocs, seed)` run identity),
/// merges the per-bucket allocation words into the checkpointed global
/// assignment, then re-places the dead partition's edges — and any edges
/// the interrupted run had not allocated yet — onto surviving partitions
/// via [`IncrementalVertexCut`] seeded with the survivors' placements.
///
/// The result is a *complete* assignment: every edge owned, none by the
/// dead partition. Quality is re-measured from scratch and returned in
/// the [`MigrationReport`].
pub fn migrate_dead_rank(
    dir: &Path,
    g: &Graph,
    nprocs: u32,
    seed: u64,
    dead: u32,
) -> Result<MigrationReport, SnapshotError> {
    assert!(nprocs >= 2, "migration needs at least one survivor");
    assert!(dead < nprocs, "dead rank {dead} out of range (nprocs {nprocs})");
    let fingerprint = run_fingerprint(g.num_edges(), nprocs, seed);
    let round = newest_common_round(dir, nprocs)?;

    // Rebuild each rank's 2D-hash bucket order (ascending edge id — the
    // order AllocatorPart assigns local slots) and apply its checkpointed
    // allocation words.
    let grid = Grid2D::new(nprocs, seed);
    let mut bucket_of: Vec<Vec<u64>> = vec![Vec::new(); nprocs as usize];
    g.for_each_edge(|e, u, v| bucket_of[grid.owner(u, v) as usize].push(e));
    let mut parts: Vec<PartitionId> = vec![FREE; g.num_edges() as usize];
    for rank in 0..nprocs {
        let snap = RankSnapshot::load_round(dir, rank, round)?;
        snap.validate(rank, nprocs, fingerprint)?;
        let bucket = &bucket_of[rank as usize];
        if snap.alloc.edge_part.len() != bucket.len() {
            return Err(SnapshotError::Mismatch {
                detail: format!(
                    "rank {rank} snapshot covers {} hosted edges but the graph's bucket has {}",
                    snap.alloc.edge_part.len(),
                    bucket.len()
                ),
            });
        }
        for (slot, &e) in bucket.iter().enumerate() {
            parts[e as usize] = snap.alloc.edge_part[slot];
        }
    }

    // Seed the survivors' placements, then re-place the dead partition's
    // edges and complete the still-free ones — every placement restricted
    // to live partitions.
    let mut inc = IncrementalVertexCut::new(nprocs);
    inc.ban(dead);
    for (e, &p) in parts.iter().enumerate() {
        if p != FREE && p != dead {
            let (u, v) = g.edge(e as u64);
            inc.seed_edge(u, v, p);
        }
    }
    let (mut migrated, mut completed) = (0u64, 0u64);
    for e in 0..g.num_edges() {
        let p = parts[e as usize];
        if p == dead || p == FREE {
            let (u, v) = g.edge(e);
            parts[e as usize] = inc.insert(u, v);
            if p == dead {
                migrated += 1;
            } else {
                completed += 1;
            }
        }
    }

    let assignment = EdgeAssignment::new(parts, nprocs);
    let quality = PartitionQuality::measure(g, &assignment);
    let counts = assignment.edge_counts();
    let live: Vec<u64> =
        counts.iter().enumerate().filter(|&(p, _)| p as u32 != dead).map(|(_, &c)| c).collect();
    let mean = live.iter().sum::<u64>() as f64 / live.len() as f64;
    let edge_balance = *live.iter().max().expect("at least one survivor") as f64 / mean;
    Ok(MigrationReport {
        dead_rank: dead,
        round,
        migrated_edges: migrated,
        completed_edges: completed,
        replication_factor: quality.replication_factor,
        edge_balance,
        assignment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistributedNe, NeConfig};
    use dne_graph::gen::{rmat, RmatConfig};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dnerecov-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn migration_covers_every_dead_edge_with_survivors() {
        let g = rmat(&RmatConfig::graph500(9, 8, 11));
        let k = 4u32;
        let dir = temp_dir("migrate");
        let ne = DistributedNe::new(NeConfig::default().with_seed(11).with_checkpoint(1, &dir));
        let (uninterrupted, _) = ne.partition_with_stats(&g, k);
        let q_full = PartitionQuality::measure(&g, &uninterrupted);

        let dead = 1u32;
        let report = migrate_dead_rank(&dir, &g, k, 11, dead).expect("migration succeeds");

        // Completeness: a valid total assignment, dead partition empty.
        assert!(report.assignment.is_valid_for(&g));
        assert_eq!(report.assignment.edge_counts()[dead as usize], 0, "dead partition evacuated");
        for e in 0..g.num_edges() {
            assert_ne!(report.assignment.part_of(e), dead, "edge {e} still on the dead rank");
        }
        assert!(report.migrated_edges > 0, "the dead partition owned edges at the checkpoint");

        // Quality: RF within 10% of the uninterrupted k-way run (the
        // acceptance bar recovery_smoke asserts end-to-end), live balance
        // sane.
        assert!(
            report.replication_factor <= q_full.replication_factor * 1.10
                || report.replication_factor <= q_full.replication_factor + 0.2,
            "migration RF {} too far above uninterrupted {}",
            report.replication_factor,
            q_full.replication_factor
        );
        assert!(report.edge_balance < 1.6, "live balance {}", report.edge_balance);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn migration_needs_a_common_round_from_every_rank() {
        let g = rmat(&RmatConfig::graph500(8, 8, 3));
        let dir = temp_dir("missing");
        let ne = DistributedNe::new(NeConfig::default().with_seed(3).with_checkpoint(1, &dir));
        let _ = ne.partition_with_stats(&g, 4);
        // Delete rank 2's snapshots: the agreement must fail loudly.
        for (_, path) in snapshot::list_rounds(&dir, 2).unwrap() {
            std::fs::remove_file(path).unwrap();
        }
        let err = migrate_dead_rank(&dir, &g, 4, 3, 1).expect_err("missing rank must fail");
        assert!(err.to_string().contains("rank 2"), "names the missing rank: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn migration_rejects_a_different_runs_snapshots() {
        let g = rmat(&RmatConfig::graph500(8, 8, 5));
        let dir = temp_dir("wrongrun");
        let ne = DistributedNe::new(NeConfig::default().with_seed(5).with_checkpoint(1, &dir));
        let _ = ne.partition_with_stats(&g, 4);
        // Same graph, different seed: the run fingerprint must reject.
        let err = migrate_dead_rank(&dir, &g, 4, 99, 1).expect_err("wrong seed must fail");
        assert!(matches!(err, SnapshotError::Mismatch { .. }), "typed mismatch: {err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
