//! Random (1D-hash) edge partitioning.
//!
//! "The most straightforward approach is 1D-hash partitioning, where the
//! edge is randomly assigned to a one-dimensional partitioning space"
//! (paper §2.2). Expected RF for power-law graphs is the worst of the hash
//! family (Table 1, "Random" row).

use crate::assignment::{EdgeAssignment, PartitionId};
use crate::traits::EdgePartitioner;
use dne_graph::hash::mix2;
use dne_graph::Graph;

/// 1D hash partitioner: `p(e{u,v}) = h(u, v) mod |P|`.
#[derive(Debug, Clone)]
pub struct RandomPartitioner {
    seed: u64,
}

impl RandomPartitioner {
    /// Seeded constructor (hash is salted by the seed).
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl EdgePartitioner for RandomPartitioner {
    fn name(&self) -> String {
        "Random".into()
    }

    fn partition(&self, g: &Graph, k: PartitionId) -> EdgeAssignment {
        EdgeAssignment::from_fn(g, k, |e| {
            let (u, v) = g.edge(e);
            (mix2(self.seed, mix2(u, v)) % k as u64) as PartitionId
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::PartitionQuality;
    use dne_graph::gen;

    #[test]
    fn covers_all_edges_and_balances_well() {
        let g = gen::rmat(&gen::RmatConfig::graph500(9, 8, 1));
        let a = RandomPartitioner::new(1).partition(&g, 8);
        assert!(a.is_valid_for(&g));
        let q = PartitionQuality::measure(&g, &a);
        assert!(q.edge_balance < 1.2, "hash should balance edges, got {}", q.edge_balance);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::cycle(100);
        let a = RandomPartitioner::new(5).partition(&g, 4);
        let b = RandomPartitioner::new(5).partition(&g, 4);
        let c = RandomPartitioner::new(6).partition(&g, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn replicates_hub_of_star_everywhere() {
        let g = gen::star(4000);
        let a = RandomPartitioner::new(2).partition(&g, 8);
        let q = PartitionQuality::measure(&g, &a);
        // Hub lands in all 8 partitions with overwhelming probability.
        assert_eq!(q.vertex_counts.iter().filter(|&&c| c > 0).count(), 8);
        assert!(q.replication_factor > 1.0);
    }
}
