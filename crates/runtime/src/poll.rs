//! Raw `poll(2)` bindings shared by the TCP fabric and the service layer,
//! kept in one `cfg`-gated corner (the same pattern as the graph crate's
//! mmap shim). Both event loops — the mesh endpoint's io thread and the
//! [`crate::service::WireServer`] accept loop — build their fd sets out
//! of these primitives.

#![cfg(unix)]

use std::io;

pub(crate) const POLLIN: i16 = 0x1;
pub(crate) const POLLOUT: i16 = 0x4;
pub(crate) const POLLERR: i16 = 0x8;
pub(crate) const POLLHUP: i16 = 0x10;

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
pub(crate) struct PollFd {
    pub(crate) fd: i32,
    pub(crate) events: i16,
    pub(crate) revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: i32) -> i32;
}

/// Wait until any fd is ready or `timeout_ms` passes (`-1` = forever),
/// retrying transparently on `EINTR`.
pub(crate) fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as core::ffi::c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let e = io::Error::last_os_error();
        if e.kind() != io::ErrorKind::Interrupted {
            return Err(e);
        }
    }
}
