//! Incremental (dynamic-graph) edge partitioning — the paper's §8 future
//! work: "the extension to more complicated graph structures, such as
//! dynamic graphs … will be investigated".
//!
//! [`IncrementalVertexCut`] maintains a vertex-cut partitioning under edge
//! insertions using the same replication-free placement rule that drives
//! NE's two-hop heuristic (Condition 5), in the spirit of Leopard (Huang &
//! Abadi, VLDB 2016):
//!
//! 1. if the endpoints already share partitions, place the edge in the
//!    least-loaded shared partition (zero new replicas);
//! 2. else if either endpoint is known, place it in the least-loaded
//!    partition among theirs (one new replica);
//! 3. else place it in the least-loaded partition overall (two replicas).
//!
//! A capacity cap `α·E[t]/|P|` (recomputed as the graph grows) keeps the
//! balance constraint of Equation 2 holding *at every prefix* of the
//! stream. Static Distributed NE output can seed the state, so a graph
//! partitioned offline keeps its quality as it grows online.

use crate::assignment::{EdgeAssignment, PartitionId};
use dne_graph::{Graph, VertexId};

/// Online maintainer of a vertex-cut edge partitioning.
#[derive(Debug, Clone)]
pub struct IncrementalVertexCut {
    k: PartitionId,
    /// Imbalance factor α for the rolling capacity.
    pub alpha: f64,
    /// `A(v)`: sorted partition sets per vertex (grown on demand).
    vparts: Vec<Vec<PartitionId>>,
    /// `|E_p|` per partition.
    sizes: Vec<u64>,
    /// Partition of every edge, in insertion order.
    log: Vec<PartitionId>,
    /// Partitions [`insert`](Self::insert) may never choose (a dead rank's
    /// partition during edge migration). Empty until [`ban`](Self::ban).
    banned: Vec<bool>,
}

impl IncrementalVertexCut {
    /// Empty state for `k` partitions.
    pub fn new(k: PartitionId) -> Self {
        assert!(k >= 1);
        Self {
            k,
            alpha: 1.1,
            vparts: Vec::new(),
            sizes: vec![0; k as usize],
            log: Vec::new(),
            banned: vec![false; k as usize],
        }
    }

    /// Forbid partition `p` from ever being chosen by
    /// [`insert`](Self::insert) — the migration primitive: ban the dead
    /// rank's partition, then re-insert its edges so every one lands on a
    /// survivor.
    ///
    /// # Panics
    /// Panics when `p` is out of range or when banning it would leave no
    /// live partition.
    pub fn ban(&mut self, p: PartitionId) {
        assert!(p < self.k, "partition {p} out of range (k = {})", self.k);
        self.banned[p as usize] = true;
        assert!(
            self.banned.iter().any(|&b| !b),
            "banning partition {p} would leave no live partition"
        );
    }

    /// Whether partition `p` is banned from placement.
    pub fn is_banned(&self, p: PartitionId) -> bool {
        self.banned[p as usize]
    }

    /// Number of partitions still accepting placements.
    fn live_parts(&self) -> u64 {
        self.banned.iter().filter(|&&b| !b).count() as u64
    }

    /// Replay a known placement (a survivor's edge from a static run or a
    /// checkpoint) without running the placement rules, so migration can
    /// seed from a *partial* assignment that [`Self::from_assignment`]'s
    /// total `EdgeAssignment` cannot express.
    ///
    /// # Panics
    /// Panics when `p` is out of range or banned.
    pub fn seed_edge(&mut self, u: VertexId, v: VertexId, p: PartitionId) {
        assert!(p < self.k, "partition {p} out of range (k = {})", self.k);
        assert!(!self.banned[p as usize], "cannot seed an edge into banned partition {p}");
        self.note_member(u, p);
        self.note_member(v, p);
        self.sizes[p as usize] += 1;
        self.log.push(p);
    }

    /// Seed from a static partitioning (e.g. a Distributed NE run), so the
    /// online phase extends offline quality instead of starting cold.
    pub fn from_assignment(g: &Graph, assignment: &EdgeAssignment) -> Self {
        let mut s = Self::new(assignment.num_partitions());
        s.vparts = vec![Vec::new(); g.num_vertices() as usize];
        for e in 0..g.num_edges() {
            let p = assignment.part_of(e);
            let (u, v) = g.edge(e);
            s.note_member(u, p);
            s.note_member(v, p);
            s.sizes[p as usize] += 1;
            s.log.push(p);
        }
        s
    }

    fn note_member(&mut self, v: VertexId, p: PartitionId) {
        if self.vparts.len() <= v as usize {
            self.vparts.resize(v as usize + 1, Vec::new());
        }
        let set = &mut self.vparts[v as usize];
        if let Err(pos) = set.binary_search(&p) {
            set.insert(pos, p);
        }
    }

    fn parts_of(&self, v: VertexId) -> &[PartitionId] {
        self.vparts.get(v as usize).map(|s| s.as_slice()).unwrap_or(&[])
    }

    /// Rolling capacity: `α·(|E|+1)/|P|` plus a small additive slack, so
    /// the Equation 2 constraint holds asymptotically at every prefix while
    /// tiny streams can still co-locate (a hard per-prefix cap would force
    /// a triangle across three partitions). Banned partitions do not count
    /// toward `|P|`: survivors absorb a dead rank's share.
    fn capacity(&self) -> u64 {
        (self.alpha * (self.log.len() as f64 + 1.0) / self.live_parts() as f64).ceil() as u64 + 8
    }

    /// Insert edge `(u, v)`; returns the partition it was placed in —
    /// never a [banned](Self::ban) one.
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> PartitionId {
        let cap = self.capacity();
        let banned = &self.banned;
        let open = |p: PartitionId, sizes: &[u64]| sizes[p as usize] < cap;
        let pick_min = |cands: &mut dyn Iterator<Item = PartitionId>, sizes: &[u64]| {
            cands
                .filter(|&p| !banned[p as usize] && open(p, sizes))
                .min_by_key(|&p| (sizes[p as usize], p))
        };
        let pu = self.parts_of(u);
        let pv = self.parts_of(v);
        // Rule 1: shared partitions (no new replicas).
        let shared: Vec<PartitionId> =
            pu.iter().copied().filter(|p| pv.binary_search(p).is_ok()).collect();
        let choice = pick_min(&mut shared.iter().copied(), &self.sizes)
            // Rule 2: one endpoint known (one new replica).
            .or_else(|| {
                let union: Vec<PartitionId> = {
                    let mut x: Vec<PartitionId> = pu.iter().chain(pv.iter()).copied().collect();
                    x.sort_unstable();
                    x.dedup();
                    x
                };
                pick_min(&mut union.into_iter(), &self.sizes)
            })
            // Rule 3: anywhere (two new replicas), ignoring the cap as the
            // final fallback so insertion always succeeds.
            .or_else(|| pick_min(&mut (0..self.k), &self.sizes))
            .unwrap_or_else(|| {
                (0..self.k)
                    .filter(|&p| !banned[p as usize])
                    .min_by_key(|&p| (self.sizes[p as usize], p))
                    .expect("at least one live partition")
            });
        self.note_member(u, choice);
        self.note_member(v, choice);
        self.sizes[choice as usize] += 1;
        self.log.push(choice);
        choice
    }

    /// Number of edges inserted (or seeded) so far.
    pub fn num_edges(&self) -> u64 {
        self.log.len() as u64
    }

    /// Current replication factor over the vertices seen so far.
    pub fn replication_factor(&self) -> f64 {
        let seen = self.vparts.iter().filter(|s| !s.is_empty()).count();
        if seen == 0 {
            return 0.0;
        }
        let replicas: usize = self.vparts.iter().map(|s| s.len()).sum();
        replicas as f64 / seen as f64
    }

    /// Current edge balance `max/mean` over the live (non-banned)
    /// partitions — with nothing banned this is the usual `|P|`-mean.
    pub fn edge_balance(&self) -> f64 {
        let total: u64 = self.sizes.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.live_parts() as f64;
        *self.sizes.iter().max().unwrap() as f64 / mean
    }

    /// The full insertion-order assignment log (edge i → partition).
    pub fn assignment_log(&self) -> &[PartitionId] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dne_graph::gen;

    #[test]
    fn cold_start_stays_balanced() {
        let g = gen::rmat(&gen::RmatConfig::graph500(9, 8, 1));
        let mut inc = IncrementalVertexCut::new(8);
        for &(u, v) in g.edges() {
            inc.insert(u, v);
        }
        assert_eq!(inc.num_edges(), g.num_edges());
        assert!(inc.edge_balance() <= 1.12, "balance {}", inc.edge_balance());
        assert!(inc.replication_factor() >= 1.0);
    }

    #[test]
    fn shared_partition_rule_avoids_replication() {
        let mut inc = IncrementalVertexCut::new(4);
        inc.insert(0, 1); // both new → some partition p
        let p = inc.assignment_log()[0];
        // A triangle edge whose endpoints are both in p must stay in p.
        inc.insert(1, 2);
        inc.insert(0, 2);
        let rf = inc.replication_factor();
        assert!(rf <= 1.34, "triangle should stay nearly unreplicated, rf {rf}");
        let _ = p;
    }

    #[test]
    fn seeding_from_static_partition_preserves_quality() {
        use crate::quality::PartitionQuality;
        use crate::traits::EdgePartitioner;
        let g = gen::rmat(&gen::RmatConfig::graph500(9, 8, 3));
        let a = crate::greedy::NePartitioner::new(3).partition(&g, 8);
        let q_static = PartitionQuality::measure(&g, &a);
        let mut inc = IncrementalVertexCut::from_assignment(&g, &a);
        let rf_seeded = inc.replication_factor();
        // Seeded RF counts only vertices with edges — same as the metric.
        let covered = g.vertices().filter(|&v| g.degree(v) > 0).count() as f64;
        let expected = q_static.total_replicas as f64 / covered;
        assert!((rf_seeded - expected).abs() < 1e-9);
        // Insert a batch of fresh edges between existing vertices: RF must
        // grow slowly (most insertions hit rule 1/2).
        let before = inc.replication_factor();
        let mut rng = dne_graph::hash::SplitMix64::new(7);
        for _ in 0..1000 {
            let u = rng.next_below(g.num_vertices());
            let v = rng.next_below(g.num_vertices());
            if u != v {
                inc.insert(u, v);
            }
        }
        let after = inc.replication_factor();
        assert!(after < before * 1.5, "online growth exploded: {before} -> {after}");
    }

    #[test]
    fn online_beats_random_placement() {
        // The defining claim of locality-aware dynamic partitioning.
        let g = gen::rmat(&gen::RmatConfig::graph500(10, 8, 5));
        let mut inc = IncrementalVertexCut::new(8);
        for &(u, v) in g.edges() {
            inc.insert(u, v);
        }
        use crate::hash_based::RandomPartitioner;
        use crate::quality::PartitionQuality;
        use crate::traits::EdgePartitioner;
        let random = RandomPartitioner::new(5).partition(&g, 8);
        let q_random = PartitionQuality::measure(&g, &random);
        assert!(
            inc.replication_factor() < q_random.replication_factor,
            "incremental {} should beat random {}",
            inc.replication_factor(),
            q_random.replication_factor
        );
    }

    #[test]
    fn empty_state_metrics() {
        let inc = IncrementalVertexCut::new(4);
        assert_eq!(inc.replication_factor(), 0.0);
        assert_eq!(inc.edge_balance(), 1.0);
        assert_eq!(inc.num_edges(), 0);
    }

    #[test]
    fn banned_partition_never_receives_insertions() {
        let g = gen::rmat(&gen::RmatConfig::graph500(9, 8, 4));
        let mut inc = IncrementalVertexCut::new(4);
        inc.ban(2);
        assert!(inc.is_banned(2));
        for &(u, v) in g.edges() {
            assert_ne!(inc.insert(u, v), 2, "insert must never pick a banned partition");
        }
        // Survivors absorb the banned partition's share and stay balanced
        // among themselves (capacity divides by live partitions).
        assert!(inc.edge_balance() <= 1.12, "live balance {}", inc.edge_balance());
    }

    #[test]
    fn seeded_survivors_attract_migrated_edges() {
        // The migration shape: survivors keep their checkpointed edges
        // (seeded verbatim), the dead partition's edges are re-inserted.
        // Locality seeding must make most of them land where their
        // endpoints already live.
        let g = gen::rmat(&gen::RmatConfig::graph500(9, 8, 6));
        let full = {
            let mut inc = IncrementalVertexCut::new(4);
            for &(u, v) in g.edges() {
                inc.insert(u, v);
            }
            inc
        };
        let dead: PartitionId = 3;
        let mut migrated = IncrementalVertexCut::new(4);
        migrated.ban(dead);
        let log = full.assignment_log().to_vec();
        for (e, &(u, v)) in g.edges().iter().enumerate() {
            if log[e] != dead {
                migrated.seed_edge(u, v, log[e]);
            }
        }
        for (e, &(u, v)) in g.edges().iter().enumerate() {
            if log[e] == dead {
                let p = migrated.insert(u, v);
                assert_ne!(p, dead, "a migrated edge must land on a survivor");
            }
        }
        assert_eq!(migrated.num_edges(), g.num_edges(), "every edge is owned after migration");
        let rf_full = full.replication_factor();
        let rf_migrated = migrated.replication_factor();
        assert!(
            rf_migrated <= rf_full * 1.10,
            "migration should cost under 10% RF: {rf_full} -> {rf_migrated}"
        );
    }

    #[test]
    #[should_panic(expected = "banned partition")]
    fn seeding_into_banned_partition_panics() {
        let mut inc = IncrementalVertexCut::new(4);
        inc.ban(1);
        inc.seed_edge(0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "no live partition")]
    fn banning_every_partition_panics() {
        let mut inc = IncrementalVertexCut::new(2);
        inc.ban(0);
        inc.ban(1);
    }
}
