//! Dynamic graphs (the paper's §8 future work): partition a snapshot
//! offline with Distributed NE, then keep partitioning new edges online
//! with the incremental maintainer — quality degrades gracefully instead
//! of being recomputed from scratch.
//!
//! Run with: `cargo run --release --example incremental_updates`

use distributed_ne::graph::gen::{rmat, RmatConfig};
use distributed_ne::graph::hash::SplitMix64;
use distributed_ne::partition::IncrementalVertexCut;
use distributed_ne::prelude::*;

fn main() {
    // Offline phase: a social-graph snapshot, partitioned by Distributed NE.
    let snapshot = rmat(&RmatConfig::social(12, 12, 5));
    let k = 8;
    let ne = DistributedNe::new(NeConfig::default().with_seed(5));
    let assignment = ne.partition(&snapshot, k);
    let q0 = PartitionQuality::measure(&snapshot, &assignment);
    println!(
        "offline snapshot: |E| = {}, RF = {:.3}, EB = {:.3}",
        snapshot.num_edges(),
        q0.replication_factor,
        q0.edge_balance
    );

    // Online phase: seed the incremental maintainer and stream new edges
    // (10% growth, preferential toward existing high-degree vertices via
    // RMAT-like sampling of endpoints).
    let mut inc = IncrementalVertexCut::from_assignment(&snapshot, &assignment);
    let mut rng = SplitMix64::new(99);
    let new_edges = snapshot.num_edges() / 10;
    for i in 0..new_edges {
        let u = rng.next_below(snapshot.num_vertices());
        let v = rng.next_below(snapshot.num_vertices());
        if u != v {
            inc.insert(u, v);
        }
        if i % (new_edges / 4).max(1) == 0 {
            println!(
                "  after {:>6} insertions: RF = {:.3}, EB = {:.3}",
                i,
                inc.replication_factor(),
                inc.edge_balance()
            );
        }
    }
    println!(
        "online end state:  |E| = {}, RF = {:.3}, EB = {:.3}",
        inc.num_edges(),
        inc.replication_factor(),
        inc.edge_balance()
    );
    println!(
        "\nThe balance constraint keeps holding under growth, and RF stays\n\
         close to the offline quality — no full repartitioning needed."
    );
}
