//! RMAT / Graph500-style recursive-matrix graph generator.
//!
//! The paper's synthetic experiments (§7.1) use RMAT graphs "whose vertex
//! size are from Scale20 to Scale30" with edge factors from 2^4 (the Graph500
//! setting) to 2^10 (Facebook's trillion-edge density). This module
//! implements the standard recursive quadrant-descent sampler (Chakrabarti et
//! al., SDM 2004) with:
//!
//! * configurable quadrant probabilities `(a, b, c, d)` — Graph500 uses
//!   `(0.57, 0.19, 0.19, 0.05)`;
//! * optional per-level probability smoothing (as in the Graph500 reference
//!   implementation) to avoid exact self-similar artifacts;
//! * optional vertex-label permutation so vertex id order carries no
//!   structural information (Graph500 shuffles labels the same way);
//! * deterministic seeding — a seed plus the config fully determines the
//!   graph, so every experiment is reproducible.
//!
//! Duplicate samples and self loops are removed by the
//! [`crate::EdgeListBuilder`] pass, matching the paper's duplicate-edge
//! compaction note (§7.3): the *generated* edge count is `ef * 2^scale`, the
//! *resulting* simple-graph edge count is lower, increasingly so for high
//! edge factors.

use crate::hash::SplitMix64;
use crate::types::VertexId;
use crate::{EdgeListBuilder, Graph};

/// Configuration for the RMAT generator.
#[derive(Debug, Clone)]
pub struct RmatConfig {
    /// log2 of the number of vertices ("ScaleN" in the paper).
    pub scale: u32,
    /// Generated edges per vertex ("edge factor"; Graph500 uses 16).
    pub edge_factor: u64,
    /// Quadrant probabilities. Must be non-negative and sum to ~1.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// Lower-right quadrant probability (`1 - a - b - c`).
    pub d: f64,
    /// Per-level multiplicative noise applied to `a` (Graph500-style
    /// smoothing). `0.0` disables smoothing.
    pub noise: f64,
    /// Randomly permute vertex labels after sampling.
    pub permute: bool,
    /// RNG seed; equal seeds give equal graphs.
    pub seed: u64,
}

impl RmatConfig {
    /// Graph500 defaults at the given scale and edge factor.
    pub fn graph500(scale: u32, edge_factor: u64, seed: u64) -> Self {
        Self {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            noise: 0.1,
            permute: true,
            seed,
        }
    }

    /// A more skewed parameterization approximating web-crawl graphs
    /// (heavier head, used for the WebUK stand-in).
    pub fn web(scale: u32, edge_factor: u64, seed: u64) -> Self {
        Self { a: 0.63, b: 0.17, c: 0.17, d: 0.03, ..Self::graph500(scale, edge_factor, seed) }
    }

    /// A milder skew approximating friendship social networks (Pokec,
    /// LiveJournal-class graphs).
    pub fn social(scale: u32, edge_factor: u64, seed: u64) -> Self {
        Self { a: 0.45, b: 0.22, c: 0.22, d: 0.11, ..Self::graph500(scale, edge_factor, seed) }
    }

    /// Number of vertices `2^scale`.
    pub fn num_vertices(&self) -> VertexId {
        1u64 << self.scale
    }

    /// Number of *generated* (pre-dedup) edge samples.
    pub fn num_samples(&self) -> u64 {
        self.edge_factor * self.num_vertices()
    }

    fn validate(&self) {
        let s = self.a + self.b + self.c + self.d;
        assert!((s - 1.0).abs() < 1e-9, "RMAT probabilities must sum to 1 (got {s})");
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0,
            "RMAT probabilities must be non-negative"
        );
        assert!(self.scale <= 40, "scale {} too large for this build", self.scale);
    }
}

/// Sample one endpoint pair by recursive quadrant descent.
#[inline]
fn sample_edge(cfg: &RmatConfig, rng: &mut SplitMix64) -> (VertexId, VertexId) {
    let mut u: u64 = 0;
    let mut v: u64 = 0;
    for _ in 0..cfg.scale {
        // Per-level smoothing: jitter `a` and renormalize the rest, as in the
        // Graph500 reference code.
        let (a, b, c) = if cfg.noise > 0.0 {
            let f = 1.0 + cfg.noise * (2.0 * rng.next_f64() - 1.0);
            let a = cfg.a * f;
            let rest = (1.0 - a).max(0.0) / (cfg.b + cfg.c + cfg.d);
            (a, cfg.b * rest, cfg.c * rest)
        } else {
            (cfg.a, cfg.b, cfg.c)
        };
        let r = rng.next_f64();
        u <<= 1;
        v <<= 1;
        if r < a {
            // upper-left: no bits set
        } else if r < a + b {
            v |= 1;
        } else if r < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

/// Optional label permutation: a seeded Feistel-style permutation would
/// avoid materializing the table, but an explicit shuffled table is
/// simpler and the memory is charged to generation, not partitioning.
fn label_permutation(cfg: &RmatConfig) -> Option<Vec<VertexId>> {
    if !cfg.permute {
        return None;
    }
    let mut p: Vec<VertexId> = (0..cfg.num_vertices()).collect();
    // Fisher–Yates with an independently salted generator so that the
    // edge sample stream is identical with and without permutation.
    let mut prng = SplitMix64::new(cfg.seed ^ 0x5045_524D_5554_4521); // "PERMUTE!"
    for i in (1..p.len()).rev() {
        let j = prng.next_below(i as u64 + 1) as usize;
        p.swap(i, j);
    }
    Some(p)
}

/// RNG draws [`sample_edge`] consumes per sample: one `f64` per level, two
/// when per-level smoothing also draws a jitter. Exact by construction —
/// this is what lets [`rmat_parallel`] jump a worker into the middle of the
/// sample stream with [`SplitMix64::advance`].
fn draws_per_sample(cfg: &RmatConfig) -> u64 {
    cfg.scale as u64 * if cfg.noise > 0.0 { 2 } else { 1 }
}

/// Generate an RMAT graph. Self loops and duplicates are removed, so the
/// returned simple graph has at most `cfg.num_samples()` edges.
pub fn rmat(cfg: &RmatConfig) -> Graph {
    cfg.validate();
    let n = cfg.num_vertices();
    let samples = cfg.num_samples();
    let mut rng = SplitMix64::new(cfg.seed ^ RMAT_STREAM_SALT);
    let mut b = EdgeListBuilder::with_capacity(samples as usize);
    let perm = label_permutation(cfg);
    for _ in 0..samples {
        let (mut u, mut v) = sample_edge(cfg, &mut rng);
        if let Some(p) = &perm {
            u = p[u as usize];
            v = p[v as usize];
        }
        b.push(u, v);
    }
    b.into_graph(n)
}

/// Samples per work unit handed to one [`rmat_parallel`] worker. Fixed (not
/// derived from the thread count) so the chunk decomposition — and with it
/// the output — is the same for every thread count.
const SAMPLE_CHUNK: u64 = 1 << 14;

/// Generate an RMAT graph with up to `threads` threads.
///
/// **Byte-identical to [`rmat`] for the same config, at every thread
/// count.** The sample stream is deterministic: each sample consumes a fixed
/// number of RNG draws, so worker `c` seeds the same generator as the serial
/// path and [`SplitMix64::advance`]s straight to its chunk's position in the
/// stream. Chunks are canonicalized and sorted in parallel, merge-deduped,
/// and assembled with the parallel CSR builder — each stage preserving the
/// sorted-set semantics of the sequential [`EdgeListBuilder`] pass.
pub fn rmat_parallel(cfg: &RmatConfig, threads: usize) -> Graph {
    cfg.validate();
    if threads <= 1 {
        return rmat(cfg);
    }
    let n = cfg.num_vertices();
    let samples = cfg.num_samples();
    let perm = label_permutation(cfg);
    let perm = perm.as_deref();
    let draws = draws_per_sample(cfg);
    let edges = crate::parallel::generate_chunked(samples, SAMPLE_CHUNK, threads, |lo, hi, out| {
        let mut rng = SplitMix64::new(cfg.seed ^ RMAT_STREAM_SALT);
        rng.advance(lo * draws);
        for _ in lo..hi {
            let (mut u, mut v) = sample_edge(cfg, &mut rng);
            if let Some(p) = perm {
                u = p[u as usize];
                v = p[v as usize];
            }
            if u != v {
                out.push(crate::types::canonical(u, v));
            }
        }
    });
    Graph::from_canonical_edges_parallel(n, edges, threads)
}

/// Salt XORed into user seeds so the RMAT stream is decorrelated from other
/// consumers of the same seed (e.g. the partitioner's seed-vertex choice).
const RMAT_STREAM_SALT: u64 = 0x524D_4154_6765_6E21; // "RMATgen!"

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let cfg = RmatConfig::graph500(8, 8, 42);
        let g1 = rmat(&cfg);
        let g2 = rmat(&cfg);
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = rmat(&RmatConfig::graph500(8, 8, 1));
        let g2 = rmat(&RmatConfig::graph500(8, 8, 2));
        assert_ne!(g1.edges(), g2.edges());
    }

    #[test]
    fn respects_vertex_budget() {
        let cfg = RmatConfig::graph500(6, 4, 7);
        let g = rmat(&cfg);
        assert_eq!(g.num_vertices(), 64);
        assert!(g.num_edges() <= cfg.num_samples());
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn skew_increases_with_a() {
        // A heavily skewed RMAT should have a larger max degree than a
        // uniform one at the same size.
        let skewed = rmat(&RmatConfig { permute: false, noise: 0.0, ..RmatConfig::web(10, 8, 3) });
        let uniform = rmat(&RmatConfig {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
            noise: 0.0,
            permute: false,
            ..RmatConfig::graph500(10, 8, 3)
        });
        assert!(
            skewed.max_degree() > uniform.max_degree(),
            "skewed max degree {} should exceed uniform {}",
            skewed.max_degree(),
            uniform.max_degree()
        );
    }

    #[test]
    fn permutation_preserves_edge_count_distribution() {
        let base = RmatConfig { noise: 0.0, ..RmatConfig::graph500(8, 8, 11) };
        let unperm = rmat(&RmatConfig { permute: false, ..base.clone() });
        let perm = rmat(&RmatConfig { permute: true, ..base });
        // Same sample stream, relabeled: edge count can differ slightly only
        // through dedup collisions, which relabeling preserves exactly
        // (a bijection maps duplicate pairs to duplicate pairs).
        assert_eq!(unperm.num_edges(), perm.num_edges());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_probabilities() {
        rmat(&RmatConfig { a: 0.9, ..RmatConfig::graph500(4, 2, 0) });
    }

    #[test]
    fn parallel_is_byte_identical_to_serial() {
        // Scale 11 / EF 16 spans two sample chunks, so the stream-jumping
        // path is genuinely exercised; test both smoothing settings since
        // they consume different draw counts per sample.
        for cfg in [
            RmatConfig::graph500(11, 16, 42),
            RmatConfig { noise: 0.0, permute: false, ..RmatConfig::web(11, 16, 7) },
        ] {
            let serial = rmat(&cfg);
            for threads in [1usize, 2, 8] {
                let par = rmat_parallel(&cfg, threads);
                assert_eq!(serial, par, "threads {threads}");
            }
        }
    }
}
