//! The allocation process: distributed edge allocation (Algorithms 2 & 3).
//!
//! Each iteration an allocator receives the selected vertices of every
//! partition and runs the four phases of `EdgeAllocation()`:
//!
//! 1. [`one_hop`] — `AllocteOneHopNeighbors`: allocate the selected
//!    vertices' unallocated local edges to their partitions; conflicts
//!    (several partitions reaching the same edge in one iteration) are
//!    resolved locally, first-claim-wins in deterministic partition order —
//!    the sequential analogue of the paper's CAS resolution.
//! 2. membership sync (driven by the partitioner loop) —
//!    `SyncVertexAllocations`: new `(vertex, partition)` memberships are
//!    exchanged with the vertex's replica processes.
//! 3. [`two_hop`] — `AllocateTwoHopNeighbors`: for each new boundary vertex
//!    `u`, allocate unallocated local edges `e{u,w}` whose endpoints share a
//!    partition (`Parti(u) ∩ Parti(w) ≠ ∅`, Condition 5) to the member
//!    partition with the fewest locally allocated edges (`SubG.NumEdges`).
//! 4. [`local_drest`] — `ComputeLocalDrest`: this allocator's contribution
//!    to each new boundary vertex's `D_rest` score.

use dne_graph::VertexId;

use crate::dist::{AllocatorPart, FREE};
use crate::messages::Part;

/// A selection request from one expansion process.
#[derive(Debug, Clone)]
pub struct SelectRequest {
    /// The requesting partition (== source rank).
    pub part: Part,
    /// Boundary vertices to expand (global ids).
    pub vertices: Vec<VertexId>,
    /// If non-zero, this allocator should additionally expand one random
    /// free local vertex on the partition's behalf whose remaining degree
    /// fits this budget (the partition's remaining capacity).
    pub random_budget: u64,
}

/// Output of the one-hop phase.
#[derive(Debug, Default)]
pub struct OneHopOutput {
    /// New `(vertex, partition)` memberships created locally
    /// (`BP_local_new`) — to be synchronized with the vertex replicas.
    pub new_memberships: Vec<(VertexId, Part)>,
    /// Edges allocated in this phase, as `(local edge slot, partition)`.
    pub allocated: Vec<(u32, Part)>,
}

/// Phase 1: allocate one-hop neighbors of the selected vertices
/// (Algorithm 3, `AllocteOneHopNeighbors`).
///
/// Requests must arrive sorted by partition id; vertices are processed in
/// the order their expansion process popped them — together with the
/// lock-step exchange this makes allocation fully deterministic.
pub fn one_hop(part: &mut AllocatorPart, requests: &[SelectRequest]) -> OneHopOutput {
    let mut out = OneHopOutput::default();
    for req in requests {
        let p = req.part;
        // Random-restart expansion on behalf of partition p (Algorithm 1
        // line 7 executed allocator-side; the part's seeded shuffled scan
        // order provides the randomness, the budget keeps the pick within
        // the partition's remaining capacity).
        let random_pick = if req.random_budget > 0 {
            part.random_free_vertex_within(req.random_budget)
        } else {
            None
        };
        let selected = req
            .vertices
            .iter()
            .filter_map(|&v| part.local_of(v))
            .chain(random_pick)
            .collect::<Vec<_>>();
        for lv in selected {
            let mut touched_any = false;
            // Claim every still-free local edge of lv for p.
            let slots: Vec<(u32, u32)> =
                part.neighbors(lv).filter(|&(_, le)| part.edge_part[le as usize] == FREE).collect();
            for (nbr, le) in slots {
                if !part.claim_edge(le, p) {
                    continue; // lost to an earlier partition this iteration
                }
                touched_any = true;
                part.consume_rest(lv, nbr);
                out.allocated.push((le, p));
                if part.add_membership(nbr, p) {
                    out.new_memberships.push((part.global_ids[nbr as usize], p));
                }
            }
            // The expanded vertex itself is (now) a member of V(E_p): for a
            // boundary vertex this membership already exists from its join;
            // for a random-restart vertex it is created here and must sync.
            if touched_any && part.add_membership(lv, p) {
                out.new_memberships.push((part.global_ids[lv as usize], p));
            }
        }
    }
    out
}

/// Phase 3: allocate two-hop neighbor edges that satisfy Condition 5
/// (Algorithm 3, `AllocateTwoHopNeighbors`).
///
/// `bp_new` must be the deduplicated, sorted list of this iteration's new
/// `(vertex, partition)` memberships *local to this allocator* (own one-hop
/// discoveries plus synced remote ones). `global_sizes` is the previous
/// iteration's all-gathered `|E_p|` vector and `limit` the `α·|E|/|P|`
/// capacity. Each partition's remaining capacity is split fairly across
/// the `nprocs` allocators for this iteration, so the closure avalanche of
/// a dense region cannot blow a partition past its limit between two size
/// gathers — total two-hop growth per partition per iteration is bounded
/// by `remaining + nprocs` (Equation 2's constraint). Returns
/// `(local edge slot, partition)` allocations.
pub fn two_hop(
    part: &mut AllocatorPart,
    bp_new: &[(VertexId, Part)],
    global_sizes: &[u64],
    limit: u64,
    nprocs: u64,
    rank: u64,
    one_hop_local: &[u64],
) -> Vec<(u32, Part)> {
    // Per-allocator budget for this iteration: an *exact* split of the
    // remaining capacity (allocators with rank below the remainder take
    // one extra), minus what the one-hop phase already added to the
    // partition at this allocator in the same iteration (the gathered
    // sizes are one iteration stale). Summed over allocators the two-hop
    // growth per partition per iteration never exceeds the remaining
    // capacity — Equation 2's constraint with one iteration of staleness.
    let np = nprocs.max(1);
    let mut budget: Vec<u64> = global_sizes
        .iter()
        .zip(one_hop_local.iter())
        .map(|(&s, &oh)| {
            let remaining = limit.saturating_sub(s);
            let share = remaining / np + u64::from(rank < remaining % np);
            share.saturating_sub(oh)
        })
        .collect();
    let mut out = Vec::new();
    for &(u, _) in bp_new {
        let Some(lu) = part.local_of(u) else { continue };
        let slots: Vec<(u32, u32)> =
            part.neighbors(lu).filter(|&(_, le)| part.edge_part[le as usize] == FREE).collect();
        for (lw, le) in slots {
            // P_new = Parti(u) ∩ Parti(w), minus budget-exhausted parts.
            let pu = &part.vparts[lu as usize];
            let pw = &part.vparts[lw as usize];
            let mut pnew: Option<Part> = None;
            let mut best = u64::MAX;
            let (mut i, mut j) = (0, 0);
            while i < pu.len() && j < pw.len() {
                match pu[i].cmp(&pw[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let x = pu[i];
                        let load = part.part_edges[x as usize];
                        // argmin_{x ∈ P_new} SubG.NumEdges(x), ties by id,
                        // skipping partitions whose share is spent.
                        if budget[x as usize] > 0 && load < best {
                            best = load;
                            pnew = Some(x);
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
            if let Some(px) = pnew {
                if part.claim_edge(le, px) {
                    part.consume_rest(lu, lw);
                    budget[px as usize] -= 1;
                    out.push((le, px));
                }
            }
        }
    }
    out
}

/// Phase 4: this allocator's local `D_rest` contribution for each new
/// boundary vertex (Algorithm 2, `ComputeLocalDrest`). Run *after*
/// [`two_hop`] so the score reflects this iteration's allocations.
pub fn local_drest(
    part: &AllocatorPart,
    bp_new: &[(VertexId, Part)],
) -> Vec<(VertexId, Part, u64)> {
    bp_new
        .iter()
        .filter_map(|&(v, p)| part.local_of(v).map(|lv| (v, p, part.rest[lv as usize])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Grid2D;
    use dne_graph::gen;

    fn single_allocator(g: &dne_graph::Graph, k: usize) -> AllocatorPart {
        let grid = Grid2D::new(1, 1);
        let mut part = AllocatorPart::build(g, &grid, 0, 1);
        part.ensure_parts(k);
        part
    }

    #[test]
    fn one_hop_allocates_star_center() {
        let g = gen::star(5);
        let mut part = single_allocator(&g, 2);
        let req = vec![SelectRequest { part: 0, vertices: vec![0], random_budget: 0 }];
        let out = one_hop(&mut part, &req);
        assert_eq!(out.allocated.len(), 4, "all hub edges claimed");
        // Memberships: hub + 4 spokes.
        assert_eq!(out.new_memberships.len(), 5);
        assert_eq!(part.free_edges, 0);
    }

    #[test]
    fn one_hop_conflict_first_partition_wins() {
        // Path 0-1-2: both partitions select vertex 1 simultaneously.
        let g = gen::path(3);
        let mut part = single_allocator(&g, 2);
        let reqs = vec![
            SelectRequest { part: 0, vertices: vec![1], random_budget: 0 },
            SelectRequest { part: 1, vertices: vec![1], random_budget: 0 },
        ];
        let out = one_hop(&mut part, &reqs);
        // Partition 0 claims both edges; partition 1 gets nothing.
        assert!(out.allocated.iter().all(|&(_, p)| p == 0));
        assert_eq!(out.allocated.len(), 2);
    }

    #[test]
    fn one_hop_random_restart_picks_free_vertex() {
        let g = gen::cycle(6);
        let mut part = single_allocator(&g, 1);
        let req = vec![SelectRequest { part: 0, vertices: vec![], random_budget: u64::MAX }];
        let out = one_hop(&mut part, &req);
        assert_eq!(out.allocated.len(), 2, "a cycle vertex has exactly 2 edges");
    }

    #[test]
    fn two_hop_closes_triangles() {
        // Triangle 0-1-2: expanding 0 allocates (0,1),(0,2); edge (1,2) has
        // both endpoints in V(E_0) → two-hop must take it.
        let g = gen::complete(3);
        let mut part = single_allocator(&g, 1);
        let req = vec![SelectRequest { part: 0, vertices: vec![0], random_budget: 0 }];
        let out = one_hop(&mut part, &req);
        assert_eq!(out.allocated.len(), 2);
        let mut bp = out.new_memberships.clone();
        bp.sort_unstable();
        bp.dedup();
        let two = two_hop(&mut part, &bp, &[0, 0], u64::MAX, 1, 0, &[0, 0]);
        assert_eq!(two.len(), 1, "the closing edge (1,2)");
        assert_eq!(part.free_edges, 0);
    }

    #[test]
    fn two_hop_requires_shared_partition() {
        // Path 0-1-2: expand 0 for p0 → membership {0,1}. Edge (1,2) has
        // endpoint 2 in no partition → two-hop must NOT take it.
        let g = gen::path(3);
        let mut part = single_allocator(&g, 2);
        let req = vec![SelectRequest { part: 0, vertices: vec![0], random_budget: 0 }];
        let out = one_hop(&mut part, &req);
        let mut bp = out.new_memberships.clone();
        bp.sort_unstable();
        let two = two_hop(&mut part, &bp, &[0, 0], u64::MAX, 1, 0, &[0, 0]);
        assert!(two.is_empty());
        assert_eq!(part.free_edges, 1);
    }

    #[test]
    fn two_hop_prefers_least_loaded_partition() {
        // Square 0-1-2-3-0. p0 expands 0 (gets edges 0-1, 0-3);
        // p1 gets nothing. Then 1 and 3 join p1 artificially with p1 lighter
        // … simpler: make both memberships and check argmin choice.
        let g = gen::cycle(4);
        let mut part = single_allocator(&g, 2);
        let req = vec![SelectRequest { part: 0, vertices: vec![0], random_budget: 0 }];
        let _ = one_hop(&mut part, &req);
        // Vertices 1 and 2 also members of partition 1 (lighter: 0 edges).
        let l1 = part.local_of(1).unwrap();
        let l2 = part.local_of(2).unwrap();
        part.add_membership(l1, 1);
        part.add_membership(l2, 1);
        let bp = vec![(1u64, 1u32), (2u64, 1u32)];
        let two = two_hop(&mut part, &bp, &[0, 0], u64::MAX, 1, 0, &[0, 0]);
        // Edge (1,2): P_new = {1} (only shared partition of both). Edge
        // (2,3): 3 has no membership → skipped.
        assert_eq!(two.len(), 1);
        assert_eq!(two[0].1, 1);
    }

    #[test]
    fn local_drest_reports_post_allocation_scores() {
        let g = gen::path(4); // 0-1-2-3
        let mut part = single_allocator(&g, 1);
        let req = vec![SelectRequest { part: 0, vertices: vec![0], random_budget: 0 }];
        let out = one_hop(&mut part, &req);
        let mut bp = out.new_memberships.clone();
        bp.sort_unstable();
        let scores = local_drest(&part, &bp);
        // Vertex 1 has one remaining edge (1,2); vertex 0 has none.
        let get = |v: u64| scores.iter().find(|&&(x, _, _)| x == v).unwrap().2;
        assert_eq!(get(0), 0);
        assert_eq!(get(1), 1);
    }
}
